//! Property-based tests over the core invariants.

use proptest::prelude::*;
use qfab::circuit::{Circuit, Gate};
use qfab::core::constant::add_const;
use qfab::core::{aqft, qfa, qfm, AqftDepth};
use qfab::math::frac::{decode_twos_complement, encode_twos_complement, wrap_mod_2n};
use qfab::math::rng::Xoshiro256StarStar;
use qfab::sim::StateVector;
use qfab::transpile::verify::equivalent_up_to_phase_exhaustive;
use qfab::transpile::{optimize, transpile, Basis};

/// A strategy over random small circuits from the arithmetic gate set.
fn arb_circuit(qubits: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0u8..8, 0..qubits, 0..qubits, 0..qubits, -3.0f64..3.0);
    prop::collection::vec(gate, 0..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(qubits);
        for (kind, a, b, t, angle) in gates {
            let (a, b, t) = (a % qubits, b % qubits, t % qubits);
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.x(a);
                }
                2 => {
                    c.phase(angle, a);
                }
                3 if a != b => {
                    c.cx(a, b);
                }
                4 if a != b => {
                    c.cphase(angle, a, b);
                }
                5 if a != b => {
                    c.ch(a, b);
                }
                6 if a != b && b != t && a != t => {
                    c.ccphase(angle, a, b, t);
                }
                7 if a != b => {
                    c.swap(a, b);
                }
                _ => {}
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// QFA computes (x + y) mod 2^m for every operand pair and width.
    #[test]
    fn qfa_adds_correctly(
        n in 1u32..5,
        extra in 0u32..2,
        x_seed in any::<u64>(),
    ) {
        let m = n + extra;
        let mut rng = Xoshiro256StarStar::new(x_seed);
        let xv = rng.next_bounded(1 << n) as usize;
        let yv = rng.next_bounded(1 << m) as usize;
        let built = qfa(n, m, AqftDepth::Full);
        let input = built.y.embed(yv, built.x.embed(xv, 0));
        let mut s = StateVector::basis_state(n + m, input);
        s.apply_circuit(&built.circuit);
        let out = built.y.embed((xv + yv) % (1 << m), built.x.embed(xv, 0));
        prop_assert!((s.probability(out) - 1.0).abs() < 1e-8);
    }

    /// QFM computes x·y for random operands and asymmetric widths.
    #[test]
    fn qfm_multiplies_correctly(
        n in 1u32..4,
        m in 1u32..4,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256StarStar::new(seed);
        let xv = rng.next_bounded(1 << n) as usize;
        let yv = rng.next_bounded(1 << m) as usize;
        let built = qfm(n, m, AqftDepth::Full);
        let input = built.y.embed(yv, built.x.embed(xv, 0));
        let mut s = StateVector::basis_state(2 * (n + m), input);
        s.apply_circuit(&built.circuit);
        let out = built
            .z
            .embed(xv * yv, built.y.embed(yv, built.x.embed(xv, 0)));
        prop_assert!((s.probability(out) - 1.0).abs() < 1e-8);
    }

    /// AQFT followed by its inverse is the identity at every depth.
    #[test]
    fn aqft_inverse_roundtrips(m in 1u32..7, d in 1u32..7, y_seed in any::<u64>()) {
        let depth = AqftDepth::Limited(d);
        let y = (y_seed % (1u64 << m)) as usize;
        let mut c = aqft(m, depth);
        c.extend(&aqft(m, depth).inverse());
        let mut s = StateVector::basis_state(m, y);
        s.apply_circuit(&c);
        prop_assert!((s.probability(y) - 1.0).abs() < 1e-9);
    }

    /// Transpilation preserves the unitary up to global phase, for both
    /// bases, on arbitrary circuits from the arithmetic gate set.
    #[test]
    fn transpile_preserves_semantics(c in arb_circuit(4, 12)) {
        for basis in [Basis::CxPlus1q, Basis::Ibm] {
            let lowered = transpile(&c, basis);
            prop_assert!(
                equivalent_up_to_phase_exhaustive(&c, &lowered, 1e-7),
                "basis {basis:?} broke equivalence"
            );
        }
    }

    /// The peephole optimizer never changes the unitary (up to phase)
    /// and never grows the circuit.
    #[test]
    fn optimizer_is_sound(c in arb_circuit(4, 16)) {
        let lowered = transpile(&c, Basis::CxPlus1q);
        let (opt, report) = optimize(&lowered);
        prop_assert!(opt.len() <= lowered.len());
        prop_assert_eq!(report.gates_after, opt.len());
        prop_assert!(equivalent_up_to_phase_exhaustive(&lowered, &opt, 1e-7));
    }

    /// Circuit inversion is an involution and a true inverse under
    /// simulation.
    #[test]
    fn circuit_inverse_involution(c in arb_circuit(4, 10), seed in any::<u64>()) {
        prop_assert_eq!(c.inverse().inverse(), c.clone());
        let y = (seed % 16) as usize;
        let mut s = StateVector::basis_state(4, y);
        s.apply_circuit(&c);
        s.apply_circuit(&c.inverse());
        prop_assert!((s.probability(y) - 1.0).abs() < 1e-8);
    }

    /// Constant addition agrees with modular integer arithmetic.
    #[test]
    fn const_addition_matches_wrapping(m in 1u32..6, a in -100i64..100, y_seed in any::<u64>()) {
        let y = (y_seed % (1u64 << m)) as usize;
        let circuit = add_const(m, a, AqftDepth::Full);
        let mut s = StateVector::basis_state(m, y);
        s.apply_circuit(&circuit);
        let expect = wrap_mod_2n(y as i64 + a, m);
        prop_assert!((s.probability(expect) - 1.0).abs() < 1e-8);
    }

    /// Two's-complement encode/decode roundtrip over the full range.
    #[test]
    fn twos_complement_roundtrip(n in 1u32..16, v in any::<i64>()) {
        let lo = -(1i64 << (n - 1));
        let hi = (1i64 << (n - 1)) - 1;
        let v = lo + (v.rem_euclid(hi - lo + 1));
        let enc = encode_twos_complement(v, n).unwrap();
        prop_assert_eq!(decode_twos_complement(enc, n), v);
    }

    /// Pauli insertions never change the norm of the state.
    #[test]
    fn pauli_insertions_preserve_norm(c in arb_circuit(4, 10), q in 0u32..4, k in 0u8..3) {
        let mut s = StateVector::basis_state(4, 5);
        s.apply_circuit(&c);
        let pauli = match k {
            0 => Gate::X(q),
            1 => Gate::Y(q),
            _ => Gate::Z(q),
        };
        s.apply_gate(&pauli);
        prop_assert!((s.norm() - 1.0).abs() < 1e-8);
    }

    /// Gate counts after transpilation follow the fixed per-gate costs.
    #[test]
    fn transpile_cost_model(theta in -3.0f64..3.0) {
        let mut c = Circuit::new(3);
        c.cphase(theta, 0, 1).ccphase(theta, 0, 1, 2).ch(0, 2).h(1);
        let lowered = transpile(&c, Basis::CxPlus1q);
        let counts = lowered.counts();
        // 3 + 9 + 6 + 1 one-qubit, 2 + 8 + 1 two-qubit.
        prop_assert_eq!(counts.one_qubit, 19);
        prop_assert_eq!(counts.two_qubit, 11);
    }
}
