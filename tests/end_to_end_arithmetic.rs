//! Cross-crate integration: arithmetic circuits through both transpile
//! targets and the simulator.

use qfab::core::constant::{add_const, mul_const_mod, weighted_sum};
use qfab::core::{aqft, aqft_inverse, qfa, qfm, AqftDepth};
use qfab::sim::StateVector;
use qfab::transpile::verify::equivalent_up_to_phase_randomized;
use qfab::transpile::{optimize, transpile, Basis};

#[test]
fn qfa_survives_transpilation_to_both_bases() {
    let built = qfa(3, 4, AqftDepth::Full);
    for basis in [Basis::CxPlus1q, Basis::Ibm] {
        let lowered = transpile(&built.circuit, basis);
        assert!(
            equivalent_up_to_phase_randomized(&built.circuit, &lowered, 4, 1e-7, 11),
            "QFA not preserved by {basis:?}"
        );
    }
}

#[test]
fn qfm_survives_transpilation_and_still_multiplies() {
    let built = qfm(2, 2, AqftDepth::Full);
    let lowered = transpile(&built.circuit, Basis::Ibm);
    for (xv, yv) in [(1usize, 3usize), (2, 2), (3, 3)] {
        let input = built.y.embed(yv, built.x.embed(xv, 0));
        let mut state = StateVector::basis_state(8, input);
        state.apply_circuit(&lowered);
        let out = built
            .z
            .embed(xv * yv, built.y.embed(yv, built.x.embed(xv, 0)));
        assert!(
            (state.probability(out) - 1.0).abs() < 1e-7,
            "{xv}*{yv} wrong after IBM transpile"
        );
    }
}

#[test]
fn optimized_transpiled_adder_still_adds() {
    let built = qfa(4, 5, AqftDepth::Full);
    let lowered = transpile(&built.circuit, Basis::CxPlus1q);
    let (opt, report) = optimize(&lowered);
    assert_eq!(report.gates_after, opt.len());
    for (xv, yv) in [(0usize, 0usize), (7, 9), (15, 15), (3, 28)] {
        let input = built.y.embed(yv, built.x.embed(xv, 0));
        let mut state = StateVector::basis_state(9, input);
        state.apply_circuit(&opt);
        let out = built.y.embed((xv + yv) % 32, built.x.embed(xv, 0));
        assert!((state.probability(out) - 1.0).abs() < 1e-7);
    }
}

#[test]
fn chained_arithmetic_add_then_subtract_then_multiply() {
    // (y + x) − x = y, then multiply by a constant — mixing the
    // arithmetic building blocks over shared registers.
    let add = qfa(3, 4, AqftDepth::Full);
    let sub = add.circuit.inverse();
    let (xv, yv) = (5usize, 9usize);
    let input = add.y.embed(yv, add.x.embed(xv, 0));
    let mut state = StateVector::basis_state(7, input);
    state.apply_circuit(&add.circuit);
    state.apply_circuit(&sub);
    assert!((state.probability(input) - 1.0).abs() < 1e-8);
}

#[test]
fn const_adder_matches_register_adder() {
    // Adding a classical constant must agree with the two-register QFA.
    let m = 5u32;
    for a in [1usize, 7, 19, 31] {
        let const_circ = add_const(m, a as i64, AqftDepth::Full);
        for yv in [0usize, 3, 17, 31] {
            let mut s = StateVector::basis_state(m, yv);
            s.apply_circuit(&const_circ);
            let expect = (yv + a) % 32;
            assert!(
                (s.probability(expect) - 1.0).abs() < 1e-8,
                "{yv} + {a} misadded"
            );
        }
    }
}

#[test]
fn weighted_sum_equals_repeated_const_multiplication() {
    // Σ w_i b_i with all bits set equals Σ w_i.
    let weights = [2i64, 3, 7];
    let ws = weighted_sum(&weights, 5, AqftDepth::Full);
    let all_on = ws.bits.embed(0b111, 0);
    let mut s = StateVector::basis_state(8, all_on);
    s.apply_circuit(&ws.circuit);
    let out = ws.acc.embed(12, all_on);
    assert!((s.probability(out) - 1.0).abs() < 1e-8);
}

#[test]
fn mul_const_agrees_with_qfm_for_classical_operands() {
    let a = 5usize;
    let const_mul = mul_const_mod(3, a as i64, 6, AqftDepth::Full);
    let register_mul = qfm(3, 3, AqftDepth::Full);
    for yv in 0..8usize {
        let mut s1 = StateVector::basis_state(9, const_mul.y.embed(yv, 0));
        s1.apply_circuit(&const_mul.circuit);
        let o1 = const_mul.z.embed(a * yv, const_mul.y.embed(yv, 0));

        let input = register_mul.y.embed(yv, register_mul.x.embed(a, 0));
        let mut s2 = StateVector::basis_state(12, input);
        s2.apply_circuit(&register_mul.circuit);
        let o2 = register_mul
            .z
            .embed(a * yv, register_mul.y.embed(yv, register_mul.x.embed(a, 0)));

        assert!((s1.probability(o1) - 1.0).abs() < 1e-8);
        assert!((s2.probability(o2) - 1.0).abs() < 1e-8);
    }
}

#[test]
fn aqft_roundtrip_identity_at_every_depth() {
    let m = 7u32;
    for d in 1..m {
        let mut c = aqft(m, AqftDepth::Limited(d));
        c.extend(&aqft_inverse(m, AqftDepth::Limited(d)));
        for y in [0usize, 1, 64, 127] {
            let mut s = StateVector::basis_state(m, y);
            s.apply_circuit(&c);
            assert!(
                (s.probability(y) - 1.0).abs() < 1e-9,
                "AQFT_{d} roundtrip broke |{y}>"
            );
        }
    }
}

#[test]
fn signed_addition_via_twos_complement() {
    // (−3) + 5 = 2 on 5-bit two's complement registers (m = n here, so
    // wraparound is exactly two's-complement arithmetic).
    use qfab::math::frac::{decode_twos_complement, encode_twos_complement};
    let built = qfa(5, 5, AqftDepth::Full);
    let xv = encode_twos_complement(-3, 5).unwrap();
    let yv = encode_twos_complement(5, 5).unwrap();
    let input = built.y.embed(yv, built.x.embed(xv, 0));
    let mut s = StateVector::basis_state(10, input);
    s.apply_circuit(&built.circuit);
    let probs = s.probabilities();
    let best = probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    let sum = decode_twos_complement(built.y.extract(best), 5);
    assert_eq!(sum, 2);
}

#[test]
fn qasm_export_of_arithmetic_circuit_is_wellformed() {
    let built = qfa(2, 3, AqftDepth::Full);
    let qasm = qfab::circuit::qasm::to_qasm(&built.circuit);
    assert!(qasm.starts_with("OPENQASM 2.0;"));
    assert!(qasm.contains("qreg q[5];"));
    // Every gate line ends with a semicolon.
    for line in qasm.lines().skip(3) {
        assert!(line.ends_with(';'), "malformed line: {line}");
    }
}

#[test]
fn diagram_renders_arithmetic_circuit() {
    let built = qfa(2, 3, AqftDepth::Limited(1));
    let d = qfab::circuit::diagram::render(&built.circuit);
    assert_eq!(d.lines().count(), 5);
    assert!(d.contains('●'));
}
