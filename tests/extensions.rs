//! Integration tests for the beyond-the-paper extensions: routing,
//! mitigation, state preparation, signed multiplication, QPE, and the
//! comparator — exercised together through the public API.

use qfab::core::constant::add_const;
use qfab::core::initializer::initialize;
use qfab::core::mitigation::{richardson_extrapolate, zne_by_model_scaling};
use qfab::core::multiplier_fourier::{qfm_single_transform, Signedness};
use qfab::core::pipeline::RunConfig;
use qfab::core::{comparator, qfa, qpe_phase, AqftDepth, Qinteger};
use qfab::math::frac::{decode_twos_complement, encode_twos_complement};
use qfab::math::Complex64;
use qfab::sim::StateVector;
use qfab::transpile::routing::{route, route_and_lower, CouplingMap};
use qfab::transpile::{transpile, Basis};

#[test]
fn routed_adder_still_adds_on_a_chain() {
    // Transpile the QFA, route it onto a linear chain, and check the
    // arithmetic survives (reading the result through the final layout).
    let built = qfa(3, 4, AqftDepth::Full);
    let lowered = transpile(&built.circuit, Basis::CxPlus1q);
    let coupling = CouplingMap::linear(7);
    let routed = route(&lowered, &coupling);
    assert!(routed.swaps_inserted > 0, "a chain must force SWAPs");

    let (xv, yv) = (5usize, 9usize);
    let input = built.y.embed(yv, built.x.embed(xv, 0));
    let mut s = StateVector::basis_state(7, input);
    s.apply_circuit(&routed.circuit);
    // Expected physical outcome: logical bits routed through the layout.
    let logical_out = built.y.embed((xv + yv) % 16, built.x.embed(xv, 0));
    let mut physical_out = 0usize;
    for l in 0..7u32 {
        if (logical_out >> l) & 1 == 1 {
            physical_out |= 1 << routed.final_layout[l as usize];
        }
    }
    assert!(
        (s.probability(physical_out) - 1.0).abs() < 1e-7,
        "routed adder broke arithmetic"
    );
}

#[test]
fn routing_inflation_grows_with_sparser_topologies() {
    let built = qfa(3, 4, AqftDepth::Full);
    let lowered = transpile(&built.circuit, Basis::CxPlus1q);
    let (_, full) = route_and_lower(&lowered, &CouplingMap::all_to_all(7));
    let (_, grid) = route_and_lower(&lowered, &CouplingMap::grid(2, 4));
    let (_, line) = route_and_lower(&lowered, &CouplingMap::linear(7));
    assert!((full - 1.0).abs() < 1e-9);
    assert!(grid > 1.0, "grid should cost something: {grid}");
    assert!(
        line >= grid,
        "chain should cost at least the grid: {line} vs {grid}"
    );
}

#[test]
fn synthesized_initialization_feeds_the_adder() {
    // Prepare an order-2 qinteger with the synthesized circuit instead
    // of direct injection, then run the adder on it.
    let built = qfa(3, 4, AqftDepth::Full);
    let y = Qinteger::new(4, vec![2, 6]);
    let mut amps = vec![Complex64::ZERO; 1 << 7];
    for (v, a) in y.sparse_entries() {
        amps[built.y.embed(v, built.x.embed(3, 0))] = a;
    }
    let prep = initialize(&amps);
    let mut s = StateVector::zero_state(7);
    s.apply_circuit(&prep);
    s.apply_circuit(&built.circuit);
    for sum in [5usize, 9] {
        let out = built.y.embed(sum, built.x.embed(3, 0));
        assert!(
            (s.probability(out) - 0.5).abs() < 1e-7,
            "sum {sum} has probability {}",
            s.probability(out)
        );
    }
}

#[test]
fn signed_multiplier_against_classical_reference() {
    let built = qfm_single_transform(3, 3, Signedness::Signed, AqftDepth::Full);
    for (xs, ys) in [(-4i64, 3i64), (-1, -1), (2, -4), (3, 3)] {
        let xv = encode_twos_complement(xs, 3).unwrap();
        let yv = encode_twos_complement(ys, 3).unwrap();
        let input = built.y.embed(yv, built.x.embed(xv, 0));
        let mut s = StateVector::basis_state(12, input);
        s.apply_circuit(&built.circuit);
        let zv = encode_twos_complement(xs * ys, 6).unwrap();
        let out = built.z.embed(zv, input);
        assert!(
            (s.probability(out) - 1.0).abs() < 1e-7,
            "{xs}*{ys}: P = {}",
            s.probability(out)
        );
        let _ = decode_twos_complement(zv, 6);
    }
}

#[test]
fn qpe_then_arithmetic_on_the_estimate() {
    // Estimate φ = 5/16 with QPE, then add a constant to the estimate
    // register — two QFT applications chained through the public API.
    let built = qpe_phase(4, 5.0 / 16.0, AqftDepth::Full);
    let mut s = StateVector::zero_state(5);
    s.apply_circuit(&built.circuit);
    let add3 = add_const(4, 3, AqftDepth::Full);
    let mut widened = qfab::circuit::Circuit::new(5);
    widened.extend(&add3);
    s.apply_circuit(&widened);
    let expect = built.eigenstate.embed(1, built.counting.embed(8, 0)); // 5 + 3
    assert!((s.probability(expect) - 1.0).abs() < 1e-7);
}

#[test]
fn comparator_agrees_with_classical_comparison() {
    let built = comparator(2, AqftDepth::Full);
    for xv in 0..4usize {
        for yv in 0..4usize {
            let input = built.y.embed(yv, built.x.embed(xv, 0));
            let mut s = StateVector::basis_state(6, input);
            s.apply_circuit(&built.circuit);
            let out = built.flag.embed(usize::from(xv > yv), input);
            assert!((s.probability(out) - 1.0).abs() < 1e-7, "cmp({xv},{yv})");
        }
    }
}

#[test]
fn zne_pipeline_end_to_end() {
    // Richardson sanity plus a tiny end-to-end ZNE over the adder.
    assert!((richardson_extrapolate(&[(1.0, 0.8), (2.0, 0.6)]) - 1.0).abs() < 1e-12);
    let built = qfa(2, 3, AqftDepth::Full);
    let input_x = 1usize;
    let input_y = 2usize;
    let input = built.y.embed(input_y, built.x.embed(input_x, 0));
    let expected = vec![built.y.embed(3, built.x.embed(1, 0))];
    let config = RunConfig {
        shots: 2000,
        ..RunConfig::default()
    };
    let zne = zne_by_model_scaling(
        &built.circuit,
        &StateVector::basis_state(5, input),
        &expected,
        0.004,
        0.01,
        &[1.0, 2.0, 3.0],
        &config,
        13,
    );
    let raw = zne.points[0].1;
    assert!(raw < 1.0);
    assert!(
        (zne.mitigated - 1.0).abs() <= (raw - 1.0).abs() + 1e-9,
        "mitigated {} vs raw {raw}",
        zne.mitigated
    );
}
