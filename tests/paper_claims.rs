//! Reduced-scale checks of the paper's qualitative claims — the
//! *shape* of the results, which is what a reproduction must preserve.

use qfab::core::pipeline::{run_add_instance, RunConfig};
use qfab::core::{AddInstance, AqftDepth, EnsembleStats};
use qfab::experiments::table1::run_table1;
use qfab::math::rng::Xoshiro256StarStar;
use qfab::noise::NoiseModel;

fn ensemble(n: u32, m: u32, ox: usize, oy: usize, count: usize, seed: u64) -> Vec<AddInstance> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..count)
        .map(|_| AddInstance::random(n, m, ox, oy, &mut rng))
        .collect()
}

fn success_rate(
    instances: &[AddInstance],
    depth: AqftDepth,
    model: &NoiseModel,
    shots: u64,
) -> f64 {
    let config = RunConfig {
        shots,
        ..RunConfig::default()
    };
    let outcomes: Vec<_> = instances
        .iter()
        .enumerate()
        .map(|(i, inst)| run_add_instance(inst, depth, model, &config, 1000 + i as u64).1)
        .collect();
    EnsembleStats::from_outcomes(&outcomes).success_rate_pct
}

/// Table I is the paper's only exact artifact: it must match digit for
/// digit.
#[test]
fn table1_reproduces_exactly() {
    for e in run_table1() {
        assert!(
            e.matches(),
            "{} d={}: ({}, {}) vs paper ({}, {})",
            e.op,
            e.depth_label,
            e.ours_1q,
            e.ours_2q,
            e.paper_1q,
            e.paper_2q
        );
    }
}

/// Paper Fig. 1(a)/(b): 1:1 addition is insensitive to gate errors in
/// the hardware regime at depths above 1.
#[test]
fn one_to_one_addition_is_robust_at_hardware_rates() {
    let insts = ensemble(7, 8, 1, 1, 8, 21);
    for model in [
        NoiseModel::only_1q_depolarizing(0.002),
        NoiseModel::only_2q_depolarizing(0.010),
    ] {
        let rate = success_rate(&insts, AqftDepth::Limited(3), &model, 128);
        assert!(rate >= 85.0, "1:1 addition should be robust, got {rate}%");
    }
}

/// Paper §IV: sensitivity grows with the order of superposition —
/// 2:2 under-performs 1:1 at the same (elevated) error rate.
#[test]
fn superposition_order_increases_sensitivity() {
    let shots = 128;
    let model = NoiseModel::only_2q_depolarizing(0.03);
    let r11 = success_rate(&ensemble(7, 8, 1, 1, 8, 22), AqftDepth::Full, &model, shots);
    let r22 = success_rate(&ensemble(7, 8, 2, 2, 8, 23), AqftDepth::Full, &model, shots);
    assert!(
        r22 < r11,
        "2:2 ({r22}%) should underperform 1:1 ({r11}%) at 3% 2q error"
    );
}

/// Paper §IV: depth 1 is *worse* than the optimum even without noise
/// once operands are superposed.
#[test]
fn depth_one_hurts_superposed_operands_noiselessly() {
    let insts = ensemble(7, 8, 2, 2, 12, 24);
    let ideal = NoiseModel::ideal();
    let r1 = success_rate(&insts, AqftDepth::Limited(1), &ideal, 256);
    let r3 = success_rate(&insts, AqftDepth::Limited(3), &ideal, 256);
    assert!(
        (r3 - 100.0).abs() < 1e-9,
        "depth 3 noiseless should be perfect"
    );
    assert!(r1 < r3, "depth 1 ({r1}%) should trail depth 3 ({r3}%)");
}

/// Paper §IV: near the optimum, the AQFT matches or beats the full QFT
/// under noise (it has fewer noisy gates).
#[test]
fn aqft_at_heuristic_depth_competes_with_full_qft_under_noise() {
    // 16 instances: 6.25% per-instance granularity keeps one unlucky
    // modal-outcome flip from blowing through the statistical slack.
    let insts = ensemble(7, 8, 1, 2, 16, 25);
    let model = NoiseModel::only_2q_depolarizing(0.02);
    let shots = 192;
    let r3 = success_rate(&insts, AqftDepth::Limited(3), &model, shots);
    let rf = success_rate(&insts, AqftDepth::Full, &model, shots);
    // Allow a small statistical slack in the comparison.
    assert!(
        r3 + 15.0 >= rf,
        "AQFT d=3 ({r3}%) should be competitive with full ({rf}%)"
    );
}

/// Paper abstract/§V: success collapses toward 0% at sufficiently high
/// error rates and superposition orders.
#[test]
fn success_collapses_at_high_error() {
    let insts = ensemble(7, 8, 2, 2, 6, 26);
    let model = NoiseModel::only_2q_depolarizing(0.15);
    let rate = success_rate(&insts, AqftDepth::Full, &model, 96);
    assert!(rate <= 20.0, "expected collapse, got {rate}%");
}

/// The noise-free origin points of every figure: all-success at full
/// depth for every superposition row.
#[test]
fn noise_free_origin_is_perfect_at_full_depth() {
    for (ox, oy) in [(1usize, 1usize), (1, 2), (2, 2)] {
        let insts = ensemble(7, 8, ox, oy, 6, 30 + (ox * 2 + oy) as u64);
        let rate = success_rate(&insts, AqftDepth::Full, &NoiseModel::ideal(), 128);
        assert!(
            (rate - 100.0).abs() < 1e-9,
            "{ox}:{oy} noiseless full-depth should be 100%, got {rate}"
        );
    }
}
