//! Validation of the Monte-Carlo noise machinery against exact channel
//! evolution, on real arithmetic circuits.

use qfab::core::{qfa, AqftDepth};
use qfab::math::rng::Xoshiro256StarStar;
use qfab::noise::{NoiseModel, TrajectoryPlan};
use qfab::sim::{CheckpointTable, DensityMatrix, StateVector};
use qfab::transpile::{transpile, Basis};

/// Exact density-matrix evolution of a circuit under a noise model.
fn exact_noisy_probabilities(
    circuit: &qfab::circuit::Circuit,
    initial_index: usize,
    model: &NoiseModel,
) -> Vec<f64> {
    let mut rho = DensityMatrix::basis_state(circuit.num_qubits(), initial_index);
    for gate in circuit.gates() {
        rho.apply_gate(gate);
        if let Some(ch) = model.channel_for(gate) {
            let kraus = ch.to_kraus();
            rho.apply_kraus(gate.qubits().as_slice(), kraus.ops());
        }
    }
    rho.probabilities()
}

/// Monte-Carlo estimate of the same distribution via trajectories.
fn mc_noisy_probabilities(
    circuit: &qfab::circuit::Circuit,
    initial_index: usize,
    model: &NoiseModel,
    trials: u64,
    seed: u64,
) -> Vec<f64> {
    let n = circuit.num_qubits();
    let initial = StateVector::basis_state(n, initial_index);
    let table = CheckpointTable::build(circuit.clone(), &initial, 16);
    let plan = TrajectoryPlan::new(circuit, model);
    let mut rng = Xoshiro256StarStar::new(seed);
    let clean = qfab::math::sampling::sample_binomial(trials, plan.clean_prob(), &mut rng);
    let dim = 1usize << n;
    let mut acc = vec![0.0f64; dim];
    for (a, p) in acc.iter_mut().zip(table.final_state().probabilities()) {
        *a += p * clean as f64;
    }
    for _ in 0..(trials - clean) {
        let state = table.run_with_insertions(&plan.sample_noisy(&mut rng));
        for (a, p) in acc.iter_mut().zip(state.probabilities()) {
            *a += p;
        }
    }
    acc.into_iter().map(|a| a / trials as f64).collect()
}

#[test]
fn trajectories_match_exact_channel_on_a_real_adder() {
    // QFA(2,3) transpiled: small enough for the density matrix, real
    // enough to exercise the whole pipeline.
    let built = qfa(2, 3, AqftDepth::Full);
    let lowered = transpile(&built.circuit, Basis::CxPlus1q);
    let input = built.y.embed(3, built.x.embed(2, 0));
    let model = NoiseModel::depolarizing(0.01, 0.02);

    let exact = exact_noisy_probabilities(&lowered, input, &model);
    let mc = mc_noisy_probabilities(&lowered, input, &model, 40_000, 3);

    for (i, (e, m)) in exact.iter().zip(&mc).enumerate() {
        assert!(
            (e - m).abs() < 0.012,
            "outcome {i}: exact {e:.4} vs MC {m:.4}"
        );
    }
    // The correct sum remains the argmax at these rates.
    let best = exact
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(best, built.y.embed(5, built.x.embed(2, 0)));
}

#[test]
fn only_2q_noise_leaves_1q_only_circuits_clean() {
    let mut c = qfab::circuit::Circuit::new(3);
    c.h(0).h(1).h(2).rz(0.3, 1).x(2);
    let model = NoiseModel::only_2q_depolarizing(0.5);
    let plan = TrajectoryPlan::new(&c, &model);
    assert_eq!(plan.num_sites(), 0);
    assert_eq!(plan.clean_prob(), 1.0);
}

#[test]
fn clean_probability_decreases_with_depth_and_rate() {
    // More gates (deeper AQFT) and higher rates both shrink the clean
    // fraction — the mechanism behind the paper's depth trade-off.
    let mut last = 1.0;
    for depth in [
        AqftDepth::Limited(1),
        AqftDepth::Limited(3),
        AqftDepth::Full,
    ] {
        let built = qfa(7, 8, depth);
        let lowered = transpile(&built.circuit, Basis::CxPlus1q);
        let model = NoiseModel::only_2q_depolarizing(0.01);
        let plan = TrajectoryPlan::new(&lowered, &model);
        assert!(
            plan.clean_prob() < last,
            "deeper transform must have lower clean probability"
        );
        last = plan.clean_prob();
    }
    let built = qfa(7, 8, AqftDepth::Full);
    let lowered = transpile(&built.circuit, Basis::CxPlus1q);
    let p_low =
        TrajectoryPlan::new(&lowered, &NoiseModel::only_2q_depolarizing(0.001)).clean_prob();
    let p_high =
        TrajectoryPlan::new(&lowered, &NoiseModel::only_2q_depolarizing(0.02)).clean_prob();
    assert!(p_low > p_high);
}

#[test]
fn checkpoint_replay_equals_full_replay_on_arithmetic_circuit() {
    use qfab::sim::Insertion;
    let built = qfa(3, 4, AqftDepth::Full);
    let lowered = transpile(&built.circuit, Basis::CxPlus1q);
    let input = built.y.embed(7, built.x.embed(4, 0));
    let initial = StateVector::basis_state(7, input);

    let fine = CheckpointTable::build(lowered.clone(), &initial, 1);
    let coarse = CheckpointTable::build(lowered.clone(), &initial, 64);
    let insertions = [
        Insertion {
            after_gate: 10,
            gate: qfab::circuit::Gate::X(2),
        },
        Insertion {
            after_gate: 50,
            gate: qfab::circuit::Gate::Z(5),
        },
    ];
    let a = fine.run_with_insertions(&insertions);
    let b = coarse.run_with_insertions(&insertions);
    assert!(qfab::math::approx::approx_eq_slice(
        a.amplitudes(),
        b.amplitudes(),
        1e-10
    ));
}

#[test]
fn thermal_relaxation_limits_to_amplitude_damping() {
    // With T2 = 2·T1 the thermal channel is pure amplitude damping: the
    // |1> population decays by e^{−t/T1} with no extra dephasing.
    use qfab::noise::KrausChannel;
    let (t, t1) = (1.0f64, 2.0f64);
    let ch = KrausChannel::thermal_relaxation(t, t1, 2.0 * t1);
    let mut rho = DensityMatrix::basis_state(1, 1);
    rho.apply_kraus(&[0], ch.ops());
    let p1 = rho.probabilities()[1];
    let expect = (-t / t1).exp();
    assert!((p1 - expect).abs() < 1e-10, "p1 {p1} vs {expect}");
}

#[test]
fn readout_error_composes_with_gate_noise() {
    let built = qfa(2, 3, AqftDepth::Full);
    let model = NoiseModel::only_2q_depolarizing(0.01)
        .with_readout(qfab::noise::ReadoutError::symmetric(0.02));
    let config = qfab::core::RunConfig {
        shots: 4000,
        ..Default::default()
    };
    let run = qfab::core::pipeline::NoisyRun::prepare(
        &built.circuit,
        StateVector::basis_state(5, built.y.embed(1, built.x.embed(1, 0))),
        &model,
        &config,
    );
    let mut rng = Xoshiro256StarStar::new(5);
    let counts = run.sample_counts(4000, &mut rng);
    assert_eq!(counts.total_shots(), 4000);
    // The exact output still dominates but readout spreads mass.
    let expected = built.y.embed(2, built.x.embed(1, 0));
    let hit = counts.get(expected) as f64 / 4000.0;
    assert!(hit > 0.75 && hit < 0.98, "hit rate {hit}");
    assert!(counts.distinct() > 3);
}
