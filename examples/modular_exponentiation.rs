//! Toward Shor: modular exponentiation from Fourier-space building
//! blocks.
//!
//! ```sh
//! cargo run --release --example modular_exponentiation
//! ```
//!
//! The paper's closing sections point at exponentiation and modular
//! arithmetic as the natural extensions of QFA/QFM. This example stages
//! `a^e mod 2^p` as a chain of constant multiplications
//! `|y>|0> -> |y>|a·y mod 2^p>` (each one QFT + controlled constant
//! phases + inverse QFT), feeding each product register into the next
//! multiplier — the repeated-squaring skeleton used by Shor-style
//! circuits, with the modulus specialized to a power of two.

use qfab::core::constant::mul_const_mod;
use qfab::core::AqftDepth;
use qfab::sim::StateVector;

/// One constant-multiplication stage: measures `a·y mod 2^p` from the
/// (deterministic, noiseless) output of the circuit.
fn multiply_stage(y: usize, a: i64, width: u32, p: u32) -> usize {
    let built = mul_const_mod(width, a, p, AqftDepth::Full);
    let total = width + p;
    let mut state = StateVector::basis_state(total, built.y.embed(y, 0));
    state.apply_circuit(&built.circuit);
    let probs = state.probabilities();
    let (best, prob) = probs
        .iter()
        .enumerate()
        .max_by(|x, z| x.1.partial_cmp(z.1).unwrap())
        .unwrap();
    assert!((prob - 1.0).abs() < 1e-9, "stage output not deterministic");
    assert_eq!(built.y.extract(best), y, "input register must be preserved");
    built.z.extract(best)
}

fn main() {
    let a = 3i64;
    let e = 5u32;
    let p = 6u32; // modulus 2^6 = 64

    println!(
        "computing {a}^{e} mod {} by staged Fourier multipliers:\n",
        1u64 << p
    );
    let mut acc = 1usize;
    for step in 1..=e {
        let next = multiply_stage(acc, a, p, p);
        println!("  stage {step}: {acc} x {a} = {next}   (mod {})", 1u64 << p);
        acc = next;
    }
    let expect = (a as u64).pow(e) % (1u64 << p);
    println!("\nresult: {acc}, classical check: {expect}");
    assert_eq!(acc as u64, expect);

    // The same machinery exponentiates a superposition: each stage acts
    // on every branch at once. Demonstrate one squaring applied to a
    // two-branch input.
    let built = mul_const_mod(p, a, p, AqftDepth::Full);
    let amp = qfab::math::Complex64::from_real(std::f64::consts::FRAC_1_SQRT_2);
    let entries = [(built.y.embed(2, 0), amp), (built.y.embed(9, 0), amp)];
    let mut state = StateVector::from_sparse(2 * p, &entries);
    state.apply_circuit(&built.circuit);
    println!("\nsuperposed stage: (|2> + |9>)/sqrt(2) -> multiples of {a}:");
    for y in [2usize, 9] {
        let out = built
            .z
            .embed((a as usize * y) % (1 << p), built.y.embed(y, 0));
        println!(
            "  P(|{y}>|{}>) = {:.4}",
            (a as usize * y) % (1 << p),
            state.probability(out)
        );
        assert!((state.probability(out) - 0.5).abs() < 1e-9);
    }
}
