//! Weighted sums over superposed inputs — the data-processing /
//! machine-learning motivation from the paper's introduction.
//!
//! ```sh
//! cargo run --release --example superposed_weighted_sum
//! ```
//!
//! A single Fourier-space circuit evaluates `acc += Σ w_i · b_i` for
//! *every* bit pattern `b` in superposition simultaneously: one QFT,
//! one batch of controlled constant rotations, one inverse QFT. We use
//! it to score every row of a tiny binary feature matrix at once (an
//! inner product with a classical weight vector), then check against
//! classical evaluation.

use qfab::core::constant::weighted_sum;
use qfab::core::AqftDepth;
use qfab::math::frac::wrap_mod_2n;
use qfab::math::Complex64;
use qfab::sim::StateVector;

fn main() {
    // Classical weight vector (can be negative: two's complement).
    let weights: [i64; 4] = [3, -2, 5, 1];
    let acc_bits = 5u32;

    let ws = weighted_sum(&weights, acc_bits, AqftDepth::Full);
    let total_qubits = 4 + acc_bits;

    // Put the input register in a uniform superposition of all 16
    // feature patterns: 16 inner products in one circuit execution.
    let amp = Complex64::from_real(0.25);
    let entries: Vec<(usize, Complex64)> =
        (0..16usize).map(|b| (ws.bits.embed(b, 0), amp)).collect();
    let mut state = StateVector::from_sparse(total_qubits, &entries);
    state.apply_circuit(&ws.circuit);

    println!("weights = {weights:?}, accumulator = {acc_bits} bits (mod 32)\n");
    println!("pattern  classical  P(pattern, classical sum)");
    let mut total_mass = 0.0;
    for b in 0..16usize {
        let classical: i64 = weights
            .iter()
            .enumerate()
            .filter(|(i, _)| b >> i & 1 == 1)
            .map(|(_, &w)| w)
            .sum();
        let encoded = wrap_mod_2n(classical, acc_bits);
        let out = ws.acc.embed(encoded, ws.bits.embed(b, 0));
        let p = state.probability(out);
        total_mass += p;
        println!("  {b:04b}    {classical:>4}       {p:.4}");
        assert!((p - 1.0 / 16.0).abs() < 1e-9, "pattern {b} mass wrong");
    }
    println!("\ntotal probability on correct sums: {total_mass:.6}");
    assert!((total_mass - 1.0).abs() < 1e-9);

    // Circuit economics: the weighted sum uses only controlled phases
    // between the two transforms — depth does not grow with the number
    // of terms beyond the rotations themselves.
    let counts = ws.circuit.counts();
    println!(
        "circuit: {} gates (1q {}, 2q {}), depth {}",
        counts.total(),
        counts.one_qubit,
        counts.two_qubit,
        ws.circuit.depth()
    );
}
