//! Quickstart: add and multiply integers in the quantum Fourier basis.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a Draper adder and a weighted-sum multiplier, runs them on a
//! noiseless state-vector simulator, and prints circuit statistics at
//! several AQFT approximation depths.

use qfab::core::{qfa, qfm, AqftDepth};
use qfab::sim::StateVector;
use qfab::transpile::{transpile, Basis};

fn main() {
    // ---- addition: |x=11>|y=5> -> |11>|16> -------------------------
    let adder = qfa(4, 5, AqftDepth::Full);
    let (xv, yv) = (11usize, 5usize);
    let input = adder.y.embed(yv, adder.x.embed(xv, 0));
    let mut state = StateVector::basis_state(9, input);
    state.apply_circuit(&adder.circuit);

    let output = adder.y.embed(xv + yv, adder.x.embed(xv, 0));
    println!(
        "QFA: |{xv}>|{yv}>  ->  |{xv}>|{}>   (P = {:.6})",
        xv + yv,
        state.probability(output)
    );
    assert!((state.probability(output) - 1.0).abs() < 1e-9);

    // ---- multiplication: |x=6>|y=7>|0> -> |6>|7>|42> ---------------
    let mul = qfm(3, 3, AqftDepth::Full);
    let (xv, yv) = (6usize, 7usize);
    let input = mul.y.embed(yv, mul.x.embed(xv, 0));
    let mut state = StateVector::basis_state(12, input);
    state.apply_circuit(&mul.circuit);

    let output = mul.z.embed(xv * yv, mul.y.embed(yv, mul.x.embed(xv, 0)));
    println!(
        "QFM: |{xv}>|{yv}>|0>  ->  |{xv}>|{yv}>|{}>   (P = {:.6})",
        xv * yv,
        state.probability(output)
    );
    assert!((state.probability(output) - 1.0).abs() < 1e-9);

    // ---- superposition: one circuit, two additions at once ---------
    let adder = qfa(3, 4, AqftDepth::Full);
    let amp = qfab::math::Complex64::from_real(std::f64::consts::FRAC_1_SQRT_2);
    let e1 = adder.y.embed(4, adder.x.embed(2, 0));
    let e2 = adder.y.embed(4, adder.x.embed(5, 0));
    let mut state = StateVector::from_sparse(7, &[(e1, amp), (e2, amp)]);
    state.apply_circuit(&adder.circuit);
    println!("\nsuperposed addend (|2> + |5>)/sqrt(2), y = |4>:");
    for (xv, sum) in [(2usize, 6usize), (5, 9)] {
        let out = adder.y.embed(sum, adder.x.embed(xv, 0));
        println!("  P(|{xv}>|{sum}>) = {:.4}", state.probability(out));
    }

    // ---- approximation depth vs circuit size -----------------------
    println!("\nAQFT depth vs transpiled gate counts, QFA (paper Table I geometry):");
    for depth in [
        AqftDepth::Limited(1),
        AqftDepth::Limited(2),
        AqftDepth::Limited(3),
        AqftDepth::Limited(4),
        AqftDepth::Full,
    ] {
        let circuit = qfa(7, 8, depth).circuit;
        let counts = transpile(&circuit, Basis::CxPlus1q).counts();
        println!(
            "  d = {:<4}  1q: {:>4}   2q (CX): {:>4}",
            depth.paper_label(),
            counts.one_qubit,
            counts.two_qubit
        );
    }
}
