//! Seeing the noise machinery agree with itself: Monte-Carlo
//! trajectories vs exact density-matrix evolution, plus tomography of
//! a noisy adder output.
//!
//! ```sh
//! cargo run --release --example noise_channel_validation
//! ```

use qfab::core::{qfa, AqftDepth};
use qfab::math::rng::Xoshiro256StarStar;
use qfab::noise::{NoiseModel, TrajectoryPlan};
use qfab::sim::tomography::{basis_rotation, measurement_bases, reconstruct};
use qfab::sim::{CheckpointTable, DensityMatrix, ShotSampler, StateVector};
use qfab::transpile::{transpile, Basis};

fn main() {
    // A small adder under the paper's depolarizing model.
    let built = qfa(2, 3, AqftDepth::Full);
    let lowered = transpile(&built.circuit, Basis::CxPlus1q);
    let model = NoiseModel::depolarizing(0.01, 0.02);
    let input = built.y.embed(3, built.x.embed(2, 0));

    // --- exact channel evolution -----------------------------------
    let mut rho = DensityMatrix::basis_state(5, input);
    for gate in lowered.gates() {
        rho.apply_gate(gate);
        if let Some(ch) = model.channel_for(gate) {
            rho.apply_kraus(gate.qubits().as_slice(), ch.to_kraus().ops());
        }
    }
    let exact = rho.probabilities();

    // --- Monte-Carlo trajectories -----------------------------------
    let plan = TrajectoryPlan::new(&lowered, &model);
    let initial = StateVector::basis_state(5, input);
    let table = CheckpointTable::build(lowered.clone(), &initial, 16);
    let mut rng = Xoshiro256StarStar::new(11);
    let trials = 30_000u64;
    let clean = qfab::math::sampling::sample_binomial(trials, plan.clean_prob(), &mut rng);
    let mut acc = vec![0.0f64; 32];
    for (a, p) in acc.iter_mut().zip(table.final_state().probabilities()) {
        *a += p * clean as f64;
    }
    for _ in 0..(trials - clean) {
        let state = table.run_with_insertions(&plan.sample_noisy(&mut rng));
        for (a, p) in acc.iter_mut().zip(state.probabilities()) {
            *a += p;
        }
    }

    println!("2+3 adder |2>|3> -> |2>|5> under depolarizing (1q 1%, 2q 2%):");
    println!("clean-shot probability: {:.3}", plan.clean_prob());
    println!(
        "\noutcome   exact     Monte-Carlo ({} trajectories)",
        trials
    );
    let mut worst = 0.0f64;
    for (i, (e, a)) in exact.iter().zip(&acc).enumerate() {
        let mc = a / trials as f64;
        worst = worst.max((e - mc).abs());
        if *e > 0.004 {
            println!("  {i:>2}      {e:.4}    {mc:.4}");
        }
    }
    println!("\nlargest deviation over all 32 outcomes: {worst:.4}");

    // --- tomography of the noisy sum register -----------------------
    // Reconstruct the 3-qubit sum register's state from sampled counts
    // in all 27 Pauli product bases, then compare with the ideal |5>.
    println!("\ntomography of the y register (27 bases x 2000 shots):");
    let mut data = Vec::new();
    for basis in measurement_bases(3) {
        let mut circuit = lowered.clone();
        circuit.extend(&basis_rotation(5, &built.y, &basis));
        // Noiseless sampling here: tomography demo of the machinery.
        let mut state = StateVector::basis_state(5, input);
        state.apply_circuit(&circuit);
        let counts = ShotSampler::sample_counts(&state, 2000, &mut rng);
        data.push((basis, counts.marginal(&built.y)));
    }
    let rho_y = reconstruct(3, &data);
    let ideal = StateVector::basis_state(3, 5);
    println!("  trace    = {:.4}", rho_y.trace().re);
    println!("  purity   = {:.4}", rho_y.purity());
    println!(
        "  fidelity with ideal |5> = {:.4}",
        rho_y.fidelity_with_pure(&ideal)
    );
}
