//! How good is the approximate QFT, really?
//!
//! ```sh
//! cargo run --release --example aqft_fidelity
//! ```
//!
//! For registers of growing size, computes the state fidelity between
//! the AQFT output and the exact QFT output (averaged over random
//! inputs), alongside the gate-count savings — the trade-off at the
//! heart of the paper. Also prints the Barenco heuristic depth
//! `d ≈ log2 m` the paper evaluates against.

use qfab::core::{aqft, AqftDepth};
use qfab::math::rng::Xoshiro256StarStar;
use qfab::sim::StateVector;
use qfab::transpile::{transpile, Basis};

fn main() {
    let trials = 24;
    for m in [6u32, 8, 10, 12] {
        let full = aqft(m, AqftDepth::Full);
        let full_counts = transpile(&full, Basis::CxPlus1q).counts();
        println!(
            "\nAQFT on {m} qubits (full QFT: {} gates; Barenco heuristic d = {}):",
            full_counts.total(),
            AqftDepth::barenco_heuristic(m).paper_label()
        );
        println!("  depth |  avg fidelity |  min fidelity | gates saved");
        let mut rng = Xoshiro256StarStar::new(m as u64);
        for d in 1..m {
            let depth = AqftDepth::Limited(d);
            let approx = aqft(m, depth);
            let counts = transpile(&approx, Basis::CxPlus1q).counts();
            let saved = full_counts.total() - counts.total();
            let (mut sum, mut min) = (0.0f64, 1.0f64);
            for _ in 0..trials {
                let y = rng.next_bounded(1 << m) as usize;
                let mut exact = StateVector::basis_state(m, y);
                exact.apply_circuit(&full);
                let mut test = StateVector::basis_state(m, y);
                test.apply_circuit(&approx);
                let f = exact.fidelity(&test);
                sum += f;
                min = min.min(f);
            }
            println!(
                "  {:>5} |      {:.6} |      {:.6} | {:>6}",
                d,
                sum / trials as f64,
                min,
                saved
            );
        }
    }
    println!(
        "\nReading: fidelity climbs steeply up to d ≈ log2 m and saturates — the\n\
         rotations the AQFT drops are exponentially close to the identity, which\n\
         is why, under hardware noise, the shallower transform wins (Fig. 1-2\n\
         of the paper; regenerate with the `repro` binary)."
    );
}
