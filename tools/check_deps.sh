#!/usr/bin/env sh
# Asserts the workspace depends on no external crates beyond the frozen
# allowlist below. qfab-telemetry exists precisely so observability adds
# zero dependencies; this check keeps that invariant honest in CI.
set -eu

cd "$(dirname "$0")/.."

ALLOWED="rand rayon proptest criterion crossbeam parking_lot"

status=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # External deps are declared `name = "version"` or
    # `name.workspace = true` / `name = { workspace = true }`; workspace
    # members are path deps (`qfab-*`). Pull every dependency name out
    # of the dependency tables and diff against the allowlist.
    deps=$(awk '
        /^\[(workspace\.)?(dev-|build-)?dependencies\]/ { in_deps = 1; next }
        /^\[/ { in_deps = 0 }
        in_deps && /^[a-zA-Z0-9_-]+(\.workspace)? *=/ {
            split($0, a, /[ .=]/); print a[1]
        }
    ' "$manifest")
    for dep in $deps; do
        case " qfab-telemetry qfab-store qfab-serve qfab-math qfab-circuit qfab-transpile qfab-sim qfab-noise qfab-core qfab-experiments $ALLOWED " in
            *" $dep "*) ;;
            *)
                echo "DISALLOWED dependency '$dep' in $manifest" >&2
                status=1
                ;;
        esac
    done
done

if [ "$status" -eq 0 ]; then
    echo "dependency allowlist OK (external: $ALLOWED)"
fi
exit "$status"
