#!/usr/bin/env bash
# Kill-and-resume smoke test for the qfab-store sweep cache.
#
# 1. Runs a panel cold and records its artifacts as the reference.
# 2. Starts the same panel against a store with --watch, SIGKILLs it
#    mid-sweep, and checks the crash left a readable status.json
#    heartbeat behind (the monitor writes it atomically, so a kill at
#    any moment leaves the last complete snapshot).
# 3. Resumes with `--store ... --resume`, then byte-compares the
#    artifacts with the reference and integrity-checks the store.
#
# A fast machine can finish step 2 before the kill lands; that is not a
# failure of crash safety, so the script tolerates it (the resume run
# then simply replays a complete store).
set -eu

cd "$(dirname "$0")/.."

PANEL="${PANEL:-fig1a}"
INSTANCES="${INSTANCES:-6}"
SHOTS="${SHOTS:-64}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/qfab_kill_resume.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

REPRO="cargo run --release -q -p qfab-experiments --bin repro --"
# Build first so the background run's startup cost is simulation, not
# compilation, and the kill window is predictable.
cargo build --release -q -p qfab-experiments

echo "== reference run =="
$REPRO "$PANEL" --instances "$INSTANCES" --shots "$SHOTS" --out "$WORK/ref"

echo "== interrupted run (SIGKILL once the journal has records) =="
$REPRO "$PANEL" --instances "$INSTANCES" --shots "$SHOTS" \
    --store "$WORK/store" --out "$WORK/victim" --watch 127.0.0.1:0 &
victim=$!
killed=no
for _ in $(seq 1 200); do
    if ! kill -0 "$victim" 2>/dev/null; then
        break # finished before we could kill it — fine, see header
    fi
    if [ -s "$WORK/store/journal.wal" ]; then
        kill -KILL "$victim"
        killed=yes
        break
    fi
    sleep 0.05
done
wait "$victim" 2>/dev/null || true
echo "victim killed: $killed"

# The --watch heartbeat must survive the kill: it is written by atomic
# rename, so whatever was current when SIGKILL landed is still a
# complete, parseable document.
test -s "$WORK/store/status.json"
grep -q '"schema": "qfab.status.v1"' "$WORK/store/status.json"
echo "status.json heartbeat survived the kill"

echo "== resumed run =="
$REPRO "$PANEL" --instances "$INSTANCES" --shots "$SHOTS" \
    --store "$WORK/store" --resume --out "$WORK/resumed"

cmp "$WORK/ref/$PANEL.csv" "$WORK/resumed/$PANEL.csv"
cmp "$WORK/ref/$PANEL.txt" "$WORK/resumed/$PANEL.txt"
echo "artifacts byte-identical after resume"

echo "== store integrity =="
$REPRO --store-verify "$WORK/store"

echo "kill-and-resume smoke OK"
