//! Quantum error channels.
//!
//! Two families:
//!
//! * [`PauliChannel`] — a probabilistic mixture of Pauli operators. This
//!   covers the paper's depolarizing channels and is exactly the class
//!   that Monte-Carlo trajectory simulation handles by inserting a
//!   sampled Pauli gate after the ideal gate.
//! * [`KrausChannel`] — a general CPTP map given by Kraus operators,
//!   used with the density-matrix engine to validate trajectory
//!   statistics and to model the paper's "future work" error sources
//!   (amplitude damping, phase damping, thermal relaxation).
//!
//! Depolarizing conventions match Qiskit's `depolarizing_error(p, k)`:
//! `E(ρ) = (1 − p·(4^k−1)/4^k)·ρ + p/4^k · Σ_{P≠I} PρP†`, i.e. identity
//! with probability `1 − p(4^k−1)/4^k` and each non-identity k-qubit
//! Pauli with probability `p/4^k`.

use qfab_circuit::Gate;
use qfab_math::complex::{c64, Complex64};

/// Index encoding of single-qubit Paulis within channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// All four Paulis in index order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// Decodes index 0..4.
    pub fn from_index(i: usize) -> Pauli {
        Self::ALL[i]
    }

    /// The gate realizing this Pauli on qubit `q` (`None` for identity —
    /// identities are never inserted).
    pub fn gate(self, q: u32) -> Option<Gate> {
        match self {
            Pauli::I => None,
            Pauli::X => Some(Gate::X(q)),
            Pauli::Y => Some(Gate::Y(q)),
            Pauli::Z => Some(Gate::Z(q)),
        }
    }

    /// The 2×2 matrix, row-major.
    pub fn matrix(self) -> [Complex64; 4] {
        let o = Complex64::ONE;
        let z = Complex64::ZERO;
        match self {
            Pauli::I => [o, z, z, o],
            Pauli::X => [z, o, o, z],
            Pauli::Y => [z, c64(0.0, -1.0), c64(0.0, 1.0), z],
            Pauli::Z => [o, z, z, -o],
        }
    }
}

/// A probabilistic mixture of Pauli operators on 1 or 2 qubits.
///
/// For arity 1 the probability vector has 4 entries indexed by
/// [`Pauli`]; for arity 2 it has 16 entries indexed `a + 4·b` where `a`
/// acts on the gate's first operand and `b` on its second.
#[derive(Clone, Debug, PartialEq)]
pub struct PauliChannel {
    arity: u8,
    probs: Vec<f64>,
}

impl PauliChannel {
    /// Builds a channel from explicit Pauli probabilities (must sum to 1
    /// within 1e-9 and be non-negative).
    pub fn new(arity: u8, probs: Vec<f64>) -> Self {
        assert!(arity == 1 || arity == 2, "arity must be 1 or 2");
        let expect = 4usize.pow(arity as u32);
        assert_eq!(probs.len(), expect, "need {expect} probabilities");
        let total: f64 = probs
            .iter()
            .map(|&p| {
                assert!((0.0..=1.0 + 1e-12).contains(&p), "invalid probability {p}");
                p
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "probabilities sum to {total}");
        Self { arity, probs }
    }

    /// Qiskit-convention single-qubit depolarizing channel with
    /// parameter `p ∈ [0, 4/3]` (identity keeps `1 − 3p/4`).
    pub fn depolarizing_1q(p: f64) -> Self {
        assert!((0.0..=4.0 / 3.0).contains(&p), "p out of range: {p}");
        let e = p / 4.0;
        Self::new(1, vec![1.0 - 3.0 * e, e, e, e])
    }

    /// Qiskit-convention two-qubit depolarizing channel with parameter
    /// `p ∈ [0, 16/15]` (identity keeps `1 − 15p/16`).
    pub fn depolarizing_2q(p: f64) -> Self {
        assert!((0.0..=16.0 / 15.0).contains(&p), "p out of range: {p}");
        let e = p / 16.0;
        let mut probs = vec![e; 16];
        probs[0] = 1.0 - 15.0 * e;
        Self::new(2, probs)
    }

    /// Bit-flip channel: X with probability `p`.
    pub fn bit_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        Self::new(1, vec![1.0 - p, p, 0.0, 0.0])
    }

    /// Phase-flip channel: Z with probability `p`.
    pub fn phase_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        Self::new(1, vec![1.0 - p, 0.0, 0.0, p])
    }

    /// Combined bit-phase flip: Y with probability `p`.
    pub fn bit_phase_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        Self::new(1, vec![1.0 - p, 0.0, p, 0.0])
    }

    /// The Pauli twirl of thermal relaxation over a gate of duration
    /// `t` with times `T1`, `T2` — the closest Pauli channel to
    /// [`KrausChannel::thermal_relaxation`], and therefore the form a
    /// trajectory simulation can use for the paper's deferred thermal
    /// noise source.
    ///
    /// Twirling keeps the Pauli-transfer diagonal `(λ_x, λ_y, λ_z)` =
    /// `(e^{−t/T2}, e^{−t/T2}, e^{−t/T1})` and drops the non-unital
    /// displacement toward |0>, giving
    /// `p_I = (1 + λx + λy + λz)/4`, `p_X = p_Y = (1 − λz)/4`,
    /// `p_Z = (1 + λz − 2λx)/4`.
    pub fn thermal_twirled(t: f64, t1: f64, t2: f64) -> Self {
        assert!(t >= 0.0 && t1 > 0.0 && t2 > 0.0);
        assert!(t2 <= 2.0 * t1, "T2 must be at most 2·T1");
        let lx = (-t / t2).exp();
        let lz = (-t / t1).exp();
        let p_i = (1.0 + 2.0 * lx + lz) / 4.0;
        let p_x = (1.0 - lz) / 4.0;
        let p_z = (1.0 + lz - 2.0 * lx) / 4.0;
        Self::new(1, vec![p_i, p_x, p_x, p_z])
    }

    /// Channel arity (1 or 2).
    pub fn arity(&self) -> u8 {
        self.arity
    }

    /// The Pauli probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability that the channel acts as the identity.
    pub fn identity_prob(&self) -> f64 {
        self.probs[0]
    }

    /// Probability of any non-identity Pauli firing.
    pub fn error_prob(&self) -> f64 {
        1.0 - self.probs[0]
    }

    /// The conditional distribution over non-identity Pauli indices
    /// (index into `probs`, always ≥ 1), given that an error fires.
    /// Returns `(indices, weights)` of the nonzero entries.
    pub fn error_distribution(&self) -> (Vec<usize>, Vec<f64>) {
        let mut idx = Vec::new();
        let mut w = Vec::new();
        for (i, &p) in self.probs.iter().enumerate().skip(1) {
            if p > 0.0 {
                idx.push(i);
                w.push(p);
            }
        }
        (idx, w)
    }

    /// The error gates for Pauli index `i` applied to the gate operands
    /// `qubits` (identity components omitted; empty only for i = 0).
    pub fn gates_for_index(&self, i: usize, qubits: &[u32]) -> Vec<Gate> {
        assert!(i < self.probs.len());
        let mut out = Vec::with_capacity(self.arity as usize);
        match self.arity {
            1 => {
                if let Some(g) = Pauli::from_index(i).gate(qubits[0]) {
                    out.push(g);
                }
            }
            2 => {
                let (a, b) = (i & 3, i >> 2);
                if let Some(g) = Pauli::from_index(a).gate(qubits[0]) {
                    out.push(g);
                }
                if let Some(g) = Pauli::from_index(b).gate(qubits[1]) {
                    out.push(g);
                }
            }
            _ => unreachable!(),
        }
        out
    }

    /// The equivalent Kraus representation (each Pauli scaled by the
    /// square root of its probability), for density-matrix validation.
    pub fn to_kraus(&self) -> KrausChannel {
        let ld = 1usize << self.arity;
        let mut ops = Vec::new();
        for (i, &p) in self.probs.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let scale = p.sqrt();
            let mat = match self.arity {
                1 => Pauli::from_index(i).matrix().to_vec(),
                2 => {
                    // Local index a acts on operand 0 = least significant
                    // local bit (workspace convention).
                    let a = Pauli::from_index(i & 3).matrix();
                    let b = Pauli::from_index(i >> 2).matrix();
                    let mut m = vec![Complex64::ZERO; 16];
                    for r in 0..4usize {
                        for c in 0..4usize {
                            let (ra, ca) = (r & 1, c & 1);
                            let (rb, cb) = (r >> 1, c >> 1);
                            m[r * 4 + c] = a[ra * 2 + ca] * b[rb * 2 + cb];
                        }
                    }
                    m
                }
                _ => unreachable!(),
            };
            ops.push(mat.into_iter().map(|z| z * scale).collect());
        }
        KrausChannel::new(ld, ops)
    }
}

/// A general CPTP channel as Kraus operators over `dim`-dimensional
/// local space (row-major matrices).
#[derive(Clone, Debug)]
pub struct KrausChannel {
    dim: usize,
    ops: Vec<Vec<Complex64>>,
}

impl KrausChannel {
    /// Builds a channel from Kraus operators, checking the completeness
    /// relation `Σ K†K = I` within `1e-9`.
    pub fn new(dim: usize, ops: Vec<Vec<Complex64>>) -> Self {
        assert!(!ops.is_empty(), "channel needs at least one Kraus operator");
        for k in &ops {
            assert_eq!(k.len(), dim * dim, "Kraus dimension mismatch");
        }
        // Completeness: Σ K†K = I.
        let mut acc = vec![Complex64::ZERO; dim * dim];
        for k in &ops {
            for r in 0..dim {
                for c in 0..dim {
                    let mut s = Complex64::ZERO;
                    for m in 0..dim {
                        s += k[m * dim + r].conj() * k[m * dim + c];
                    }
                    acc[r * dim + c] += s;
                }
            }
        }
        for r in 0..dim {
            for c in 0..dim {
                let want = if r == c {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                assert!(
                    acc[r * dim + c].approx_eq(want, 1e-9),
                    "Kraus completeness violated at ({r},{c}): {}",
                    acc[r * dim + c]
                );
            }
        }
        Self { dim, ops }
    }

    /// Local dimension (2 for 1q, 4 for 2q).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The Kraus operators.
    pub fn ops(&self) -> &[Vec<Complex64>] {
        &self.ops
    }

    /// Amplitude damping with decay probability `γ` (energy relaxation
    /// toward |0>). One of the paper's deferred error sources.
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma));
        let z = Complex64::ZERO;
        let k0 = vec![
            Complex64::ONE,
            z,
            z,
            Complex64::from_real((1.0 - gamma).sqrt()),
        ];
        let k1 = vec![z, Complex64::from_real(gamma.sqrt()), z, z];
        Self::new(2, vec![k0, k1])
    }

    /// Phase damping with parameter `λ` (pure dephasing).
    pub fn phase_damping(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda));
        let z = Complex64::ZERO;
        let k0 = vec![
            Complex64::ONE,
            z,
            z,
            Complex64::from_real((1.0 - lambda).sqrt()),
        ];
        let k1 = vec![z, z, z, Complex64::from_real(lambda.sqrt())];
        Self::new(2, vec![k0, k1])
    }

    /// Thermal relaxation over a gate of duration `t` with relaxation
    /// times `t1`, `t2` (`t2 ≤ 2·t1`), relaxing toward |0> (zero
    /// excited-state population). Composition of amplitude damping with
    /// rate `1 − e^{−t/T1}` and extra pure dephasing so the total
    /// coherence decay is `e^{−t/T2}`.
    pub fn thermal_relaxation(t: f64, t1: f64, t2: f64) -> Self {
        assert!(t >= 0.0 && t1 > 0.0 && t2 > 0.0);
        assert!(t2 <= 2.0 * t1, "T2 must be at most 2·T1");
        let gamma = 1.0 - (-t / t1).exp();
        // Residual dephasing after amplitude damping contributes
        // e^{−t/(2T1)} of coherence decay; the rest comes from pure
        // phase damping with parameter λ.
        let coher = (-t / t2).exp() / (-t / (2.0 * t1)).exp();
        let lambda = (1.0 - coher * coher).clamp(0.0, 1.0);
        // Compose: K = {K_pd · K_ad} over all pairs.
        let ad = Self::amplitude_damping(gamma);
        let pd = Self::phase_damping(lambda);
        let mut ops = Vec::new();
        for a in pd.ops() {
            for b in ad.ops() {
                // 2×2 product a·b.
                let mut m = vec![Complex64::ZERO; 4];
                for r in 0..2 {
                    for c in 0..2 {
                        let mut s = Complex64::ZERO;
                        for k in 0..2 {
                            s += a[r * 2 + k] * b[k * 2 + c];
                        }
                        m[r * 2 + c] = s;
                    }
                }
                ops.push(m);
            }
        }
        Self::new(2, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn depolarizing_1q_probabilities() {
        let ch = PauliChannel::depolarizing_1q(0.01);
        assert_eq!(ch.arity(), 1);
        assert!((ch.identity_prob() - (1.0 - 0.0075)).abs() < TOL);
        assert!((ch.error_prob() - 0.0075).abs() < TOL);
        for &p in &ch.probs()[1..] {
            assert!((p - 0.0025).abs() < TOL);
        }
    }

    #[test]
    fn depolarizing_2q_probabilities() {
        let ch = PauliChannel::depolarizing_2q(0.016);
        assert_eq!(ch.arity(), 2);
        assert!((ch.identity_prob() - (1.0 - 0.015)).abs() < TOL);
        assert_eq!(ch.probs().len(), 16);
        for &p in &ch.probs()[1..] {
            assert!((p - 0.001).abs() < TOL);
        }
    }

    #[test]
    fn fully_depolarizing_is_uniform() {
        // p = 1 gives the completely depolarizing channel: all four
        // Paulis equally likely.
        let ch = PauliChannel::depolarizing_1q(1.0);
        for &p in ch.probs() {
            assert!((p - 0.25).abs() < TOL);
        }
        // The extreme p = 4/3 removes the identity entirely.
        let ch = PauliChannel::depolarizing_1q(4.0 / 3.0);
        assert!(ch.identity_prob().abs() < TOL);
        for &p in &ch.probs()[1..] {
            assert!((p - 1.0 / 3.0).abs() < TOL);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn depolarizing_rejects_bad_p() {
        PauliChannel::depolarizing_1q(1.5);
    }

    #[test]
    fn flip_channels() {
        let bf = PauliChannel::bit_flip(0.2);
        assert_eq!(bf.probs(), &[0.8, 0.2, 0.0, 0.0]);
        let pf = PauliChannel::phase_flip(0.3);
        assert_eq!(pf.probs(), &[0.7, 0.0, 0.0, 0.3]);
        let ypf = PauliChannel::bit_phase_flip(0.1);
        assert_eq!(ypf.probs(), &[0.9, 0.0, 0.1, 0.0]);
    }

    #[test]
    fn error_distribution_excludes_identity_and_zeros() {
        let ch = PauliChannel::bit_flip(0.25);
        let (idx, w) = ch.error_distribution();
        assert_eq!(idx, vec![1]);
        assert_eq!(w, vec![0.25]);
        let dep = PauliChannel::depolarizing_2q(0.016);
        let (idx, w) = dep.error_distribution();
        assert_eq!(idx.len(), 15);
        assert!(w.iter().all(|&x| (x - 0.001).abs() < TOL));
    }

    #[test]
    fn gates_for_index_1q() {
        let ch = PauliChannel::depolarizing_1q(0.1);
        assert!(ch.gates_for_index(0, &[5]).is_empty());
        assert_eq!(ch.gates_for_index(1, &[5]), vec![Gate::X(5)]);
        assert_eq!(ch.gates_for_index(2, &[5]), vec![Gate::Y(5)]);
        assert_eq!(ch.gates_for_index(3, &[5]), vec![Gate::Z(5)]);
    }

    #[test]
    fn gates_for_index_2q() {
        let ch = PauliChannel::depolarizing_2q(0.1);
        // Index 1 = X on first operand only.
        assert_eq!(ch.gates_for_index(1, &[2, 7]), vec![Gate::X(2)]);
        // Index 4 = X on second operand only.
        assert_eq!(ch.gates_for_index(4, &[2, 7]), vec![Gate::X(7)]);
        // Index 1 + 4·3 = 13 = X on first, Z on second.
        assert_eq!(
            ch.gates_for_index(13, &[2, 7]),
            vec![Gate::X(2), Gate::Z(7)]
        );
        // Identity-identity inserts nothing.
        assert!(ch.gates_for_index(0, &[2, 7]).is_empty());
    }

    #[test]
    fn pauli_channel_kraus_completeness() {
        // KrausChannel::new asserts completeness internally.
        let _ = PauliChannel::depolarizing_1q(0.05).to_kraus();
        let _ = PauliChannel::depolarizing_2q(0.05).to_kraus();
        let _ = PauliChannel::bit_flip(0.5).to_kraus();
    }

    #[test]
    fn thermal_twirl_matches_exact_channel_diagonally() {
        // The twirled channel must reproduce the exact thermal channel's
        // Pauli-transfer diagonal: check by evolving the X/Y/Z
        // eigenstates' Bloch components through both and comparing.
        let (t, t1, t2) = (0.3, 1.0, 0.8);
        let twirled = PauliChannel::thermal_twirled(t, t1, t2);
        // λ_z from |0><0|: exact channel keeps p0' = 1 for |0>... use
        // |1>: p1 decays as e^{−t/T1}; twirled: p1' = 1 − (p_X + p_Y)
        // applied to |1> flips with prob p_X + p_Y... verify z-component:
        // z' = λz·z for twirled with z = −1 (state |1>).
        let lz = (-t / t1).exp();
        let p_flip = twirled.probs()[1] + twirled.probs()[2];
        // z' = (1 − 2·p_flip)·z  ⇒  λz = 1 − 2 p_flip.
        assert!((1.0 - 2.0 * p_flip - lz).abs() < 1e-12);
        // λ_x = 1 − 2(p_Y + p_Z).
        let lx = (-t / t2).exp();
        let p_xflip = twirled.probs()[2] + twirled.probs()[3];
        assert!((1.0 - 2.0 * p_xflip - lx).abs() < 1e-12);
        // Valid distribution.
        assert!(twirled.probs().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn thermal_twirl_identity_at_zero_time() {
        let ch = PauliChannel::thermal_twirled(0.0, 1.0, 1.0);
        assert!((ch.identity_prob() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kraus_channels_satisfy_completeness() {
        let _ = KrausChannel::amplitude_damping(0.3);
        let _ = KrausChannel::phase_damping(0.4);
        let _ = KrausChannel::thermal_relaxation(100e-9, 50e-6, 70e-6);
        let _ = KrausChannel::thermal_relaxation(100e-9, 50e-6, 100e-6);
    }

    #[test]
    #[should_panic(expected = "T2 must be at most")]
    fn thermal_relaxation_rejects_t2_above_2t1() {
        KrausChannel::thermal_relaxation(1.0, 1.0, 2.5);
    }

    #[test]
    #[should_panic(expected = "probabilities sum")]
    fn channel_rejects_bad_sum() {
        PauliChannel::new(1, vec![0.5, 0.1, 0.1, 0.1]);
    }

    #[test]
    fn pauli_matrices_are_correct() {
        use qfab_circuit::gate::GateMatrix;
        for (p, g) in [
            (Pauli::X, Gate::X(0)),
            (Pauli::Y, Gate::Y(0)),
            (Pauli::Z, Gate::Z(0)),
        ] {
            let GateMatrix::One(m) = g.matrix() else {
                unreachable!()
            };
            let flat = p.matrix();
            for r in 0..2 {
                for c in 0..2 {
                    assert!(m.m[r][c].approx_eq(flat[r * 2 + c], TOL));
                }
            }
        }
    }
}
