//! Monte-Carlo trajectory sampling of gate errors.
//!
//! A Pauli-mixture noise model turns one noisy execution ("shot") into:
//! the ideal circuit, plus a sparse set of Pauli gates inserted after
//! the gates whose channel fired. [`TrajectoryPlan`] precomputes, once
//! per circuit × model:
//!
//! * which gate indices carry a channel and with what error rate,
//! * the closed-form probability `p_clean = Π(1−λ_g)` that a shot has
//!   **no** error at all,
//! * prefix products enabling exact O(gates) sampling of a trajectory
//!   *conditioned on at least one error* — no rejection of whole
//!   simulations.
//!
//! The evaluation pipeline splits `shots` into `Binomial(shots,
//! p_clean)` clean shots (which all share one noiseless simulation) and
//! noisy shots (each sampling a conditioned trajectory and one
//! measurement). This is exactly equivalent to per-shot Bernoulli
//! sampling — validated against both the unconditional sampler and
//! exact density-matrix evolution in the tests below.

use crate::channel::PauliChannel;
use crate::model::NoiseModel;
use qfab_circuit::Circuit;
use qfab_math::rng::Xoshiro256StarStar;
use qfab_math::sampling::sample_weighted_once;
use qfab_sim::Insertion;

/// A noise site: a gate index that carries an error channel.
#[derive(Clone, Debug)]
struct Site {
    gate_index: usize,
    /// Operand qubits of the gate (channel Paulis land here).
    qubits: Vec<u32>,
    /// Which of the plan's channels applies (index into `channels`).
    channel: usize,
}

/// Read-only view of one noise site, for provenance and attribution.
///
/// Sites are ordered by `gate_index` (circuit order), so a fired site
/// can be recovered from a sampled [`Insertion`] list by matching
/// `after_gate` against `gate_index` — the sampler itself never needs
/// to record anything.
#[derive(Clone, Copy, Debug)]
pub struct SiteInfo<'a> {
    /// Index of the circuit gate carrying the channel.
    pub gate_index: usize,
    /// Operand qubits of that gate (channel Paulis land here).
    pub qubits: &'a [u32],
    /// Index into the plan's channel table (see
    /// [`TrajectoryPlan::channel`]).
    pub channel: usize,
}

/// Precomputed trajectory-sampling tables for one circuit × model pair.
#[derive(Clone, Debug)]
pub struct TrajectoryPlan {
    sites: Vec<Site>,
    channels: Vec<ChannelTables>,
    /// `prefix_clean[i]` = probability that sites `0..i` all stay clean.
    prefix_clean: Vec<f64>,
    clean_prob: f64,
}

#[derive(Clone, Debug)]
struct ChannelTables {
    channel: PauliChannel,
    error_prob: f64,
    /// Non-identity Pauli indices and conditional weights.
    err_indices: Vec<usize>,
    err_weights: Vec<f64>,
}

impl TrajectoryPlan {
    /// Builds the plan. The circuit must already be transpiled to 1q/2q
    /// gates (the model panics on 3-qubit gates, like the paper's).
    pub fn new(circuit: &Circuit, model: &NoiseModel) -> Self {
        let trace_span = qfab_telemetry::trace::span("noise.plan.build");
        let mut channels: Vec<ChannelTables> = Vec::new();
        let mut sites = Vec::new();
        for (i, gate) in circuit.gates().iter().enumerate() {
            let Some(ch) = model.channel_for(gate) else {
                continue;
            };
            if ch.error_prob() == 0.0 {
                continue;
            }
            let channel = match channels.iter().position(|t| &t.channel == ch) {
                Some(idx) => idx,
                None => {
                    let (err_indices, err_weights) = ch.error_distribution();
                    channels.push(ChannelTables {
                        channel: ch.clone(),
                        error_prob: ch.error_prob(),
                        err_indices,
                        err_weights,
                    });
                    channels.len() - 1
                }
            };
            sites.push(Site {
                gate_index: i,
                qubits: gate.qubits().as_slice().to_vec(),
                channel,
            });
        }
        let mut prefix_clean = Vec::with_capacity(sites.len() + 1);
        let mut acc = 1.0f64;
        prefix_clean.push(1.0);
        for s in &sites {
            acc *= 1.0 - channels[s.channel].error_prob;
            prefix_clean.push(acc);
        }
        trace_span.end_with_args(&[(
            "sites",
            qfab_telemetry::trace::ArgValue::U64(sites.len() as u64),
        )]);
        Self {
            sites,
            channels,
            prefix_clean,
            clean_prob: acc,
        }
    }

    /// Probability that a shot sees no error anywhere.
    pub fn clean_prob(&self) -> f64 {
        self.clean_prob
    }

    /// Number of noise sites (gates carrying a channel).
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Read-only views of every noise site, in circuit order.
    pub fn sites(&self) -> impl Iterator<Item = SiteInfo<'_>> + '_ {
        self.sites.iter().map(|s| SiteInfo {
            gate_index: s.gate_index,
            qubits: &s.qubits,
            channel: s.channel,
        })
    }

    /// Number of distinct channels referenced by the sites.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The channel behind index `idx` of [`SiteInfo::channel`].
    pub fn channel(&self, idx: usize) -> &PauliChannel {
        &self.channels[idx].channel
    }

    /// Samples a trajectory by independent per-site Bernoulli draws
    /// (may be empty). Reference semantics; the pipeline prefers
    /// [`Self::sample_noisy`] plus the binomial clean split.
    pub fn sample_unconditional(&self, rng: &mut Xoshiro256StarStar) -> Vec<Insertion> {
        let mut out = Vec::new();
        for site in &self.sites {
            let t = &self.channels[site.channel];
            if rng.next_f64() < t.error_prob {
                self.push_error(&mut out, site, t, rng);
            }
        }
        out
    }

    /// Samples a trajectory conditioned on **at least one** error, with
    /// the exact conditional distribution:
    ///
    /// 1. the first erroring site is drawn from
    ///    `P(first = i) = prefix_clean[i] · λ_i / (1 − p_clean)`;
    /// 2. sites after it fire independently at their native rates.
    ///
    /// Panics if the plan has no sites or a zero total error rate.
    pub fn sample_noisy(&self, rng: &mut Xoshiro256StarStar) -> Vec<Insertion> {
        assert!(
            self.clean_prob < 1.0,
            "cannot sample a noisy trajectory from a noiseless plan"
        );
        let mut out = Vec::new();
        // Draw the first erroring site by inverse CDF over the exact
        // first-error distribution.
        let total = 1.0 - self.clean_prob;
        let mut u = rng.next_f64() * total;
        let mut first = self.sites.len() - 1;
        for (i, site) in self.sites.iter().enumerate() {
            let p_first = self.prefix_clean[i] * self.channels[site.channel].error_prob;
            if u < p_first {
                first = i;
                break;
            }
            u -= p_first;
        }
        let site = &self.sites[first];
        let t = &self.channels[site.channel];
        self.push_error(&mut out, site, t, rng);
        // Everything after the first error is unconditioned.
        for site in &self.sites[first + 1..] {
            let t = &self.channels[site.channel];
            if rng.next_f64() < t.error_prob {
                self.push_error(&mut out, site, t, rng);
            }
        }
        if let Some((trajectories, insertions)) = telem_metrics() {
            trajectories.incr();
            insertions.record(out.len() as u64);
        }
        out
    }

    fn push_error(
        &self,
        out: &mut Vec<Insertion>,
        site: &Site,
        tables: &ChannelTables,
        rng: &mut Xoshiro256StarStar,
    ) {
        let which = sample_weighted_once(&tables.err_weights, rng);
        let pauli_index = tables.err_indices[which];
        for gate in tables.channel.gates_for_index(pauli_index, &site.qubits) {
            out.push(Insertion {
                after_gate: site.gate_index,
                gate,
            });
        }
    }
}

/// Cached telemetry handles — `sample_noisy` runs once per noisy shot,
/// so the registry lookup must not sit on that path.
#[inline]
fn telem_metrics() -> Option<(
    &'static qfab_telemetry::Counter,
    &'static qfab_telemetry::Histogram,
)> {
    if !qfab_telemetry::enabled() {
        return None;
    }
    static CACHE: std::sync::OnceLock<(
        &'static qfab_telemetry::Counter,
        &'static qfab_telemetry::Histogram,
    )> = std::sync::OnceLock::new();
    Some(*CACHE.get_or_init(|| {
        (
            qfab_telemetry::counter("noise.trajectories"),
            qfab_telemetry::histogram("noise.trajectory.insertions"),
        )
    }))
}

/// Convenience: splits `shots` into (clean, noisy) according to the
/// plan's clean probability.
pub struct TrajectorySampler;

impl TrajectorySampler {
    /// Samples how many of `shots` executions are error-free.
    pub fn split_clean_shots(
        plan: &TrajectoryPlan,
        shots: u64,
        rng: &mut Xoshiro256StarStar,
    ) -> (u64, u64) {
        let clean = qfab_math::sampling::sample_binomial(shots, plan.clean_prob(), rng);
        (clean, shots - clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_circuit::Gate;
    use qfab_sim::{CheckpointTable, DensityMatrix, StateVector};

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(seed)
    }

    fn small_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.3, 1).cx(1, 2).h(2).x(0);
        c
    }

    #[test]
    fn plan_counts_sites_correctly() {
        let c = small_circuit();
        let m1 = NoiseModel::only_1q_depolarizing(0.01);
        let plan1 = TrajectoryPlan::new(&c, &m1);
        assert_eq!(plan1.num_sites(), 4); // h, rz, h, x

        let m2 = NoiseModel::only_2q_depolarizing(0.02);
        let plan2 = TrajectoryPlan::new(&c, &m2);
        assert_eq!(plan2.num_sites(), 2); // both cx

        let both = NoiseModel::depolarizing(0.01, 0.02);
        assert_eq!(TrajectoryPlan::new(&c, &both).num_sites(), 6);

        let ideal = TrajectoryPlan::new(&c, &NoiseModel::ideal());
        assert_eq!(ideal.num_sites(), 0);
        assert_eq!(ideal.clean_prob(), 1.0);
    }

    #[test]
    fn clean_prob_matches_model() {
        let c = small_circuit();
        let m = NoiseModel::depolarizing(0.01, 0.02);
        let plan = TrajectoryPlan::new(&c, &m);
        assert!((plan.clean_prob() - m.clean_shot_probability(&c)).abs() < 1e-12);
    }

    #[test]
    fn unconditional_error_rate_statistics() {
        let c = small_circuit();
        let m = NoiseModel::depolarizing(0.05, 0.1);
        let plan = TrajectoryPlan::new(&c, &m);
        let mut r = rng(1);
        let trials = 50_000;
        let empty = (0..trials)
            .filter(|_| plan.sample_unconditional(&mut r).is_empty())
            .count();
        let rate = empty as f64 / trials as f64;
        assert!(
            (rate - plan.clean_prob()).abs() < 0.01,
            "empty rate {rate} vs clean prob {}",
            plan.clean_prob()
        );
    }

    #[test]
    fn conditioned_sampler_never_returns_empty() {
        let c = small_circuit();
        let plan = TrajectoryPlan::new(&c, &NoiseModel::depolarizing(0.01, 0.01));
        let mut r = rng(2);
        for _ in 0..2000 {
            let t = plan.sample_noisy(&mut r);
            assert!(!t.is_empty());
            // Insertions are sorted by construction.
            assert!(t.windows(2).all(|w| w[0].after_gate <= w[1].after_gate));
        }
    }

    #[test]
    fn conditioned_matches_unconditional_given_nonempty() {
        // The distribution of the first error position must agree
        // between (a) unconditional sampling filtered to non-empty and
        // (b) the conditioned sampler.
        let c = small_circuit();
        let plan = TrajectoryPlan::new(&c, &NoiseModel::depolarizing(0.08, 0.15));
        let mut r = rng(3);
        let trials = 40_000;
        let mut hist_a = vec![0usize; c.len()];
        let mut got_a = 0usize;
        while got_a < trials {
            let t = plan.sample_unconditional(&mut r);
            if let Some(first) = t.first() {
                hist_a[first.after_gate] += 1;
                got_a += 1;
            }
        }
        let mut hist_b = vec![0usize; c.len()];
        for _ in 0..trials {
            let t = plan.sample_noisy(&mut r);
            hist_b[t[0].after_gate] += 1;
        }
        for i in 0..c.len() {
            let (a, b) = (hist_a[i] as f64, hist_b[i] as f64);
            let scale = (a.max(b)).max(200.0);
            assert!(
                (a - b).abs() < 5.0 * scale.sqrt(),
                "first-error histogram mismatch at gate {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "noiseless plan")]
    fn conditioned_sampler_rejects_ideal_plan() {
        let c = small_circuit();
        let plan = TrajectoryPlan::new(&c, &NoiseModel::ideal());
        let _ = plan.sample_noisy(&mut rng(4));
    }

    #[test]
    fn split_clean_shots_statistics() {
        let c = small_circuit();
        let plan = TrajectoryPlan::new(&c, &NoiseModel::depolarizing(0.02, 0.05));
        let mut r = rng(5);
        let shots = 2048u64;
        let mut total_clean = 0u64;
        let reps = 200;
        for _ in 0..reps {
            let (clean, noisy) = TrajectorySampler::split_clean_shots(&plan, shots, &mut r);
            assert_eq!(clean + noisy, shots);
            total_clean += clean;
        }
        let rate = total_clean as f64 / (shots * reps) as f64;
        assert!((rate - plan.clean_prob()).abs() < 0.01, "clean rate {rate}");
    }

    #[test]
    fn insertions_are_paulis_on_gate_operands() {
        let c = small_circuit();
        let plan = TrajectoryPlan::new(&c, &NoiseModel::depolarizing(0.3, 0.5));
        let mut r = rng(6);
        for _ in 0..500 {
            for ins in plan.sample_noisy(&mut r) {
                assert!(matches!(ins.gate, Gate::X(_) | Gate::Y(_) | Gate::Z(_)));
                // The inserted qubit belongs to the gate it follows.
                let host = &c.gates()[ins.after_gate];
                let q = ins.gate.qubits()[0];
                assert!(host.qubits().as_slice().contains(&q));
            }
        }
    }

    /// The decisive correctness test: Monte-Carlo trajectories must
    /// converge to the exact density-matrix channel evolution.
    #[test]
    fn trajectories_converge_to_exact_channel() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(0.4, 0).cx(0, 1);
        let model = NoiseModel::depolarizing(0.08, 0.12);

        // Exact: density matrix with Kraus channels after each gate.
        let mut rho = DensityMatrix::basis_state(2, 0);
        for g in c.gates() {
            rho.apply_gate(g);
            if let Some(ch) = model.channel_for(g) {
                let kraus = ch.to_kraus();
                rho.apply_kraus(g.qubits().as_slice(), kraus.ops());
            }
        }
        let exact = rho.probabilities();

        // Monte-Carlo: average over trajectories (clean + noisy split).
        let plan = TrajectoryPlan::new(&c, &model);
        let init = StateVector::zero_state(2);
        let table = CheckpointTable::build(c.clone(), &init, 2);
        let mut r = rng(7);
        let trials = 60_000u64;
        let clean = qfab_math::sampling::sample_binomial(trials, plan.clean_prob(), &mut r);
        let mut acc = [0.0f64; 4];
        let clean_probs = table.final_state().probabilities();
        for (a, p) in acc.iter_mut().zip(&clean_probs) {
            *a += p * clean as f64;
        }
        for _ in 0..(trials - clean) {
            let t = plan.sample_noisy(&mut r);
            let state = table.run_with_insertions(&t);
            for (a, p) in acc.iter_mut().zip(state.probabilities()) {
                *a += p;
            }
        }
        for (i, a) in acc.iter().enumerate() {
            let mc = a / trials as f64;
            assert!(
                (mc - exact[i]).abs() < 0.01,
                "outcome {i}: MC {mc} vs exact {}",
                exact[i]
            );
        }
    }
}
