//! Noise models: binding channels to gates.
//!
//! Mirrors how the paper configures Qiskit: a depolarizing channel is
//! attached to *every* single-qubit gate and/or *every* two-qubit gate
//! of the transpiled circuit, and nothing else (no reset, measurement,
//! or connectivity noise). Gate errors fire *after* the ideal gate.

use crate::channel::PauliChannel;
use crate::readout::ReadoutError;
use qfab_circuit::{Circuit, Gate};

/// A per-gate-arity noise model.
#[derive(Clone, Debug, Default)]
pub struct NoiseModel {
    one_qubit: Option<PauliChannel>,
    two_qubit: Option<PauliChannel>,
    readout: Option<ReadoutError>,
    /// When set, identity gates also suffer the 1q channel (off by
    /// default: the paper's circuits contain no explicit idles).
    noisy_identity: bool,
}

impl NoiseModel {
    /// The noiseless model.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// The paper's "1q-gate error only" model: depolarizing with
    /// probability `p` after every single-qubit gate.
    pub fn only_1q_depolarizing(p: f64) -> Self {
        Self {
            one_qubit: Some(PauliChannel::depolarizing_1q(p)),
            ..Self::default()
        }
    }

    /// The paper's "2q-gate error only" model: depolarizing with
    /// probability `p` after every two-qubit gate.
    pub fn only_2q_depolarizing(p: f64) -> Self {
        Self {
            two_qubit: Some(PauliChannel::depolarizing_2q(p)),
            ..Self::default()
        }
    }

    /// Depolarizing on both gate classes (a "future work" combination in
    /// the paper, supported here).
    pub fn depolarizing(p1: f64, p2: f64) -> Self {
        Self {
            one_qubit: Some(PauliChannel::depolarizing_1q(p1)),
            two_qubit: Some(PauliChannel::depolarizing_2q(p2)),
            ..Self::default()
        }
    }

    /// Sets an explicit 1q channel.
    pub fn with_1q_channel(mut self, ch: PauliChannel) -> Self {
        assert_eq!(ch.arity(), 1, "1q slot needs an arity-1 channel");
        self.one_qubit = Some(ch);
        self
    }

    /// Sets an explicit 2q channel.
    pub fn with_2q_channel(mut self, ch: PauliChannel) -> Self {
        assert_eq!(ch.arity(), 2, "2q slot needs an arity-2 channel");
        self.two_qubit = Some(ch);
        self
    }

    /// Adds classical readout error.
    pub fn with_readout(mut self, ro: ReadoutError) -> Self {
        self.readout = Some(ro);
        self
    }

    /// Makes explicit identity gates noisy as well.
    pub fn with_noisy_identity(mut self, on: bool) -> Self {
        self.noisy_identity = on;
        self
    }

    /// The channel attached to `gate`, if any.
    ///
    /// Panics on 3-qubit gates: the model (like the paper's) is defined
    /// over transpiled circuits only.
    pub fn channel_for(&self, gate: &Gate) -> Option<&PauliChannel> {
        match gate.arity() {
            1 => {
                if matches!(gate, Gate::I(_)) && !self.noisy_identity {
                    None
                } else {
                    self.one_qubit.as_ref()
                }
            }
            2 => self.two_qubit.as_ref(),
            _ => panic!("noise model applies to transpiled circuits; found 3-qubit gate {gate}"),
        }
    }

    /// The configured readout error, if any.
    pub fn readout(&self) -> Option<&ReadoutError> {
        self.readout.as_ref()
    }

    /// True when no channel is configured anywhere.
    pub fn is_ideal(&self) -> bool {
        self.one_qubit.is_none() && self.two_qubit.is_none() && self.readout.is_none()
    }

    /// Probability that an entire execution of `circuit` sees no gate
    /// error at all: `Π_g (1 − λ_g)`.
    pub fn clean_shot_probability(&self, circuit: &Circuit) -> f64 {
        circuit
            .gates()
            .iter()
            .map(|g| self.channel_for(g).map_or(1.0, |ch| ch.identity_prob()))
            .product()
    }

    /// Expected number of error events over one execution of `circuit`.
    pub fn expected_errors(&self, circuit: &Circuit) -> f64 {
        circuit
            .gates()
            .iter()
            .map(|g| self.channel_for(g).map_or(0.0, |ch| ch.error_prob()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_model_attaches_nothing() {
        let m = NoiseModel::ideal();
        assert!(m.is_ideal());
        assert!(m.channel_for(&Gate::H(0)).is_none());
        assert!(m
            .channel_for(&Gate::Cx {
                control: 0,
                target: 1
            })
            .is_none());
    }

    #[test]
    fn only_1q_model_targets_1q_gates() {
        let m = NoiseModel::only_1q_depolarizing(0.01);
        assert!(m.channel_for(&Gate::H(0)).is_some());
        assert!(m.channel_for(&Gate::Rz(0, 0.5)).is_some());
        assert!(m
            .channel_for(&Gate::Cx {
                control: 0,
                target: 1
            })
            .is_none());
    }

    #[test]
    fn only_2q_model_targets_2q_gates() {
        let m = NoiseModel::only_2q_depolarizing(0.02);
        assert!(m.channel_for(&Gate::H(0)).is_none());
        assert!(m
            .channel_for(&Gate::Cx {
                control: 0,
                target: 1
            })
            .is_some());
        assert!(m
            .channel_for(&Gate::Cphase {
                control: 0,
                target: 1,
                theta: 0.3
            })
            .is_some());
    }

    #[test]
    fn identity_gates_are_noiseless_by_default() {
        let m = NoiseModel::only_1q_depolarizing(0.01);
        assert!(m.channel_for(&Gate::I(0)).is_none());
        let m = m.with_noisy_identity(true);
        assert!(m.channel_for(&Gate::I(0)).is_some());
    }

    #[test]
    #[should_panic(expected = "3-qubit gate")]
    fn three_qubit_gates_rejected() {
        let m = NoiseModel::ideal();
        let _ = m.channel_for(&Gate::Ccx {
            c0: 0,
            c1: 1,
            target: 2,
        });
    }

    #[test]
    fn clean_shot_probability_products() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let m = NoiseModel::depolarizing(0.01, 0.02);
        let p1 = 1.0 - 0.01 * 3.0 / 4.0;
        let p2 = 1.0 - 0.02 * 15.0 / 16.0;
        let expect = p1 * p1 * p2;
        assert!((m.clean_shot_probability(&c) - expect).abs() < 1e-12);
        // Only-2q model ignores the H gates.
        let m2 = NoiseModel::only_2q_depolarizing(0.02);
        assert!((m2.clean_shot_probability(&c) - p2).abs() < 1e-12);
        // Ideal model: always clean.
        assert_eq!(NoiseModel::ideal().clean_shot_probability(&c), 1.0);
    }

    #[test]
    fn expected_errors_sum() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(1);
        let m = NoiseModel::depolarizing(0.01, 0.02);
        let expect = 2.0 * (0.01 * 0.75) + 0.02 * 15.0 / 16.0;
        assert!((m.expected_errors(&c) - expect).abs() < 1e-12);
    }

    #[test]
    fn builder_with_custom_channels() {
        let m = NoiseModel::ideal()
            .with_1q_channel(PauliChannel::bit_flip(0.1))
            .with_2q_channel(PauliChannel::depolarizing_2q(0.05));
        assert!(!m.is_ideal());
        let ch = m.channel_for(&Gate::X(0)).unwrap();
        assert_eq!(ch.probs()[1], 0.1);
    }

    #[test]
    #[should_panic(expected = "arity-1 channel")]
    fn wrong_arity_channel_rejected() {
        let _ = NoiseModel::ideal().with_1q_channel(PauliChannel::depolarizing_2q(0.1));
    }
}
