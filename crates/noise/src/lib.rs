#![warn(missing_docs)]

//! Tunable noise models and Monte-Carlo trajectory sampling.
//!
//! The paper isolates two error sources — depolarizing error on
//! single-qubit gates and on two-qubit gates — with everything else
//! (reset, measurement, connectivity) switched off. This crate builds
//! that model, plus the sources the paper defers to future work, from
//! first principles:
//!
//! * [`channel`] — quantum error channels. Pauli-mixture channels
//!   (depolarizing, bit/phase flip) carry both a trajectory form (sample
//!   a Pauli, insert it after the gate) and a Kraus form; purely
//!   non-unitary channels (amplitude/phase damping, thermal relaxation)
//!   carry Kraus forms for exact density-matrix evolution.
//! * [`model`] — a [`NoiseModel`] binds channels to gate arities exactly
//!   like Qiskit's `depolarizing_error(p, k)` attachments in the paper:
//!   every 1q gate gets the 1q channel, every CX gets the 2q channel.
//! * [`trajectory`] — per-shot Monte-Carlo sampling of error insertions.
//!   Includes the *conditioned* sampler used by the evaluation pipeline:
//!   the probability that a shot is error-free is computed in closed
//!   form (so those shots share one noiseless simulation), and noisy
//!   shots sample their insertion set conditioned on at least one error,
//!   exactly — no rejection of whole simulations.
//! * [`readout`] — classical measurement (readout) error applied to
//!   sampled bitstrings.

pub mod channel;
pub mod model;
pub mod readout;
pub mod trajectory;

pub use channel::{KrausChannel, PauliChannel};
pub use model::NoiseModel;
pub use readout::ReadoutError;
pub use trajectory::{SiteInfo, TrajectoryPlan, TrajectorySampler};
