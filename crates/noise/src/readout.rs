//! Classical readout (measurement) error.
//!
//! One of the error sources the paper defers to future work; included
//! here for completeness. Applied *after* sampling: each measured bit
//! flips `0→1` with probability `p01` and `1→0` with probability `p10`,
//! independently per qubit — the standard symmetric-or-asymmetric
//! confusion-matrix model.

use qfab_math::rng::Xoshiro256StarStar;

/// Independent per-qubit bit-flip readout error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadoutError {
    /// Probability a true 0 is read as 1.
    pub p01: f64,
    /// Probability a true 1 is read as 0.
    pub p10: f64,
}

impl ReadoutError {
    /// Symmetric readout error: both flip directions share `p`.
    pub fn symmetric(p: f64) -> Self {
        Self::new(p, p)
    }

    /// Asymmetric readout error.
    pub fn new(p01: f64, p10: f64) -> Self {
        assert!((0.0..=1.0).contains(&p01), "p01 out of range");
        assert!((0.0..=1.0).contains(&p10), "p10 out of range");
        Self { p01, p10 }
    }

    /// Corrupts a measured `n`-qubit outcome.
    pub fn apply(&self, outcome: usize, n: u32, rng: &mut Xoshiro256StarStar) -> usize {
        let mut out = outcome;
        for q in 0..n {
            let bit = (outcome >> q) & 1;
            let p = if bit == 0 { self.p01 } else { self.p10 };
            if p > 0.0 && rng.next_f64() < p {
                out ^= 1usize << q;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_is_identity() {
        let ro = ReadoutError::symmetric(0.0);
        let mut rng = Xoshiro256StarStar::new(1);
        for v in 0..16 {
            assert_eq!(ro.apply(v, 4, &mut rng), v);
        }
    }

    #[test]
    fn certain_error_flips_everything() {
        let ro = ReadoutError::new(1.0, 1.0);
        let mut rng = Xoshiro256StarStar::new(2);
        assert_eq!(ro.apply(0b0101, 4, &mut rng), 0b1010);
    }

    #[test]
    fn asymmetric_rates() {
        // p01 = 0 means zeros never flip; p10 = 1 means ones always do.
        let ro = ReadoutError::new(0.0, 1.0);
        let mut rng = Xoshiro256StarStar::new(3);
        assert_eq!(ro.apply(0b1111, 4, &mut rng), 0);
        assert_eq!(ro.apply(0b0000, 4, &mut rng), 0);
    }

    #[test]
    fn flip_statistics() {
        let ro = ReadoutError::symmetric(0.1);
        let mut rng = Xoshiro256StarStar::new(4);
        let trials = 100_000;
        let mut flips = 0usize;
        for _ in 0..trials {
            if ro.apply(0, 1, &mut rng) == 1 {
                flips += 1;
            }
        }
        let rate = flips as f64 / trials as f64;
        assert!((rate - 0.1).abs() < 0.005, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "p01 out of range")]
    fn rejects_bad_probability() {
        ReadoutError::new(1.5, 0.0);
    }
}
