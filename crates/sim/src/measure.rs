//! Measurement: distributions, shot sampling, and count tables.
//!
//! The paper's protocol measures *every* qubit of the arithmetic circuit
//! for 2048 shots and tabulates bitstring frequencies; the success metric
//! then compares the most frequent outputs against the expected set.
//! [`Counts`] is that tabulation; [`ShotSampler`] draws the shots.

use crate::statevector::StateVector;
use qfab_math::rng::Xoshiro256StarStar;
use qfab_math::sampling::AliasTable;
use std::collections::HashMap;

/// A table of measurement outcomes: basis-state index → shot count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    map: HashMap<usize, u64>,
    shots: u64,
}

impl Counts {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `k` observations of `outcome`.
    pub fn add(&mut self, outcome: usize, k: u64) {
        if k == 0 {
            return;
        }
        *self.map.entry(outcome).or_insert(0) += k;
        self.shots += k;
    }

    /// Merges another count table into this one.
    pub fn merge(&mut self, other: &Counts) {
        for (&outcome, &k) in &other.map {
            self.add(outcome, k);
        }
    }

    /// Total number of shots recorded.
    pub fn total_shots(&self) -> u64 {
        self.shots
    }

    /// The count for one outcome (0 if never observed).
    pub fn get(&self, outcome: usize) -> u64 {
        self.map.get(&outcome).copied().unwrap_or(0)
    }

    /// Number of distinct outcomes observed.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Iterates `(outcome, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.map.iter().map(|(&o, &c)| (o, c))
    }

    /// Outcomes sorted by descending count (ties broken by index so the
    /// order is deterministic).
    pub fn sorted_by_count(&self) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self.iter().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The most frequent outcome, if any shots were recorded.
    pub fn mode(&self) -> Option<(usize, u64)> {
        self.sorted_by_count().into_iter().next()
    }

    /// The largest count among `outcomes` (0 when none observed).
    pub fn max_count_among(&self, outcomes: impl IntoIterator<Item = usize>) -> u64 {
        outcomes.into_iter().map(|o| self.get(o)).max().unwrap_or(0)
    }

    /// The smallest count among `outcomes` (0 when any is unobserved).
    pub fn min_count_among(&self, outcomes: impl IntoIterator<Item = usize>) -> u64 {
        outcomes.into_iter().map(|o| self.get(o)).min().unwrap_or(0)
    }

    /// The empirical probability of one outcome (0 for an empty table).
    pub fn frequency(&self, outcome: usize) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.get(outcome) as f64 / self.shots as f64
        }
    }

    /// Projects the table onto a register: outcomes are re-keyed by the
    /// register's extracted value, merging everything else out — e.g.
    /// the distribution of just the sum register of a QFA run.
    pub fn marginal(&self, register: &qfab_circuit::Register) -> Counts {
        let mut out = Counts::new();
        for (outcome, k) in self.iter() {
            out.add(register.extract(outcome), k);
        }
        out
    }
}

impl FromIterator<(usize, u64)> for Counts {
    fn from_iter<I: IntoIterator<Item = (usize, u64)>>(iter: I) -> Self {
        let mut c = Counts::new();
        for (o, k) in iter {
            c.add(o, k);
        }
        c
    }
}

/// Draws measurement shots from a state's Born distribution.
///
/// Two modes:
/// * [`ShotSampler::sample_counts`] builds an alias table once and draws
///   many shots in O(1) each — used for the noiseless distribution that
///   the clean-trajectory group shares.
/// * [`ShotSampler::sample_once`] draws a single outcome by inverse-CDF
///   scan without any setup — used for per-trajectory single shots,
///   where building a table per trajectory would dominate.
pub struct ShotSampler;

impl ShotSampler {
    /// Draws `shots` outcomes from `state` and tabulates them.
    pub fn sample_counts(state: &StateVector, shots: u64, rng: &mut Xoshiro256StarStar) -> Counts {
        let _span = crate::telem::metrics().map(|m| {
            m.sample_batch_shots.add(shots);
            m.sample_batch_ns.span()
        });
        let _trace = qfab_telemetry::trace::span_detail_args(
            "sim.sample_counts",
            &[("shots", qfab_telemetry::trace::ArgValue::U64(shots))],
        );
        let probs = state.probabilities();
        let table = AliasTable::new(&probs);
        let mut counts = Counts::new();
        for _ in 0..shots {
            counts.add(table.sample(rng), 1);
        }
        counts
    }

    /// Draws a single outcome by inverse-CDF scan over the amplitudes.
    pub fn sample_once(state: &StateVector, rng: &mut Xoshiro256StarStar) -> usize {
        if let Some(m) = crate::telem::metrics() {
            m.sample_single_shots.incr();
        }
        Self::sample_index(state.amplitudes(), rng.next_f64())
    }

    /// The inverse-CDF scan behind [`sample_once`](Self::sample_once),
    /// with the uniform draw supplied by the caller — so the batched
    /// replay path can pre-draw its uniforms in sequential shot order
    /// and still resolve the *identical* outcome per shot.
    pub fn sample_index(amps: &[qfab_math::complex::Complex64], mut u: f64) -> usize {
        for (i, a) in amps.iter().enumerate() {
            let p = a.norm_sqr();
            if u < p {
                return i;
            }
            u -= p;
        }
        // Floating-point slack: fall back to the last nonzero amplitude.
        amps.iter()
            .rposition(|a| a.norm_sqr() > 0.0)
            .unwrap_or(amps.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_circuit::Circuit;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(seed)
    }

    #[test]
    fn counts_basic_accounting() {
        let mut c = Counts::new();
        c.add(3, 10);
        c.add(5, 4);
        c.add(3, 1);
        c.add(9, 0); // no-op
        assert_eq!(c.total_shots(), 15);
        assert_eq!(c.get(3), 11);
        assert_eq!(c.get(5), 4);
        assert_eq!(c.get(9), 0);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.mode(), Some((3, 11)));
    }

    #[test]
    fn counts_merge() {
        let a: Counts = [(1usize, 5u64), (2, 3)].into_iter().collect();
        let mut b: Counts = [(2usize, 2u64), (4, 7)].into_iter().collect();
        b.merge(&a);
        assert_eq!(b.total_shots(), 17);
        assert_eq!(b.get(2), 5);
        assert_eq!(b.get(1), 5);
        assert_eq!(b.get(4), 7);
    }

    #[test]
    fn sorted_by_count_is_deterministic() {
        let c: Counts = [(7usize, 5u64), (2, 5), (9, 8)].into_iter().collect();
        assert_eq!(c.sorted_by_count(), vec![(9, 8), (2, 5), (7, 5)]);
    }

    #[test]
    fn min_max_among_subsets() {
        let c: Counts = [(0usize, 10u64), (1, 20), (2, 5)].into_iter().collect();
        assert_eq!(c.max_count_among([0, 1]), 20);
        assert_eq!(c.min_count_among([0, 1]), 10);
        // Unobserved outcome drags the min to zero.
        assert_eq!(c.min_count_among([0, 3]), 0);
        // Empty set conventions.
        assert_eq!(c.max_count_among([]), 0);
        assert_eq!(c.min_count_among([]), 0);
    }

    #[test]
    fn frequency_and_marginal() {
        use qfab_circuit::Register;
        // Outcomes over a 2+3 qubit layout: x = bits 0..2, y = bits 2..5.
        let x = Register::new("x", 0, 2);
        let y = Register::new("y", 2, 3);
        let mut c = Counts::new();
        c.add(y.embed(5, x.embed(1, 0)), 30);
        c.add(y.embed(5, x.embed(2, 0)), 50);
        c.add(y.embed(3, x.embed(1, 0)), 20);
        assert!((c.frequency(y.embed(5, x.embed(2, 0))) - 0.5).abs() < 1e-12);
        let my = c.marginal(&y);
        assert_eq!(my.get(5), 80);
        assert_eq!(my.get(3), 20);
        assert_eq!(my.total_shots(), 100);
        let mx = c.marginal(&x);
        assert_eq!(mx.get(1), 50);
        assert_eq!(mx.get(2), 50);
        // Empty table frequency.
        assert_eq!(Counts::new().frequency(0), 0.0);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut s = StateVector::zero_state(2);
        let mut circ = Circuit::new(2);
        circ.h(0).h(1);
        s.apply_circuit(&circ);
        let mut r = rng(1);
        let counts = ShotSampler::sample_counts(&s, 40_000, &mut r);
        assert_eq!(counts.total_shots(), 40_000);
        for i in 0..4 {
            let c = counts.get(i) as f64;
            assert!((c - 10_000.0).abs() < 600.0, "outcome {i}: {c}");
        }
    }

    #[test]
    fn sampling_deterministic_outcome() {
        let s = StateVector::basis_state(3, 6);
        let mut r = rng(2);
        let counts = ShotSampler::sample_counts(&s, 100, &mut r);
        assert_eq!(counts.get(6), 100);
        assert_eq!(counts.distinct(), 1);
        for _ in 0..20 {
            assert_eq!(ShotSampler::sample_once(&s, &mut r), 6);
        }
    }

    #[test]
    fn sample_once_distribution() {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(&qfab_circuit::Gate::H(0));
        let mut r = rng(3);
        let ones = (0..20_000)
            .filter(|_| ShotSampler::sample_once(&s, &mut r) == 1)
            .count();
        assert!((ones as f64 - 10_000.0).abs() < 500.0, "ones {ones}");
    }
}
