//! Compiled execution plans for the trajectory-replay hot path.
//!
//! Monte-Carlo noise simulation replays the *same* transpiled circuit
//! thousands of times per instance. Dispatching on the `Gate` enum
//! every replay wastes work twice over: the kernel selection is
//! re-derived per gate per trajectory, and long runs of cheap gates
//! each take a full pass over the state vector.
//!
//! [`FusedPlan::compile`] lowers a circuit **once** into a flat op
//! list:
//!
//! * the transpiled controlled-phase motif
//!   `Phase(c,a)·CX·Phase(t,−a)·CX·Phase(t,a)` is re-raised into a
//!   single masked-phase *unit* — its net effect is exactly `cis(2a)`
//!   on the `{c,t}` subspace, so the CXs inside it stop breaking
//!   diagonal runs;
//! * adjacent diagonal units (Z/S/T/RZ/Phase/CZ/CP/CCP and re-raised
//!   motifs) coalesce into a single masked-phase op when they share a
//!   support mask, or into one phase-table op
//!   ([`StateVector::apply_diag_table`]) over their combined support —
//!   one pass over the state instead of one per gate;
//! * consecutive single-qubit unitaries on the same qubit fold into one
//!   `Mat2` (a transpiled rotation like `rz·sx·rz·sx·rz` becomes a
//!   single dense kernel call);
//! * everything else lowers to a precomputed kernel selection, so
//!   replays never re-match on the `Gate` enum.
//!
//! Every op records the contiguous range of original gate indices it
//! covers, so error-gate [`Insertion`]s and checkpoint boundaries that
//! land *inside* an op fall back to per-gate application for exactly
//! that op's range — fused everywhere else. Fusion never reorders
//! gates, so the plan is drop-in equivalent (within float re-rounding,
//! ≤1e-10 per amplitude) to per-gate execution.

use crate::batched::BatchedState;
use crate::executor::Insertion;
use crate::statevector::StateVector;
use qfab_circuit::{Circuit, Gate};
use qfab_math::complex::Complex64;
use qfab_math::matrix::{Mat2, Mat4, Mat8};
use qfab_telemetry::trace;

/// Cap on the combined support of one coalesced diagonal run: a
/// 2^8-entry phase table is 4 KiB (stays in L1); beyond that the run is
/// split.
const MAX_DIAG_QUBITS: usize = 8;

/// One lowered operation with its precomputed kernel selection.
#[derive(Clone, Debug)]
enum OpKind {
    /// Identity-only run: touches nothing.
    Nop,
    /// Multiply amplitudes with `index & mask == mask` by `phase`
    /// (one pure-phase diagonal, or a coalesced same-mask run).
    MaskedPhase { mask: usize, phase: Complex64 },
    /// `diag(p0, p1)` on one qubit (a lone RZ).
    DiagPair {
        q: u32,
        p0: Complex64,
        p1: Complex64,
    },
    /// General diagonal over `qubits` with a `2^k` phase table
    /// (a coalesced diagonal run with mixed supports).
    DiagTable {
        qubits: Vec<u32>,
        table: Vec<Complex64>,
    },
    /// Dense 1q unitary (a lone dense gate, or a folded 1q run).
    Unitary1q { q: u32, m: Mat2 },
    /// Pauli-X pair swap.
    PauliX { q: u32 },
    /// CX / CCX: X on `target` where all `control_mask` bits are set.
    ControlledX { control_mask: usize, target: u32 },
    /// SWAP / CSWAP.
    SwapPair { control_mask: usize, a: u32, b: u32 },
    /// Generic 2q unitary (untranspiled circuits only).
    Generic2 { q0: u32, q1: u32, m: Box<Mat4> },
    /// Generic 3q unitary (untranspiled circuits only).
    Generic3 {
        q0: u32,
        q1: u32,
        q2: u32,
        m: Box<Mat8>,
    },
}

/// A lowered op covering original gates `[start, end)`.
#[derive(Clone, Debug)]
struct FusedOp {
    start: usize,
    end: usize,
    kind: OpKind,
}

/// A circuit compiled once into a flat, fusion-optimized op list.
///
/// The plan owns a copy of the original gate list so replays can fall
/// back to per-gate application when an insertion or checkpoint
/// boundary splits an op.
#[derive(Clone, Debug)]
pub struct FusedPlan {
    gates: Vec<Gate>,
    ops: Vec<FusedOp>,
}

impl FusedPlan {
    /// Lowers `circuit` into a fused op list. Called once per
    /// (instance, depth); the plan is then shared by reference across
    /// all error rates and rayon workers.
    pub fn compile(circuit: &Circuit) -> Self {
        let span = trace::span("sim.fused.compile");
        let gates: Vec<Gate> = circuit.gates().to_vec();
        let units = scan_units(&gates);
        let mut ops = Vec::new();
        let mut group = Group::default();
        for unit in units {
            if !group.try_push(unit, &gates) {
                ops.push(group.emit(&gates));
                group = Group::default();
                let accepted = group.try_push(unit, &gates);
                debug_assert!(accepted, "empty group must accept any unit");
            }
        }
        if !group.units.is_empty() {
            ops.push(group.emit(&gates));
        }
        if let Some(m) = crate::telem::metrics() {
            m.fused_plans.incr();
            m.fused_gates_in.add(gates.len() as u64);
            m.fused_ops_out.add(ops.len() as u64);
        }
        span.end_with_args(&[
            ("gates", trace::ArgValue::U64(gates.len() as u64)),
            ("ops", trace::ArgValue::U64(ops.len() as u64)),
        ]);
        Self { gates, ops }
    }

    /// Number of original gates the plan covers.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of lowered ops.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Gates-in over ops-out: 1.0 means nothing fused; the transpiled
    /// QFT-arithmetic circuits typically land well above 1.5.
    pub fn fusion_ratio(&self) -> f64 {
        if self.ops.is_empty() {
            return 1.0;
        }
        self.gates.len() as f64 / self.ops.len() as f64
    }

    /// Applies the whole plan (all gates, no insertions) to `state`.
    pub fn apply(&self, state: &mut StateVector) {
        for op in &self.ops {
            apply_op(state, op);
        }
    }

    /// Replays gates `[start_gate, len)` with error-gate insertions.
    ///
    /// `insertions` must be sorted ascending by `after_gate`, with every
    /// `after_gate` in `[start_gate, len)`. Ops split by `start_gate` or
    /// by an interior insertion run per-gate; everything else runs
    /// fused.
    pub fn run_from(&self, state: &mut StateVector, start_gate: usize, insertions: &[Insertion]) {
        debug_assert!(
            insertions
                .windows(2)
                .all(|w| w[0].after_gate <= w[1].after_gate),
            "insertions must be sorted by position"
        );
        debug_assert!(insertions.iter().all(|i| i.after_gate >= start_gate));
        let mut pending = insertions.iter().peekable();
        let mut idx = self.ops.partition_point(|op| op.end <= start_gate);
        let mut pos = start_gate;
        let mut fallback_gates = 0u64;
        while idx < self.ops.len() {
            let op = &self.ops[idx];
            // An op survives fusion only if we enter it at its start and
            // no insertion fires strictly before its last gate.
            let split = pos > op.start
                || pending
                    .peek()
                    .is_some_and(|ins| ins.after_gate + 1 < op.end);
            if split {
                fallback_gates += (op.end - pos) as u64;
                for g in pos..op.end {
                    state.apply_gate(&self.gates[g]);
                    while pending.peek().is_some_and(|ins| ins.after_gate == g) {
                        state.apply_gate(&pending.next().unwrap().gate);
                    }
                }
            } else {
                apply_op(state, op);
                let last = op.end - 1;
                while pending.peek().is_some_and(|ins| ins.after_gate == last) {
                    state.apply_gate(&pending.next().unwrap().gate);
                }
            }
            pos = op.end;
            idx += 1;
        }
        debug_assert!(pending.next().is_none(), "unapplied insertion");
        if let Some(m) = crate::telem::metrics() {
            if fallback_gates > 0 {
                m.fused_fallback_gates.add(fallback_gates);
            }
        }
    }

    /// Replays gates `[start_gate, len)` over a whole batch, lane
    /// `l` receiving `lanes[l]`'s error-gate insertions.
    ///
    /// Each lane lands **bit-identical** to a sequential
    /// [`run_from`](Self::run_from) with the same insertions: fused ops
    /// run through the batched SoA kernels (bit-exact per lane), and a
    /// lane whose insertion fires strictly *inside* a fused op is
    /// temporarily peeled out and replayed per-gate with the scalar
    /// kernels — exactly the fallback a sequential replay of that
    /// trajectory would take — while the rest of the batch stays fused.
    pub fn run_batch(&self, batch: &mut BatchedState, start_gate: usize, lanes: &[&[Insertion]]) {
        assert_eq!(batch.lanes(), lanes.len(), "one insertion list per lane");
        for ins in lanes {
            debug_assert!(
                ins.windows(2).all(|w| w[0].after_gate <= w[1].after_gate),
                "insertions must be sorted by position"
            );
            debug_assert!(ins.iter().all(|i| i.after_gate >= start_gate));
        }
        let mut pending: Vec<_> = lanes.iter().map(|l| l.iter().peekable()).collect();
        let mut idx = self.ops.partition_point(|op| op.end <= start_gate);
        let mut pos = start_gate;
        let mut fallback_gates = 0u64;
        let mut peeled_lanes = 0u64;
        // Insertion-free ops are deferred into `segment` and applied
        // over L2-resident tile groups: ops whose amplitude coupling
        // closes within one cache tile cost nothing extra, and a
        // 1q/X/CX op coupling *across* the tile boundary joins as long
        // as the group of tiles closed under all the segment's high
        // couplings still fits the L2 budget. The group stays hot
        // across the whole run instead of the batch streaming the full
        // SoA state once per op. Groups are independent under every op
        // in the run, so the arithmetic per amplitude — and hence the
        // result — is bit-identical to op-by-op application.
        let tile_bits = batch.tile_amps().trailing_zeros();
        let dmax = max_group_bits(batch);
        let mut seg_dmask = 0usize;
        let mut segment: Vec<usize> = Vec::new();
        while idx < self.ops.len() {
            let op = &self.ops[idx];
            let dirty = pos > op.start
                || pending
                    .iter_mut()
                    .any(|p| p.peek().is_some_and(|ins| ins.after_gate < op.end));
            let admits = |dmask: usize| match high_pair_bit(&op.kind, tile_bits) {
                Some(d) => (dmask | (1usize << d)).count_ones() <= dmax,
                None => op_extent(&op.kind) <= tile_bits,
            };
            if !dirty && admits(seg_dmask) {
                if let Some(d) = high_pair_bit(&op.kind, tile_bits) {
                    seg_dmask |= 1usize << d;
                }
                segment.push(idx);
                pos = op.end;
                idx += 1;
                continue;
            }
            flush_segment(batch, &self.ops, &mut segment);
            seg_dmask = 0;
            if !dirty {
                if admits(0) {
                    // The running group had no room for one more
                    // distinct high coupling — start a fresh segment
                    // around this op instead of falling to a pass.
                    if let Some(d) = high_pair_bit(&op.kind, tile_bits) {
                        seg_dmask |= 1usize << d;
                    }
                    segment.push(idx);
                } else {
                    // A high swap or generic dense op: one whole-state
                    // batched pass.
                    apply_op_batched(batch, op);
                }
                pos = op.end;
                idx += 1;
                continue;
            }
            if pos > op.start {
                // Mid-op entry (the checkpoint landed inside this op) is
                // lane-independent: the whole batch runs it per-gate,
                // just as every sequential replay from this checkpoint
                // would.
                fallback_gates += (op.end - pos) as u64 * lanes.len() as u64;
                for g in pos..op.end {
                    batch.apply_gate(&self.gates[g]);
                    for (lane, p) in pending.iter_mut().enumerate() {
                        while p.peek().is_some_and(|ins| ins.after_gate == g) {
                            batch.apply_gate_lane(lane, &p.next().unwrap().gate);
                        }
                    }
                }
            } else {
                // Lanes with an insertion strictly inside the op must
                // split it; peel them to scalar replay and keep the
                // batched op for everyone else.
                let splitters: Vec<usize> = pending
                    .iter_mut()
                    .enumerate()
                    .filter_map(|(l, p)| {
                        p.peek()
                            .is_some_and(|ins| ins.after_gate + 1 < op.end)
                            .then_some(l)
                    })
                    .collect();
                let saved: Vec<(usize, StateVector)> = splitters
                    .iter()
                    .map(|&l| (l, batch.extract_lane(l)))
                    .collect();
                // The batched op trashes the splitter lanes; they are
                // overwritten by the scalar replays below.
                apply_op_batched(batch, op);
                for (l, mut sv) in saved {
                    fallback_gates += (op.end - op.start) as u64;
                    peeled_lanes += 1;
                    for g in op.start..op.end {
                        sv.apply_gate(&self.gates[g]);
                        while pending[l].peek().is_some_and(|ins| ins.after_gate == g) {
                            sv.apply_gate(&pending[l].next().unwrap().gate);
                        }
                    }
                    batch.store_lane(l, &sv);
                }
                // Insertions at the op's last gate for the lanes that
                // stayed fused (peeled lanes already consumed theirs).
                let last = op.end - 1;
                for (lane, p) in pending.iter_mut().enumerate() {
                    while p.peek().is_some_and(|ins| ins.after_gate == last) {
                        batch.apply_gate_lane(lane, &p.next().unwrap().gate);
                    }
                }
            }
            pos = op.end;
            idx += 1;
        }
        flush_segment(batch, &self.ops, &mut segment);
        debug_assert!(
            pending.iter_mut().all(|p| p.peek().is_none()),
            "unapplied insertion"
        );
        if let Some(m) = crate::telem::metrics() {
            if fallback_gates > 0 {
                m.fused_fallback_gates.add(fallback_gates);
            }
            if peeled_lanes > 0 {
                m.batch_peeled_lanes.add(peeled_lanes);
            }
        }
    }
}

/// Highest qubit whose amplitude *pairing* the op couples, plus one:
/// the minimum log2 tile width that contains every amplitude the op
/// mixes. Diagonals couple nothing (0) — their masks only read the
/// global index, which the tiled kernels reconstruct from the tile
/// base — and controls don't count either, for the same reason.
/// Generic dense ops are never tiled.
fn op_extent(kind: &OpKind) -> u32 {
    match kind {
        OpKind::Nop
        | OpKind::MaskedPhase { .. }
        | OpKind::DiagPair { .. }
        | OpKind::DiagTable { .. } => 0,
        OpKind::Unitary1q { q, .. } | OpKind::PauliX { q } => q + 1,
        OpKind::ControlledX { target, .. } => target + 1,
        OpKind::SwapPair { a, b, .. } => a.max(b) + 1,
        OpKind::Generic2 { .. } | OpKind::Generic3 { .. } => u32::MAX,
    }
}

/// Combined footprint budget for one tile *group* (the tiles that must
/// be co-resident when a segment couples across the tile boundary):
/// sized to a typical 2 MiB per-core L2 slice.
const TILE_GROUP_BYTES: usize = 2 * 1024 * 1024;

/// How many distinct high coupling bits a segment may accumulate
/// before its tile group outgrows the L2 budget.
fn max_group_bits(batch: &BatchedState) -> u32 {
    let tile_bytes = batch.tile_amps() * batch.lanes() * std::mem::size_of::<Complex64>();
    if tile_bytes >= TILE_GROUP_BYTES {
        0
    } else {
        (TILE_GROUP_BYTES / tile_bytes).ilog2()
    }
}

/// Executor-internal form of one op inside a tiled segment: the plan's
/// op as-is, or a diagonal rewritten through a deferred CX.
enum TiledOp<'p> {
    Plain(&'p FusedOp),
    Masked {
        mask: usize,
        want: usize,
        phase: Complex64,
    },
    Table {
        qubits: Vec<u32>,
        table: Vec<Complex64>,
    },
}

/// Widest support a rewritten diagonal may reach before the rewrite
/// bails out and materializes the deferred CX instead.
const MAX_REWRITE_QUBITS: u32 = 12;

/// Rewrites a segment through CX deferral: a CX is held back instead
/// of applied, diagonals crossing it are looked up at the permuted
/// index, and a second identical CX cancels the first outright (the
/// `CX · diag · CX` sandwich every transpiled C-CPHASE produces).
///
/// Exactness: the sandwich moves values, multiplies, and moves back —
/// net effect, amplitude `j` is multiplied by the diagonal entry at
/// the permuted index `σ(j)`. The rewritten diagonal multiplies the
/// *same float* into the *same amplitude* without moving anything, so
/// the batched state stays bit-identical to sequential replay while
/// both permutation passes disappear.
fn rewrite_segment<'p>(ops: &'p [FusedOp], segment: &[usize]) -> Vec<TiledOp<'p>> {
    let mut out: Vec<TiledOp<'p>> = Vec::with_capacity(segment.len());
    let mut pending: Option<&'p FusedOp> = None;
    for &i in segment {
        let op = &ops[i];
        match &op.kind {
            OpKind::Nop => {}
            OpKind::ControlledX {
                control_mask,
                target,
            } => {
                if let Some(p) = pending {
                    let OpKind::ControlledX {
                        control_mask: pc,
                        target: pt,
                    } = &p.kind
                    else {
                        unreachable!("pending is always a CX")
                    };
                    if pc == control_mask && pt == target {
                        pending = None; // CX · CX = identity
                    } else {
                        out.push(TiledOp::Plain(p));
                        pending = Some(op);
                    }
                } else {
                    pending = Some(op);
                }
            }
            OpKind::MaskedPhase { .. } | OpKind::DiagPair { .. } | OpKind::DiagTable { .. } => {
                match pending {
                    Some(p) => {
                        let OpKind::ControlledX {
                            control_mask,
                            target,
                        } = &p.kind
                        else {
                            unreachable!("pending is always a CX")
                        };
                        if !rewrite_diag(op, *control_mask, *target, &mut out) {
                            out.push(TiledOp::Plain(p));
                            pending = None;
                            out.push(TiledOp::Plain(op));
                        }
                    }
                    None => out.push(TiledOp::Plain(op)),
                }
            }
            _ => {
                if let Some(p) = pending.take() {
                    out.push(TiledOp::Plain(p));
                }
                out.push(TiledOp::Plain(op));
            }
        }
    }
    if let Some(p) = pending {
        out.push(TiledOp::Plain(p));
    }
    out
}

/// Emits the diagonal `op` transformed through a deferred
/// `CX(control_mask → t)` — the permuted-index lookup described on
/// [`rewrite_segment`] — or returns `false` when the rewritten support
/// would outgrow [`MAX_REWRITE_QUBITS`].
fn rewrite_diag<'p>(
    op: &'p FusedOp,
    control_mask: usize,
    t: u32,
    out: &mut Vec<TiledOp<'p>>,
) -> bool {
    let bit_t = 1usize << t;
    let ctrl_qubits = || (0..usize::BITS).filter(|b| control_mask >> b & 1 == 1);
    match &op.kind {
        OpKind::MaskedPhase { mask, phase } => {
            // σ only alters bit t; a mask that ignores it is untouched.
            if mask & bit_t == 0 {
                out.push(TiledOp::Plain(op));
                return true;
            }
            let full = mask | control_mask;
            if full.count_ones() > MAX_REWRITE_QUBITS {
                return false;
            }
            // The mask wants σ(j)'s bit t — which is j_t ⊕ AND(controls)
            // — set. Controls inside the mask are pinned to 1 already;
            // split on the free ones.
            let free = control_mask & !mask;
            // All controls 1 ⇒ the AND fires ⇒ j_t must be 0.
            out.push(TiledOp::Masked {
                mask: full,
                want: full & !bit_t,
                phase: *phase,
            });
            // Some free control 0 ⇒ the AND misses ⇒ j_t must be 1:
            // one disjoint case per proper submask of the free bits.
            if free != 0 {
                let mut s = (free - 1) & free;
                loop {
                    out.push(TiledOp::Masked {
                        mask: full,
                        want: mask | s,
                        phase: *phase,
                    });
                    if s == 0 {
                        break;
                    }
                    s = (s - 1) & free;
                }
            }
            true
        }
        OpKind::DiagPair { q, p0, p1 } => {
            if *q != t {
                out.push(TiledOp::Plain(op));
                return true;
            }
            let mut qubits: Vec<u32> = ctrl_qubits().collect();
            qubits.push(t);
            qubits.sort_unstable();
            if qubits.len() as u32 > MAX_REWRITE_QUBITS {
                return false;
            }
            let pair = [*p0, *p1];
            let table = permuted_table(&qubits, control_mask, t, |g| pair[(g >> t) & 1]);
            out.push(TiledOp::Table { qubits, table });
            true
        }
        OpKind::DiagTable { qubits, table } => {
            if !qubits.contains(&t) {
                out.push(TiledOp::Plain(op));
                return true;
            }
            let mut q2: Vec<u32> = qubits.iter().copied().chain(ctrl_qubits()).collect();
            q2.sort_unstable();
            q2.dedup();
            if q2.len() as u32 > MAX_REWRITE_QUBITS {
                return false;
            }
            let t2 = permuted_table(&q2, control_mask, t, |g| {
                table[qfab_math::bits::gather_bits(g, qubits)]
            });
            out.push(TiledOp::Table {
                qubits: q2,
                table: t2,
            });
            true
        }
        _ => unreachable!("rewrite_diag only sees diagonal ops"),
    }
}

/// Builds the phase table over `qubits` whose entry at pattern `p` is
/// `lookup(σ(g))`, where `g` embeds `p` into a global index and `σ`
/// flips bit `t` when all `control_mask` bits are set.
fn permuted_table(
    qubits: &[u32],
    control_mask: usize,
    t: u32,
    lookup: impl Fn(usize) -> Complex64,
) -> Vec<Complex64> {
    (0..1usize << qubits.len())
        .map(|p| {
            let g: usize = qubits
                .iter()
                .enumerate()
                .map(|(pos, &q)| ((p >> pos) & 1) << q)
                .sum();
            let flip = g & control_mask == control_mask;
            lookup(g ^ if flip { 1usize << t } else { 0 })
        })
        .collect()
}

/// The tile-index bit a high 1q/X/CX coupling occupies, or `None` when
/// the op pairs within one tile (or is a kind — high swap, generic
/// dense — that never joins a tile group).
fn high_pair_bit(kind: &OpKind, tile_bits: u32) -> Option<u32> {
    let q = match kind {
        OpKind::Unitary1q { q, .. } | OpKind::PauliX { q } => *q,
        OpKind::ControlledX { target, .. } => *target,
        _ => return None,
    };
    (q >= tile_bits).then(|| q - tile_bits)
}

/// Applies a deferred run of tile-compatible ops over tile groups:
/// each group is the set of tiles closed under the segment's high
/// couplings (`2^|D|` tiles, where `D` is the set of high bits), so
/// the group stays L2-resident across the whole run. With no high
/// couplings a group is a single tile; a state no bigger than a tile
/// runs as one whole-state tile. The segment is first passed through
/// [`rewrite_segment`], which cancels CX sandwich pairs. Short
/// segments apply op-by-op over the whole state. Clears `segment`.
fn flush_segment(batch: &mut BatchedState, ops: &[FusedOp], segment: &mut Vec<usize>) {
    if segment.len() < 2 {
        for &i in segment.iter() {
            apply_op_batched(batch, &ops[i]);
        }
        segment.clear();
        return;
    }
    let rewritten = rewrite_segment(ops, segment);
    let dim = batch.dim();
    let tile = batch.tile_amps().min(dim);
    let tile_bits = tile.trailing_zeros();
    let mut dmask = 0usize;
    for top in &rewritten {
        if let TiledOp::Plain(op) = top {
            if let Some(d) = high_pair_bit(&op.kind, tile_bits) {
                dmask |= 1usize << d;
            }
        }
    }
    if let Some(m) = crate::telem::metrics() {
        m.batch_tiled_segments.incr();
        m.batch_tiled_ops.add(segment.len() as u64);
        m.fused_ops_applied
            .add((segment.len() * batch.lanes()) as u64);
    }
    let ntiles = dim / tile;
    for g in 0..ntiles {
        if g & dmask != 0 {
            continue; // not a group base
        }
        for top in &rewritten {
            let pair_bit = match top {
                TiledOp::Plain(op) => high_pair_bit(&op.kind, tile_bits),
                _ => None, // rewritten ops are diagonal: always tile-local
            };
            match (top, pair_bit) {
                (TiledOp::Plain(op), Some(d)) => {
                    // Cross-tile: every partner pair within the group.
                    let bit = 1usize << d;
                    let rest = dmask & !bit;
                    let mut s = 0usize;
                    loop {
                        let tl = g | s;
                        apply_op_pair(batch, op, tl * tile, (tl | bit) * tile, tile);
                        s = s.wrapping_sub(rest) & rest;
                        if s == 0 {
                            break;
                        }
                    }
                }
                _ => {
                    // Tile-local: every tile of the group in turn.
                    let mut s = 0usize;
                    loop {
                        let t = g | s;
                        apply_tiled_op_range(batch, top, t * tile, (t + 1) * tile);
                        s = s.wrapping_sub(dmask) & dmask;
                        if s == 0 {
                            break;
                        }
                    }
                }
            }
        }
    }
    segment.clear();
}

/// One segment op — plain or CX-rewritten — on the tile `[t0, t1)`.
fn apply_tiled_op_range(batch: &mut BatchedState, top: &TiledOp<'_>, t0: usize, t1: usize) {
    match top {
        TiledOp::Plain(op) => apply_op_batched_range(batch, op, t0, t1),
        TiledOp::Masked { mask, want, phase } => {
            batch.phase_on_mask_range(t0, t1, *mask, *want, *phase)
        }
        TiledOp::Table { qubits, table } => batch.apply_diag_table_range(t0, t1, qubits, table),
    }
}

/// One cross-tile op on the partner tiles at `t0` / `u0`. Only
/// reachable for kinds [`high_pair_bit`] admits.
fn apply_op_pair(batch: &mut BatchedState, op: &FusedOp, t0: usize, u0: usize, width: usize) {
    match &op.kind {
        OpKind::Unitary1q { m, .. } => batch.apply_mat2_pair(t0, u0, width, m),
        OpKind::PauliX { .. } => batch.apply_x_pair(t0, u0, width),
        OpKind::ControlledX { control_mask, .. } => {
            batch.controlled_x_pair(t0, u0, width, *control_mask)
        }
        _ => unreachable!("only 1q/X/CX ops pair across tiles"),
    }
}

/// One op on the tile `[t0, t1)` of every lane. Only reachable for
/// tile-compatible kinds (see [`op_extent`]).
fn apply_op_batched_range(batch: &mut BatchedState, op: &FusedOp, t0: usize, t1: usize) {
    match &op.kind {
        OpKind::Nop => {}
        OpKind::MaskedPhase { mask, phase } => {
            batch.phase_on_mask_range(t0, t1, *mask, *mask, *phase)
        }
        OpKind::DiagPair { q, p0, p1 } => batch.diag_pair_range(t0, t1, *q, *p0, *p1),
        OpKind::DiagTable { qubits, table } => batch.apply_diag_table_range(t0, t1, qubits, table),
        OpKind::Unitary1q { q, m } => batch.apply_mat2_range(t0, t1, *q, m),
        OpKind::PauliX { q } => batch.apply_x_range(t0, t1, *q),
        OpKind::ControlledX {
            control_mask,
            target,
        } => batch.controlled_x_range(t0, t1, *control_mask, *target),
        OpKind::SwapPair { control_mask, a, b } => {
            batch.apply_swap_range(t0, t1, *control_mask, *a, *b)
        }
        OpKind::Generic2 { .. } | OpKind::Generic3 { .. } => {
            unreachable!("generic dense ops are never tiled")
        }
    }
}

/// The batched counterpart of [`apply_op`]: the same kernel selection
/// over all lanes in one SoA sweep. Generic 2q/3q ops (untranspiled
/// circuits only) fall back to per-lane gather/apply.
fn apply_op_batched(batch: &mut BatchedState, op: &FusedOp) {
    if let Some(m) = crate::telem::metrics() {
        // One fused op advanced every lane — count per trajectory so
        // totals stay comparable with sequential replay.
        m.fused_ops_applied.add(batch.lanes() as u64);
    }
    match &op.kind {
        OpKind::Nop => {}
        OpKind::MaskedPhase { mask, phase } => batch.phase_on_mask(*mask, *mask, *phase),
        OpKind::DiagPair { q, p0, p1 } => batch.diag_pair(*q, *p0, *p1),
        OpKind::DiagTable { qubits, table } => batch.apply_diag_table(qubits, table),
        OpKind::Unitary1q { q, m } => batch.apply_mat2(*q, m),
        OpKind::PauliX { q } => batch.apply_x(*q),
        OpKind::ControlledX {
            control_mask,
            target,
        } => batch.controlled_x(*control_mask, *target),
        OpKind::SwapPair { control_mask, a, b } => batch.apply_swap(*control_mask, *a, *b),
        OpKind::Generic2 { q0, q1, m } => {
            for lane in 0..batch.lanes() {
                let mut sv = batch.extract_lane(lane);
                sv.apply_mat4(*q0, *q1, m);
                batch.store_lane(lane, &sv);
            }
        }
        OpKind::Generic3 { q0, q1, q2, m } => {
            for lane in 0..batch.lanes() {
                let mut sv = batch.extract_lane(lane);
                sv.apply_mat8(*q0, *q1, *q2, m);
                batch.store_lane(lane, &sv);
            }
        }
    }
}

fn apply_op(state: &mut StateVector, op: &FusedOp) {
    if let Some(m) = crate::telem::metrics() {
        m.fused_ops_applied.incr();
    }
    match &op.kind {
        OpKind::Nop => {}
        OpKind::MaskedPhase { mask, phase } => state.phase_on_mask(*mask, *mask, *phase),
        OpKind::DiagPair { q, p0, p1 } => state.diag_pair(*q, *p0, *p1),
        OpKind::DiagTable { qubits, table } => state.apply_diag_table(qubits, table),
        OpKind::Unitary1q { q, m } => state.apply_mat2(*q, m),
        OpKind::PauliX { q } => state.apply_x(*q),
        OpKind::ControlledX {
            control_mask,
            target,
        } => state.controlled_x(*control_mask, *target),
        OpKind::SwapPair { control_mask, a, b } => state.apply_swap(*control_mask, *a, *b),
        OpKind::Generic2 { q0, q1, m } => state.apply_mat4(*q0, *q1, m),
        OpKind::Generic3 { q0, q1, q2, m } => state.apply_mat8(*q0, *q1, *q2, m),
    }
}

/// The `(mask, phase)` of a pure-phase diagonal gate — one whose matrix
/// multiplies only the all-ones subspace of its operands. RZ (which
/// phases both halves) and I (which phases nothing) return `None`.
fn pure_phase(gate: &Gate) -> Option<(usize, Complex64)> {
    use Gate::*;
    Some(match *gate {
        Z(q) => (1usize << q, -Complex64::ONE),
        S(q) => (1usize << q, Complex64::I),
        Sdg(q) => (1usize << q, -Complex64::I),
        T(q) => (1usize << q, Complex64::cis(std::f64::consts::FRAC_PI_4)),
        Tdg(q) => (1usize << q, Complex64::cis(-std::f64::consts::FRAC_PI_4)),
        Phase(q, t) => (1usize << q, Complex64::cis(t)),
        Cz(a, b) => ((1usize << a) | (1usize << b), -Complex64::ONE),
        Cphase {
            control,
            target,
            theta,
        } => (
            (1usize << control) | (1usize << target),
            Complex64::cis(theta),
        ),
        Ccphase {
            c0,
            c1,
            target,
            theta,
        } => (
            (1usize << c0) | (1usize << c1) | (1usize << target),
            Complex64::cis(theta),
        ),
        _ => return None,
    })
}

/// The diagonal factor `gate` contributes to a basis state in which
/// qubit `q` is set iff `is_set(q)`. Only valid for diagonal gates.
fn diag_factor(gate: &Gate, is_set: impl Fn(u32) -> bool) -> Complex64 {
    use Gate::*;
    match *gate {
        I(_) => Complex64::ONE,
        Rz(q, t) => {
            if is_set(q) {
                Complex64::cis(t / 2.0)
            } else {
                Complex64::cis(-t / 2.0)
            }
        }
        _ => {
            let (mask, phase) = pure_phase(gate).expect("diagonal gate");
            let mut all = true;
            for b in 0..usize::BITS {
                if mask >> b & 1 == 1 && !is_set(b) {
                    all = false;
                    break;
                }
            }
            if all {
                phase
            } else {
                Complex64::ONE
            }
        }
    }
}

/// Bitmask of the qubits a gate touches.
fn support(gate: &Gate) -> u64 {
    gate.qubits()
        .as_slice()
        .iter()
        .fold(0u64, |acc, &q| acc | (1u64 << q))
}

/// A pre-fusion unit: one original gate, or a recognized multi-gate
/// motif whose net effect is known in closed form.
#[derive(Clone, Copy, Debug)]
enum Unit {
    /// The original gate at this index.
    Gate(usize),
    /// `Phase(c,a)·CX·Phase(t,−a)·CX·Phase(t,a)` covering gates
    /// `[start, start+5)` — the CX+1q-basis decomposition of a
    /// controlled phase. Net effect: `cis(2a)` on `index & mask == mask`.
    CpMotif {
        start: usize,
        mask: usize,
        half_theta: f64,
    },
}

impl Unit {
    /// Covered range of original gate indices.
    fn range(&self) -> (usize, usize) {
        match *self {
            Unit::Gate(i) => (i, i + 1),
            Unit::CpMotif { start, .. } => (start, start + 5),
        }
    }

    fn is_diagonal(&self, gates: &[Gate]) -> bool {
        match *self {
            Unit::Gate(i) => gates[i].is_diagonal(),
            Unit::CpMotif { .. } => true,
        }
    }

    fn support(&self, gates: &[Gate]) -> u64 {
        match *self {
            Unit::Gate(i) => support(&gates[i]),
            Unit::CpMotif { mask, .. } => mask as u64,
        }
    }

    /// The `(mask, phase)` the unit applies to the all-ones subspace of
    /// `mask`, when that is its exact effect.
    fn pure_phase(&self, gates: &[Gate]) -> Option<(usize, Complex64)> {
        match *self {
            Unit::Gate(i) => pure_phase(&gates[i]),
            Unit::CpMotif {
                mask, half_theta, ..
            } => Some((mask, Complex64::cis(2.0 * half_theta))),
        }
    }

    /// The diagonal factor this unit contributes to a basis state in
    /// which qubit `q` is set iff `is_set(q)`. Only valid when
    /// [`Unit::is_diagonal`] holds.
    fn diag_factor(&self, gates: &[Gate], is_set: &impl Fn(u32) -> bool) -> Complex64 {
        match *self {
            Unit::Gate(i) => diag_factor(&gates[i], is_set),
            Unit::CpMotif {
                mask, half_theta, ..
            } => {
                let all = (0..usize::BITS).all(|b| mask >> b & 1 == 0 || is_set(b));
                if all {
                    Complex64::cis(2.0 * half_theta)
                } else {
                    Complex64::ONE
                }
            }
        }
    }
}

/// Splits the gate stream into units, greedily re-raising the
/// controlled-phase motif wherever it appears.
fn scan_units(gates: &[Gate]) -> Vec<Unit> {
    let mut units = Vec::with_capacity(gates.len());
    let mut i = 0;
    while i < gates.len() {
        if let Some(unit) = match_cp_motif(gates, i) {
            units.push(unit);
            i += 5;
        } else {
            units.push(Unit::Gate(i));
            i += 1;
        }
    }
    units
}

/// Matches `Phase(c,a)·CX(c,t)·Phase(t,b)·CX(c,t)·Phase(t,d)` at `i`
/// with `b = −a`, `d = a` (bit-exact, as the transpiler emits them).
fn match_cp_motif(gates: &[Gate], i: usize) -> Option<Unit> {
    use Gate::*;
    if i + 5 > gates.len() {
        return None;
    }
    let Phase(c, a) = gates[i] else { return None };
    let Cx {
        control: c1,
        target: t,
    } = gates[i + 1]
    else {
        return None;
    };
    let Phase(t1, b) = gates[i + 2] else {
        return None;
    };
    let Cx {
        control: c2,
        target: t2,
    } = gates[i + 3]
    else {
        return None;
    };
    let Phase(t3, d) = gates[i + 4] else {
        return None;
    };
    let shape = c1 == c && c2 == c && t1 == t && t2 == t && t3 == t && c != t;
    (shape && b == -a && d == a).then_some(Unit::CpMotif {
        start: i,
        mask: (1usize << c) | (1usize << t),
        half_theta: a,
    })
}

/// A contiguous run of units being considered for fusion.
#[derive(Default)]
struct Group {
    start: usize,
    end: usize,
    units: Vec<Unit>,
    support: u64,
    all_diag: bool,
    /// `Some(q)` while every unit so far is a 1q gate on `q`.
    same_q: Option<u32>,
}

impl Group {
    /// Tries to absorb `unit`; returns false when the run must break.
    fn try_push(&mut self, unit: Unit, gates: &[Gate]) -> bool {
        let (u_start, u_end) = unit.range();
        if self.units.is_empty() {
            self.start = u_start;
            self.end = u_end;
            self.support = unit.support(gates);
            self.all_diag = unit.is_diagonal(gates);
            self.same_q = match unit {
                Unit::Gate(i) if gates[i].arity() == 1 => Some(gates[i].qubits()[0]),
                _ => None,
            };
            self.units.push(unit);
            return true;
        }
        let extend_1q = self.same_q.is_some_and(
            |q| matches!(unit, Unit::Gate(i) if gates[i].arity() == 1 && gates[i].qubits()[0] == q),
        );
        let extend_diag = self.all_diag
            && unit.is_diagonal(gates)
            && (self.support | unit.support(gates)).count_ones() as usize <= MAX_DIAG_QUBITS;
        if !extend_1q && !extend_diag {
            return false;
        }
        self.support |= unit.support(gates);
        self.all_diag &= unit.is_diagonal(gates);
        if !extend_1q {
            self.same_q = None;
        }
        self.end = u_end;
        self.units.push(unit);
        true
    }

    /// Lowers the finished run into one op.
    fn emit(self, gates: &[Gate]) -> FusedOp {
        let kind = if self.units.len() == 1 {
            match self.units[0] {
                Unit::Gate(i) => lower_single(&gates[i]),
                motif @ Unit::CpMotif { .. } => {
                    let (mask, phase) = motif.pure_phase(gates).expect("motif is a pure phase");
                    OpKind::MaskedPhase { mask, phase }
                }
            }
        } else if let (Some(q), false) = (self.same_q, self.all_diag) {
            // Mixed 1q run: fold into one dense matrix. Each later gate
            // multiplies on the left (it applies after).
            let mut acc = Mat2::identity();
            for unit in &self.units {
                let Unit::Gate(i) = unit else {
                    unreachable!("1q run holds a non-gate unit");
                };
                let qfab_circuit::gate::GateMatrix::One(m) = gates[*i].matrix() else {
                    unreachable!("1q run holds a non-1q gate");
                };
                acc = m.matmul(&acc);
            }
            OpKind::Unitary1q { q, m: acc }
        } else {
            lower_diag_run(&self.units, gates, self.support)
        };
        FusedOp {
            start: self.start,
            end: self.end,
            kind,
        }
    }
}

/// Precomputed kernel selection for an unfused gate — mirrors the
/// dispatch in `StateVector::apply_gate`.
fn lower_single(gate: &Gate) -> OpKind {
    use Gate::*;
    if let Some((mask, phase)) = pure_phase(gate) {
        return OpKind::MaskedPhase { mask, phase };
    }
    match *gate {
        I(_) => OpKind::Nop,
        Rz(q, t) => OpKind::DiagPair {
            q,
            p0: Complex64::cis(-t / 2.0),
            p1: Complex64::cis(t / 2.0),
        },
        X(q) => OpKind::PauliX { q },
        Cx { control, target } => OpKind::ControlledX {
            control_mask: 1usize << control,
            target,
        },
        Ccx { c0, c1, target } => OpKind::ControlledX {
            control_mask: (1usize << c0) | (1usize << c1),
            target,
        },
        Swap(a, b) => OpKind::SwapPair {
            control_mask: 0,
            a,
            b,
        },
        Cswap { control, a, b } => OpKind::SwapPair {
            control_mask: 1usize << control,
            a,
            b,
        },
        ref g => match g.matrix() {
            qfab_circuit::gate::GateMatrix::One(m) => OpKind::Unitary1q {
                q: g.qubits()[0],
                m,
            },
            qfab_circuit::gate::GateMatrix::Two(m) => {
                let q = g.qubits();
                OpKind::Generic2 {
                    q0: q[0],
                    q1: q[1],
                    m: Box::new(m),
                }
            }
            qfab_circuit::gate::GateMatrix::Three(m) => {
                let q = g.qubits();
                OpKind::Generic3 {
                    q0: q[0],
                    q1: q[1],
                    q2: q[2],
                    m: Box::new(m),
                }
            }
        },
    }
}

/// Lowers a run of ≥2 diagonal units: one masked-phase op when every
/// non-identity unit shares a support mask, otherwise one phase table
/// over the combined support.
fn lower_diag_run(units: &[Unit], gates: &[Gate], support: u64) -> OpKind {
    // Same-mask pure-phase coalescing: the common QFT pattern of
    // repeated controlled-phases on one qubit pair.
    let mut shared: Option<(usize, Complex64)> = None;
    let mut coalesced = true;
    for u in units {
        if matches!(u, Unit::Gate(i) if matches!(gates[*i], Gate::I(_))) {
            continue;
        }
        match (u.pure_phase(gates), &mut shared) {
            (Some((mask, phase)), Some((m0, acc))) if mask == *m0 => *acc *= phase,
            (Some((mask, phase)), None) => shared = Some((mask, phase)),
            _ => {
                coalesced = false;
                break;
            }
        }
    }
    if coalesced {
        return match shared {
            Some((mask, phase)) => OpKind::MaskedPhase { mask, phase },
            None => OpKind::Nop, // identity-only run
        };
    }
    // General case: evaluate the product of all diagonal factors over
    // the run's combined support.
    let qubits: Vec<u32> = (0..u64::BITS).filter(|b| support >> b & 1 == 1).collect();
    let table: Vec<Complex64> = (0..1usize << qubits.len())
        .map(|local| {
            let is_set = |q: u32| {
                qubits
                    .iter()
                    .position(|&p| p == q)
                    .is_some_and(|j| local >> j & 1 == 1)
            };
            units
                .iter()
                .fold(Complex64::ONE, |acc, u| acc * u.diag_factor(gates, &is_set))
        })
        .collect();
    OpKind::DiagTable { qubits, table }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_math::approx::approx_eq_slice;
    use qfab_math::complex::c64;

    const TOL: f64 = 1e-10;

    fn random_state(n: u32, seed: u64) -> StateVector {
        let mut rng = qfab_math::rng::Xoshiro256StarStar::new(seed);
        let amps: Vec<Complex64> = (0..qfab_math::bits::dim(n))
            .map(|_| c64(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        StateVector::from_amplitudes(n, amps.into_iter().map(|a| a / norm).collect())
    }

    fn assert_plan_matches_per_gate(c: &Circuit, n: u32, seed: u64) {
        let plan = FusedPlan::compile(c);
        let mut fused = random_state(n, seed);
        let mut reference = fused.clone();
        plan.apply(&mut fused);
        reference.apply_circuit(c);
        assert!(
            approx_eq_slice(fused.amplitudes(), reference.amplitudes(), TOL),
            "fused execution diverged from per-gate"
        );
    }

    #[test]
    fn transpiled_style_1q_runs_fold() {
        // rz·sx·rz·sx·rz on one qubit — the basis decomposition of a
        // generic 1q rotation — must become a single op.
        let mut c = Circuit::new(3);
        c.rz(0.3, 1).sx(1).rz(-1.1, 1).sx(1).rz(2.0, 1);
        let plan = FusedPlan::compile(&c);
        assert_eq!(plan.num_ops(), 1);
        assert!((plan.fusion_ratio() - 5.0).abs() < 1e-12);
        assert_plan_matches_per_gate(&c, 3, 11);
    }

    #[test]
    fn same_mask_phases_coalesce_to_one_masked_phase() {
        let mut c = Circuit::new(4);
        c.cphase(0.4, 0, 2).cz(0, 2).cphase(-0.1, 2, 0);
        let plan = FusedPlan::compile(&c);
        assert_eq!(plan.num_ops(), 1);
        assert!(matches!(plan.ops[0].kind, OpKind::MaskedPhase { .. }));
        assert_plan_matches_per_gate(&c, 4, 5);
    }

    #[test]
    fn mixed_support_diagonals_become_one_table() {
        let mut c = Circuit::new(5);
        c.rz(0.2, 0)
            .cphase(0.7, 1, 3)
            .t(4)
            .rz(-0.5, 3)
            .ccphase(1.1, 0, 1, 2);
        let plan = FusedPlan::compile(&c);
        assert_eq!(plan.num_ops(), 1);
        assert!(matches!(plan.ops[0].kind, OpKind::DiagTable { .. }));
        assert_plan_matches_per_gate(&c, 5, 17);
    }

    #[test]
    fn diag_run_splits_when_support_exceeds_cap() {
        let n = MAX_DIAG_QUBITS as u32 + 4;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.rz(0.1 * (q as f64 + 1.0), q);
        }
        let plan = FusedPlan::compile(&c);
        assert!(plan.num_ops() >= 2, "support cap must split the run");
        assert_plan_matches_per_gate(&c, n, 23);
    }

    #[test]
    fn non_fusable_gates_keep_their_kernels() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).swap(1, 2).ccx(0, 1, 3).x(2).h(3);
        let plan = FusedPlan::compile(&c);
        assert_eq!(plan.num_ops(), 5);
        assert!(matches!(plan.ops[0].kind, OpKind::ControlledX { .. }));
        assert!(matches!(plan.ops[1].kind, OpKind::SwapPair { .. }));
        assert!(matches!(plan.ops[2].kind, OpKind::ControlledX { .. }));
        assert!(matches!(plan.ops[3].kind, OpKind::PauliX { .. }));
        assert!(matches!(plan.ops[4].kind, OpKind::Unitary1q { .. }));
        assert_plan_matches_per_gate(&c, 4, 31);
    }

    /// Appends the transpiled controlled-phase motif for `theta` on
    /// `(c, t)`, exactly as the CX+1q transpiler emits it.
    fn push_cp_motif(c: &mut Circuit, theta: f64, ctrl: u32, tgt: u32) {
        let half = theta / 2.0;
        c.phase(half, ctrl)
            .cx(ctrl, tgt)
            .phase(-half, tgt)
            .cx(ctrl, tgt)
            .phase(half, tgt);
    }

    #[test]
    fn transpiled_cp_motif_reraises_to_masked_phase() {
        let mut c = Circuit::new(3);
        push_cp_motif(&mut c, 0.9, 0, 2);
        let plan = FusedPlan::compile(&c);
        assert_eq!(plan.num_ops(), 1);
        assert!(matches!(
            plan.ops[0].kind,
            OpKind::MaskedPhase { mask: 0b101, .. }
        ));
        assert_plan_matches_per_gate(&c, 3, 47);
    }

    #[test]
    fn adjacent_cp_motifs_coalesce_into_one_diag_table() {
        // Two CP blocks on overlapping pairs plus a bare phase — the
        // exact texture of a transpiled QFT layer. 11 gates -> 1 op.
        let mut c = Circuit::new(4);
        push_cp_motif(&mut c, 0.9, 2, 3);
        push_cp_motif(&mut c, 0.45, 1, 3);
        c.phase(0.2, 0);
        let plan = FusedPlan::compile(&c);
        assert_eq!(plan.num_ops(), 1);
        assert!(matches!(plan.ops[0].kind, OpKind::DiagTable { .. }));
        assert!((plan.fusion_ratio() - 11.0).abs() < 1e-12);
        assert_plan_matches_per_gate(&c, 4, 53);
    }

    #[test]
    fn lookalike_patterns_are_not_reraised() {
        // Same shape but the middle phase is not the negation of the
        // head phase — must NOT match the motif (it is not a pure
        // controlled phase), and must still execute correctly.
        let mut c = Circuit::new(3);
        c.phase(0.4, 0)
            .cx(0, 1)
            .phase(0.3, 1)
            .cx(0, 1)
            .phase(0.4, 1);
        let plan = FusedPlan::compile(&c);
        assert!(plan.num_ops() > 1, "lookalike must not collapse to 1 op");
        assert_plan_matches_per_gate(&c, 3, 59);

        // Mismatched CX wiring between the two halves.
        let mut c2 = Circuit::new(3);
        c2.phase(0.4, 0)
            .cx(0, 1)
            .phase(-0.4, 1)
            .cx(1, 0)
            .phase(0.4, 1);
        let plan2 = FusedPlan::compile(&c2);
        assert!(plan2.num_ops() > 1);
        assert_plan_matches_per_gate(&c2, 3, 61);
    }

    #[test]
    fn motif_split_by_insertion_falls_back_per_gate() {
        // An error landing *inside* a re-raised motif must be applied at
        // its true per-gate position, not before/after the fused op.
        let mut c = Circuit::new(3);
        c.h(0);
        push_cp_motif(&mut c, 1.3, 0, 1);
        push_cp_motif(&mut c, -0.7, 1, 2);
        let plan = FusedPlan::compile(&c);
        for g in 0..c.len() {
            let ins = [Insertion {
                after_gate: g,
                gate: Gate::X(1),
            }];
            let mut fused = random_state(3, 67 + g as u64);
            let mut reference = fused.clone();
            plan.run_from(&mut fused, 0, &ins);
            for (i, gate) in c.gates().iter().enumerate() {
                reference.apply_gate(gate);
                if i == g {
                    reference.apply_gate(&Gate::X(1));
                }
            }
            assert!(
                approx_eq_slice(fused.amplitudes(), reference.amplitudes(), TOL),
                "divergence with insertion after gate {g}"
            );
        }
    }

    #[test]
    fn identity_runs_lower_to_nop() {
        let mut c = Circuit::new(3);
        c.id(0).id(1).id(2);
        let plan = FusedPlan::compile(&c);
        assert_eq!(plan.num_ops(), 1);
        assert!(matches!(plan.ops[0].kind, OpKind::Nop));
        assert_plan_matches_per_gate(&c, 3, 3);
    }

    #[test]
    fn empty_circuit_compiles_to_empty_plan() {
        let c = Circuit::new(2);
        let plan = FusedPlan::compile(&c);
        assert_eq!(plan.num_ops(), 0);
        assert_eq!(plan.num_gates(), 0);
        assert!((plan.fusion_ratio() - 1.0).abs() < 1e-12);
        let mut s = StateVector::zero_state(2);
        plan.apply(&mut s); // must be a no-op
        assert!((s.probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_from_matches_per_gate_for_every_insertion_point() {
        // Dense mixed circuit; fuse, then check every insertion position
        // against naive per-gate replay, entering at several offsets.
        let mut c = Circuit::new(4);
        c.h(0)
            .rz(0.3, 0)
            .sx(0)
            .rz(0.9, 0)
            .cx(0, 1)
            .rz(0.2, 1)
            .rz(0.4, 2)
            .cphase(0.5, 1, 2)
            .x(3)
            .rz(-0.7, 3)
            .sx(3)
            .cx(2, 3)
            .t(0)
            .t(0);
        let plan = FusedPlan::compile(&c);
        assert!(plan.fusion_ratio() > 1.0);
        for g in 0..c.len() {
            let ins = [Insertion {
                after_gate: g,
                gate: Gate::Y(2),
            }];
            for start in [0, g / 2, g] {
                let mut fused = random_state(4, 7 + g as u64);
                // Advance the reference to `start` per-gate, then both
                // paths finish from the same prefix state.
                let mut reference = fused.clone();
                for gate in &c.gates()[..start] {
                    fused.apply_gate(gate);
                    reference.apply_gate(gate);
                }
                plan.run_from(&mut fused, start, &ins);
                for (i, gate) in c.gates().iter().enumerate().skip(start) {
                    reference.apply_gate(gate);
                    if i == g {
                        reference.apply_gate(&Gate::Y(2));
                    }
                }
                assert!(
                    approx_eq_slice(fused.amplitudes(), reference.amplitudes(), TOL),
                    "divergence: insertion after {g}, start {start}"
                );
            }
        }
    }

    #[test]
    fn run_from_handles_multiple_insertions_at_one_site() {
        let mut c = Circuit::new(3);
        c.rz(0.1, 0).rz(0.2, 1).cx(0, 1).rz(0.3, 2).sx(2).rz(0.4, 2);
        let plan = FusedPlan::compile(&c);
        let ins = [
            Insertion {
                after_gate: 1,
                gate: Gate::X(0),
            },
            Insertion {
                after_gate: 1,
                gate: Gate::Z(1),
            },
            Insertion {
                after_gate: 5,
                gate: Gate::Y(2),
            },
        ];
        let mut fused = random_state(3, 41);
        let mut reference = fused.clone();
        plan.run_from(&mut fused, 0, &ins);
        let mut pending = ins.iter().peekable();
        for (i, gate) in c.gates().iter().enumerate() {
            reference.apply_gate(gate);
            while pending.peek().is_some_and(|x| x.after_gate == i) {
                reference.apply_gate(&pending.next().unwrap().gate);
            }
        }
        assert!(approx_eq_slice(
            fused.amplitudes(),
            reference.amplitudes(),
            TOL
        ));
    }

    #[test]
    fn op_ranges_are_contiguous_and_cover_the_circuit() {
        let mut c = Circuit::new(4);
        c.h(0).rz(0.1, 0).cx(0, 1).rz(0.2, 2).rz(0.3, 3).swap(0, 3);
        let plan = FusedPlan::compile(&c);
        let mut pos = 0;
        for op in &plan.ops {
            assert_eq!(op.start, pos, "gap in op coverage");
            assert!(op.end > op.start);
            pos = op.end;
        }
        assert_eq!(pos, c.len());
    }
}
