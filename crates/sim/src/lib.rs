#![warn(missing_docs)]

//! Quantum simulators for the qfab workspace.
//!
//! Two engines:
//!
//! * [`statevector`] — the workhorse: a dense state vector over up to
//!   ~24 qubits with in-place, allocation-free, optionally rayon-parallel
//!   gate kernels. This is the engine the paper-reproduction harness
//!   drives for the 16–17 qubit arithmetic circuits.
//! * [`density`] — an exact density-matrix engine for small systems,
//!   used to cross-validate the Monte-Carlo noise trajectories against
//!   exact channel evolution (and for fidelity-based metrics).
//!
//! Supporting modules:
//!
//! * [`measure`] — measurement distributions, shot sampling, and count
//!   tables in the form the paper's success metric consumes.
//! * [`fused`] — **compiled execution plans**: a circuit is lowered
//!   once into a flat op list (diagonal runs coalesced, 1q runs folded,
//!   kernel selection precomputed) that every trajectory replay
//!   executes instead of re-dispatching on the `Gate` enum.
//! * [`executor`] — circuit execution with **checkpointed replay**: the
//!   noiseless state is snapshotted every K gates so a noisy trajectory
//!   whose first error lands at gate g can restart from checkpoint
//!   ⌊g/K⌋ instead of from scratch. At realistic error rates this saves
//!   most of the per-trajectory work (ablated in `qfab-bench`).

pub mod density;
pub mod executor;
pub mod fused;
pub mod measure;
pub mod observable;
pub mod statevector;
pub(crate) mod telem;
pub mod tomography;

pub use density::DensityMatrix;
pub use executor::{CheckpointTable, Insertion};
pub use fused::FusedPlan;
pub use measure::{Counts, ShotSampler};
pub use observable::{Observable, PauliOp, PauliString};
pub use statevector::StateVector;
