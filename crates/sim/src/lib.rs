#![warn(missing_docs)]

//! Quantum simulators for the qfab workspace.
//!
//! Two engines:
//!
//! * [`statevector`] — the workhorse: a dense state vector over up to
//!   ~24 qubits with in-place, allocation-free, optionally rayon-parallel
//!   gate kernels. This is the engine the paper-reproduction harness
//!   drives for the 16–17 qubit arithmetic circuits.
//! * [`density`] — an exact density-matrix engine for small systems,
//!   used to cross-validate the Monte-Carlo noise trajectories against
//!   exact channel evolution (and for fidelity-based metrics).
//!
//! Supporting modules:
//!
//! * [`measure`] — measurement distributions, shot sampling, and count
//!   tables in the form the paper's success metric consumes.
//! * [`fused`] — **compiled execution plans**: a circuit is lowered
//!   once into a flat op list (diagonal runs coalesced, 1q runs folded,
//!   kernel selection precomputed) that every trajectory replay
//!   executes instead of re-dispatching on the `Gate` enum.
//! * [`batched`] — **batched trajectory replay**: K statevectors stored
//!   interleaved (SoA, amplitude-major) so one sweep of a fused op
//!   advances K Monte-Carlo shots, with runtime-dispatched AVX2 kernels
//!   and a scalar fallback (`QFAB_SIMD=off` forces it). Every lane is
//!   bit-identical to its sequential replay.
//! * [`executor`] — circuit execution with **checkpointed replay**: the
//!   noiseless state is snapshotted every K gates so a noisy trajectory
//!   whose first error lands at gate g can restart from checkpoint
//!   ⌊g/K⌋ instead of from scratch. At realistic error rates this saves
//!   most of the per-trajectory work (ablated in `qfab-bench`).

pub mod batched;
pub mod density;
pub mod executor;
pub mod fused;
pub mod measure;
pub mod observable;
pub mod statevector;
pub(crate) mod telem;
pub mod tomography;

pub use batched::BatchedState;
pub use density::DensityMatrix;
pub use executor::{CheckpointTable, Insertion};
pub use fused::FusedPlan;
pub use measure::{Counts, ShotSampler};
pub use observable::{Observable, PauliOp, PauliString};
pub use statevector::StateVector;
