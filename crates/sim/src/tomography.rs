//! Quantum state tomography by linear inversion.
//!
//! The paper's success metric is count-based "similar to quantum state
//! tomography"; this module provides the genuine article for small
//! subsystems: measure a k-qubit register in all `3^k` Pauli product
//! bases, estimate every Pauli expectation value, and reconstruct
//!
//! ```text
//! ρ = (1/2^k) Σ_{P ∈ {I,X,Y,Z}^k}  <P> · P
//! ```
//!
//! Linear inversion is exact in expectation; with finite shots the
//! estimate can be slightly non-physical (negative eigenvalues), which
//! is fine for the fidelity-style diagnostics used here.
//!
//! Workflow:
//!
//! 1. [`measurement_bases`] lists the `3^k` bases.
//! 2. [`basis_rotation`] gives the pre-measurement circuit for one
//!    basis (H for X, S†·H for Y, nothing for Z).
//! 3. Run your circuit + rotation, sample counts on the register.
//! 4. [`reconstruct`] turns `(basis, counts)` pairs into a
//!    [`DensityMatrix`].

use crate::density::DensityMatrix;
use crate::measure::Counts;
use qfab_circuit::{Circuit, Register};
use qfab_math::complex::Complex64;

/// One measurement axis per qubit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// Measure in the X (Hadamard) basis.
    X,
    /// Measure in the Y basis.
    Y,
    /// Measure in the computational (Z) basis.
    Z,
}

/// A product measurement basis: one axis per register qubit (index 0 =
/// register bit 0).
pub type Basis = Vec<Axis>;

/// All `3^k` product bases for a `k`-qubit register, in a fixed order.
pub fn measurement_bases(k: u32) -> Vec<Basis> {
    let mut out = Vec::with_capacity(3usize.pow(k));
    let total = 3usize.pow(k);
    for code in 0..total {
        let mut c = code;
        let mut basis = Vec::with_capacity(k as usize);
        for _ in 0..k {
            basis.push(match c % 3 {
                0 => Axis::X,
                1 => Axis::Y,
                _ => Axis::Z,
            });
            c /= 3;
        }
        out.push(basis);
    }
    out
}

/// The pre-measurement rotation mapping `basis` onto the computational
/// basis, acting on `register` inside a `num_qubits`-wide circuit.
pub fn basis_rotation(num_qubits: u32, register: &Register, basis: &Basis) -> Circuit {
    assert_eq!(basis.len(), register.len() as usize, "basis arity mismatch");
    let mut c = Circuit::new(num_qubits);
    for (i, axis) in basis.iter().enumerate() {
        let q = register.qubit(i as u32);
        match axis {
            Axis::X => {
                c.h(q);
            }
            Axis::Y => {
                // Rotate Y eigenbasis onto Z: H · S†.
                c.push(qfab_circuit::Gate::Sdg(q));
                c.h(q);
            }
            Axis::Z => {}
        }
    }
    c
}

/// Estimates `<P>` for the Pauli string with per-qubit letters
/// `support[i] ∈ {None = I, Some(axis)}` from counts measured in a
/// compatible basis (every `Some(axis)` must equal the basis axis on
/// that qubit — callers use [`reconstruct`], which handles this).
fn pauli_expectation(counts: &Counts, support: &[Option<Axis>]) -> f64 {
    let shots = counts.total_shots();
    if shots == 0 {
        return 0.0;
    }
    let mut acc = 0i64;
    for (outcome, k) in counts.iter() {
        let mut parity = 0u32;
        for (i, s) in support.iter().enumerate() {
            if s.is_some() {
                parity ^= (outcome >> i) as u32 & 1;
            }
        }
        acc += if parity == 0 { k as i64 } else { -(k as i64) };
    }
    acc as f64 / shots as f64
}

/// Reconstructs the register's density matrix from per-basis counts.
///
/// `data` must contain one `(basis, counts)` entry per basis of
/// [`measurement_bases`]; counts are over register-local outcomes
/// (use [`Counts::marginal`] to project a full measurement).
pub fn reconstruct(k: u32, data: &[(Basis, Counts)]) -> DensityMatrix {
    assert!(
        (1..=5).contains(&k),
        "tomography limited to 5 qubits (4^k terms)"
    );
    let dim = 1usize << k;
    // Accumulate rho = (1/2^k) sum_P <P> P over all 4^k Pauli strings.
    // String encoding: per qubit 0=I, 1=X, 2=Y, 3=Z.
    let mut rho = vec![Complex64::ZERO; dim * dim];
    let strings = 4usize.pow(k);
    for code in 0..strings {
        let letters: Vec<u8> = (0..k).map(|i| ((code >> (2 * i)) & 3) as u8).collect();
        // <P>: average the estimate over every compatible basis (a
        // string is measurable in basis B iff each non-I letter matches
        // B's axis on that qubit).
        let mut est = 0.0;
        let mut used = 0usize;
        for (basis, counts) in data {
            let compatible = letters.iter().enumerate().all(|(i, &l)| {
                l == 0 || matches!((l, basis[i]), (1, Axis::X) | (2, Axis::Y) | (3, Axis::Z))
            });
            if !compatible {
                continue;
            }
            let support: Vec<Option<Axis>> = letters
                .iter()
                .map(|&l| match l {
                    0 => None,
                    1 => Some(Axis::X),
                    2 => Some(Axis::Y),
                    _ => Some(Axis::Z),
                })
                .collect();
            est += pauli_expectation(counts, &support);
            used += 1;
        }
        assert!(used > 0, "no compatible basis for Pauli string {code}");
        est /= used as f64;

        // Add est · P / 2^k into rho (P built as a Kronecker product of
        // 2×2 letters; entry-wise construction).
        for r in 0..dim {
            for c in 0..dim {
                let mut val = Complex64::ONE;
                for (i, &l) in letters.iter().enumerate() {
                    let (rb, cb) = ((r >> i) & 1, (c >> i) & 1);
                    let factor = pauli_entry(l, rb, cb);
                    if factor == Complex64::ZERO {
                        val = Complex64::ZERO;
                        break;
                    }
                    val *= factor;
                }
                if val != Complex64::ZERO {
                    rho[r * dim + c] += val.scale(est / dim as f64);
                }
            }
        }
    }
    DensityMatrix::from_raw(k, rho)
}

fn pauli_entry(letter: u8, r: usize, c: usize) -> Complex64 {
    match (letter, r, c) {
        (0, 0, 0) | (0, 1, 1) => Complex64::ONE,
        (1, 0, 1) | (1, 1, 0) => Complex64::ONE,
        (2, 0, 1) => Complex64::new(0.0, -1.0),
        (2, 1, 0) => Complex64::new(0.0, 1.0),
        (3, 0, 0) => Complex64::ONE,
        (3, 1, 1) => -Complex64::ONE,
        _ => Complex64::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::ShotSampler;
    use crate::statevector::StateVector;
    use qfab_math::rng::Xoshiro256StarStar;

    /// Full tomography pipeline against a preparation circuit: returns
    /// the reconstructed density matrix of `register`.
    fn tomograph(
        prepare: &Circuit,
        register: &Register,
        shots_per_basis: u64,
        seed: u64,
    ) -> DensityMatrix {
        let n = prepare.num_qubits();
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut data = Vec::new();
        for basis in measurement_bases(register.len()) {
            let mut state = StateVector::zero_state(n);
            state.apply_circuit(prepare);
            state.apply_circuit(&basis_rotation(n, register, &basis));
            let counts = ShotSampler::sample_counts(&state, shots_per_basis, &mut rng);
            data.push((basis, counts.marginal(register)));
        }
        reconstruct(register.len(), &data)
    }

    #[test]
    fn bases_enumeration() {
        assert_eq!(measurement_bases(1).len(), 3);
        assert_eq!(measurement_bases(2).len(), 9);
        assert_eq!(measurement_bases(3).len(), 27);
    }

    #[test]
    fn rotation_circuits() {
        let reg = Register::new("r", 0, 2);
        let c = basis_rotation(2, &reg, &vec![Axis::Z, Axis::Z]);
        assert!(c.is_empty());
        let c = basis_rotation(2, &reg, &vec![Axis::X, Axis::Y]);
        assert_eq!(c.len(), 3); // H + (Sdg, H)
    }

    #[test]
    fn tomograph_a_basis_state() {
        let mut prep = Circuit::new(2);
        prep.x(0); // |01>
        let reg = Register::new("r", 0, 2);
        let rho = tomograph(&prep, &reg, 2000, 1);
        assert!((rho.trace().re - 1.0).abs() < 0.05);
        let probs = rho.probabilities();
        assert!(probs[1] > 0.95, "P(|01>) = {}", probs[1]);
    }

    #[test]
    fn tomograph_bell_state_fidelity() {
        let mut prep = Circuit::new(2);
        prep.h(0).cx(0, 1);
        let reg = Register::new("r", 0, 2);
        let rho = tomograph(&prep, &reg, 4000, 2);
        // Fidelity with the ideal Bell state.
        let mut ideal = StateVector::zero_state(2);
        ideal.apply_circuit(&prep);
        let f = rho.fidelity_with_pure(&ideal);
        assert!(f > 0.95, "Bell reconstruction fidelity {f}");
        // Coherences present: |rho_03| ≈ 1/2.
        assert!(rho.entry(0, 3).norm() > 0.4);
    }

    #[test]
    fn tomograph_subregister_of_entangled_state() {
        // Tomograph one half of a Bell pair: must come out maximally
        // mixed (purity ≈ 1/2) — tomography sees the reduced state.
        let mut prep = Circuit::new(2);
        prep.h(0).cx(0, 1);
        let reg = Register::new("half", 0, 1);
        let rho = tomograph(&prep, &reg, 4000, 3);
        assert!((rho.trace().re - 1.0).abs() < 0.05);
        assert!(
            (rho.purity() - 0.5).abs() < 0.1,
            "reduced Bell half should be mixed, purity {}",
            rho.purity()
        );
    }

    #[test]
    fn tomograph_plus_state_coherence() {
        let mut prep = Circuit::new(1);
        prep.h(0);
        let reg = Register::new("r", 0, 1);
        let rho = tomograph(&prep, &reg, 3000, 4);
        // ρ ≈ |+><+|: off-diagonal ≈ 1/2, diagonal ≈ 1/2 each.
        assert!((rho.entry(0, 1).re - 0.5).abs() < 0.06);
        assert!((rho.probabilities()[0] - 0.5).abs() < 0.06);
    }

    #[test]
    fn exact_expectations_give_exact_reconstruction() {
        // Feed exact (infinite-shot) expectations by computing counts
        // from exact probabilities scaled to a large integer total.
        let mut prep = Circuit::new(1);
        prep.h(0);
        prep.s(0); // |0> + i|1>, an Y eigenstate
        let reg = Register::new("r", 0, 1);
        let n = 1;
        let mut data = Vec::new();
        for basis in measurement_bases(1) {
            let mut state = StateVector::zero_state(n);
            state.apply_circuit(&prep);
            state.apply_circuit(&basis_rotation(n, &reg, &basis));
            let mut counts = Counts::new();
            for (i, p) in state.probabilities().iter().enumerate() {
                counts.add(i, (p * 1_000_000.0).round() as u64);
            }
            data.push((basis, counts));
        }
        let rho = reconstruct(1, &data);
        let mut ideal = StateVector::zero_state(1);
        ideal.apply_circuit(&prep);
        assert!(rho.fidelity_with_pure(&ideal) > 0.999);
    }

    #[test]
    #[should_panic(expected = "limited to 5 qubits")]
    fn size_limit_enforced() {
        let _ = reconstruct(6, &[]);
    }
}
