//! Circuit execution with checkpointed trajectory replay.
//!
//! Monte-Carlo noise simulation runs the *same* circuit thousands of
//! times per instance, differing only in a sparse set of injected error
//! gates ("insertions"). At realistic error rates most trajectories have
//! their first error deep into the circuit — so re-simulating the clean
//! prefix every time is wasted work.
//!
//! [`CheckpointTable`] snapshots the noiseless state every `interval`
//! gates. Replaying a trajectory whose first insertion follows gate `g`
//! starts from checkpoint `⌊g/interval⌋` instead of from the initial
//! state. The memory/speed trade-off is controlled by a byte budget
//! (more checkpoints, shorter replays).
//!
//! The table itself is immutable after construction, so one table is
//! shared by reference across all trajectory replays of an instance —
//! including rayon-parallel replays.

use crate::batched::BatchedState;
use crate::fused::FusedPlan;
use crate::statevector::StateVector;
use qfab_circuit::{Circuit, Gate};
use qfab_telemetry::trace;

/// An error gate injected *after* the circuit gate at `after_gate`
/// (matching Qiskit's convention of attaching gate error following the
/// ideal gate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Insertion {
    /// Index into the circuit's gate list after which `gate` fires.
    pub after_gate: usize,
    /// The injected error gate (a Pauli, for the depolarizing channels).
    pub gate: Gate,
}

/// Immutable table of noiseless intermediate states.
#[derive(Clone, Debug)]
pub struct CheckpointTable {
    circuit: Circuit,
    /// The circuit lowered once into a fused op list; every trajectory
    /// replay executes this plan instead of re-dispatching gates.
    plan: FusedPlan,
    /// `states[j]` is the state after applying gates `[0, j·interval)`.
    states: Vec<StateVector>,
    /// State after the full circuit.
    final_state: StateVector,
    interval: usize,
}

impl CheckpointTable {
    /// Default memory budget for checkpoint storage (16 MiB), chosen so
    /// that one table per rayon worker stays comfortably in RAM for the
    /// paper's 16–17 qubit circuits.
    pub const DEFAULT_BUDGET_BYTES: usize = 16 << 20;

    /// Builds a table with an explicit checkpoint interval (in gates).
    pub fn build(circuit: Circuit, initial: &StateVector, interval: usize) -> Self {
        assert!(interval >= 1, "interval must be at least 1");
        let _span = crate::telem::metrics().map(|m| m.checkpoint_build_ns.span());
        let trace_span = trace::span("sim.checkpoint.build");
        let mut state = initial.clone();
        let mut states = vec![state.clone()];
        for (i, gate) in circuit.gates().iter().enumerate() {
            state.apply_gate(gate);
            if (i + 1) % interval == 0 && i + 1 < circuit.len() {
                states.push(state.clone());
            }
        }
        if let Some(m) = crate::telem::metrics() {
            let state_bytes = std::mem::size_of_val(initial.amplitudes());
            m.checkpoint_builds.incr();
            m.checkpoint_states.add(states.len() as u64);
            let bytes = ((states.len() + 1) * state_bytes) as u64;
            m.checkpoint_bytes.set(bytes);
            m.checkpoint_bytes_peak
                .set(m.checkpoint_bytes_peak.get().max(bytes));
        }
        trace_span.end_with_args(&[
            ("states", trace::ArgValue::U64(states.len() as u64)),
            ("gates", trace::ArgValue::U64(circuit.len() as u64)),
        ]);
        let plan = FusedPlan::compile(&circuit);
        Self {
            circuit,
            plan,
            states,
            final_state: state,
            interval,
        }
    }

    /// Builds a table whose total retained-state bytes — interior
    /// checkpoints plus the always-kept initial and final states — fit in
    /// `budget_bytes`.
    ///
    /// The initial and final states are the irreducible minimum, so a
    /// budget smaller than two statevectors still retains exactly those
    /// two and nothing more.
    pub fn build_with_budget(circuit: Circuit, initial: &StateVector, budget_bytes: usize) -> Self {
        let state_bytes = std::mem::size_of_val(initial.amplitudes());
        // Every retained state counts: `states[0]` (initial), interior
        // checkpoints, and the separate noiseless final state.
        let max_states = (budget_bytes / state_bytes.max(1)).max(2);
        let interior_allowed = max_states - 2;
        let gates = circuit.len();
        // `build` stores one interior checkpoint per `interval` gates:
        // floor((gates − 1) / interval) of them. Pick the smallest
        // interval that stays within the allowance.
        let interval = if interior_allowed == 0 || gates <= 1 {
            gates.max(1)
        } else {
            gates.saturating_sub(1).div_ceil(interior_allowed).max(1)
        };
        Self::build(circuit, initial, interval)
    }

    /// The circuit this table was built for.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The compiled execution plan replays run against.
    pub fn plan(&self) -> &FusedPlan {
        &self.plan
    }

    /// The checkpoint interval in gates.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Number of stored checkpoints (including the initial state).
    pub fn num_checkpoints(&self) -> usize {
        self.states.len()
    }

    /// The noiseless final state.
    pub fn final_state(&self) -> &StateVector {
        &self.final_state
    }

    /// Replays the circuit with error-gate insertions and returns the
    /// final state.
    ///
    /// `insertions` must be sorted ascending by `after_gate` and every
    /// `after_gate` must be a valid gate index. With no insertions this
    /// returns a clone of the noiseless final state without replaying.
    pub fn run_with_insertions(&self, insertions: &[Insertion]) -> StateVector {
        if insertions.is_empty() {
            if let Some(m) = crate::telem::metrics() {
                m.replays_clean.incr();
            }
            return self.final_state.clone();
        }
        debug_assert!(
            insertions
                .windows(2)
                .all(|w| w[0].after_gate <= w[1].after_gate),
            "insertions must be sorted by position"
        );
        let first = insertions[0].after_gate;
        assert!(
            insertions.last().unwrap().after_gate < self.circuit.len(),
            "insertion index out of range"
        );
        // Latest checkpoint at or before `first`: checkpoint j holds the
        // state after j·interval gates, so we need j·interval ≤ first.
        let j = (first / self.interval).min(self.states.len() - 1);
        if let Some(m) = crate::telem::metrics() {
            m.replays.incr();
            m.replay_gates
                .record((self.circuit.len() - j * self.interval) as u64);
        }
        let _trace = trace::span_detail_args(
            "sim.replay",
            &[
                ("insertions", trace::ArgValue::U64(insertions.len() as u64)),
                (
                    "replay_gates",
                    trace::ArgValue::U64((self.circuit.len() - j * self.interval) as u64),
                ),
            ],
        );
        let mut state = self.states[j].clone();
        self.plan
            .run_from(&mut state, j * self.interval, insertions);
        state
    }

    /// The checkpoint a replay of `insertions` would restart from, or
    /// `None` for an empty trajectory (served from the final state).
    /// Shots batched together must share this index so the whole batch
    /// replays the same gate range.
    pub fn checkpoint_index(&self, insertions: &[Insertion]) -> Option<usize> {
        let first = insertions.first()?.after_gate;
        Some((first / self.interval).min(self.states.len() - 1))
    }

    /// Replays a whole batch of trajectories from checkpoint `j`, lane
    /// `l` receiving `lanes[l]`'s insertions.
    ///
    /// Every lane must restart from `j` (`checkpoint_index` — the
    /// caller groups shots by it) and carry at least one insertion.
    /// Each lane of the returned batch is bit-identical to
    /// [`run_with_insertions`](Self::run_with_insertions) on that
    /// lane's insertions.
    pub fn run_batch_from(&self, j: usize, lanes: &[&[Insertion]]) -> BatchedState {
        assert!(!lanes.is_empty(), "empty batch");
        assert!(j < self.states.len(), "checkpoint index out of range");
        debug_assert!(
            lanes
                .iter()
                .all(|ins| self.checkpoint_index(ins) == Some(j)),
            "batched lanes must share a checkpoint"
        );
        let replay_gates = (self.circuit.len() - j * self.interval) as u64;
        if let Some(m) = crate::telem::metrics() {
            // Per-trajectory counters keep their sequential semantics.
            m.replays.add(lanes.len() as u64);
            for _ in lanes {
                m.replay_gates.record(replay_gates);
            }
            m.batch_batches.incr();
            m.batch_lanes.add(lanes.len() as u64);
        }
        let _trace = trace::span_detail_args(
            "sim.replay_batch",
            &[
                ("lanes", trace::ArgValue::U64(lanes.len() as u64)),
                ("replay_gates", trace::ArgValue::U64(replay_gates)),
            ],
        );
        let mut batch = BatchedState::broadcast(&self.states[j], lanes.len());
        self.plan.run_batch(&mut batch, j * self.interval, lanes);
        batch
    }

    /// Fraction of gate applications avoided for a trajectory whose first
    /// insertion follows gate `first` (diagnostic for the ablation bench).
    pub fn savings_fraction(&self, first: usize) -> f64 {
        if self.circuit.is_empty() {
            return 0.0;
        }
        let j = (first / self.interval).min(self.states.len() - 1);
        (j * self.interval) as f64 / self.circuit.len() as f64
    }
}

/// Runs a circuit on a copy of `initial` (no checkpoints, no noise).
pub fn run_clean(circuit: &Circuit, initial: &StateVector) -> StateVector {
    let mut state = initial.clone();
    state.apply_circuit(circuit);
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_math::approx::approx_eq_slice;

    fn sample_circuit(n: u32, gates: usize) -> Circuit {
        let mut c = Circuit::new(n);
        // Deterministic pseudo-random but meaningful gate sequence.
        for i in 0..gates {
            match i % 5 {
                0 => c.h((i as u32) % n),
                1 => c.cx((i as u32) % n, ((i as u32) + 1) % n),
                2 => c.rz(0.1 + (i as f64) * 0.01, (i as u32 + 2) % n),
                3 => c.cphase(0.3, (i as u32) % n, ((i as u32) + 2) % n),
                _ => c.x((i as u32 + 1) % n),
            };
        }
        c
    }

    /// Reference: naive full replay with insertions.
    fn naive_run(
        circuit: &Circuit,
        initial: &StateVector,
        insertions: &[Insertion],
    ) -> StateVector {
        let mut state = initial.clone();
        let mut pending = insertions.iter().peekable();
        for (i, gate) in circuit.gates().iter().enumerate() {
            state.apply_gate(gate);
            while pending.peek().is_some_and(|ins| ins.after_gate == i) {
                state.apply_gate(&pending.next().unwrap().gate);
            }
        }
        state
    }

    #[test]
    fn empty_insertions_return_clean_state() {
        let c = sample_circuit(4, 20);
        let init = StateVector::zero_state(4);
        let table = CheckpointTable::build(c.clone(), &init, 5);
        let clean = run_clean(&c, &init);
        let replay = table.run_with_insertions(&[]);
        assert!(approx_eq_slice(
            replay.amplitudes(),
            clean.amplitudes(),
            1e-12
        ));
    }

    #[test]
    fn replay_matches_naive_for_every_insertion_point() {
        let c = sample_circuit(4, 23);
        let init = StateVector::zero_state(4);
        let table = CheckpointTable::build(c.clone(), &init, 4);
        for g in 0..c.len() {
            let ins = [Insertion {
                after_gate: g,
                gate: Gate::X(1),
            }];
            let fast = table.run_with_insertions(&ins);
            let slow = naive_run(&c, &init, &ins);
            assert!(
                approx_eq_slice(fast.amplitudes(), slow.amplitudes(), 1e-10),
                "divergence at insertion after gate {g}"
            );
        }
    }

    #[test]
    fn replay_with_multiple_insertions() {
        let c = sample_circuit(5, 31);
        let init = StateVector::zero_state(5);
        let table = CheckpointTable::build(c.clone(), &init, 7);
        let ins = [
            Insertion {
                after_gate: 3,
                gate: Gate::Z(0),
            },
            Insertion {
                after_gate: 3,
                gate: Gate::X(2),
            },
            Insertion {
                after_gate: 17,
                gate: Gate::Y(4),
            },
            Insertion {
                after_gate: 30,
                gate: Gate::X(1),
            },
        ];
        let fast = table.run_with_insertions(&ins);
        let slow = naive_run(&c, &init, &ins);
        assert!(approx_eq_slice(fast.amplitudes(), slow.amplitudes(), 1e-10));
    }

    #[test]
    fn interval_one_checkpoints_every_gate() {
        let c = sample_circuit(3, 10);
        let init = StateVector::zero_state(3);
        let table = CheckpointTable::build(c, &init, 1);
        // 10 gates: initial + after gates 1..9 (final not stored in list).
        assert_eq!(table.num_checkpoints(), 10);
        assert_eq!(table.interval(), 1);
    }

    #[test]
    fn budgeted_build_respects_memory() {
        let c = sample_circuit(6, 64);
        let init = StateVector::zero_state(6); // 64 amps · 16 B = 1 KiB
                                               // 4 KiB budget -> at most 4 checkpoints -> interval >= 16.
        let table = CheckpointTable::build_with_budget(c, &init, 4 << 10);
        assert!(table.num_checkpoints() <= 4);
        assert!(table.interval() >= 16);
    }

    /// Bytes held by the table: interior checkpoints + initial + final.
    fn retained_bytes(table: &CheckpointTable, state_bytes: usize) -> usize {
        (table.num_checkpoints() + 1) * state_bytes
    }

    #[test]
    fn one_gate_circuit_stays_within_two_state_budget() {
        // Regression: the initial state in `states[0]` used to escape the
        // budget accounting, overshooting by one full statevector.
        let mut c = Circuit::new(4);
        c.h(0);
        let init = StateVector::zero_state(4);
        let sb = std::mem::size_of_val(init.amplitudes());
        let table = CheckpointTable::build_with_budget(c, &init, 2 * sb);
        assert!(
            retained_bytes(&table, sb) <= 2 * sb,
            "retained {} bytes > budget {}",
            retained_bytes(&table, sb),
            2 * sb
        );
    }

    #[test]
    fn budget_boundaries_never_overshoot() {
        let c = sample_circuit(5, 48);
        let init = StateVector::zero_state(5);
        let sb = std::mem::size_of_val(init.amplitudes());
        // Exact multiples, off-by-one around each boundary, and a
        // half-state remainder: retained bytes must never exceed budget.
        for k in 2..=10usize {
            for budget in [k * sb, k * sb + 1, k * sb + sb - 1, k * sb + sb / 2] {
                let table = CheckpointTable::build_with_budget(c.clone(), &init, budget);
                assert!(
                    retained_bytes(&table, sb) <= budget,
                    "budget {budget}: retained {} bytes, {} checkpoints, interval {}",
                    retained_bytes(&table, sb),
                    table.num_checkpoints(),
                    table.interval()
                );
            }
        }
        // Sub-minimum budgets retain exactly initial + final.
        for budget in [0, 1, sb, 2 * sb - 1] {
            let table = CheckpointTable::build_with_budget(c.clone(), &init, budget);
            assert_eq!(table.num_checkpoints(), 1, "budget {budget}");
        }
    }

    #[test]
    fn savings_scale_with_insertion_position() {
        let c = sample_circuit(4, 40);
        let init = StateVector::zero_state(4);
        let table = CheckpointTable::build(c, &init, 10);
        assert_eq!(table.savings_fraction(0), 0.0);
        assert_eq!(table.savings_fraction(9), 0.0);
        assert_eq!(table.savings_fraction(10), 0.25);
        assert_eq!(table.savings_fraction(39), 0.75);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_insertion() {
        let c = sample_circuit(3, 5);
        let init = StateVector::zero_state(3);
        let table = CheckpointTable::build(c, &init, 2);
        let _ = table.run_with_insertions(&[Insertion {
            after_gate: 5,
            gate: Gate::X(0),
        }]);
    }

    #[test]
    fn final_state_agrees_with_run_clean() {
        let c = sample_circuit(5, 17);
        let init = StateVector::zero_state(5);
        let table = CheckpointTable::build(c.clone(), &init, 6);
        let clean = run_clean(&c, &init);
        assert!(approx_eq_slice(
            table.final_state().amplitudes(),
            clean.amplitudes(),
            1e-12
        ));
    }
}
