//! Exact density-matrix simulation for small systems.
//!
//! The Monte-Carlo trajectory sampler in `qfab-noise` is an *estimator*
//! of the true noise channel. This engine evolves the density matrix
//! exactly — `ρ → UρU†` for gates, `ρ → Σ_k K_k ρ K_k†` for channels —
//! so tests can verify the trajectory statistics converge to the exact
//! answer. It is O(4^n) in memory and O(8^n) per gate, so it is only
//! practical below ~10 qubits; the reproduction harness never uses it in
//! the hot path.

use crate::statevector::StateVector;
use qfab_circuit::gate::{Gate, GateMatrix};
use qfab_math::bits::{dim, gather_bits, scatter_bits};
use qfab_math::complex::Complex64;

/// A dense `2^n × 2^n` density operator (row-major).
#[derive(Clone, Debug)]
pub struct DensityMatrix {
    n: u32,
    d: usize,
    rho: Vec<Complex64>,
}

impl DensityMatrix {
    /// The pure state `|index><index|`.
    pub fn basis_state(n: u32, index: usize) -> Self {
        assert!((1..=10).contains(&n), "density matrix limited to 10 qubits");
        let d = dim(n);
        assert!(index < d);
        let mut rho = vec![Complex64::ZERO; d * d];
        rho[index * d + index] = Complex64::ONE;
        Self { n, d, rho }
    }

    /// The projector onto a pure state: `ρ = |ψ><ψ|`.
    pub fn from_statevector(psi: &StateVector) -> Self {
        let n = psi.num_qubits();
        assert!(n <= 10, "density matrix limited to 10 qubits");
        let d = dim(n);
        let a = psi.amplitudes();
        let mut rho = vec![Complex64::ZERO; d * d];
        for r in 0..d {
            for c in 0..d {
                rho[r * d + c] = a[r] * a[c].conj();
            }
        }
        Self { n, d, rho }
    }

    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(n: u32) -> Self {
        assert!((1..=10).contains(&n));
        let d = dim(n);
        let mut rho = vec![Complex64::ZERO; d * d];
        let p = Complex64::from_real(1.0 / d as f64);
        for i in 0..d {
            rho[i * d + i] = p;
        }
        Self { n, d, rho }
    }

    /// Builds a density matrix from a raw row-major `2^n × 2^n` entry
    /// vector, without physicality checks (finite-shot tomography can
    /// produce slightly non-physical estimates).
    pub fn from_raw(n: u32, rho: Vec<Complex64>) -> Self {
        assert!((1..=10).contains(&n));
        let d = dim(n);
        assert_eq!(rho.len(), d * d, "raw density matrix has wrong length");
        Self { n, d, rho }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.n
    }

    /// The matrix entry `ρ[r][c]`.
    pub fn entry(&self, r: usize, c: usize) -> Complex64 {
        self.rho[r * self.d + c]
    }

    /// `Tr ρ` (1 for any physical state).
    pub fn trace(&self) -> Complex64 {
        (0..self.d).map(|i| self.rho[i * self.d + i]).sum()
    }

    /// `Tr ρ²` — 1 for pure states, `1/2^n` for the maximally mixed.
    pub fn purity(&self) -> f64 {
        let mut acc = Complex64::ZERO;
        for r in 0..self.d {
            for c in 0..self.d {
                acc += self.rho[r * self.d + c] * self.rho[c * self.d + r];
            }
        }
        acc.re
    }

    /// The diagonal as Born-rule probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.d).map(|i| self.rho[i * self.d + i].re).collect()
    }

    /// Fidelity with a pure state: `<ψ|ρ|ψ>`.
    pub fn fidelity_with_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(psi.num_qubits(), self.n);
        let a = psi.amplitudes();
        let mut acc = Complex64::ZERO;
        for r in 0..self.d {
            let mut row = Complex64::ZERO;
            for (c, &ac) in a.iter().enumerate() {
                row += self.rho[r * self.d + c] * ac;
            }
            acc += a[r].conj() * row;
        }
        acc.re
    }

    /// Applies a unitary gate: `ρ → UρU†` via qubit-local row/column
    /// updates — O(d²·2^m) for an m-qubit gate, instead of expanding to
    /// a full `d×d` operator and paying two dense O(d³) matmuls
    /// (O(8^n) per gate, which made circuit-level cross-validation
    /// unusable beyond ~6 qubits).
    pub fn apply_gate(&mut self, gate: &Gate) {
        let qubits = gate.qubits();
        let flat: Vec<Complex64> = match gate.matrix() {
            GateMatrix::One(m) => m.m.concat(),
            GateMatrix::Two(m) => m.m.concat(),
            GateMatrix::Three(m) => m.m.concat(),
        };
        self.apply_local_unitary(qubits.as_slice(), &flat);
    }

    /// The original expand-to-full-space gate path, kept as the
    /// reference implementation for equivalence regression tests.
    pub fn apply_gate_via_expand(&mut self, gate: &Gate) {
        let u = expand_operator(self.n, gate);
        self.apply_full_unitary(&u);
    }

    /// `ρ → UρU†` for a local row-major `2^m × 2^m` unitary over `ops`,
    /// touching only the `2^m`-dimensional subspaces the gate acts on.
    ///
    /// Two complete passes: first `ρ ← U·ρ` (every column's `ops`
    /// subspace of rows), then `ρ ← ρ·U†` (every row's `ops` subspace
    /// of columns) — the second pass must only start once the first has
    /// rewritten the whole matrix.
    fn apply_local_unitary(&mut self, ops: &[u32], flat: &[Complex64]) {
        let ld = 1usize << ops.len();
        debug_assert_eq!(flat.len(), ld * ld);
        let d = self.d;
        let mask: usize = ops.iter().map(|&q| 1usize << q).sum();
        let mut idx = vec![0usize; ld];
        let mut v = vec![Complex64::ZERO; ld];
        for base in 0..d {
            if base & mask != 0 {
                continue;
            }
            for (l, slot) in idx.iter_mut().enumerate() {
                *slot = scatter_bits(base, l, ops);
            }
            for c in 0..d {
                for (slot, &i) in v.iter_mut().zip(&idx) {
                    *slot = self.rho[i * d + c];
                }
                for l in 0..ld {
                    let mut acc = Complex64::ZERO;
                    for k in 0..ld {
                        acc = flat[l * ld + k].mul_add(v[k], acc);
                    }
                    self.rho[idx[l] * d + c] = acc;
                }
            }
        }
        for base in 0..d {
            if base & mask != 0 {
                continue;
            }
            for (l, slot) in idx.iter_mut().enumerate() {
                *slot = scatter_bits(base, l, ops);
            }
            for r in 0..d {
                let row = &mut self.rho[r * d..(r + 1) * d];
                for (slot, &i) in v.iter_mut().zip(&idx) {
                    *slot = row[i];
                }
                // (ρU†)[r][idx[l]] = Σ_k ρ[r][idx[k]] · conj(U[l][k]).
                for l in 0..ld {
                    let mut acc = Complex64::ZERO;
                    for k in 0..ld {
                        acc = v[k].mul_add(flat[l * ld + k].conj(), acc);
                    }
                    row[idx[l]] = acc;
                }
            }
        }
    }

    /// Applies every gate of a circuit in order.
    pub fn apply_circuit(&mut self, circuit: &qfab_circuit::Circuit) {
        assert!(circuit.num_qubits() <= self.n);
        for g in circuit.gates() {
            self.apply_gate(g);
        }
    }

    /// Applies a quantum channel given by Kraus operators over the listed
    /// qubits: `ρ → Σ_k K_k ρ K_k†`. Each `kraus[k]` is a row-major
    /// `2^m × 2^m` matrix over the `m = qubits.len()` listed qubits (first
    /// listed qubit = least significant local bit, the workspace-wide
    /// convention).
    pub fn apply_kraus(&mut self, qubits: &[u32], kraus: &[Vec<Complex64>]) {
        assert!(
            !kraus.is_empty(),
            "channel needs at least one Kraus operator"
        );
        let ld = 1usize << qubits.len();
        let mut acc = vec![Complex64::ZERO; self.d * self.d];
        for k in kraus {
            assert_eq!(k.len(), ld * ld, "Kraus operator dimension mismatch");
            let full = expand_flat(self.n, qubits, k);
            // acc += K ρ K†
            let kr = matmul(&full, &self.rho, self.d);
            let krk = matmul_adjoint_rhs(&kr, &full, self.d);
            for (a, b) in acc.iter_mut().zip(krk) {
                *a += b;
            }
        }
        self.rho = acc;
    }

    fn apply_full_unitary(&mut self, u: &[Complex64]) {
        let ur = matmul(u, &self.rho, self.d);
        self.rho = matmul_adjoint_rhs(&ur, u, self.d);
    }
}

/// Expands a gate to a full `2^n × 2^n` row-major matrix.
pub fn expand_operator(n: u32, gate: &Gate) -> Vec<Complex64> {
    let qubits = gate.qubits();
    let ops = qubits.as_slice();
    let flat: Vec<Complex64> = match gate.matrix() {
        GateMatrix::One(m) => m.m.concat(),
        GateMatrix::Two(m) => m.m.concat(),
        GateMatrix::Three(m) => m.m.concat(),
    };
    expand_flat(n, ops, &flat)
}

/// Expands a local row-major operator over `ops` to the full space.
fn expand_flat(n: u32, ops: &[u32], flat: &[Complex64]) -> Vec<Complex64> {
    let d = dim(n);
    let ld = 1usize << ops.len();
    assert_eq!(flat.len(), ld * ld);
    let mask: usize = ops.iter().map(|&q| 1usize << q).sum();
    let mut out = vec![Complex64::ZERO; d * d];
    for r in 0..d {
        for c in 0..d {
            if r & !mask == c & !mask {
                let lr = gather_bits(r, ops);
                let lc = gather_bits(c, ops);
                out[r * d + c] = flat[lr * ld + lc];
            }
        }
    }
    out
}

/// Row-major `d×d` product `a · b`.
fn matmul(a: &[Complex64], b: &[Complex64], d: usize) -> Vec<Complex64> {
    let mut out = vec![Complex64::ZERO; d * d];
    for r in 0..d {
        for k in 0..d {
            let av = a[r * d + k];
            if av.norm_sqr() == 0.0 {
                continue;
            }
            let brow = &b[k * d..(k + 1) * d];
            let orow = &mut out[r * d..(r + 1) * d];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o = av.mul_add(*bv, *o);
            }
        }
    }
    out
}

/// Row-major `d×d` product `a · b†`.
fn matmul_adjoint_rhs(a: &[Complex64], b: &[Complex64], d: usize) -> Vec<Complex64> {
    let mut out = vec![Complex64::ZERO; d * d];
    for r in 0..d {
        for c in 0..d {
            let mut acc = Complex64::ZERO;
            for k in 0..d {
                // (b†)[k][c] = conj(b[c][k])
                acc = a[r * d + k].mul_add(b[c * d + k].conj(), acc);
            }
            out[r * d + c] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_circuit::Circuit;

    const TOL: f64 = 1e-10;

    #[test]
    fn pure_state_projector_properties() {
        let mut psi = StateVector::zero_state(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        psi.apply_circuit(&c);
        let rho = DensityMatrix::from_statevector(&psi);
        assert!((rho.trace().re - 1.0).abs() < TOL);
        assert!((rho.purity() - 1.0).abs() < TOL);
        assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < TOL);
    }

    #[test]
    fn maximally_mixed_properties() {
        let rho = DensityMatrix::maximally_mixed(3);
        assert!((rho.trace().re - 1.0).abs() < TOL);
        assert!((rho.purity() - 0.125).abs() < TOL);
        let probs = rho.probabilities();
        for p in probs {
            assert!((p - 0.125).abs() < TOL);
        }
    }

    #[test]
    fn unitary_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cphase(0.7, 1, 2).t(2).swap(0, 2);
        let mut psi = StateVector::zero_state(3);
        psi.apply_circuit(&c);
        let mut rho = DensityMatrix::basis_state(3, 0);
        rho.apply_circuit(&c);
        let probs_psi = psi.probabilities();
        let probs_rho = rho.probabilities();
        for (a, b) in probs_psi.iter().zip(&probs_rho) {
            assert!((a - b).abs() < TOL);
        }
        assert!((rho.purity() - 1.0).abs() < TOL);
        assert!((rho.fidelity_with_pure(&psi) - 1.0).abs() < TOL);
    }

    #[test]
    fn unitary_preserves_trace_and_purity() {
        let mut rho = DensityMatrix::maximally_mixed(2);
        rho.apply_gate(&Gate::H(0));
        rho.apply_gate(&Gate::Cx {
            control: 0,
            target: 1,
        });
        assert!((rho.trace().re - 1.0).abs() < TOL);
        assert!((rho.purity() - 0.25).abs() < TOL);
    }

    #[test]
    fn bit_flip_channel_mixes() {
        // Kraus: {√(1−p)·I, √p·X} on qubit 0 of |0><0|.
        let p = 0.3f64;
        let i = Complex64::from_real((1.0 - p).sqrt());
        let x = Complex64::from_real(p.sqrt());
        let k0 = vec![i, Complex64::ZERO, Complex64::ZERO, i];
        let k1 = vec![Complex64::ZERO, x, x, Complex64::ZERO];
        let mut rho = DensityMatrix::basis_state(1, 0);
        rho.apply_kraus(&[0], &[k0, k1]);
        let probs = rho.probabilities();
        assert!((probs[0] - 0.7).abs() < TOL);
        assert!((probs[1] - 0.3).abs() < TOL);
        assert!((rho.trace().re - 1.0).abs() < TOL);
        assert!(rho.purity() < 1.0);
    }

    #[test]
    fn channel_on_subsystem_leaves_rest_alone() {
        // Bit-flip on qubit 1 of |00><00| flips only bit 1.
        let p = 0.25f64;
        let i = Complex64::from_real((1.0 - p).sqrt());
        let x = Complex64::from_real(p.sqrt());
        let k0 = vec![i, Complex64::ZERO, Complex64::ZERO, i];
        let k1 = vec![Complex64::ZERO, x, x, Complex64::ZERO];
        let mut rho = DensityMatrix::basis_state(2, 0);
        rho.apply_kraus(&[1], &[k0, k1]);
        let probs = rho.probabilities();
        assert!((probs[0b00] - 0.75).abs() < TOL);
        assert!((probs[0b10] - 0.25).abs() < TOL);
        assert!(probs[0b01].abs() < TOL);
        assert!(probs[0b11].abs() < TOL);
    }

    #[test]
    fn expand_operator_matches_statevector_kernels() {
        // Apply an expanded CX to a random state via explicit matvec and
        // compare against the fast kernel.
        let gate = Gate::Cx {
            control: 2,
            target: 0,
        };
        let n = 3;
        let d = dim(n);
        let u = expand_operator(n, &gate);
        let mut rng = qfab_math::rng::Xoshiro256StarStar::new(5);
        let amps: Vec<Complex64> = (0..d)
            .map(|_| qfab_math::complex::c64(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        let amps: Vec<Complex64> = amps.into_iter().map(|a| a / norm).collect();
        let mut via_matrix = vec![Complex64::ZERO; d];
        for r in 0..d {
            for c in 0..d {
                via_matrix[r] += u[r * d + c] * amps[c];
            }
        }
        let mut sv = StateVector::from_amplitudes(n, amps);
        sv.apply_gate(&gate);
        assert!(qfab_math::approx::approx_eq_slice(
            sv.amplitudes(),
            &via_matrix,
            TOL
        ));
    }

    /// A mildly mixed but deterministic state: the average of two pure
    /// projectors prepared by different circuits.
    fn mixed_state(n: u32) -> DensityMatrix {
        let mut a = StateVector::zero_state(n);
        let mut ca = Circuit::new(n);
        ca.h(0).cx(0, n - 1).t(1).rz(0.37, n - 1);
        a.apply_circuit(&ca);
        let mut b = StateVector::zero_state(n);
        let mut cb = Circuit::new(n);
        cb.x(1).h(n - 1).cphase(0.9, 0, 1).ry(-0.6, 0);
        b.apply_circuit(&cb);
        let ra = DensityMatrix::from_statevector(&a);
        let rb = DensityMatrix::from_statevector(&b);
        let d = dim(n);
        let rho: Vec<Complex64> = (0..d * d)
            .map(|i| (ra.rho[i] + rb.rho[i]) * Complex64::from_real(0.5))
            .collect();
        DensityMatrix::from_raw(n, rho)
    }

    /// The local-update gate path must reproduce the expand-everything
    /// path. Permutation/diagonal gates have at most one nonzero entry
    /// per operator row, so both paths compute a single product per
    /// entry and the probabilities match to the last bit (`==`, which
    /// tolerates only a signed-zero difference); dense gates differ in
    /// accumulation order, so they get a tight tolerance instead.
    #[test]
    fn local_gate_update_matches_expand_path() {
        use Gate::*;
        let n = 3;
        let exact: Vec<Gate> = vec![
            X(1),
            Z(2),
            S(0),
            T(1),
            Cx {
                control: 2,
                target: 0,
            },
            Cz(0, 1),
            Swap(0, 2),
            Cswap {
                control: 1,
                a: 0,
                b: 2,
            },
            Ccx {
                c0: 0,
                c1: 1,
                target: 2,
            },
        ];
        for gate in &exact {
            let mut fast = mixed_state(n);
            let mut slow = fast.clone();
            fast.apply_gate(gate);
            slow.apply_gate_via_expand(gate);
            for (i, (p, q)) in fast
                .probabilities()
                .iter()
                .zip(slow.probabilities())
                .enumerate()
            {
                assert!(*p == q, "{gate}: probability {i} drifted: {p} vs {q}");
            }
        }
        let dense: Vec<Gate> = vec![
            H(2),
            Sx(0),
            Ry(1, -1.2),
            U(2, 0.4, 1.1, -0.3),
            Ch {
                control: 0,
                target: 2,
            },
            Rz(1, 0.81),
            Cphase {
                control: 1,
                target: 2,
                theta: 0.63,
            },
        ];
        for gate in &dense {
            let mut fast = mixed_state(n);
            let mut slow = fast.clone();
            fast.apply_gate(gate);
            slow.apply_gate_via_expand(gate);
            for r in 0..fast.d {
                for c in 0..fast.d {
                    let diff = fast.entry(r, c) - slow.entry(r, c);
                    assert!(
                        diff.norm_sqr().sqrt() < 1e-12,
                        "{gate}: entry ({r},{c}) drifted"
                    );
                }
            }
        }
    }

    /// Whole-circuit agreement between the two gate paths on a mixed
    /// state, including trace/purity invariants.
    #[test]
    fn local_gate_update_matches_expand_path_over_circuit() {
        let n = 4;
        let mut c = Circuit::new(n);
        c.h(0)
            .cx(0, 2)
            .cphase(0.7, 1, 3)
            .t(2)
            .swap(1, 3)
            .ccphase(0.5, 0, 1, 2)
            .ry(0.33, 3)
            .x(1);
        let mut fast = mixed_state(n);
        let mut slow = fast.clone();
        for g in c.gates() {
            fast.apply_gate(g);
            slow.apply_gate_via_expand(g);
        }
        for r in 0..fast.d {
            for c in 0..fast.d {
                let diff = fast.entry(r, c) - slow.entry(r, c);
                assert!(diff.norm_sqr().sqrt() < 1e-11, "entry ({r},{c}) drifted");
            }
        }
        assert!((fast.trace().re - 1.0).abs() < TOL);
        assert!((fast.purity() - slow.purity()).abs() < TOL);
    }

    #[test]
    fn fidelity_decreases_under_depolarizing_kraus() {
        // Full 1q depolarizing with p: K = {√(1−3p/4)I, √(p/4)X, √(p/4)Y, √(p/4)Z}.
        let p = 0.5f64;
        let s0 = Complex64::from_real((1.0 - 3.0 * p / 4.0).sqrt());
        let sp = (p / 4.0).sqrt();
        let k_i = vec![s0, Complex64::ZERO, Complex64::ZERO, s0];
        let k_x = vec![
            Complex64::ZERO,
            Complex64::from_real(sp),
            Complex64::from_real(sp),
            Complex64::ZERO,
        ];
        let k_y = vec![
            Complex64::ZERO,
            qfab_math::complex::c64(0.0, -sp),
            qfab_math::complex::c64(0.0, sp),
            Complex64::ZERO,
        ];
        let k_z = vec![
            Complex64::from_real(sp),
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::from_real(-sp),
        ];
        let psi = StateVector::basis_state(1, 0);
        let mut rho = DensityMatrix::from_statevector(&psi);
        rho.apply_kraus(&[0], &[k_i, k_x, k_y, k_z]);
        // E(ρ) = (1−p)ρ + p·I/2 -> fidelity with |0> is 1 − p/2.
        assert!((rho.fidelity_with_pure(&psi) - (1.0 - p / 2.0)).abs() < TOL);
        assert!((rho.trace().re - 1.0).abs() < TOL);
    }
}
