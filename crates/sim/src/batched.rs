//! Batched trajectory state: K statevectors in one SoA pass.
//!
//! Monte-Carlo replay runs the *same* [`FusedPlan`](crate::FusedPlan)
//! over thousands of trajectories that differ only in a sparse set of
//! inserted Pauli gates. Replaying them one at a time makes every op
//! sweep the full statevector per trajectory — the sweep itself (mask
//! scan, chunk bookkeeping, table-index extraction) is pure overhead
//! repeated K times for identical control flow.
//!
//! [`BatchedState`] stores K statevectors interleaved amplitude-major:
//! `amps[i * K + lane]` is amplitude `i` of trajectory `lane`, so the K
//! values an op touches for a given amplitude index are contiguous in
//! memory. One sweep then advances all K trajectories, the per-index
//! overhead is amortized K-fold, and the contiguous lane blocks are
//! exactly the shape AVX2 complex arithmetic wants.
//!
//! ### Bit-exactness contract
//!
//! Every kernel here performs the *same arithmetic on the same values
//! in the same order* as its scalar counterpart in
//! [`StateVector`](crate::StateVector) — including the AVX2 paths,
//! which use no FMA and only commute multiplication operands and
//! addition operands (both bitwise-neutral under IEEE-754 for finite
//! values). A batched lane therefore ends **bit-identical** to the
//! sequential replay of that trajectory, which is what lets the noisy
//! pipeline batch shots without changing a single sampled outcome (and
//! without bumping the store's `CODE_SALT`).
//!
//! ### Runtime SIMD dispatch
//!
//! AVX2 is detected once at runtime (mirroring the BMI2 `pext` dispatch
//! in the scalar diag-table kernel) with a scalar fallback on every
//! path. Setting `QFAB_SIMD=off` (or `0` / `scalar`) in the environment
//! forces the scalar fallback — CI runs the equivalence suite in both
//! modes.

use crate::statevector::StateVector;
use qfab_circuit::gate::{Gate, GateMatrix};
use qfab_math::bits::dim;
use qfab_math::complex::Complex64;
use qfab_math::matrix::Mat2;
use std::sync::OnceLock;

/// Whether batched kernels should take the SIMD path by default:
/// requires x86-64 AVX2 at runtime and no `QFAB_SIMD=off` override.
pub fn simd_default() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("QFAB_SIMD").ok().as_deref() {
        Some("off") | Some("0") | Some("scalar") => false,
        _ => {
            #[cfg(target_arch = "x86_64")]
            {
                std::arch::is_x86_feature_detected!("avx2")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
    })
}

/// Default cache-tile budget in KiB for tiled op runs: an eighth of a
/// typical 2 MiB per-core L2 slice, so a tile group of up to
/// [`2^3`](crate::fused) partner tiles still closes inside L2 (the
/// `QFAB_TILE_KIB` sweep in EXPERIMENTS.md picked this point).
/// Overridable via `QFAB_TILE_KIB` (ablation knob — changes scheduling
/// only, never results).
const DEFAULT_TILE_KIB: usize = 256;

/// Tile width in amplitudes for a batch of `lanes` trajectories: the
/// largest power of two whose SoA tile (`width · lanes` complexes)
/// fits the tile budget.
fn default_tile_amps(lanes: usize) -> usize {
    static KIB: OnceLock<usize> = OnceLock::new();
    let kib = *KIB.get_or_init(|| {
        std::env::var("QFAB_TILE_KIB")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_TILE_KIB)
    });
    let amps = (kib.max(1) * 1024) / (std::mem::size_of::<Complex64>() * lanes);
    if amps <= 1 {
        1
    } else {
        1usize << (usize::BITS - 1 - amps.leading_zeros())
    }
}

/// `K` interleaved statevectors advancing through one shared plan.
#[derive(Clone, Debug)]
pub struct BatchedState {
    n: u32,
    lanes: usize,
    simd: bool,
    tile_amps: usize,
    /// SoA amplitudes: `amps[i * lanes + lane]`, length `2^n · lanes`.
    amps: Vec<Complex64>,
}

impl BatchedState {
    /// Replicates `state` into `lanes` identical trajectories.
    pub fn broadcast(state: &StateVector, lanes: usize) -> Self {
        assert!(lanes >= 1, "a batch needs at least one lane");
        let src = state.amplitudes();
        let mut amps = Vec::with_capacity(src.len() * lanes);
        for &a in src {
            amps.extend(std::iter::repeat_n(a, lanes));
        }
        let simd = simd_default();
        if let Some(m) = crate::telem::metrics() {
            m.batch_simd.set(simd as u64);
        }
        Self {
            n: state.num_qubits(),
            lanes,
            simd,
            tile_amps: default_tile_amps(lanes),
            amps,
        }
    }

    /// Amplitudes per cache tile for tiled op runs (see
    /// `FusedPlan::run_batch`). At least `dim()` means tiling is moot
    /// and runs apply op-by-op over the whole state.
    pub fn tile_amps(&self) -> usize {
        self.tile_amps
    }

    /// Overrides the tile width (power of two) — ablation and testing
    /// only; tiling never changes results, only memory scheduling.
    pub fn set_tile_amps(&mut self, amps: usize) {
        assert!(amps.is_power_of_two(), "tile width must be a power of two");
        self.tile_amps = amps;
    }

    /// Number of qubits per lane.
    pub fn num_qubits(&self) -> u32 {
        self.n
    }

    /// Number of trajectory lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Amplitudes per lane (`2^n`).
    pub fn dim(&self) -> usize {
        dim(self.n)
    }

    /// Whether kernels currently take the SIMD path.
    pub fn simd_active(&self) -> bool {
        self.simd
    }

    /// Forces the kernel dispatch (ablation / equivalence testing).
    /// Enabling SIMD where the CPU lacks AVX2 is ignored.
    pub fn set_simd(&mut self, enabled: bool) {
        #[cfg(target_arch = "x86_64")]
        {
            self.simd = enabled && std::arch::is_x86_feature_detected!("avx2");
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = enabled;
            self.simd = false;
        }
    }

    /// Copies one lane out as a dense amplitude vector.
    pub fn lane_amplitudes(&self, lane: usize) -> Vec<Complex64> {
        assert!(lane < self.lanes);
        self.amps[lane..]
            .iter()
            .step_by(self.lanes)
            .copied()
            .collect()
    }

    /// Extracts one lane into a scalar [`StateVector`] (sequential
    /// kernels — lane peeling happens under an outer batch loop).
    pub fn extract_lane(&self, lane: usize) -> StateVector {
        StateVector::from_amplitudes_raw(self.n, false, self.lane_amplitudes(lane))
    }

    /// Writes a scalar state back into one lane.
    pub fn store_lane(&mut self, lane: usize, state: &StateVector) {
        assert!(lane < self.lanes);
        assert_eq!(state.num_qubits(), self.n, "lane qubit count mismatch");
        for (dst, src) in self.amps[lane..]
            .iter_mut()
            .step_by(self.lanes)
            .zip(state.amplitudes())
        {
            *dst = *src;
        }
    }

    /// Applies `gate` to a single lane via the scalar kernels (exactly
    /// the arithmetic a sequential replay would use).
    pub fn apply_gate_lane(&mut self, lane: usize, gate: &Gate) {
        let mut sv = self.extract_lane(lane);
        sv.apply_gate(gate);
        self.store_lane(lane, &sv);
    }

    /// Applies `gate` to every lane in one SoA sweep. Mirrors the
    /// dispatch in `StateVector::apply_gate` — update both together.
    pub fn apply_gate(&mut self, gate: &Gate) {
        use Gate::*;
        match *gate {
            I(_) => {}
            Z(q) => self.phase_on_mask(1usize << q, 1usize << q, -Complex64::ONE),
            S(q) => self.phase_on_mask(1usize << q, 1usize << q, Complex64::I),
            Sdg(q) => self.phase_on_mask(1usize << q, 1usize << q, -Complex64::I),
            T(q) => self.phase_on_mask(
                1usize << q,
                1usize << q,
                Complex64::cis(std::f64::consts::FRAC_PI_4),
            ),
            Tdg(q) => self.phase_on_mask(
                1usize << q,
                1usize << q,
                Complex64::cis(-std::f64::consts::FRAC_PI_4),
            ),
            Phase(q, t) => self.phase_on_mask(1usize << q, 1usize << q, Complex64::cis(t)),
            Rz(q, t) => self.diag_pair(q, Complex64::cis(-t / 2.0), Complex64::cis(t / 2.0)),
            Cz(a, b) => {
                let m = (1usize << a) | (1usize << b);
                self.phase_on_mask(m, m, -Complex64::ONE)
            }
            Cphase {
                control,
                target,
                theta,
            } => {
                let m = (1usize << control) | (1usize << target);
                self.phase_on_mask(m, m, Complex64::cis(theta))
            }
            Ccphase {
                c0,
                c1,
                target,
                theta,
            } => {
                let m = (1usize << c0) | (1usize << c1) | (1usize << target);
                self.phase_on_mask(m, m, Complex64::cis(theta))
            }
            X(q) => self.apply_x(q),
            Cx { control, target } => self.controlled_x(1usize << control, target),
            Ccx { c0, c1, target } => self.controlled_x((1usize << c0) | (1usize << c1), target),
            Swap(a, b) => self.apply_swap(0, a, b),
            Cswap { control, a, b } => self.apply_swap(1usize << control, a, b),
            ref g if g.arity() == 1 => {
                let GateMatrix::One(m) = g.matrix() else {
                    unreachable!()
                };
                self.apply_mat2(g.qubits()[0], &m);
            }
            // Generic 2q/3q fallback: per-lane scalar (rare path —
            // transpiled circuits never reach it).
            ref g => {
                for lane in 0..self.lanes {
                    self.apply_gate_lane(lane, g);
                }
            }
        }
    }

    /// The measurement outcome of one lane for a pre-drawn uniform `u`:
    /// the same inverse-CDF scan as `ShotSampler::sample_once`, so a
    /// batched shot with the same `u` lands on the same outcome.
    pub fn sample_lane(&self, lane: usize, mut u: f64) -> usize {
        assert!(lane < self.lanes);
        let k = self.lanes;
        let d = self.dim();
        for i in 0..d {
            let p = self.amps[i * k + lane].norm_sqr();
            if u < p {
                return i;
            }
            u -= p;
        }
        // Floating-point slack: fall back to the last nonzero amplitude.
        (0..d)
            .rev()
            .find(|&i| self.amps[i * k + lane].norm_sqr() > 0.0)
            .unwrap_or(d - 1)
    }

    /// Multiplies every lane block whose amplitude index satisfies
    /// `index & mask == want` by `phase`.
    ///
    /// Amplitude indices that differ only below the mask's lowest set
    /// bit share the match decision, so the sweep tests once per *run*
    /// of `2^trailing_zeros(mask)` blocks and multiplies the whole
    /// contiguous run — per-block dispatch overhead amortizes into runs
    /// and the SIMD path sees one long contiguous multiply per run.
    pub(crate) fn phase_on_mask(&mut self, mask: usize, want: usize, phase: Complex64) {
        self.phase_on_mask_range(0, self.dim(), mask, want, phase);
    }

    /// [`Self::phase_on_mask`] restricted to amplitude indices
    /// `[t0, t1)` — a power-of-two width with `t0` aligned to it, so
    /// every run either closes within the tile or covers it whole (the
    /// mask bits above the tile are constant and tested via `t0`).
    pub(crate) fn phase_on_mask_range(
        &mut self,
        t0: usize,
        t1: usize,
        mask: usize,
        want: usize,
        phase: Complex64,
    ) {
        let width = t1 - t0;
        debug_assert!(width.is_power_of_two() && t0.is_multiple_of(width));
        let run = if mask == 0 {
            width
        } else {
            (1usize << mask.trailing_zeros()).min(width)
        };
        // A low mask bit (e.g. the control a CX-rewritten diagonal
        // drags in) makes runs short and the sweep decision-bound.
        // Peel the lowest bit off the match: iterate the much longer
        // runs of the remaining mask and multiply the peeled bit's
        // half decision-free, as strided chunks.
        if run < width {
            let rest = mask & (mask - 1);
            let rest_run = if rest == 0 {
                width
            } else {
                (1usize << rest.trailing_zeros()).min(width)
            };
            if rest_run > 2 * run {
                let simd = self.simd;
                let chunk = run * self.lanes;
                let stride = 2 * chunk;
                let offset = if want & (1usize << mask.trailing_zeros()) != 0 {
                    chunk
                } else {
                    0
                };
                let step = rest_run * self.lanes;
                let want_rest = want & rest;
                let amps = &mut self.amps[t0 * self.lanes..t1 * self.lanes];
                for (r, ch) in amps.chunks_mut(step).enumerate() {
                    if (t0 + r * rest_run) & rest != want_rest {
                        continue;
                    }
                    for w in ch[offset..].chunks_mut(stride) {
                        let c = &mut w[..chunk];
                        #[cfg(target_arch = "x86_64")]
                        if simd {
                            // SAFETY: `simd` is only true after a
                            // runtime AVX2 check.
                            unsafe { mul_block(c, phase) };
                            continue;
                        }
                        mul_scalar(c, phase);
                    }
                }
                return;
            }
        }
        let step = run * self.lanes;
        let amps = &mut self.amps[t0 * self.lanes..t1 * self.lanes];
        #[cfg(target_arch = "x86_64")]
        if self.simd {
            // SAFETY: `simd` is only true after a runtime AVX2 check.
            unsafe { phase_runs_avx2(amps, step, run, t0, mask, want, phase) };
            return;
        }
        for (r, ch) in amps.chunks_mut(step).enumerate() {
            if (t0 + r * run) & mask == want {
                mul_scalar(ch, phase);
            }
        }
    }

    /// Applies `diag(p0, p1)` on qubit `q` to every lane.
    pub(crate) fn diag_pair(&mut self, q: u32, p0: Complex64, p1: Complex64) {
        self.diag_pair_range(0, self.dim(), q, p0, p1);
    }

    /// [`Self::diag_pair`] restricted to the tile `[t0, t1)`. When the
    /// qubit sits at or above the tile width the whole tile shares one
    /// of the two phases (picked from the tile base).
    pub(crate) fn diag_pair_range(
        &mut self,
        t0: usize,
        t1: usize,
        q: u32,
        p0: Complex64,
        p1: Complex64,
    ) {
        let bit = 1usize << q;
        if bit >= t1 - t0 {
            return self.mul_range(t0, t1, if t0 & bit != 0 { p1 } else { p0 });
        }
        let split = bit * self.lanes;
        let amps = &mut self.amps[t0 * self.lanes..t1 * self.lanes];
        #[cfg(target_arch = "x86_64")]
        if self.simd {
            // SAFETY: `simd` is only true after a runtime AVX2 check.
            unsafe { diag_pair_avx2(amps, split, p0, p1) };
            return;
        }
        for ch in amps.chunks_mut(split << 1) {
            let (lo, hi) = ch.split_at_mut(split);
            mul_scalar(lo, p0);
            mul_scalar(hi, p1);
        }
    }

    /// Multiplies the whole tile `[t0, t1)` by `p`.
    fn mul_range(&mut self, t0: usize, t1: usize, p: Complex64) {
        let amps = &mut self.amps[t0 * self.lanes..t1 * self.lanes];
        #[cfg(target_arch = "x86_64")]
        if self.simd {
            // SAFETY: `simd` is only true after a runtime AVX2 check.
            unsafe { mul_block(amps, p) };
            return;
        }
        mul_scalar(amps, p);
    }

    /// Two disjoint same-width tiles as mutable slices (`t0 < u0`,
    /// amplitude indices) — the operands of a cross-tile pair kernel.
    fn disjoint_tiles(
        &mut self,
        t0: usize,
        u0: usize,
        width: usize,
    ) -> (&mut [Complex64], &mut [Complex64]) {
        debug_assert!(t0 + width <= u0, "tiles must be disjoint and ordered");
        let k = self.lanes;
        let (a, b) = self.amps.split_at_mut(u0 * k);
        (&mut a[t0 * k..(t0 + width) * k], &mut b[..width * k])
    }

    /// 1q unitary whose qubit sits at or above the tile width: the two
    /// partner tiles pair element-for-element, so the butterfly runs
    /// across whole tile slices.
    pub(crate) fn apply_mat2_pair(&mut self, t0: usize, u0: usize, width: usize, m: &Mat2) {
        let simd = self.simd;
        let (lo, hi) = self.disjoint_tiles(t0, u0, width);
        #[cfg(target_arch = "x86_64")]
        if simd {
            // SAFETY: `simd` is only true after a runtime AVX2 check.
            unsafe { butterfly_slices_avx2(lo, hi, m) };
            return;
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = simd;
        butterfly_scalar(lo, hi, m);
    }

    /// Pauli-X on a qubit at or above the tile width: partner tiles
    /// swap whole.
    pub(crate) fn apply_x_pair(&mut self, t0: usize, u0: usize, width: usize) {
        let (lo, hi) = self.disjoint_tiles(t0, u0, width);
        lo.swap_with_slice(hi);
    }

    /// CX/CCX whose target sits at or above the tile width: partner
    /// tiles pair element-for-element, with the control test split into
    /// a per-pair decision (bits at or above the width, constant across
    /// the tile and identical for both partners) and run-merged swaps
    /// over the control bits below the width.
    pub(crate) fn controlled_x_pair(
        &mut self,
        t0: usize,
        u0: usize,
        width: usize,
        control_mask: usize,
    ) {
        debug_assert!(width.is_power_of_two() && t0.is_multiple_of(width));
        let cm_lo = control_mask & (width - 1);
        let cm_hi = control_mask & !(width - 1);
        if t0 & cm_hi != cm_hi {
            return;
        }
        let k = self.lanes;
        let run = if cm_lo == 0 {
            width
        } else {
            1usize << cm_lo.trailing_zeros()
        };
        let step = run * k;
        let (lo, hi) = self.disjoint_tiles(t0, u0, width);
        for (r, (l, h)) in lo.chunks_mut(step).zip(hi.chunks_mut(step)).enumerate() {
            if (r * run) & cm_lo == cm_lo {
                l.swap_with_slice(h);
            }
        }
    }

    /// Pauli-X on `q`: whole half-chunks swap (pure memory movement).
    pub(crate) fn apply_x(&mut self, q: u32) {
        self.apply_x_range(0, self.dim(), q);
    }

    /// [`Self::apply_x`] restricted to the tile `[t0, t1)`. The pair
    /// coupling must close within the tile (`2^(q+1)` divides the
    /// width) — the tiled scheduler guarantees it via the op extent.
    pub(crate) fn apply_x_range(&mut self, t0: usize, t1: usize, q: u32) {
        let split = (1usize << q) * self.lanes;
        let amps = &mut self.amps[t0 * self.lanes..t1 * self.lanes];
        debug_assert_eq!(
            amps.len() % (split << 1),
            0,
            "X pairing must close in the tile"
        );
        for ch in amps.chunks_mut(split << 1) {
            let (lo, hi) = ch.split_at_mut(split);
            lo.swap_with_slice(hi);
        }
    }

    /// General single-qubit unitary on `q` across all lanes.
    pub(crate) fn apply_mat2(&mut self, q: u32, m: &Mat2) {
        self.apply_mat2_range(0, self.dim(), q, m);
    }

    /// [`Self::apply_mat2`] restricted to the tile `[t0, t1)`; the
    /// butterfly coupling must close within the tile.
    pub(crate) fn apply_mat2_range(&mut self, t0: usize, t1: usize, q: u32, m: &Mat2) {
        let split = (1usize << q) * self.lanes;
        let amps = &mut self.amps[t0 * self.lanes..t1 * self.lanes];
        debug_assert_eq!(
            amps.len() % (split << 1),
            0,
            "butterfly must close in the tile"
        );
        #[cfg(target_arch = "x86_64")]
        if self.simd {
            // SAFETY: `simd` is only true after a runtime AVX2 check.
            unsafe { mat2_sweep_avx2(amps, split, m) };
            return;
        }
        for ch in amps.chunks_mut(split << 1) {
            let (lo, hi) = ch.split_at_mut(split);
            butterfly_scalar(lo, hi, m);
        }
    }

    /// X on `target` where all `control_mask` bits are set (CX / CCX).
    ///
    /// A chunk base is a multiple of `2^(target+1)` and `j < 2^target`,
    /// so the control test splits exactly into a per-chunk test on the
    /// control bits above the target and a per-`j` test on the bits
    /// below it. Matching `j` then come in contiguous runs of
    /// `2^trailing_zeros(low_controls)` blocks (the whole half when no
    /// control sits below the target), so each swap moves one long
    /// contiguous slice instead of K complexes at a time.
    pub(crate) fn controlled_x(&mut self, control_mask: usize, target: u32) {
        self.controlled_x_range(0, self.dim(), control_mask, target);
    }

    /// [`Self::controlled_x`] restricted to the tile `[t0, t1)`; the
    /// target pairing must close within the tile (controls may sit
    /// anywhere — bits above the tile are tested via the tile base).
    pub(crate) fn controlled_x_range(
        &mut self,
        t0: usize,
        t1: usize,
        control_mask: usize,
        target: u32,
    ) {
        let k = self.lanes;
        let bit = 1usize << target;
        let chunk = bit << 1;
        debug_assert!(chunk <= t1 - t0, "CX pairing must close in the tile");
        let mask_lo = control_mask & (bit - 1);
        let mask_hi = control_mask & !(chunk - 1);
        let run = if mask_lo == 0 {
            bit
        } else {
            1usize << mask_lo.trailing_zeros()
        };
        let step = run * k;
        let amps = &mut self.amps[t0 * k..t1 * k];
        for (ci, ch) in amps.chunks_mut(chunk * k).enumerate() {
            if (t0 + ci * chunk) & mask_hi != mask_hi {
                continue;
            }
            let (lo, hi) = ch.split_at_mut(bit * k);
            for (r, (l, h)) in lo.chunks_mut(step).zip(hi.chunks_mut(step)).enumerate() {
                if (r * run) & mask_lo == mask_lo {
                    l.swap_with_slice(h);
                }
            }
        }
    }

    /// SWAP of qubits `a` and `b`, gated on all bits of `control_mask`.
    ///
    /// Same run-merging as [`Self::controlled_x`]: the per-`j` match
    /// mask is `lo_bit | (controls below hi_q)`, and because `lo_bit`
    /// is part of the mask every run stays on one side of the `j ↔
    /// j^lo_bit` pairing — consecutive matching `j` map to consecutive
    /// partners, so whole runs swap as contiguous slices.
    pub(crate) fn apply_swap(&mut self, control_mask: usize, a: u32, b: u32) {
        self.apply_swap_range(0, self.dim(), control_mask, a, b);
    }

    /// [`Self::apply_swap`] restricted to the tile `[t0, t1)`; both
    /// swapped qubits must pair within the tile.
    pub(crate) fn apply_swap_range(
        &mut self,
        t0: usize,
        t1: usize,
        control_mask: usize,
        a: u32,
        b: u32,
    ) {
        assert_ne!(a, b);
        let k = self.lanes;
        let (lo_q, hi_q) = if a < b { (a, b) } else { (b, a) };
        let lo_bit = 1usize << lo_q;
        let hi_bit = 1usize << hi_q;
        let chunk = hi_bit << 1;
        debug_assert!(chunk <= t1 - t0, "swap pairing must close in the tile");
        let j_mask = lo_bit | (control_mask & (hi_bit - 1));
        let mask_hi = control_mask & !(chunk - 1);
        let run = 1usize << j_mask.trailing_zeros();
        let amps = &mut self.amps[t0 * k..t1 * k];
        for (ci, ch) in amps.chunks_mut(chunk * k).enumerate() {
            if (t0 + ci * chunk) & mask_hi != mask_hi {
                continue;
            }
            let (lo_half, hi_half) = ch.split_at_mut(hi_bit * k);
            // Swap |…0…1…> (hi=0, lo=1) with |…1…0…> (hi=1, lo=0).
            let mut j = 0;
            while j < hi_bit {
                if j & j_mask == j_mask {
                    let jj = j ^ lo_bit;
                    lo_half[j * k..(j + run) * k]
                        .swap_with_slice(&mut hi_half[jj * k..(jj + run) * k]);
                }
                j += run;
            }
        }
    }

    /// General diagonal over `qubits`: lane block `i` is multiplied by
    /// `table[gather_bits(i, qubits)]`. The index extraction runs once
    /// per *run* of blocks sharing a table entry (all indices below the
    /// lowest table qubit) instead of once per amplitude — amortized
    /// K·run-fold.
    pub(crate) fn apply_diag_table(&mut self, qubits: &[u32], table: &[Complex64]) {
        self.apply_diag_table_range(0, self.dim(), qubits, table);
    }

    /// [`Self::apply_diag_table`] restricted to the tile `[t0, t1)` —
    /// diagonal, so any tile works; table indices are extracted from
    /// the global amplitude index `t0 + r·run`.
    pub(crate) fn apply_diag_table_range(
        &mut self,
        t0: usize,
        t1: usize,
        qubits: &[u32],
        table: &[Complex64],
    ) {
        debug_assert_eq!(table.len(), 1usize << qubits.len());
        if let [q] = qubits {
            return self.diag_pair_range(t0, t1, *q, table[0], table[1]);
        }
        let mask = qubits.iter().fold(0u64, |m, &q| m | (1u64 << q));
        let run = (1usize << mask.trailing_zeros()).min(t1 - t0);
        // A low qubit (fused controlled phases routinely keep control
        // qubit 0 in their support) makes runs short and the sweep
        // extraction-bound. Peel the lowest qubit off the index: runs
        // follow the remaining qubits' much longer period, and within
        // a run the peeled qubit just alternates between two adjacent
        // table entries — a decision-free strided pair multiply.
        if run < t1 - t0 {
            let rest = mask & (mask - 1);
            let rest_run = if rest == 0 {
                t1 - t0
            } else {
                (1usize << rest.trailing_zeros()).min(t1 - t0)
            };
            if rest_run > 2 * run {
                let simd = self.simd;
                let chunk = run * self.lanes;
                let step = rest_run * self.lanes;
                let rest_qubits = &qubits[1..];
                let amps = &mut self.amps[t0 * self.lanes..t1 * self.lanes];
                for (r, ch) in amps.chunks_mut(step).enumerate() {
                    let hi = qfab_math::bits::gather_bits(t0 + r * rest_run, rest_qubits) << 1;
                    let (e0, e1) = (table[hi], table[hi | 1]);
                    #[cfg(target_arch = "x86_64")]
                    if simd {
                        // SAFETY: `simd` is only true after a runtime
                        // AVX2 check.
                        unsafe { diag_pair_avx2(ch, chunk, e0, e1) };
                        continue;
                    }
                    for w in ch.chunks_mut(2 * chunk) {
                        let (lo, hi_half) = w.split_at_mut(chunk);
                        mul_scalar(lo, e0);
                        mul_scalar(hi_half, e1);
                    }
                }
                return;
            }
        }
        let step = run * self.lanes;
        let amps = &mut self.amps[t0 * self.lanes..t1 * self.lanes];
        #[cfg(target_arch = "x86_64")]
        {
            let bmi2 = std::arch::is_x86_feature_detected!("bmi2");
            if self.simd && bmi2 {
                // SAFETY: avx2 (via `simd`) and bmi2 verified at
                // runtime; extracted indices are below
                // `2^popcount(mask) == table.len()`.
                unsafe { diag_table_sweep_avx2(amps, step, run, t0, mask, table) };
                return;
            }
            if bmi2 {
                for (r, ch) in amps.chunks_mut(step).enumerate() {
                    // SAFETY: bmi2 verified above.
                    let t = unsafe { pext_index((t0 + r * run) as u64, mask) };
                    mul_scalar(ch, table[t]);
                }
                return;
            }
        }
        for (r, ch) in amps.chunks_mut(step).enumerate() {
            mul_scalar(
                ch,
                table[qfab_math::bits::gather_bits(t0 + r * run, qubits)],
            );
        }
    }
}

/// BMI2 `pext` table-index extraction (same arithmetic as
/// `gather_bits` over ascending qubits).
///
/// # Safety
/// Caller must have verified `bmi2` is available at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
unsafe fn pext_index(i: u64, mask: u64) -> usize {
    core::arch::x86_64::_pext_u64(i, mask) as usize
}

/// Scalar-fallback multiply of a contiguous block by `p` — the exact
/// arithmetic (`*a *= p`) the SIMD path reproduces bit-for-bit.
fn mul_scalar(xs: &mut [Complex64], p: Complex64) {
    for a in xs.iter_mut() {
        *a *= p;
    }
}

/// Scalar-fallback 1q butterfly pairing `lo[j]` with `hi[j]` — the SoA
/// form of `StateVector::apply_mat2`'s inner pair loop.
fn butterfly_scalar(lo: &mut [Complex64], hi: &mut [Complex64], m: &Mat2) {
    debug_assert_eq!(lo.len(), hi.len());
    let [[m00, m01], [m10, m11]] = m.m;
    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
        let (x, y) = (*a, *b);
        *a = m00.mul_add(x, m01 * y);
        *b = m10.mul_add(x, m11 * y);
    }
}

/// Complex multiply of a `[re, im, re, im]` vector by a broadcast
/// constant via the addsub trick — **no FMA**, so each product and sum
/// rounds exactly like the scalar `Complex64` arithmetic:
/// `re' = v.re·c.re − v.im·c.im`, `im' = v.im·c.re + v.re·c.im`
/// (multiplication and addition operands commuted vs the scalar form,
/// both bitwise-neutral).
///
/// # Safety
/// Caller must have verified `avx2` is available at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn cmul(
    v: core::arch::x86_64::__m256d,
    cr: core::arch::x86_64::__m256d,
    ci: core::arch::x86_64::__m256d,
) -> core::arch::x86_64::__m256d {
    use core::arch::x86_64::*;
    let t1 = _mm256_mul_pd(v, cr);
    let sw = _mm256_permute_pd(v, 0b0101);
    let t2 = _mm256_mul_pd(sw, ci);
    _mm256_addsub_pd(t1, t2)
}

/// Broadcast-multiply of one contiguous block, scalar tail for an odd
/// element count. `#[inline]` so it folds into the sweep kernels below
/// (same target features — no call per block).
///
/// # Safety
/// Caller must have verified `avx2` is available at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn mul_block(xs: &mut [Complex64], p: Complex64) {
    use core::arch::x86_64::*;
    let pr = _mm256_set1_pd(p.re);
    let pi = _mm256_set1_pd(p.im);
    let n2 = xs.len() & !1;
    let ptr = xs.as_mut_ptr().cast::<f64>();
    let mut i = 0;
    while i < n2 {
        let v = _mm256_loadu_pd(ptr.add(2 * i));
        _mm256_storeu_pd(ptr.add(2 * i), cmul(v, pr, pi));
        i += 2;
    }
    if n2 < xs.len() {
        xs[n2] *= p;
    }
}

/// Whole-state masked-phase sweep at run granularity (see
/// [`BatchedState::phase_on_mask`] for the run derivation).
///
/// # Safety
/// Caller must have verified `avx2` is available at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn phase_runs_avx2(
    amps: &mut [Complex64],
    step: usize,
    run: usize,
    base: usize,
    mask: usize,
    want: usize,
    p: Complex64,
) {
    for (r, ch) in amps.chunks_mut(step).enumerate() {
        if (base + r * run) & mask == want {
            mul_block(ch, p);
        }
    }
}

/// Whole-state `diag(p0, p1)` sweep.
///
/// # Safety
/// Caller must have verified `avx2` is available at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn diag_pair_avx2(amps: &mut [Complex64], split: usize, p0: Complex64, p1: Complex64) {
    for ch in amps.chunks_mut(split << 1) {
        let (lo, hi) = ch.split_at_mut(split);
        mul_block(lo, p0);
        mul_block(hi, p1);
    }
}

/// Whole-state diag-table sweep: one `pext` + one broadcast per run of
/// blocks sharing a table entry.
///
/// # Safety
/// Caller must have verified `avx2` **and** `bmi2` at runtime, and
/// `table.len() == 2^popcount(mask)` so every extracted index is in
/// bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,bmi2")]
unsafe fn diag_table_sweep_avx2(
    amps: &mut [Complex64],
    step: usize,
    run: usize,
    base: usize,
    mask: u64,
    table: &[Complex64],
) {
    for (r, ch) in amps.chunks_mut(step).enumerate() {
        let t = core::arch::x86_64::_pext_u64((base + r * run) as u64, mask) as usize;
        mul_block(ch, *table.get_unchecked(t));
    }
}

/// Whole-slice butterfly pairing `lo[j]` with `hi[j]` — the AVX2 form
/// of [`butterfly_scalar`], used for cross-tile 1q pairs.
///
/// # Safety
/// Caller must have verified `avx2` is available at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn butterfly_slices_avx2(lo: &mut [Complex64], hi: &mut [Complex64], m: &Mat2) {
    use core::arch::x86_64::*;
    debug_assert_eq!(lo.len(), hi.len());
    let [[m00, m01], [m10, m11]] = m.m;
    let (r00, i00) = (_mm256_set1_pd(m00.re), _mm256_set1_pd(m00.im));
    let (r01, i01) = (_mm256_set1_pd(m01.re), _mm256_set1_pd(m01.im));
    let (r10, i10) = (_mm256_set1_pd(m10.re), _mm256_set1_pd(m10.im));
    let (r11, i11) = (_mm256_set1_pd(m11.re), _mm256_set1_pd(m11.im));
    let n2 = lo.len() & !1;
    let lp = lo.as_mut_ptr().cast::<f64>();
    let hp = hi.as_mut_ptr().cast::<f64>();
    let mut i = 0;
    while i < n2 {
        let x = _mm256_loadu_pd(lp.add(2 * i));
        let y = _mm256_loadu_pd(hp.add(2 * i));
        let a = _mm256_add_pd(cmul(x, r00, i00), cmul(y, r01, i01));
        let b = _mm256_add_pd(cmul(x, r10, i10), cmul(y, r11, i11));
        _mm256_storeu_pd(lp.add(2 * i), a);
        _mm256_storeu_pd(hp.add(2 * i), b);
        i += 2;
    }
    for j in n2..lo.len() {
        let (x, y) = (lo[j], hi[j]);
        lo[j] = m00.mul_add(x, m01 * y);
        hi[j] = m10.mul_add(x, m11 * y);
    }
}

/// Whole-state 1q-unitary butterfly sweep: the matrix broadcasts hoist
/// out of the chunk loop, and each chunk's halves stream through AVX2
/// pairs with a scalar tail.
///
/// # Safety
/// Caller must have verified `avx2` is available at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mat2_sweep_avx2(amps: &mut [Complex64], split: usize, m: &Mat2) {
    use core::arch::x86_64::*;
    let [[m00, m01], [m10, m11]] = m.m;
    let (r00, i00) = (_mm256_set1_pd(m00.re), _mm256_set1_pd(m00.im));
    let (r01, i01) = (_mm256_set1_pd(m01.re), _mm256_set1_pd(m01.im));
    let (r10, i10) = (_mm256_set1_pd(m10.re), _mm256_set1_pd(m10.im));
    let (r11, i11) = (_mm256_set1_pd(m11.re), _mm256_set1_pd(m11.im));
    let n2 = split & !1;
    for ch in amps.chunks_mut(split << 1) {
        let (lo, hi) = ch.split_at_mut(split);
        let lp = lo.as_mut_ptr().cast::<f64>();
        let hp = hi.as_mut_ptr().cast::<f64>();
        let mut i = 0;
        while i < n2 {
            let x = _mm256_loadu_pd(lp.add(2 * i));
            let y = _mm256_loadu_pd(hp.add(2 * i));
            // Same grouping as the scalar `m00.mul_add(x, m01 * y)`:
            // (products of the first term) + (the fully-formed second
            // term).
            let a = _mm256_add_pd(cmul(x, r00, i00), cmul(y, r01, i01));
            let b = _mm256_add_pd(cmul(x, r10, i10), cmul(y, r11, i11));
            _mm256_storeu_pd(lp.add(2 * i), a);
            _mm256_storeu_pd(hp.add(2 * i), b);
            i += 2;
        }
        for j in n2..split {
            let (x, y) = (lo[j], hi[j]);
            lo[j] = m00.mul_add(x, m01 * y);
            hi[j] = m10.mul_add(x, m11 * y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_circuit::Circuit;
    use qfab_math::complex::c64;
    use qfab_math::rng::Xoshiro256StarStar;

    fn random_state(n: u32, seed: u64) -> StateVector {
        let mut rng = Xoshiro256StarStar::new(seed);
        let amps: Vec<Complex64> = (0..dim(n))
            .map(|_| c64(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        StateVector::from_amplitudes(n, amps.into_iter().map(|a| a / norm).collect())
    }

    fn test_gates() -> Vec<Gate> {
        use Gate::*;
        vec![
            Z(1),
            S(0),
            T(3),
            Phase(2, 0.81),
            Rz(1, -0.9),
            Cz(0, 3),
            Cphase {
                control: 2,
                target: 0,
                theta: 0.9,
            },
            Ccphase {
                c0: 2,
                c1: 0,
                target: 3,
                theta: -0.77,
            },
            X(2),
            Cx {
                control: 3,
                target: 1,
            },
            Ccx {
                c0: 0,
                c1: 1,
                target: 3,
            },
            Swap(0, 3),
            Cswap {
                control: 1,
                a: 0,
                b: 3,
            },
            H(2),
            Sx(0),
            Ry(3, -1.2),
            U(1, 0.3, 1.0, -0.5),
            Ch {
                control: 1,
                target: 3,
            },
        ]
    }

    /// Every batched kernel must reproduce the scalar kernel on every
    /// lane **bit-for-bit** (exact equality, not a tolerance).
    #[test]
    fn batched_gates_bit_identical_to_scalar_per_lane() {
        let n = 4;
        for k in [1usize, 3, 8] {
            let lanes: Vec<StateVector> = (0..k).map(|l| random_state(n, 900 + l as u64)).collect();
            let mut batch = BatchedState::broadcast(&lanes[0], k);
            for (l, sv) in lanes.iter().enumerate() {
                batch.store_lane(l, sv);
            }
            let mut scalars = lanes.clone();
            for gate in test_gates() {
                batch.apply_gate(&gate);
                for (l, sv) in scalars.iter_mut().enumerate() {
                    sv.set_parallel(false);
                    sv.apply_gate(&gate);
                    assert_eq!(
                        batch.lane_amplitudes(l),
                        sv.amplitudes(),
                        "lane {l} diverged after {gate} at K={k}"
                    );
                }
            }
        }
    }

    /// The SIMD and scalar batched paths agree bit-for-bit. Runs (and
    /// trivially passes) even when AVX2 is unavailable or compiled out.
    #[test]
    fn simd_and_scalar_paths_bit_identical() {
        let n = 5;
        let k = 8;
        let base = random_state(n, 77);
        let mut fast = BatchedState::broadcast(&base, k);
        let mut slow = fast.clone();
        fast.set_simd(true);
        slow.set_simd(false);
        for l in 0..k {
            let sv = random_state(n, 300 + l as u64);
            fast.store_lane(l, &sv);
            slow.store_lane(l, &sv);
        }
        for gate in test_gates() {
            fast.apply_gate(&gate);
            slow.apply_gate(&gate);
        }
        // Also exercise the diag-table kernel (fused-plan only path).
        let qubits = [0u32, 2, 4];
        let table: Vec<Complex64> = (0..8).map(|j| Complex64::cis(0.21 * j as f64)).collect();
        fast.apply_diag_table(&qubits, &table);
        slow.apply_diag_table(&qubits, &table);
        for l in 0..k {
            assert_eq!(
                fast.lane_amplitudes(l),
                slow.lane_amplitudes(l),
                "SIMD/scalar divergence on lane {l}"
            );
        }
    }

    #[test]
    fn extract_store_round_trip() {
        let base = random_state(3, 5);
        let mut batch = BatchedState::broadcast(&base, 3);
        let other = random_state(3, 6);
        batch.store_lane(1, &other);
        assert_eq!(batch.extract_lane(0).amplitudes(), base.amplitudes());
        assert_eq!(batch.extract_lane(1).amplitudes(), other.amplitudes());
        assert_eq!(batch.extract_lane(2).amplitudes(), base.amplitudes());
    }

    #[test]
    fn apply_gate_lane_touches_only_that_lane() {
        let base = random_state(3, 8);
        let mut batch = BatchedState::broadcast(&base, 4);
        batch.apply_gate_lane(2, &Gate::X(1));
        let mut expect = base.clone();
        expect.set_parallel(false);
        expect.apply_gate(&Gate::X(1));
        for l in 0..4 {
            let want = if l == 2 {
                expect.amplitudes()
            } else {
                base.amplitudes()
            };
            assert_eq!(batch.lane_amplitudes(l), want, "lane {l}");
        }
    }

    #[test]
    fn sample_lane_matches_sample_index() {
        let mut circ = Circuit::new(3);
        circ.h(0).cx(0, 1).t(2).h(2);
        let mut sv = random_state(3, 21);
        sv.apply_circuit(&circ);
        let mut batch = BatchedState::broadcast(&random_state(3, 22), 3);
        batch.store_lane(1, &sv);
        for u in [0.0, 0.1, 0.37, 0.62, 0.999, 1.0] {
            assert_eq!(
                batch.sample_lane(1, u),
                crate::measure::ShotSampler::sample_index(sv.amplitudes(), u),
                "u = {u}"
            );
        }
    }

    /// Kernel-level timing: batched K=8 sweep vs 8 sequential scalar
    /// applications, per kernel shape. Diagnostic only — run with
    /// `cargo test -p qfab-sim --release profile_batched_kernels -- --ignored --nocapture`.
    #[test]
    #[ignore = "timing diagnostic, not a correctness check"]
    fn profile_batched_kernels() {
        use std::time::Instant;
        let n = 16;
        let k = 8;
        let reps = 40;
        let base = random_state(n, 1);
        let mut batch = BatchedState::broadcast(&base, k);
        let mut scalars: Vec<StateVector> = (0..k)
            .map(|_| {
                let mut s = base.clone();
                s.set_parallel(true);
                s
            })
            .collect();
        let mut time_pair = |label: &str,
                             bf: &mut dyn FnMut(&mut BatchedState),
                             sf: &mut dyn FnMut(&mut StateVector)| {
            bf(&mut batch);
            let t0 = Instant::now();
            for _ in 0..reps {
                bf(&mut batch);
            }
            let b_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * k) as f64;
            sf(&mut scalars[0]);
            let t0 = Instant::now();
            for _ in 0..reps {
                for s in scalars.iter_mut() {
                    sf(s);
                }
            }
            let s_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * k) as f64;
            println!("{label:<28} scalar {s_us:>8.2} us/lane  batched {b_us:>8.2} us/lane  ratio {:>5.2}x", s_us / b_us);
        };
        let m = Mat2 {
            m: [
                [c64(0.6, 0.0), c64(0.0, -0.8)],
                [c64(0.0, 0.8), c64(-0.6, 0.0)],
            ],
        };
        let dt_q = [1u32, 5, 9, 13];
        let dt: Vec<Complex64> = (0..16).map(|j| Complex64::cis(0.1 * j as f64)).collect();
        let dt_low = [0u32, 1, 2, 9];
        time_pair(
            "controlled_x c=3 t=9",
            &mut |b| b.controlled_x(1 << 3, 9),
            &mut |s| s.controlled_x(1 << 3, 9),
        );
        time_pair(
            "controlled_x c=12 t=2",
            &mut |b| b.controlled_x(1 << 12, 2),
            &mut |s| s.controlled_x(1 << 12, 2),
        );
        time_pair(
            "phase_on_mask {2,9}",
            &mut |b| b.phase_on_mask((1 << 2) | (1 << 9), (1 << 2) | (1 << 9), Complex64::I),
            &mut |s| s.phase_on_mask((1 << 2) | (1 << 9), (1 << 2) | (1 << 9), Complex64::I),
        );
        time_pair(
            "diag_table [1,5,9,13]",
            &mut |b| b.apply_diag_table(&dt_q, &dt),
            &mut |s| s.apply_diag_table(&dt_q, &dt),
        );
        time_pair(
            "diag_table [0,1,2,9]",
            &mut |b| b.apply_diag_table(&dt_low, &dt),
            &mut |s| s.apply_diag_table(&dt_low, &dt),
        );
        time_pair("mat2 q=0", &mut |b| b.apply_mat2(0, &m), &mut |s| {
            s.apply_mat2(0, &m)
        });
        time_pair("mat2 q=8", &mut |b| b.apply_mat2(8, &m), &mut |s| {
            s.apply_mat2(8, &m)
        });
        time_pair("apply_x q=7", &mut |b| b.apply_x(7), &mut |s| s.apply_x(7));
    }

    #[test]
    fn circuit_through_batched_matches_scalar_with_tolerance_zero() {
        // A full mixed circuit through `apply_gate` — the integration
        // smoke for the kernel set at a lane count that exercises both
        // the paired SIMD body and the odd scalar tail.
        let n = 6;
        for k in [1usize, 2, 5] {
            let init = random_state(n, 400);
            let mut batch = BatchedState::broadcast(&init, k);
            let mut scalar = init.clone();
            scalar.set_parallel(false);
            let mut c = Circuit::new(n);
            c.h(0)
                .cx(0, 3)
                .cphase(0.4, 1, 2)
                .t(4)
                .swap(2, 5)
                .ccphase(0.9, 0, 1, 5)
                .ry(0.3, 3)
                .rz(-0.8, 2)
                .x(5);
            for gate in c.gates() {
                batch.apply_gate(gate);
                scalar.apply_gate(gate);
            }
            for l in 0..k {
                assert_eq!(
                    batch.lane_amplitudes(l),
                    scalar.amplitudes(),
                    "K={k} lane {l}"
                );
            }
        }
    }
}
