//! Cached telemetry handles for the simulator's hot paths.
//!
//! The registry lookup (a mutex + map walk) is far too slow to sit in
//! `apply_gate`, so every metric the simulator touches is resolved once
//! into a `OnceLock`-cached struct of `&'static` handles. [`metrics`]
//! returns `None` when telemetry is disabled, which keeps the entire
//! instrumentation path down to a single relaxed atomic load per gate.
//!
//! Handles are only resolved (and thus registered) while telemetry is
//! enabled, so enabling it before the first simulation — as the `repro`
//! binary does during argument parsing — guarantees live handles.

use qfab_circuit::gate::Gate;
use qfab_telemetry::{self as telemetry, Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// All simulator metrics, resolved once.
pub(crate) struct SimMetrics {
    /// Every gate application, regardless of kernel.
    pub gates_total: &'static Counter,
    /// Identity gates (skipped without touching amplitudes).
    pub gates_id: &'static Counter,
    /// Diagonal kernels: Z/S/T/Phase/RZ/CZ/CP/CCP masked phase multiply.
    pub gates_diag: &'static Counter,
    /// Pauli-X pair swaps.
    pub gates_x: &'static Counter,
    /// Dense single-qubit unitaries (H, Y, SX, RX, RY, U, …).
    pub gates_dense_1q: &'static Counter,
    /// Controlled pair swaps (CX, CCX).
    pub gates_cx: &'static Counter,
    /// SWAP / CSWAP cross-pair exchanges.
    pub gates_swap: &'static Counter,
    /// Generic gather/apply 2q/3q fallback (untranspiled circuits only).
    pub gates_generic: &'static Counter,

    /// Bytes of amplitude storage held by the most recently constructed
    /// state vector (high-water across constructions = the largest
    /// state this process simulated).
    pub state_bytes: &'static Gauge,

    /// Checkpoint tables built.
    pub checkpoint_builds: &'static Counter,
    /// Checkpoint states stored across all builds.
    pub checkpoint_states: &'static Counter,
    /// Bytes held by the most recent table (high-water across builds).
    pub checkpoint_bytes: &'static Gauge,
    /// Largest table any build produced — survives per-panel gauge
    /// rewrites, unlike `checkpoint_bytes`' last-value reading.
    pub checkpoint_bytes_peak: &'static Gauge,
    /// Wall time per checkpoint-table build.
    pub checkpoint_build_ns: &'static Histogram,

    /// Fused execution plans compiled.
    pub fused_plans: &'static Counter,
    /// Original gates lowered into fused plans.
    pub fused_gates_in: &'static Counter,
    /// Ops emitted by fused plans (gates_in / ops_out = fusion ratio).
    pub fused_ops_out: &'static Counter,
    /// Fused ops executed across all replays.
    pub fused_ops_applied: &'static Counter,
    /// Gates applied per-gate because a checkpoint boundary or an
    /// insertion split a fused op.
    pub fused_fallback_gates: &'static Counter,

    /// Trajectory replays that actually re-simulated gates.
    pub replays: &'static Counter,
    /// Empty-insertion replays served by cloning the final state.
    pub replays_clean: &'static Counter,
    /// Gates re-simulated per replay (shorter = checkpoints helping).
    pub replay_gates: &'static Histogram,

    /// Batched replay sweeps executed (one per `run_batch_from`).
    pub batch_batches: &'static Counter,
    /// Trajectory lanes advanced through batched sweeps.
    pub batch_lanes: &'static Counter,
    /// Lanes temporarily peeled to scalar replay because a Pauli
    /// insertion landed inside a fused op.
    pub batch_peeled_lanes: &'static Counter,
    /// 1 when batched kernels take the AVX2 path, 0 for scalar fallback.
    pub batch_simd: &'static Gauge,
    /// Insertion-free op runs applied tile-by-tile (cache blocking).
    pub batch_tiled_segments: &'static Counter,
    /// Fused ops inside those tiled runs (run length = ops / segments).
    pub batch_tiled_ops: &'static Counter,

    /// Wall time per batched `sample_counts` call.
    pub sample_batch_ns: &'static Histogram,
    /// Shots drawn through the batched alias-table path.
    pub sample_batch_shots: &'static Counter,
    /// Single shots drawn through the inverse-CDF path.
    pub sample_single_shots: &'static Counter,
}

impl SimMetrics {
    fn resolve() -> Self {
        Self {
            gates_total: telemetry::counter("sim.gates.total"),
            gates_id: telemetry::counter("sim.gates.id"),
            gates_diag: telemetry::counter("sim.gates.diag"),
            gates_x: telemetry::counter("sim.gates.x"),
            gates_dense_1q: telemetry::counter("sim.gates.dense_1q"),
            gates_cx: telemetry::counter("sim.gates.cx"),
            gates_swap: telemetry::counter("sim.gates.swap"),
            gates_generic: telemetry::counter("sim.gates.generic"),
            state_bytes: telemetry::gauge("sim.state.bytes"),
            checkpoint_builds: telemetry::counter("sim.checkpoint.builds"),
            checkpoint_states: telemetry::counter("sim.checkpoint.states"),
            checkpoint_bytes: telemetry::gauge("sim.checkpoint.bytes"),
            checkpoint_bytes_peak: telemetry::gauge("sim.checkpoint.bytes_peak"),
            checkpoint_build_ns: telemetry::histogram("sim.checkpoint.build_ns"),
            fused_plans: telemetry::counter("sim.fused.plans"),
            fused_gates_in: telemetry::counter("sim.fused.gates_in"),
            fused_ops_out: telemetry::counter("sim.fused.ops_out"),
            fused_ops_applied: telemetry::counter("sim.fused.ops_applied"),
            fused_fallback_gates: telemetry::counter("sim.fused.fallback_gates"),
            replays: telemetry::counter("sim.replay.noisy"),
            replays_clean: telemetry::counter("sim.replay.clean"),
            replay_gates: telemetry::histogram("sim.replay.gates"),
            batch_batches: telemetry::counter("sim.batch.batches"),
            batch_lanes: telemetry::counter("sim.batch.lanes"),
            batch_peeled_lanes: telemetry::counter("sim.batch.peeled_lanes"),
            batch_simd: telemetry::gauge("sim.batch.simd"),
            batch_tiled_segments: telemetry::counter("sim.batch.tiled_segments"),
            batch_tiled_ops: telemetry::counter("sim.batch.tiled_ops"),
            sample_batch_ns: telemetry::histogram("sim.sample.batch_ns"),
            sample_batch_shots: telemetry::counter("sim.sample.batch_shots"),
            sample_single_shots: telemetry::counter("sim.sample.single_shots"),
        }
    }

    /// Counts one gate application under its kernel class. Mirrors the
    /// dispatch in `StateVector::apply_gate` — update both together.
    #[inline]
    pub(crate) fn count_gate(&self, gate: &Gate) {
        use Gate::*;
        self.gates_total.incr();
        let class = match *gate {
            I(_) => self.gates_id,
            Z(_)
            | S(_)
            | Sdg(_)
            | T(_)
            | Tdg(_)
            | Phase(..)
            | Rz(..)
            | Cz(..)
            | Cphase { .. }
            | Ccphase { .. } => self.gates_diag,
            X(_) => self.gates_x,
            Cx { .. } | Ccx { .. } => self.gates_cx,
            Swap(..) | Cswap { .. } => self.gates_swap,
            ref g if g.arity() == 1 => self.gates_dense_1q,
            _ => self.gates_generic,
        };
        class.incr();
    }
}

/// The cached metrics, or `None` when telemetry is disabled.
#[inline]
pub(crate) fn metrics() -> Option<&'static SimMetrics> {
    if !telemetry::enabled() {
        return None;
    }
    static CACHE: OnceLock<SimMetrics> = OnceLock::new();
    Some(CACHE.get_or_init(SimMetrics::resolve))
}

#[cfg(test)]
mod tests {
    use crate::statevector::StateVector;
    use qfab_circuit::Circuit;
    use qfab_telemetry::{self as telemetry, Mode};

    #[test]
    fn gate_counters_track_kernel_classes() {
        let _guard = telemetry::exclusive_test_lock();
        telemetry::set_mode(Mode::Summary);
        let m = super::metrics().expect("enabled");
        let total0 = m.gates_total.get();
        let diag0 = m.gates_diag.get();
        let cx0 = m.gates_cx.get();
        let dense0 = m.gates_dense_1q.get();

        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.4, 2).t(1).x(0).swap(1, 2);
        let mut s = StateVector::zero_state(3);
        s.apply_circuit(&c);
        telemetry::set_mode(Mode::Off);

        assert_eq!(m.gates_total.get() - total0, 6);
        assert_eq!(m.gates_diag.get() - diag0, 2, "rz + t");
        assert_eq!(m.gates_cx.get() - cx0, 1);
        assert_eq!(m.gates_dense_1q.get() - dense0, 1, "h");
    }

    #[test]
    fn disabled_mode_skips_counting() {
        let _guard = telemetry::exclusive_test_lock();
        telemetry::set_mode(Mode::Off);
        assert!(super::metrics().is_none());
        let mut s = StateVector::zero_state(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        s.apply_circuit(&c); // must not panic or register anything
    }
}
