//! Dense state-vector simulation.
//!
//! A [`StateVector`] owns `2^n` complex amplitudes and applies gates in
//! place. Kernels are allocation-free and, for states at or above
//! [`PARALLEL_MIN_AMPS`] amplitudes, parallelized with rayon using only
//! safe slice splitting (`chunks_mut` + `split_at_mut`), so data-race
//! freedom is guaranteed by construction rather than by `unsafe`
//! reasoning.
//!
//! ### Kernel inventory
//!
//! | gates | kernel | parallel |
//! |---|---|---|
//! | any diagonal (Z, S, T, RZ, Phase, CZ, CP, CCP) | masked phase multiply | yes |
//! | X, Y, H, SX, RX, RY, U, … (any 1q unitary) | paired chunk kernel | yes |
//! | CX, CCX | controlled pair swap | yes |
//! | SWAP, CSWAP | cross-pair exchange | outer only |
//! | CH + any other 2q/3q unitary | generic gather/apply | no (rare path) |
//!
//! The generic 2q/3q path only runs for *untranspiled* circuits; the
//! reproduction harness always transpiles to {Id, X, RZ, SX, CX} first,
//! exactly as the paper does, so the hot loops are the first three rows.

use qfab_circuit::gate::{Gate, GateMatrix};
use qfab_math::bits::{dim, insert_three_zero_bits, insert_two_zero_bits};
use qfab_math::complex::Complex64;
use qfab_math::matrix::{Mat2, Mat4, Mat8};
use qfab_telemetry::trace;
use rayon::prelude::*;

/// States with at least this many amplitudes use parallel kernels (when
/// the state's parallel flag is on). Below it, rayon overhead dominates.
pub const PARALLEL_MIN_AMPS: usize = 1 << 14;

/// Minimum chunk count before the *outer* chunk loop is parallelized;
/// with fewer chunks the inner pair loop is parallelized instead.
const MIN_OUTER_CHUNKS: usize = 8;

/// A dense `n`-qubit pure state.
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    n: u32,
    parallel: bool,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0>`.
    pub fn zero_state(n: u32) -> Self {
        assert!(
            (1..=28).contains(&n),
            "qubit count out of supported range: {n}"
        );
        let mut amps = vec![Complex64::ZERO; dim(n)];
        amps[0] = Complex64::ONE;
        if let Some(m) = crate::telem::metrics() {
            m.state_bytes
                .set((amps.len() * std::mem::size_of::<Complex64>()) as u64);
        }
        Self {
            n,
            parallel: true,
            amps,
        }
    }

    /// The computational basis state `|index>`.
    pub fn basis_state(n: u32, index: usize) -> Self {
        let mut s = Self::zero_state(n);
        s.amps[0] = Complex64::ZERO;
        assert!(index < s.amps.len(), "basis index {index} out of range");
        s.amps[index] = Complex64::ONE;
        s
    }

    /// Builds a state from a sparse list of `(basis index, amplitude)`
    /// pairs, normalizing the result. Panics on duplicate indices, out of
    /// range indices, or an all-zero amplitude list.
    ///
    /// This is the noise-free initialization the paper uses (it excludes
    /// state preparation from the noise model entirely, so injecting
    /// exact amplitudes is observationally identical to running a Shende
    /// initializer without noise).
    pub fn from_sparse(n: u32, entries: &[(usize, Complex64)]) -> Self {
        let mut s = Self::zero_state(n);
        s.amps[0] = Complex64::ZERO;
        for &(idx, amp) in entries {
            assert!(idx < s.amps.len(), "basis index {idx} out of range");
            assert!(
                s.amps[idx] == Complex64::ZERO,
                "duplicate basis index {idx} in sparse state"
            );
            s.amps[idx] = amp;
        }
        let norm = s.norm();
        assert!(norm > 1e-12, "sparse state has zero norm");
        let inv = 1.0 / norm;
        for a in &mut s.amps {
            *a = a.scale(inv);
        }
        s
    }

    /// Builds a state from a dense amplitude vector (must have length
    /// `2^n` and unit norm within `1e-6`).
    pub fn from_amplitudes(n: u32, amps: Vec<Complex64>) -> Self {
        assert_eq!(amps.len(), dim(n), "amplitude vector length mismatch");
        if let Some(m) = crate::telem::metrics() {
            m.state_bytes
                .set((amps.len() * std::mem::size_of::<Complex64>()) as u64);
        }
        let s = Self {
            n,
            parallel: true,
            amps,
        };
        let norm = s.norm();
        assert!(
            (norm - 1.0).abs() < 1e-6,
            "amplitude vector is not normalized (norm {norm})"
        );
        s
    }

    /// Builds a state without the norm check or telemetry side effects
    /// — for lane extraction from a [`BatchedState`](crate::BatchedState),
    /// where amplitudes are mid-circuit copies already known to be valid.
    pub(crate) fn from_amplitudes_raw(n: u32, parallel: bool, amps: Vec<Complex64>) -> Self {
        debug_assert_eq!(amps.len(), dim(n), "amplitude vector length mismatch");
        Self { n, parallel, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.n
    }

    /// The amplitude slice (length `2^n`).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Enables or disables parallel kernels (used by the ablation bench;
    /// also worth disabling when an outer loop already saturates cores).
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Whether parallel kernels are enabled for this state.
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// The 2-norm of the amplitude vector (1 for any physical state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Born-rule probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// The full Born-rule distribution (length `2^n`).
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Fidelity `|<self|other>|²` with another pure state.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        qfab_math::approx::state_fidelity(&self.amps, &other.amps)
    }

    /// Applies every gate of `circuit` in order.
    pub fn apply_circuit(&mut self, circuit: &qfab_circuit::Circuit) {
        assert!(
            circuit.num_qubits() <= self.n,
            "circuit needs {} qubits, state has {}",
            circuit.num_qubits(),
            self.n
        );
        let _trace = trace::span_detail_args(
            "sim.apply_circuit",
            &[("gates", trace::ArgValue::U64(circuit.len() as u64))],
        );
        for gate in circuit.gates() {
            self.apply_gate(gate);
        }
    }

    /// Applies a single gate in place.
    pub fn apply_gate(&mut self, gate: &Gate) {
        use Gate::*;
        if let Some(m) = crate::telem::metrics() {
            m.count_gate(gate);
        }
        match *gate {
            I(_) => {}
            Z(q) => self.phase_on_mask(1usize << q, 1usize << q, -Complex64::ONE),
            S(q) => self.phase_on_mask(1usize << q, 1usize << q, Complex64::I),
            Sdg(q) => self.phase_on_mask(1usize << q, 1usize << q, -Complex64::I),
            T(q) => self.phase_on_mask(
                1usize << q,
                1usize << q,
                Complex64::cis(std::f64::consts::FRAC_PI_4),
            ),
            Tdg(q) => self.phase_on_mask(
                1usize << q,
                1usize << q,
                Complex64::cis(-std::f64::consts::FRAC_PI_4),
            ),
            Phase(q, t) => self.phase_on_mask(1usize << q, 1usize << q, Complex64::cis(t)),
            Rz(q, t) => self.diag_pair(q, Complex64::cis(-t / 2.0), Complex64::cis(t / 2.0)),
            Cz(a, b) => {
                let m = (1usize << a) | (1usize << b);
                self.phase_on_mask(m, m, -Complex64::ONE)
            }
            Cphase {
                control,
                target,
                theta,
            } => {
                let m = (1usize << control) | (1usize << target);
                self.phase_on_mask(m, m, Complex64::cis(theta))
            }
            Ccphase {
                c0,
                c1,
                target,
                theta,
            } => {
                let m = (1usize << c0) | (1usize << c1) | (1usize << target);
                self.phase_on_mask(m, m, Complex64::cis(theta))
            }
            X(q) => self.apply_x(q),
            Cx { control, target } => self.controlled_x(1usize << control, target),
            Ccx { c0, c1, target } => self.controlled_x((1usize << c0) | (1usize << c1), target),
            Swap(a, b) => self.apply_swap(0, a, b),
            Cswap { control, a, b } => self.apply_swap(1usize << control, a, b),
            // Any remaining 1q unitary.
            ref g if g.arity() == 1 => {
                let GateMatrix::One(m) = g.matrix() else {
                    unreachable!()
                };
                self.apply_mat2(g.qubits()[0], &m);
            }
            // Generic 2q / 3q fallback (untranspiled circuits only).
            ref g => match g.matrix() {
                GateMatrix::Two(m) => {
                    let q = g.qubits();
                    self.apply_mat4(q[0], q[1], &m);
                }
                GateMatrix::Three(m) => {
                    let q = g.qubits();
                    self.apply_mat8(q[0], q[1], q[2], &m);
                }
                GateMatrix::One(_) => unreachable!("1q handled above"),
            },
        }
    }

    fn use_parallel(&self) -> bool {
        self.parallel && self.amps.len() >= PARALLEL_MIN_AMPS
    }

    /// Multiplies every amplitude whose index satisfies
    /// `index & mask == want` by `phase`.
    pub(crate) fn phase_on_mask(&mut self, mask: usize, want: usize, phase: Complex64) {
        if self.use_parallel() {
            self.amps.par_iter_mut().enumerate().for_each(|(i, a)| {
                if i & mask == want {
                    *a *= phase;
                }
            });
        } else {
            for (i, a) in self.amps.iter_mut().enumerate() {
                if i & mask == want {
                    *a *= phase;
                }
            }
        }
    }

    /// Applies diag(p0, p1) on qubit `q` (both halves phased — RZ).
    pub(crate) fn diag_pair(&mut self, q: u32, p0: Complex64, p1: Complex64) {
        let bit = 1usize << q;
        let chunk = bit << 1;
        let body = |ch: &mut [Complex64]| {
            let (lo, hi) = ch.split_at_mut(bit);
            for a in lo {
                *a *= p0;
            }
            for a in hi {
                *a *= p1;
            }
        };
        if self.use_parallel() && self.amps.len() / chunk >= MIN_OUTER_CHUNKS {
            self.amps.par_chunks_mut(chunk).for_each(body);
        } else if self.use_parallel() {
            // Few, huge chunks: parallelize inside.
            for ch in self.amps.chunks_mut(chunk) {
                let (lo, hi) = ch.split_at_mut(bit);
                lo.par_iter_mut().for_each(|a| *a *= p0);
                hi.par_iter_mut().for_each(|a| *a *= p1);
            }
        } else {
            self.amps.chunks_mut(chunk).for_each(body);
        }
    }

    /// Pauli-X on `q`: swaps paired amplitudes.
    pub(crate) fn apply_x(&mut self, q: u32) {
        let bit = 1usize << q;
        let chunk = bit << 1;
        let body = |ch: &mut [Complex64]| {
            let (lo, hi) = ch.split_at_mut(bit);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                std::mem::swap(a, b);
            }
        };
        if self.use_parallel() && self.amps.len() / chunk >= MIN_OUTER_CHUNKS {
            self.amps.par_chunks_mut(chunk).for_each(body);
        } else if self.use_parallel() {
            for ch in self.amps.chunks_mut(chunk) {
                let (lo, hi) = ch.split_at_mut(bit);
                lo.par_iter_mut()
                    .zip(hi.par_iter_mut())
                    .for_each(|(a, b)| std::mem::swap(a, b));
            }
        } else {
            self.amps.chunks_mut(chunk).for_each(body);
        }
    }

    /// General single-qubit unitary on `q`.
    pub(crate) fn apply_mat2(&mut self, q: u32, m: &Mat2) {
        let bit = 1usize << q;
        let chunk = bit << 1;
        let [[m00, m01], [m10, m11]] = m.m;
        let pair = move |a: &mut Complex64, b: &mut Complex64| {
            let (x, y) = (*a, *b);
            *a = m00.mul_add(x, m01 * y);
            *b = m10.mul_add(x, m11 * y);
        };
        if self.use_parallel() && self.amps.len() / chunk >= MIN_OUTER_CHUNKS {
            self.amps.par_chunks_mut(chunk).for_each(|ch| {
                let (lo, hi) = ch.split_at_mut(bit);
                for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                    pair(a, b);
                }
            });
        } else if self.use_parallel() {
            for ch in self.amps.chunks_mut(chunk) {
                let (lo, hi) = ch.split_at_mut(bit);
                lo.par_iter_mut()
                    .zip(hi.par_iter_mut())
                    .for_each(|(a, b)| pair(a, b));
            }
        } else {
            for ch in self.amps.chunks_mut(chunk) {
                let (lo, hi) = ch.split_at_mut(bit);
                for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                    pair(a, b);
                }
            }
        }
    }

    /// X on `target` for every index whose bits in `control_mask` are all
    /// set (covers CX and CCX).
    pub(crate) fn controlled_x(&mut self, control_mask: usize, target: u32) {
        let bit = 1usize << target;
        let chunk = bit << 1;
        let body = |(ci, ch): (usize, &mut [Complex64])| {
            let base = ci * chunk;
            let (lo, hi) = ch.split_at_mut(bit);
            for (j, (a, b)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                if (base + j) & control_mask == control_mask {
                    std::mem::swap(a, b);
                }
            }
        };
        if self.use_parallel() && self.amps.len() / chunk >= MIN_OUTER_CHUNKS {
            self.amps.par_chunks_mut(chunk).enumerate().for_each(body);
        } else {
            self.amps.chunks_mut(chunk).enumerate().for_each(body);
        }
    }

    /// SWAP of qubits `a` and `b`, gated on all bits of `control_mask`
    /// (0 for plain SWAP; CSWAP passes the control bit).
    pub(crate) fn apply_swap(&mut self, control_mask: usize, a: u32, b: u32) {
        assert_ne!(a, b);
        let (lo_q, hi_q) = if a < b { (a, b) } else { (b, a) };
        let lo_bit = 1usize << lo_q;
        let hi_bit = 1usize << hi_q;
        let chunk = hi_bit << 1;
        let body = |(ci, ch): (usize, &mut [Complex64])| {
            let base = ci * chunk;
            let (lo_half, hi_half) = ch.split_at_mut(hi_bit);
            // Swap |…0…1…> (hi=0, lo=1) with |…1…0…> (hi=1, lo=0).
            for j in 0..hi_bit {
                if j & lo_bit != 0 {
                    let idx0 = base + j; // hi=0, lo=1
                    if idx0 & control_mask == control_mask {
                        std::mem::swap(&mut lo_half[j], &mut hi_half[j ^ lo_bit]);
                    }
                }
            }
        };
        if self.use_parallel() && self.amps.len() / chunk >= MIN_OUTER_CHUNKS {
            self.amps.par_chunks_mut(chunk).enumerate().for_each(body);
        } else {
            self.amps.chunks_mut(chunk).enumerate().for_each(body);
        }
    }

    /// Applies a general diagonal operator over `qubits`: amplitude `i`
    /// is multiplied by `table[gather_bits(i, qubits)]`. One pass over
    /// the state regardless of how many diagonal gates were coalesced
    /// into the table (the fused-plan kernel for diagonal runs).
    pub(crate) fn apply_diag_table(&mut self, qubits: &[u32], table: &[Complex64]) {
        debug_assert_eq!(table.len(), 1usize << qubits.len());
        debug_assert!(
            qubits.windows(2).all(|w| w[0] < w[1]),
            "diag-table qubits must be ascending"
        );
        if let [q] = qubits {
            return self.diag_pair(*q, table[0], table[1]);
        }
        // With ascending qubits the table index of amplitude `i` is a
        // bit-extract of `i` under the support mask — one BMI2 `pext`
        // instead of a per-qubit shift/or loop on x86-64.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("bmi2") {
            let mask = qubits.iter().fold(0u64, |m, &q| m | (1u64 << q));
            const CHUNK: usize = 1 << 12;
            if self.use_parallel() {
                self.amps
                    .par_chunks_mut(CHUNK)
                    .enumerate()
                    .for_each(|(c, chunk)| unsafe {
                        diag_table_pext(c * CHUNK, chunk, mask, table)
                    });
            } else {
                for (c, chunk) in self.amps.chunks_mut(CHUNK).enumerate() {
                    unsafe { diag_table_pext(c * CHUNK, chunk, mask, table) }
                }
            }
            return;
        }
        if self.use_parallel() {
            self.amps.par_iter_mut().enumerate().for_each(|(i, a)| {
                *a *= table[qfab_math::bits::gather_bits(i, qubits)];
            });
        } else {
            for (i, a) in self.amps.iter_mut().enumerate() {
                *a *= table[qfab_math::bits::gather_bits(i, qubits)];
            }
        }
    }

    /// Generic two-qubit unitary over gate operands `(q0, q1)` with `q0`
    /// the least significant matrix bit. Sequential (rare path).
    pub(crate) fn apply_mat4(&mut self, q0: u32, q1: u32, m: &Mat4) {
        assert_ne!(q0, q1);
        let (s0, s1) = if q0 < q1 { (q0, q1) } else { (q1, q0) };
        let groups = self.amps.len() >> 2;
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        for k in 0..groups {
            let base = insert_two_zero_bits(k, s0, s1);
            let idx = [base, base | b0, base | b1, base | b0 | b1];
            let v = [
                self.amps[idx[0]],
                self.amps[idx[1]],
                self.amps[idx[2]],
                self.amps[idx[3]],
            ];
            let out = m.apply(&v);
            for (slot, val) in idx.iter().zip(out) {
                self.amps[*slot] = val;
            }
        }
    }

    /// Generic three-qubit unitary over gate operands `(q0, q1, q2)` with
    /// `q0` least significant. Sequential (rare path).
    pub(crate) fn apply_mat8(&mut self, q0: u32, q1: u32, q2: u32, m: &Mat8) {
        let mut sorted = [q0, q1, q2];
        sorted.sort_unstable();
        assert!(sorted[0] != sorted[1] && sorted[1] != sorted[2]);
        let groups = self.amps.len() >> 3;
        let bits = [1usize << q0, 1usize << q1, 1usize << q2];
        for k in 0..groups {
            let base = insert_three_zero_bits(k, sorted[0], sorted[1], sorted[2]);
            let mut idx = [0usize; 8];
            for (local, slot) in idx.iter_mut().enumerate() {
                let mut g = base;
                for (bitpos, bitmask) in bits.iter().enumerate() {
                    if local >> bitpos & 1 == 1 {
                        g |= bitmask;
                    }
                }
                *slot = g;
            }
            let mut v = [Complex64::ZERO; 8];
            for (slot, val) in idx.iter().zip(v.iter_mut()) {
                *val = self.amps[*slot];
            }
            let out = m.apply(&v);
            for (slot, val) in idx.iter().zip(out) {
                self.amps[*slot] = val;
            }
        }
    }
}

/// Diag-table inner loop over one chunk starting at absolute amplitude
/// index `base`, with the table index extracted via BMI2 `pext`.
///
/// # Safety
/// Caller must have verified `bmi2` is available at runtime, and
/// `table.len() == 2^popcount(mask)` so every extracted index is in
/// bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
unsafe fn diag_table_pext(base: usize, chunk: &mut [Complex64], mask: u64, table: &[Complex64]) {
    for (j, a) in chunk.iter_mut().enumerate() {
        let t = core::arch::x86_64::_pext_u64((base + j) as u64, mask) as usize;
        *a *= *table.get_unchecked(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_circuit::Circuit;
    use qfab_math::approx::{approx_eq_slice, states_equal_up_to_phase};
    use qfab_math::complex::c64;
    use std::f64::consts::{FRAC_1_SQRT_2, PI};

    const TOL: f64 = 1e-10;

    /// Reference implementation: expand the gate to a full 2^n matrix by
    /// explicit basis-state action and multiply. Slow but obviously
    /// correct; used to validate every kernel.
    fn apply_reference(state: &[Complex64], n: u32, gate: &Gate) -> Vec<Complex64> {
        let d = dim(n);
        let qubits = gate.qubits();
        let ops = qubits.as_slice();
        let mut out = vec![Complex64::ZERO; d];
        match gate.matrix() {
            GateMatrix::One(m) => permute_apply(state, &mut out, d, ops, &m.m.concat()),
            GateMatrix::Two(m) => permute_apply(state, &mut out, d, ops, &m.m.concat()),
            GateMatrix::Three(m) => permute_apply(state, &mut out, d, ops, &m.m.concat()),
        }
        out
    }

    fn permute_apply(
        state: &[Complex64],
        out: &mut [Complex64],
        d: usize,
        ops: &[u32],
        flat: &[Complex64],
    ) {
        let local_dim = 1usize << ops.len();
        debug_assert_eq!(state.len(), d);
        for (col_global, &amp) in state.iter().enumerate() {
            if amp.norm_sqr() == 0.0 {
                continue;
            }
            let local_col = qfab_math::bits::gather_bits(col_global, ops);
            for local_row in 0..local_dim {
                let coeff = flat[local_row * local_dim + local_col];
                if coeff.norm_sqr() == 0.0 {
                    continue;
                }
                let row_global = qfab_math::bits::scatter_bits(col_global, local_row, ops);
                out[row_global] += coeff * amp;
            }
        }
    }

    fn random_state(n: u32, seed: u64) -> StateVector {
        let mut rng = qfab_math::rng::Xoshiro256StarStar::new(seed);
        let amps: Vec<Complex64> = (0..dim(n))
            .map(|_| c64(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        StateVector::from_amplitudes(n, amps.into_iter().map(|a| a / norm).collect())
    }

    fn check_gate_against_reference(n: u32, gate: Gate, seed: u64) {
        let mut state = random_state(n, seed);
        let expect = apply_reference(state.amplitudes(), n, &gate);
        state.apply_gate(&gate);
        assert!(
            approx_eq_slice(state.amplitudes(), &expect, TOL),
            "kernel mismatch for {gate} on {n} qubits"
        );
    }

    #[test]
    fn every_kernel_matches_reference() {
        use Gate::*;
        let gates: Vec<Gate> = vec![
            I(1),
            X(0),
            X(3),
            Y(2),
            Z(1),
            H(0),
            H(3),
            S(2),
            Sdg(2),
            T(0),
            Tdg(0),
            Sx(1),
            Sxdg(1),
            Rx(2, 0.37),
            Ry(0, -1.2),
            Rz(3, 2.4),
            Phase(1, 0.81),
            U(2, 0.3, 1.0, -0.5),
            Cx {
                control: 0,
                target: 2,
            },
            Cx {
                control: 3,
                target: 1,
            },
            Cz(1, 3),
            Cphase {
                control: 2,
                target: 0,
                theta: 0.9,
            },
            Ch {
                control: 1,
                target: 3,
            },
            Swap(0, 3),
            Swap(2, 1),
            Ccx {
                c0: 0,
                c1: 1,
                target: 3,
            },
            Ccx {
                c0: 3,
                c1: 1,
                target: 0,
            },
            Ccphase {
                c0: 2,
                c1: 0,
                target: 3,
                theta: -0.77,
            },
            Cswap {
                control: 1,
                a: 0,
                b: 3,
            },
            Cswap {
                control: 3,
                a: 2,
                b: 0,
            },
        ];
        for (i, gate) in gates.into_iter().enumerate() {
            check_gate_against_reference(4, gate, 100 + i as u64);
        }
    }

    #[test]
    fn kernels_match_reference_on_larger_states() {
        use Gate::*;
        // Exercise high-qubit/low-qubit extremes on 8 qubits.
        for gate in [
            H(7),
            H(0),
            X(7),
            Rz(7, 0.31),
            Cx {
                control: 7,
                target: 0,
            },
            Cx {
                control: 0,
                target: 7,
            },
            Cphase {
                control: 6,
                target: 7,
                theta: 1.3,
            },
            Swap(0, 7),
            Ccx {
                c0: 6,
                c1: 7,
                target: 0,
            },
        ] {
            check_gate_against_reference(8, gate, 7);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        // 14 qubits passes the PARALLEL_MIN_AMPS threshold (16384 amps).
        let n = 14;
        let mut a = random_state(n, 42);
        let mut b = a.clone();
        a.set_parallel(true);
        b.set_parallel(false);
        let mut circ = Circuit::new(n);
        circ.h(0)
            .h(13)
            .cx(0, 13)
            .rz(0.7, 5)
            .cphase(0.3, 2, 11)
            .swap(1, 12)
            .ccx(3, 9, 0)
            .x(7);
        a.apply_circuit(&circ);
        b.apply_circuit(&circ);
        assert!(approx_eq_slice(a.amplitudes(), b.amplitudes(), TOL));
    }

    #[test]
    fn zero_state_and_basis_state() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.num_qubits(), 3);
        assert!((s.probability(0) - 1.0).abs() < TOL);
        let b = StateVector::basis_state(3, 5);
        assert!((b.probability(5) - 1.0).abs() < TOL);
        assert!((b.norm() - 1.0).abs() < TOL);
    }

    #[test]
    fn from_sparse_normalizes() {
        let s = StateVector::from_sparse(2, &[(0, c64(1.0, 0.0)), (3, c64(1.0, 0.0))]);
        assert!((s.probability(0) - 0.5).abs() < TOL);
        assert!((s.probability(3) - 0.5).abs() < TOL);
        assert!((s.norm() - 1.0).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "duplicate basis index")]
    fn from_sparse_rejects_duplicates() {
        StateVector::from_sparse(2, &[(1, Complex64::ONE), (1, Complex64::ONE)]);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn from_amplitudes_checks_norm() {
        StateVector::from_amplitudes(1, vec![c64(1.0, 0.0), c64(1.0, 0.0)]);
    }

    #[test]
    fn hadamard_makes_uniform_superposition() {
        let mut s = StateVector::zero_state(3);
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        s.apply_circuit(&c);
        for i in 0..8 {
            assert!((s.probability(i) - 0.125).abs() < TOL);
        }
    }

    #[test]
    fn bell_state_entanglement() {
        let mut s = StateVector::zero_state(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        s.apply_circuit(&c);
        assert!((s.probability(0b00) - 0.5).abs() < TOL);
        assert!((s.probability(0b11) - 0.5).abs() < TOL);
        assert!(s.probability(0b01) < TOL);
        assert!(s.probability(0b10) < TOL);
    }

    #[test]
    fn ghz_state_on_larger_register() {
        let n = 10;
        let mut s = StateVector::zero_state(n);
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        s.apply_circuit(&c);
        assert!((s.probability(0) - 0.5).abs() < TOL);
        assert!((s.probability((1 << n) - 1) - 0.5).abs() < TOL);
    }

    #[test]
    fn circuit_inverse_restores_state() {
        let n = 6;
        let mut c = Circuit::new(n);
        c.h(0)
            .cx(0, 3)
            .cphase(0.4, 1, 2)
            .t(4)
            .swap(2, 5)
            .ccphase(0.9, 0, 1, 5)
            .ry(0.3, 3);
        let initial = random_state(n, 9);
        let mut s = initial.clone();
        s.apply_circuit(&c);
        s.apply_circuit(&c.inverse());
        assert!(approx_eq_slice(s.amplitudes(), initial.amplitudes(), 1e-9));
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut s = random_state(8, 21);
        let mut c = Circuit::new(8);
        c.h(0)
            .cx(0, 1)
            .cphase(1.1, 2, 3)
            .ccx(4, 5, 6)
            .ch(6, 7)
            .sx(2)
            .rz(0.2, 5);
        s.apply_circuit(&c);
        assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rz_vs_phase_global_phase_relation() {
        let mut a = random_state(3, 33);
        let mut b = a.clone();
        a.apply_gate(&Gate::Rz(1, 0.77));
        b.apply_gate(&Gate::Phase(1, 0.77));
        // Differ by global phase e^{-iθ/2} only.
        assert!(states_equal_up_to_phase(
            a.amplitudes(),
            b.amplitudes(),
            1e-10
        ));
        assert!(!approx_eq_slice(a.amplitudes(), b.amplitudes(), 1e-10));
    }

    #[test]
    fn fidelity_of_identical_and_orthogonal() {
        let a = StateVector::basis_state(2, 1);
        let b = StateVector::basis_state(2, 2);
        assert!((a.fidelity(&a) - 1.0).abs() < TOL);
        assert!(a.fidelity(&b) < TOL);
    }

    #[test]
    fn plus_state_h_round_trip() {
        let mut s = StateVector::zero_state(1);
        s.apply_gate(&Gate::H(0));
        assert!(s.amplitudes()[0].approx_eq(c64(FRAC_1_SQRT_2, 0.0), TOL));
        s.apply_gate(&Gate::H(0));
        assert!(s.amplitudes()[0].approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn textbook_qft_phase_on_two_qubits() {
        // QFT|01> on 2 qubits (y=1): amplitudes (1, i, -1, -i)/2 in the
        // bit-reversed textbook circuit output order — verified by direct
        // construction: H(1); CP(π/2, 0→1); H(0); then bit reversal swap.
        let mut s = StateVector::basis_state(2, 1);
        let mut c = Circuit::new(2);
        c.h(1).cphase(PI / 2.0, 0, 1).h(0).swap(0, 1);
        s.apply_circuit(&c);
        let expect = [c64(0.5, 0.0), c64(0.0, 0.5), c64(-0.5, 0.0), c64(0.0, -0.5)];
        assert!(approx_eq_slice(s.amplitudes(), &expect, TOL));
    }
}
