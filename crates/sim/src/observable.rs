//! Pauli-string observables and expectation values.
//!
//! An [`Observable`] is a real-weighted sum of Pauli strings
//! `Σ_k c_k · P_k`, `P_k ∈ {I, X, Y, Z}^⊗n`. Expectation values
//! `<ψ|O|ψ>` are computed without materializing any matrix: each Pauli
//! string is applied to a scratch copy of the state (X/Y permute
//! amplitude pairs, Z flips signs) and reduced against the original.
//!
//! This is the standard measurement-layer abstraction the arithmetic
//! study itself doesn't need (its metric is count-based), but any
//! downstream use of the simulator — variational algorithms, energy
//! estimates, entanglement witnesses — does.

use crate::statevector::StateVector;
use qfab_math::complex::Complex64;
use std::fmt;

/// One Pauli operator on one qubit within a string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PauliOp {
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

/// A Pauli string: a sparse set of `(qubit, PauliOp)` factors (identity
/// elsewhere).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PauliString {
    factors: Vec<(u32, PauliOp)>,
}

impl PauliString {
    /// The identity string.
    pub fn identity() -> Self {
        Self {
            factors: Vec::new(),
        }
    }

    /// Builds a string from `(qubit, op)` factors; qubits must be
    /// distinct.
    pub fn new(mut factors: Vec<(u32, PauliOp)>) -> Self {
        factors.sort_unstable_by_key(|f| f.0);
        for w in factors.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate qubit {} in Pauli string", w[0].0);
        }
        Self { factors }
    }

    /// Parses compact text like `"ZZ"`, `"XIZ"`, `"IYI"` — leftmost
    /// character acts on the *highest* qubit (bitstring convention).
    pub fn parse(s: &str) -> Option<Self> {
        let n = s.len() as u32;
        let mut factors = Vec::new();
        for (i, ch) in s.chars().enumerate() {
            let q = n - 1 - i as u32;
            match ch.to_ascii_uppercase() {
                'I' => {}
                'X' => factors.push((q, PauliOp::X)),
                'Y' => factors.push((q, PauliOp::Y)),
                'Z' => factors.push((q, PauliOp::Z)),
                _ => return None,
            }
        }
        Some(Self::new(factors))
    }

    /// The non-identity factors, sorted by qubit.
    pub fn factors(&self) -> &[(u32, PauliOp)] {
        &self.factors
    }

    /// Weight (number of non-identity factors).
    pub fn weight(&self) -> usize {
        self.factors.len()
    }

    /// Applies the string to a state in place: `|ψ> → P|ψ>`.
    pub fn apply(&self, state: &mut StateVector) {
        for &(q, op) in &self.factors {
            match op {
                PauliOp::X => state.apply_gate(&qfab_circuit::Gate::X(q)),
                PauliOp::Y => state.apply_gate(&qfab_circuit::Gate::Y(q)),
                PauliOp::Z => state.apply_gate(&qfab_circuit::Gate::Z(q)),
            }
        }
    }

    /// `<ψ|P|ψ>` (always real for Hermitian P; the real part is
    /// returned, the imaginary part is numerical noise).
    pub fn expectation(&self, state: &StateVector) -> f64 {
        let mut scratch = state.clone();
        self.apply(&mut scratch);
        let inner: Complex64 = state
            .amplitudes()
            .iter()
            .zip(scratch.amplitudes())
            .map(|(a, b)| a.conj() * *b)
            .sum();
        inner.re
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return write!(f, "I");
        }
        let parts: Vec<String> = self
            .factors
            .iter()
            .map(|(q, op)| format!("{op:?}{q}"))
            .collect();
        write!(f, "{}", parts.join("·"))
    }
}

/// A real-weighted sum of Pauli strings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Observable {
    terms: Vec<(f64, PauliString)>,
}

impl Observable {
    /// The zero observable.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A single weighted string.
    pub fn term(coefficient: f64, string: PauliString) -> Self {
        Self {
            terms: vec![(coefficient, string)],
        }
    }

    /// Adds a weighted string.
    pub fn add_term(mut self, coefficient: f64, string: PauliString) -> Self {
        self.terms.push((coefficient, string));
        self
    }

    /// The terms.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// `<ψ|O|ψ> = Σ c_k <ψ|P_k|ψ>`.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        self.terms
            .iter()
            .map(|(c, p)| c * p.expectation(state))
            .sum()
    }

    /// The Z-magnetization observable `Σ_q Z_q`.
    pub fn total_z(n: u32) -> Self {
        let mut o = Self::zero();
        for q in 0..n {
            o = o.add_term(1.0, PauliString::new(vec![(q, PauliOp::Z)]));
        }
        o
    }

    /// The number operator `Σ_q (I − Z_q)/2`, counting set bits; its
    /// expectation is the mean Hamming weight of measurement outcomes.
    pub fn hamming_weight(n: u32) -> Self {
        let mut o = Self::term(n as f64 / 2.0, PauliString::identity());
        for q in 0..n {
            o = o.add_term(-0.5, PauliString::new(vec![(q, PauliOp::Z)]));
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_circuit::Circuit;

    const TOL: f64 = 1e-10;

    #[test]
    fn z_expectation_on_basis_states() {
        let z0 = PauliString::new(vec![(0, PauliOp::Z)]);
        assert!((z0.expectation(&StateVector::basis_state(2, 0)) - 1.0).abs() < TOL);
        assert!((z0.expectation(&StateVector::basis_state(2, 1)) + 1.0).abs() < TOL);
        // Z on qubit 1 ignores qubit 0.
        let z1 = PauliString::new(vec![(1, PauliOp::Z)]);
        assert!((z1.expectation(&StateVector::basis_state(2, 1)) - 1.0).abs() < TOL);
        assert!((z1.expectation(&StateVector::basis_state(2, 2)) + 1.0).abs() < TOL);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut plus = StateVector::zero_state(1);
        plus.apply_gate(&qfab_circuit::Gate::H(0));
        let x = PauliString::new(vec![(0, PauliOp::X)]);
        assert!((x.expectation(&plus) - 1.0).abs() < TOL);
        let z = PauliString::new(vec![(0, PauliOp::Z)]);
        assert!(z.expectation(&plus).abs() < TOL);
    }

    #[test]
    fn bell_state_correlations() {
        let mut bell = StateVector::zero_state(2);
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        bell.apply_circuit(&c);
        // <ZZ> = <XX> = 1, <YY> = −1, single-qubit <Z> = 0.
        assert!((PauliString::parse("ZZ").unwrap().expectation(&bell) - 1.0).abs() < TOL);
        assert!((PauliString::parse("XX").unwrap().expectation(&bell) - 1.0).abs() < TOL);
        assert!((PauliString::parse("YY").unwrap().expectation(&bell) + 1.0).abs() < TOL);
        assert!(PauliString::parse("ZI").unwrap().expectation(&bell).abs() < TOL);
    }

    #[test]
    fn parse_conventions() {
        // "XI": X on the higher qubit (1), identity on qubit 0.
        let p = PauliString::parse("XI").unwrap();
        assert_eq!(p.factors(), &[(1, PauliOp::X)]);
        assert_eq!(PauliString::parse("II").unwrap().weight(), 0);
        assert!(PauliString::parse("XQ").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_qubits_rejected() {
        PauliString::new(vec![(0, PauliOp::X), (0, PauliOp::Z)]);
    }

    #[test]
    fn identity_expectation_is_one() {
        let s = StateVector::basis_state(3, 5);
        assert!((PauliString::identity().expectation(&s) - 1.0).abs() < TOL);
    }

    #[test]
    fn observable_linearity() {
        let s = StateVector::basis_state(2, 0b01);
        let o = Observable::zero()
            .add_term(2.0, PauliString::parse("IZ").unwrap()) // Z on qubit 0 -> −1
            .add_term(3.0, PauliString::parse("ZI").unwrap()); // Z on qubit 1 -> +1
        assert!((o.expectation(&s) - (-2.0 + 3.0)).abs() < TOL);
    }

    #[test]
    fn hamming_weight_counts_bits() {
        for (idx, expect) in [(0usize, 0.0), (0b101, 2.0), (0b111, 3.0)] {
            let s = StateVector::basis_state(3, idx);
            assert!(
                (Observable::hamming_weight(3).expectation(&s) - expect).abs() < TOL,
                "index {idx}"
            );
        }
        // Uniform superposition: expected weight n/2.
        let mut s = StateVector::zero_state(3);
        for q in 0..3 {
            s.apply_gate(&qfab_circuit::Gate::H(q));
        }
        assert!((Observable::hamming_weight(3).expectation(&s) - 1.5).abs() < TOL);
    }

    #[test]
    fn total_z_on_ghz() {
        let mut s = StateVector::zero_state(3);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        s.apply_circuit(&c);
        // GHZ: half |000> (Z-sum +3), half |111> (−3): mean 0.
        assert!(Observable::total_z(3).expectation(&s).abs() < TOL);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", PauliString::identity()), "I");
        let p = PauliString::new(vec![(0, PauliOp::X), (2, PauliOp::Z)]);
        assert_eq!(format!("{p}"), "X0·Z2");
    }
}
