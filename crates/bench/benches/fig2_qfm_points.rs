//! Fig. 2: one miniature QFM success-rate point per panel class.
//!
//! The QFM circuits are ~6× longer and one qubit wider than the QFA's,
//! which is why the paper's multiplication success collapses at error
//! rates an order of magnitude lower — and why this bench uses very few
//! shots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qfab_bench::fixed_mul_instance;
use qfab_core::pipeline::PreparedInstance;
use qfab_core::{AqftDepth, RunConfig};
use qfab_math::rng::Xoshiro256StarStar;
use qfab_noise::NoiseModel;
use std::hint::black_box;

const SHOTS: u64 = 16;

fn bench_fig2(c: &mut Criterion) {
    let inst = fixed_mul_instance();
    let config = RunConfig {
        shots: SHOTS,
        ..RunConfig::default()
    };

    let mut group = c.benchmark_group("fig2_qfm");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SHOTS));

    for (dlabel, depth) in [("d1", AqftDepth::Limited(1)), ("full", AqftDepth::Full)] {
        group.bench_with_input(BenchmarkId::new("prepare", dlabel), &depth, |b, &depth| {
            b.iter(|| {
                black_box(PreparedInstance::new(
                    &inst.circuit(depth),
                    inst.initial_state(),
                    &config,
                ))
            })
        });
    }

    let models = [
        ("noiseless", NoiseModel::ideal()),
        ("1q_0.02pct", NoiseModel::only_1q_depolarizing(0.0002)),
        ("2q_0.05pct", NoiseModel::only_2q_depolarizing(0.0005)),
        ("2q_1.0pct", NoiseModel::only_2q_depolarizing(0.010)),
    ];
    let prep = PreparedInstance::new(
        &inst.circuit(AqftDepth::Full),
        inst.initial_state(),
        &config,
    );
    for (label, model) in &models {
        let run = prep.noisy(model);
        group.bench_with_input(
            BenchmarkId::new("sample_16_shots_full", label),
            &run,
            |b, run| {
                let mut stream = 0u64;
                b.iter(|| {
                    stream += 1;
                    let mut rng = Xoshiro256StarStar::for_stream(43, stream);
                    black_box(run.sample_counts(SHOTS, &mut rng))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
