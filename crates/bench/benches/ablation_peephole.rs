//! Ablation: the peephole optimizer — its own cost, what it removes,
//! and what the removal buys in simulation time.
//!
//! The paper's counts are unoptimized (the reproduction harness keeps
//! it off); this bench shows the trade-off the pass offers on the
//! arithmetic circuits and on a maximally reducible input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qfab_bench::fixed_add_instance;
use qfab_core::AqftDepth;
use qfab_sim::StateVector;
use qfab_transpile::{optimize, transpile, Basis};
use std::hint::black_box;

fn bench_peephole(c: &mut Criterion) {
    let inst = fixed_add_instance();
    let lowered = transpile(&inst.circuit(AqftDepth::Full), Basis::CxPlus1q);
    // A mirrored circuit: worst case amount of cancellation work.
    let mut mirrored = lowered.clone();
    mirrored.extend(&lowered.inverse());

    let mut group = c.benchmark_group("ablation_peephole");
    group.sample_size(20);

    group.bench_function("optimize_qfa_lowered", |b| {
        b.iter(|| black_box(optimize(black_box(&lowered))))
    });
    group.bench_function("optimize_mirrored_full_cancellation", |b| {
        b.iter(|| black_box(optimize(black_box(&mirrored))))
    });

    let (optimized, report) = optimize(&lowered);
    // Reporting the effect once, for the bench log.
    eprintln!(
        "peephole on lowered QFA: {} -> {} gates (cancelled {}, merged {}, pruned {})",
        report.gates_before, report.gates_after, report.cancelled, report.merged, report.pruned
    );

    for (label, circuit) in [("unoptimized", &lowered), ("optimized", &optimized)] {
        group.bench_with_input(
            BenchmarkId::new("simulate_qfa", label),
            circuit,
            |b, circuit| {
                b.iter_batched(
                    || inst.initial_state(),
                    |mut s| {
                        s.apply_circuit(circuit);
                        black_box(s)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }

    // Sanity outside measurement: optimized circuit still adds.
    let mut s: StateVector = inst.initial_state();
    s.apply_circuit(&optimized);
    let expected = inst.expected_outputs();
    let mass: f64 = expected.iter().map(|&i| s.probability(i)).sum();
    assert!((mass - 1.0).abs() < 1e-6, "optimized QFA broke arithmetic");

    group.finish();
}

criterion_group!(benches, bench_peephole);
criterion_main!(benches);
