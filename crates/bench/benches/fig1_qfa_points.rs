//! Fig. 1: one miniature QFA success-rate point per panel class.
//!
//! Measures the full per-point pipeline — prepare (transpile +
//! noiseless checkpointed simulation) and sample (clean split + noisy
//! trajectory replays) — for a 1:2 instance at the paper's geometry,
//! under each error class and a spread of depths, at a reduced shot
//! count. The noise-free case isolates preparation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qfab_bench::fixed_add_instance;
use qfab_core::pipeline::PreparedInstance;
use qfab_core::{AqftDepth, RunConfig};
use qfab_math::rng::Xoshiro256StarStar;
use qfab_noise::NoiseModel;
use std::hint::black_box;

const SHOTS: u64 = 64;

fn bench_fig1(c: &mut Criterion) {
    let inst = fixed_add_instance();
    let config = RunConfig {
        shots: SHOTS,
        ..RunConfig::default()
    };

    let mut group = c.benchmark_group("fig1_qfa");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SHOTS));

    for (dlabel, depth) in [
        ("d1", AqftDepth::Limited(1)),
        ("d3", AqftDepth::Limited(3)),
        ("full", AqftDepth::Full),
    ] {
        group.bench_with_input(BenchmarkId::new("prepare", dlabel), &depth, |b, &depth| {
            b.iter(|| {
                black_box(PreparedInstance::new(
                    &inst.circuit(depth),
                    inst.initial_state(),
                    &config,
                ))
            })
        });
    }

    let models = [
        ("noiseless", NoiseModel::ideal()),
        ("1q_0.2pct", NoiseModel::only_1q_depolarizing(0.002)),
        ("2q_1.0pct", NoiseModel::only_2q_depolarizing(0.010)),
        ("2q_4.0pct", NoiseModel::only_2q_depolarizing(0.040)),
    ];
    let prep = PreparedInstance::new(
        &inst.circuit(AqftDepth::Limited(3)),
        inst.initial_state(),
        &config,
    );
    for (label, model) in &models {
        let run = prep.noisy(model);
        group.bench_with_input(
            BenchmarkId::new("sample_64_shots_d3", label),
            &run,
            |b, run| {
                let mut stream = 0u64;
                b.iter(|| {
                    stream += 1;
                    let mut rng = Xoshiro256StarStar::for_stream(42, stream);
                    black_box(run.sample_counts(SHOTS, &mut rng))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
