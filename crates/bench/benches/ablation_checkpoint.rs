//! Ablation: checkpointed trajectory replay vs naive re-simulation.
//!
//! DESIGN.md §5 claims the checkpoint table saves most of the
//! per-trajectory work at realistic error rates (the first error lands
//! deep in the circuit). This bench quantifies it on the paper's QFA
//! geometry: replays with a single late insertion, under three table
//! configurations — no checkpoints (one initial snapshot only), the
//! default memory budget, and per-gate checkpoints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qfab_bench::fixed_add_instance;
use qfab_circuit::Gate;
use qfab_core::AqftDepth;
use qfab_sim::{CheckpointTable, Insertion};
use qfab_transpile::{transpile, Basis};
use std::hint::black_box;

fn bench_checkpoint(c: &mut Criterion) {
    let inst = fixed_add_instance();
    let circuit = transpile(&inst.circuit(AqftDepth::Full), Basis::CxPlus1q);
    let initial = inst.initial_state();
    let gates = circuit.len();

    // Positions: early (worst case for checkpoints), middle, late
    // (where most first errors land at hardware rates).
    let positions = [gates / 10, gates / 2, gates * 9 / 10];

    let tables = [
        (
            "none",
            CheckpointTable::build(circuit.clone(), &initial, gates + 1),
        ),
        (
            "budget_16MiB",
            CheckpointTable::build_with_budget(
                circuit.clone(),
                &initial,
                CheckpointTable::DEFAULT_BUDGET_BYTES,
            ),
        ),
        (
            "every_8_gates",
            CheckpointTable::build(circuit.clone(), &initial, 8),
        ),
    ];

    let mut group = c.benchmark_group("ablation_checkpoint");
    group.sample_size(20);
    for (label, table) in &tables {
        for &pos in &positions {
            let ins = [Insertion {
                after_gate: pos,
                gate: Gate::X(3),
            }];
            group.bench_with_input(
                BenchmarkId::new(*label, format!("err_at_{}pct", pos * 100 / gates)),
                &ins,
                |b, ins| b.iter(|| black_box(table.run_with_insertions(black_box(ins)))),
            );
        }
    }
    group.bench_function("table_construction_budget_16MiB", |b| {
        b.iter(|| {
            black_box(CheckpointTable::build_with_budget(
                circuit.clone(),
                &initial,
                CheckpointTable::DEFAULT_BUDGET_BYTES,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
