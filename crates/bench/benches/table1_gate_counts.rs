//! Table I: building, transpiling and counting every tabulated circuit
//! configuration. Also asserts (once, outside measurement) that each
//! count matches the paper exactly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qfab_core::{qfa, qfm, AqftDepth};
use qfab_experiments::table1::run_table1;
use qfab_transpile::{transpile, Basis};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Correctness gate: the bench regenerates the paper's table.
    for e in run_table1() {
        assert!(e.matches(), "Table I mismatch: {e:?}");
    }

    let mut group = c.benchmark_group("table1");
    group.sample_size(20);

    let qfa_depths = [
        ("d1", AqftDepth::Limited(1)),
        ("d4", AqftDepth::Limited(4)),
        ("full", AqftDepth::Full),
    ];
    for (label, depth) in qfa_depths {
        group.bench_with_input(
            BenchmarkId::new("qfa_build_transpile_count", label),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    let circuit = qfa(7, 8, depth).circuit;
                    let counts = transpile(black_box(&circuit), Basis::CxPlus1q).counts();
                    black_box((counts.one_qubit, counts.two_qubit))
                })
            },
        );
    }
    let qfm_depths = [("d1", AqftDepth::Limited(1)), ("full", AqftDepth::Full)];
    for (label, depth) in qfm_depths {
        group.bench_with_input(
            BenchmarkId::new("qfm_build_transpile_count", label),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    let circuit = qfm(4, 4, depth).circuit;
                    let counts = transpile(black_box(&circuit), Basis::CxPlus1q).counts();
                    black_box((counts.one_qubit, counts.two_qubit))
                })
            },
        );
    }
    group.bench_function("full_table_regeneration", |b| {
        b.iter(|| black_box(run_table1()))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
