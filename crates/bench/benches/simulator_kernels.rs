//! Microbenchmarks of the raw state-vector gate kernels — the
//! foundation every figure's cost rests on.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use qfab_bench::fixed_mul_instance;
use qfab_circuit::{Circuit, Gate};
use qfab_core::{aqft, AqftDepth};
use qfab_math::rng::Xoshiro256StarStar;
use qfab_sim::{BatchedState, FusedPlan, Insertion, ShotSampler, StateVector};
use std::hint::black_box;

/// The full-depth QFM replay kernel: the transpiled circuit and its
/// initial state, the exact hot path `repro bench` times.
fn qfm_replay_kernel() -> (Circuit, StateVector) {
    let inst = fixed_mul_instance();
    let lowered = qfab_transpile::transpile(
        &inst.circuit(AqftDepth::Full),
        qfab_transpile::Basis::CxPlus1q,
    );
    (lowered, inst.initial_state())
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    for n in [14u32, 17] {
        let amps = 1u64 << n;
        group.throughput(Throughput::Elements(amps));
        let gates = [
            ("h_low", Gate::H(0)),
            ("h_high", Gate::H(n - 1)),
            ("x", Gate::X(n / 2)),
            ("rz", Gate::Rz(n / 2, 0.31)),
            (
                "cx",
                Gate::Cx {
                    control: 0,
                    target: n - 1,
                },
            ),
            (
                "cphase",
                Gate::Cphase {
                    control: 1,
                    target: n - 2,
                    theta: 0.4,
                },
            ),
        ];
        for (label, gate) in gates {
            group.bench_with_input(
                BenchmarkId::new(format!("{n}q"), label),
                &gate,
                |b, gate| {
                    let mut s = StateVector::zero_state(n);
                    s.set_parallel(false);
                    // Spread amplitude so the kernel does real work.
                    for q in 0..n {
                        s.apply_gate(&Gate::H(q));
                    }
                    b.iter(|| {
                        s.apply_gate(black_box(gate));
                    })
                },
            );
        }
    }

    group.finish();

    // Whole-transform benchmarks: the paper's basic building block.
    let mut group2 = c.benchmark_group("qft");
    group2.sample_size(10);
    for n in [8u32, 12, 16] {
        for (label, depth) in [("full", AqftDepth::Full), ("d3", AqftDepth::Limited(3))] {
            let circuit = aqft(n, depth);
            group2.bench_with_input(
                BenchmarkId::new(format!("{n}q"), label),
                &circuit,
                |b, circuit| {
                    b.iter_batched(
                        || {
                            let mut s = StateVector::basis_state(n, 1);
                            s.set_parallel(false);
                            s
                        },
                        |mut s| {
                            s.apply_circuit(circuit);
                            black_box(s)
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group2.finish();

    // Trajectory replay: the fused execution plan vs the pre-fusion
    // per-gate loop on the full-depth QFM kernel (the paper's costliest
    // replay workload).
    let mut group_replay = c.benchmark_group("replay");
    group_replay.sample_size(10);
    {
        let (circuit, initial) = qfm_replay_kernel();
        let plan = FusedPlan::compile(&circuit);
        group_replay.bench_function("qfm_full/fused", |b| {
            b.iter_batched(
                || initial.clone(),
                |mut s| {
                    plan.apply(&mut s);
                    black_box(s)
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group_replay.bench_function("qfm_full/per_gate", |b| {
            b.iter_batched(
                || initial.clone(),
                |mut s| {
                    s.apply_circuit(&circuit);
                    black_box(s)
                },
                criterion::BatchSize::LargeInput,
            )
        });
        // 8 trajectories per SoA sweep; one iteration advances all 8
        // shots, so per-trajectory time is the reported time / 8.
        group_replay.bench_function("qfm_full/batched_x8", |b| {
            let lanes: Vec<&[Insertion]> = vec![&[]; 8];
            b.iter_batched(
                || BatchedState::broadcast(&initial, 8),
                |mut batch| {
                    plan.run_batch(&mut batch, 0, &lanes);
                    black_box(batch)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group_replay.finish();

    // Measurement sampling paths.
    let mut group3 = c.benchmark_group("sampling");
    group3.sample_size(20);
    let n = 16u32;
    let mut s = StateVector::zero_state(n);
    s.set_parallel(false);
    for q in 0..n {
        s.apply_gate(&Gate::H(q));
    }
    group3.bench_function("sample_once_16q", |b| {
        let mut rng = Xoshiro256StarStar::new(1);
        b.iter(|| black_box(ShotSampler::sample_once(&s, &mut rng)))
    });
    group3.bench_function("sample_2048_shots_alias_16q", |b| {
        let mut rng = Xoshiro256StarStar::new(2);
        b.iter(|| black_box(ShotSampler::sample_counts(&s, 2048, &mut rng)))
    });
    group3.finish();
}

/// Hand-timed pass over the same kernel set, recorded through the
/// telemetry histograms and emitted as `BENCH_kernels.json` via the
/// manifest encoder — the machine-readable feed for cross-run
/// performance tracking (criterion's own stats stay in
/// `target/criterion`). Writes into `$QFAB_BENCH_OUT` or the current
/// directory.
fn emit_kernel_manifest() {
    use qfab_telemetry as telemetry;
    use std::path::PathBuf;

    telemetry::set_mode(telemetry::Mode::Detail);
    telemetry::reset();
    const REPS: usize = 25;
    for n in [14u32, 17] {
        let gates = [
            ("h_low", Gate::H(0)),
            ("h_high", Gate::H(n - 1)),
            ("x", Gate::X(n / 2)),
            ("rz", Gate::Rz(n / 2, 0.31)),
            (
                "cx",
                Gate::Cx {
                    control: 0,
                    target: n - 1,
                },
            ),
            (
                "cphase",
                Gate::Cphase {
                    control: 1,
                    target: n - 2,
                    theta: 0.4,
                },
            ),
        ];
        for (label, gate) in gates {
            // Histogram names are `&'static`; bench labels are few and
            // the process exits right after, so leaking them is fine.
            let name: &'static str =
                Box::leak(format!("bench.kernels.{n}q.{label}_ns").into_boxed_str());
            let hist = telemetry::histogram(name);
            let mut s = StateVector::zero_state(n);
            s.set_parallel(false);
            for q in 0..n {
                s.apply_gate(&Gate::H(q));
            }
            for _ in 0..REPS {
                let span = hist.span();
                s.apply_gate(black_box(&gate));
                drop(span);
            }
            black_box(&s);
        }
    }

    // Replay timing on the full-depth QFM kernel — fused sequential,
    // per-gate, and SoA-batched — the machine-readable counterpart of
    // `repro bench`.
    const REPLAY_REPS: usize = 5;
    let (circuit, initial) = qfm_replay_kernel();
    let plan = FusedPlan::compile(&circuit);
    let fused_hist = telemetry::histogram("bench.replay.qfm_full.fused_ns");
    for _ in 0..REPLAY_REPS {
        let mut s = initial.clone();
        let span = fused_hist.span();
        plan.apply(&mut s);
        drop(span);
        black_box(&s);
    }
    let per_gate_hist = telemetry::histogram("bench.replay.qfm_full.per_gate_ns");
    for _ in 0..REPLAY_REPS {
        let mut s = initial.clone();
        let span = per_gate_hist.span();
        s.apply_circuit(&circuit);
        drop(span);
        black_box(&s);
    }
    // Batched replay: BATCH_K trajectories per SoA sweep, recorded as
    // *per-trajectory* nanoseconds so the histogram compares directly
    // against `fused_ns` (their ratio is the batching speedup the
    // `repro bench` smoke asserts on).
    const BATCH_K: usize = 8;
    let batched_hist = telemetry::histogram("bench.replay.qfm_full.batched_ns");
    let lanes: Vec<&[Insertion]> = vec![&[]; BATCH_K];
    for _ in 0..REPLAY_REPS {
        let mut batch = BatchedState::broadcast(&initial, BATCH_K);
        let start = std::time::Instant::now();
        plan.run_batch(&mut batch, 0, &lanes);
        batched_hist.record(start.elapsed().as_nanos() as u64 / BATCH_K as u64);
        black_box(&batch);
    }

    let manifest = telemetry::Manifest::new("BENCH_kernels")
        .field("reps", REPS)
        .field("replay_reps", REPLAY_REPS)
        .field("batch_lanes", BATCH_K)
        .field(
            "sizes_qubits",
            telemetry::Json::Arr(vec![telemetry::Json::U64(14), telemetry::Json::U64(17)]),
        )
        .metrics(&telemetry::snapshot());
    telemetry::set_mode(telemetry::Mode::Off);
    let dir = std::env::var_os("QFAB_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let path = dir.join("BENCH_kernels.json");
    match manifest.write_to(&path) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed writing {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_kernels);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    emit_kernel_manifest();
}
