//! Ablation: state-vector kernel parallelism on/off across state sizes.
//!
//! DESIGN.md §5: inner (per-gate) rayon parallelism only pays above a
//! size threshold, and should be off when an outer loop saturates the
//! cores. This bench measures a representative gate mix at several
//! qubit counts with the flag in both positions (on a single-core host
//! the "on" rows expose pure overhead; on a many-core host they show
//! the crossover).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qfab_circuit::Circuit;
use qfab_sim::StateVector;
use std::hint::black_box;

fn gate_mix(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    for q in 0..n {
        c.rz(0.1 + q as f64 * 0.01, q);
    }
    for q in 0..n - 1 {
        c.cphase(0.3, q, q + 1);
    }
    c
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    for n in [12u32, 15, 18] {
        let circuit = gate_mix(n);
        group.throughput(Throughput::Elements(circuit.len() as u64));
        for parallel in [false, true] {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("gate_mix_{}q", n),
                    if parallel { "parallel" } else { "sequential" },
                ),
                &parallel,
                |b, &parallel| {
                    b.iter_batched(
                        || {
                            let mut s = StateVector::zero_state(n);
                            s.set_parallel(parallel);
                            s
                        },
                        |mut s| {
                            s.apply_circuit(&circuit);
                            black_box(s)
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
