#![warn(missing_docs)]

//! Shared helpers for the qfab benchmark suite.
//!
//! Each Criterion bench regenerates (a miniature of) one paper artifact
//! and measures the machinery behind it:
//!
//! | bench | paper artifact / question |
//! |---|---|
//! | `table1_gate_counts` | Table I — build + transpile + count each configuration |
//! | `fig1_qfa_points` | Fig. 1 — one QFA success-rate point per panel class |
//! | `fig2_qfm_points` | Fig. 2 — one QFM success-rate point per panel class |
//! | `ablation_checkpoint` | checkpointed replay vs naive full re-simulation |
//! | `ablation_parallel` | gate-kernel parallel threshold |
//! | `ablation_peephole` | optimizer cost and its effect on simulation time |
//! | `simulator_kernels` | raw per-gate kernel throughput |
//!
//! Full-scale figure regeneration is the `repro` binary's job; benches
//! run reduced workloads so `cargo bench` completes in minutes.

use qfab_core::{AddInstance, MulInstance, Qinteger};

/// A fixed, representative QFA instance (paper geometry, 1:2 orders).
pub fn fixed_add_instance() -> AddInstance {
    AddInstance {
        n: 7,
        m: 8,
        x: Qinteger::new(7, vec![53]),
        y: Qinteger::new(8, vec![19, 101]),
    }
}

/// A fixed, representative QFM instance (paper geometry, 1:2 orders).
pub fn fixed_mul_instance() -> MulInstance {
    MulInstance {
        n: 4,
        m: 4,
        x: Qinteger::new(4, vec![11]),
        y: Qinteger::new(4, vec![6, 13]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_paper_geometry() {
        let a = fixed_add_instance();
        assert_eq!((a.n, a.m), (7, 8));
        assert_eq!((a.x.order(), a.y.order()), (1, 2));
        let m = fixed_mul_instance();
        assert_eq!((m.n, m.m), (4, 4));
        assert_eq!(m.num_qubits(), 16);
    }
}
