//! End-to-end checks for the live sweep monitor behind `repro --watch`:
//! the `qfab.status.v1` heartbeat must validate in every run state
//! (including when read back from disk, as after a crash), the HTTP
//! endpoints must serve it concurrently while the sampler is live, and
//! `GET /dash` must be byte-identical to the offline
//! `dashboard::render_dir` output for the same store.
//!
//! Both tests hold the telemetry exclusive lock: the monitor, the
//! heartbeat state, and the metric registry are process-global.

use qfab_core::AqftDepth;
use qfab_experiments::watch;
use qfab_experiments::{dashboard, run_panel_with, CellCache};
use qfab_experiments::{ErrorTarget, OpKind, PanelSpec, Scale};
use qfab_telemetry::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn spec() -> PanelSpec {
    PanelSpec {
        id: "watchtest",
        title: "watch integration".into(),
        op: OpKind::Add,
        n: 3,
        m: 4,
        order_x: 1,
        order_y: 1,
        error_target: ErrorTarget::TwoQubit,
        rates: vec![0.0, 0.02],
        depths: vec![AqftDepth::Limited(2), AqftDepth::Full],
        reference_rate: 0.02,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qfab_watchitest_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn populate(dir: &Path) {
    let cache = CellCache::open(dir, true).unwrap();
    run_panel_with(
        &spec(),
        Scale {
            instances: 4,
            shots: 16,
        },
        7,
        Some(&cache),
        |_| {},
    );
    cache.close().unwrap();
}

/// One blocking HTTP GET; returns `(status code, headers, body bytes)`.
fn http_get_full(addr: SocketAddr, path: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to watch server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: watch\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    let head = std::str::from_utf8(&raw[..header_end]).expect("headers are UTF-8");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line has a code")
        .parse()
        .expect("status code parses");
    (status, head.to_string(), raw[header_end + 4..].to_vec())
}

/// One blocking HTTP GET; returns `(status code, body bytes)`.
fn http_get(addr: SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let (status, _, body) = http_get_full(addr, path);
    (status, body)
}

/// Live JSON endpoints must declare their charset and forbid caching —
/// a stale heartbeat in a proxy cache is worse than none.
fn assert_json_headers(head: &str, path: &str) {
    assert!(
        head.contains("Content-Type: application/json; charset=utf-8"),
        "{path}: missing JSON charset header in:\n{head}"
    );
    assert!(
        head.contains("Cache-Control: no-store"),
        "{path}: missing Cache-Control: no-store in:\n{head}"
    );
}

#[test]
fn heartbeat_schema_validates_and_rejects_malformed_documents() {
    let _guard = qfab_telemetry::exclusive_test_lock();
    // With no session running the heartbeat is the idle document, and
    // it still validates.
    let idle = watch::heartbeat_json();
    watch::validate_status(&idle).expect("idle heartbeat validates");
    assert_eq!(idle.get("state").and_then(Json::as_str), Some("idle"));

    // Round-trip through the wire encoding (integral floats re-parse
    // as integers; validation must tolerate that).
    let reparsed = Json::parse(&idle.encode_pretty()).unwrap();
    watch::validate_status(&reparsed).expect("re-parsed heartbeat validates");

    for (doc, why) in [
        (r#"{"schema":"other.v1","state":"idle"}"#, "wrong schema"),
        (
            r#"{"schema":"qfab.status.v1","state":"paused"}"#,
            "bad state",
        ),
        (
            r#"{"schema":"qfab.status.v1","state":"running","elapsed_secs":-1,
                "panels_completed":[],"panel":null}"#,
            "negative elapsed",
        ),
        (
            r#"{"schema":"qfab.status.v1","state":"running","elapsed_secs":1,
                "panels_completed":[],"panel":{"id":"x",
                "instances":{"done":5,"total":2},"cells":{"done":0,"total":8}}}"#,
            "done exceeds total",
        ),
    ] {
        let parsed = Json::parse(doc).unwrap();
        assert!(watch::validate_status(&parsed).is_err(), "accepted: {why}");
    }
}

#[test]
fn watch_session_serves_live_endpoints_and_persists_the_heartbeat() {
    let _guard = qfab_telemetry::exclusive_test_lock();
    let dir = tmp("live");
    populate(&dir);

    let status_path = dir.join("status.json");
    let session =
        watch::start("127.0.0.1:0", &dir, status_path.clone()).expect("watch session starts");
    let addr = session.local_addr();

    // A second session must be refused while the first one is live.
    assert!(watch::start("127.0.0.1:0", &dir, dir.join("other.json")).is_err());

    // Simulate a sweep feeding progress into the heartbeat.
    watch::panel_started("watchtest", 4, 4);

    // The first heartbeat lands on disk before start() returns, and is
    // atomically replaced thereafter — there is always a parseable one.
    let on_disk = std::fs::read_to_string(&status_path).expect("status.json exists");
    let parsed = Json::parse(&on_disk).expect("status.json parses");
    watch::validate_status(&parsed).expect("on-disk heartbeat validates");

    // Concurrent readers against the live server + sampler: every
    // response must be a complete, valid heartbeat.
    let readers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..8 {
                    let (status, head, body) = http_get_full(addr, "/status.json");
                    assert_eq!(status, 200);
                    assert_json_headers(&head, "/status.json");
                    let doc = Json::parse(std::str::from_utf8(&body).unwrap())
                        .expect("served status parses");
                    watch::validate_status(&doc).expect("served status validates");
                }
            })
        })
        .collect();
    for r in readers {
        r.join().expect("reader thread");
    }

    // The metrics timeline endpoint serves the qfab.timeline.v1 ring,
    // with the same live-JSON headers as the heartbeat.
    let (status, head, body) = http_get_full(addr, "/metrics.json");
    assert_eq!(status, 200);
    assert_json_headers(&head, "/metrics.json");
    let timeline = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        timeline.get("schema").and_then(Json::as_str),
        Some("qfab.timeline.v1")
    );
    assert!(matches!(timeline.get("samples"), Some(Json::Arr(_))));

    // `GET /dash` is the same renderer as `repro dash`: byte-identical.
    let (status, body) = http_get(addr, "/dash");
    assert_eq!(status, 200);
    let offline = dashboard::render_dir(&dir).expect("offline render");
    assert_eq!(
        String::from_utf8(body).unwrap(),
        offline,
        "live /dash must match the offline dashboard byte-for-byte"
    );

    // Unknown paths 404 without disturbing the session.
    let (status, _) = http_get(addr, "/no-such-route");
    assert_eq!(status, 404);

    // The monitor is read-only: POST is refused with the allowed verb.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "POST /status.json HTTP/1.1\r\nHost: watch\r\nContent-Length: 2\r\n\r\n{{}}"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    assert!(raw.contains("Allow: GET"), "{raw}");

    watch::panel_finished("watchtest");
    session.finish(0);

    // After shutdown the terminal heartbeat stays on disk, marked done.
    let final_doc = Json::parse(&std::fs::read_to_string(&status_path).unwrap()).unwrap();
    watch::validate_status(&final_doc).expect("final heartbeat validates");
    assert_eq!(final_doc.get("state").and_then(Json::as_str), Some("done"));
    assert!(
        matches!(final_doc.get("panels_completed"), Some(Json::Arr(v)) if v.len() == 1),
        "completed panel is recorded in the final heartbeat"
    );

    // The server is really down.
    assert!(TcpStream::connect(addr).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
