//! Federation end-to-end through the real `repro` binary: a job served
//! by two worker subprocesses must produce byte-identical panel files,
//! ledger state, and dashboard to a single-process `repro --store` run
//! of the same spec; a queue written by a dead service must resume on
//! the next start; and hand-run worker shards merged offline must
//! replay to the same outputs.
//!
//! These tests spawn subprocesses (the service re-executes the `repro`
//! binary in worker mode), so they exercise the exact production path:
//! `CARGO_BIN_EXE_repro` serve → fork workers → merge shard stores →
//! finalize.

use qfab_telemetry::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const REPRO: &str = env!("CARGO_BIN_EXE_repro");

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qfab_serveitest_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `repro` to completion and asserts success.
fn repro(args: &[&str]) -> std::process::Output {
    let out = Command::new(REPRO)
        .args(args)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro {args:?} failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// A spawned service that is SIGKILLed when the test ends (or panics),
/// so a failing assertion never leaks a listening subprocess.
struct Service(Child);

impl Service {
    fn spawn(store: &Path, workers: &str) -> Self {
        let child = Command::new(REPRO)
            .args(["serve", "127.0.0.1:0", "--store"])
            .arg(store)
            .args(["--workers", workers])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn repro serve");
        Service(child)
    }

    fn kill(mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Polls `<store>/service.json` (written atomically once the port is
/// bound) for the service's discovery document and returns its address.
fn wait_for_service(store: &Path) -> SocketAddr {
    let path = store.join("service.json");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(doc) = Json::parse(&text) {
                assert_eq!(
                    doc.get("schema").and_then(Json::as_str),
                    Some("qfab.service.v1"),
                    "discovery file carries its schema tag"
                );
                if let Some(addr) = doc.get("addr").and_then(Json::as_str) {
                    if let Ok(addr) = addr.parse() {
                        return addr;
                    }
                }
            }
        }
        assert!(Instant::now() < deadline, "service.json never appeared");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One blocking HTTP exchange; returns `(status, headers, body)`.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to service");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: serve\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    let head = std::str::from_utf8(&raw[..header_end]).expect("headers are UTF-8");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line has a code")
        .parse()
        .expect("status code parses");
    (status, head.to_string(), raw[header_end + 4..].to_vec())
}

/// JSON endpoints must declare their charset and refuse caching.
fn assert_json_headers(head: &str, what: &str) {
    assert!(
        head.contains("Content-Type: application/json; charset=utf-8"),
        "{what}: missing JSON charset header in:\n{head}"
    );
    assert!(
        head.contains("Cache-Control: no-store"),
        "{what}: missing Cache-Control: no-store in:\n{head}"
    );
}

/// Submits a job and returns its id.
fn post_job(addr: SocketAddr, job: &str) -> String {
    let (status, head, body) = http(addr, "POST", "/jobs", job);
    let text = String::from_utf8_lossy(&body).into_owned();
    assert_eq!(status, 200, "POST /jobs: {text}");
    assert_json_headers(&head, "POST /jobs");
    let ack = Json::parse(&text).expect("job ack parses");
    assert_eq!(ack.get("state").and_then(Json::as_str), Some("queued"));
    ack.get("id")
        .and_then(Json::as_str)
        .expect("ack carries the job id")
        .to_string()
}

/// Polls `GET /jobs/{id}` until the job reaches a terminal state.
fn wait_for_job(addr: SocketAddr, id: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, head, body) = http(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "GET /jobs/{id}");
        assert_json_headers(&head, "GET /jobs/{id}");
        let doc = Json::parse(std::str::from_utf8(&body).unwrap()).expect("job status parses");
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => return doc,
            Some("failed") => panic!(
                "job failed: {}",
                doc.get("error").and_then(Json::as_str).unwrap_or("?")
            ),
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }
}

/// Asserts two files are byte-identical.
fn assert_same_bytes(a: &Path, b: &Path) {
    let left = std::fs::read(a).unwrap_or_else(|e| panic!("read {}: {e}", a.display()));
    let right = std::fs::read(b).unwrap_or_else(|e| panic!("read {}: {e}", b.display()));
    assert!(left == right, "{} and {} differ", a.display(), b.display());
}

/// The tentpole invariant: a job sharded across two worker
/// subprocesses produces byte-identical `.txt`/`.csv` panels and
/// dashboard to a single-process `repro --store` run of the same spec.
#[test]
fn two_worker_service_matches_a_single_process_sweep_byte_for_byte() {
    let base = tmp("e2e");
    let ref_store = base.join("ref_store");
    let ref_out = base.join("ref_out");
    let svc_store = base.join("svc_store");

    // The single-process reference, recorded in its own store + ledger.
    repro(&[
        "fig1a",
        "--scale",
        "quick",
        "--instances",
        "4",
        "--shots",
        "16",
        "--seed",
        "7",
        "--store",
        ref_store.to_str().unwrap(),
        "--out",
        ref_out.to_str().unwrap(),
    ]);

    // The same spec through the service, sharded across two workers.
    let service = Service::spawn(&svc_store, "2");
    let addr = wait_for_service(&svc_store);
    let id = post_job(
        addr,
        r#"{"schema":"qfab.job.v1","grid":["fig1a"],"scale":"quick",
            "instances":4,"shots":16,"seed":7}"#,
    );
    let status = wait_for_job(addr, &id);
    assert_eq!(
        status.get("cells_done").and_then(Json::as_u64),
        status.get("cells_total").and_then(Json::as_u64),
        "a done job reports full cell coverage"
    );
    assert!(
        status
            .get("note")
            .and_then(Json::as_str)
            .is_some_and(|n| !n.contains("missed the shards")),
        "no cell may fall through to the finalize recompute path: {status:?}"
    );

    // The job listing includes it, and /dash serves the merged store.
    let (status_code, head, listing) = http(addr, "GET", "/jobs", "");
    assert_eq!(status_code, 200);
    assert_json_headers(&head, "GET /jobs");
    assert!(matches!(
        Json::parse(std::str::from_utf8(&listing).unwrap()),
        Ok(Json::Arr(items)) if items.len() == 1
    ));
    let (status_code, _, svc_dash) = http(addr, "GET", "/dash", "");
    assert_eq!(status_code, 200);
    service.kill();

    // Panel files: byte-identical to the reference.
    let job_out = svc_store.join("jobs").join(&id);
    assert_same_bytes(&ref_out.join("fig1a.txt"), &job_out.join("fig1a.txt"));
    assert_same_bytes(&ref_out.join("fig1a.csv"), &job_out.join("fig1a.csv"));

    // Dashboard: the served page over the federated store renders the
    // same bytes as the offline renderer over the single-process store
    // (cells, ledger entry, and all — nothing timing-dependent leaks).
    let offline = qfab_experiments::dashboard::render_dir(&ref_store).expect("offline render");
    assert_eq!(
        String::from_utf8(svc_dash).unwrap(),
        offline,
        "served /dash over the merged store must equal the single-process dashboard"
    );

    // The merged service store passes the integrity check and has the
    // run on its ledger.
    repro(&["--store-verify", svc_store.to_str().unwrap()]);
    let history = repro(&["history", svc_store.to_str().unwrap()]);
    assert!(
        !String::from_utf8_lossy(&history.stdout).contains("no history"),
        "the service records finished jobs in the ledger"
    );

    let _ = std::fs::remove_dir_all(&base);
}

/// Durability: a queue written by a service that died after
/// acknowledging a job (`jobs.wal` is fsynced before the HTTP 200, and
/// here the writing process is gone without any shutdown) is picked up
/// and completed by the next service start.
#[test]
fn a_job_queued_by_a_dead_service_resumes_on_restart() {
    let base = tmp("resume");
    let store = base.join("store");
    std::fs::create_dir_all(&store).unwrap();

    // Seed the queue exactly as a SIGKILLed service leaves it: the
    // submit ack is on disk (fsynced), one job mid-run, no cleanup ran.
    let job = qfab_serve::JobSpec {
        grid: vec!["fig1a".to_string()],
        scale: "quick".to_string(),
        instances: Some(2),
        shots: Some(16),
        seed: 11,
        shots_ledger: false,
    };
    let cells = qfab_experiments::servecmd::job_cells(&job).expect("job validates");
    let id = {
        let mut queue = qfab_serve::JobQueue::open(&store).expect("queue opens");
        let id = queue.submit(job, cells).expect("submit is durable");
        queue.mark_running(&id).expect("job starts");
        id
        // Dropped without any terminal state — the writer is "dead".
    };

    let service = Service::spawn(&store, "2");
    let addr = wait_for_service(&store);
    let status = wait_for_job(addr, &id);
    assert_eq!(status.get("state").and_then(Json::as_str), Some("done"));
    service.kill();

    let out = store.join("jobs").join(&id);
    assert!(out.join("fig1a.txt").exists(), "resumed job wrote panels");
    assert!(out.join("fig1a.csv").exists());
    repro(&["--store-verify", store.to_str().unwrap()]);

    let _ = std::fs::remove_dir_all(&base);
}

/// Offline federation: two hand-run `repro worker` half-sweeps, merged
/// with `repro merge`, replay to the same panel bytes as one
/// single-process sweep — the compute-halves-on-two-machines workflow.
#[test]
fn hand_run_worker_shards_merge_to_the_single_process_outputs() {
    let base = tmp("offline");
    let ref_store = base.join("ref_store");
    let ref_out = base.join("ref_out");
    let job = r#"{"schema":"qfab.job.v1","grid":["fig1a"],"scale":"quick",
                  "instances":2,"shots":16,"seed":5}"#;

    repro(&[
        "fig1a",
        "--scale",
        "quick",
        "--instances",
        "2",
        "--shots",
        "16",
        "--seed",
        "5",
        "--store",
        ref_store.to_str().unwrap(),
        "--out",
        ref_out.to_str().unwrap(),
    ]);

    // Each half on its own store, as if on two machines.
    let shards = [base.join("w0"), base.join("w1")];
    for (w, dir) in shards.iter().enumerate() {
        repro(&[
            "worker",
            "--job",
            job,
            "--shard",
            &format!("{w}/2"),
            "--store",
            dir.to_str().unwrap(),
        ]);
    }

    // Union them; the merged store must verify clean and contain every
    // cell of the reference sweep.
    let merged = base.join("merged");
    let out = repro(&[
        "merge",
        shards[0].to_str().unwrap(),
        shards[1].to_str().unwrap(),
        "-o",
        merged.to_str().unwrap(),
    ]);
    let report = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(report.contains("merged 2 source store(s)"), "{report}");
    repro(&["--store-verify", merged.to_str().unwrap()]);

    // Replaying the sweep over the merged store is pure cache traffic
    // and reproduces the reference panels byte for byte.
    let merged_out = base.join("merged_out");
    repro(&[
        "fig1a",
        "--scale",
        "quick",
        "--instances",
        "2",
        "--shots",
        "16",
        "--seed",
        "5",
        "--store",
        merged.to_str().unwrap(),
        "--out",
        merged_out.to_str().unwrap(),
    ]);
    assert_same_bytes(&ref_out.join("fig1a.txt"), &merged_out.join("fig1a.txt"));
    assert_same_bytes(&ref_out.join("fig1a.csv"), &merged_out.join("fig1a.csv"));

    let _ = std::fs::remove_dir_all(&base);
}

/// `repro history` on a store without a ledger explains itself and
/// exits 0 — an empty history is a state, not an error.
#[test]
fn history_reports_a_missing_ledger_cleanly() {
    let dir = tmp("nohistory");
    let out = repro(&["history", dir.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("no history recorded"),
        "unexpected output: {text}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
