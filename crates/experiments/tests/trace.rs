//! End-to-end acceptance test for `QFAB_TRACE` captures: run a tiny
//! panel with tracing enabled, export the Chrome `trace_event` JSON,
//! and validate the file structurally — parseable by `Json::parse`,
//! begin/end events pair up, per-thread timestamps are monotonic, and
//! `exp.cell` spans carry their (rate, depth, instance) args. Also
//! exercises the `trace-report` analyzer over the same capture.
//!
//! Single test function by design: trace mode is process-global, so
//! parallel test threads would race on `enable_full`/`reset`.

use qfab_experiments::tracereport;
use qfab_experiments::{fig1_panels, run_panel_with, Scale};
use qfab_telemetry::{trace, Json};

#[test]
fn traced_panel_run_exports_valid_chrome_trace() {
    trace::enable_full(trace::DEFAULT_RING_CAPACITY);
    trace::reset();

    let spec = &fig1_panels()[0];
    let scale = Scale {
        instances: 2,
        shots: 8,
    };
    let result = run_panel_with(spec, scale, 7, None, |_| {});
    assert!(!result.points.is_empty(), "panel produced no points");

    let dir = std::env::temp_dir().join(format!("qfab_trace_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    trace::write_trace(&path).unwrap();

    // The file must be a valid document for our own parser (and hence
    // strict JSON loadable by Perfetto / chrome://tracing).
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = Json::parse(&text).expect("trace file is valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing or not an array");
    };
    assert!(!events.is_empty());
    assert_eq!(
        doc.get("otherData")
            .and_then(|o| o.get("schema"))
            .and_then(Json::as_str),
        Some("qfab.trace.v1")
    );

    // Structural validation: every event has the required Chrome fields,
    // per-thread timestamps never go backwards, and every "E" closes a
    // "B" of the same name on the same thread.
    let mut stacks: std::collections::HashMap<u64, Vec<&str>> = std::collections::HashMap::new();
    let mut last_ts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut cell_args_seen = 0u64;
    for ev in events {
        let name = ev.get("name").and_then(Json::as_str).expect("name");
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let ts = ev.get("ts").and_then(Json::as_u64).expect("ts");
        let tid = ev.get("tid").and_then(Json::as_u64).expect("tid");
        assert_eq!(ev.get("cat").and_then(Json::as_str), Some("qfab"));
        assert!(ev.get("pid").and_then(Json::as_u64).is_some());
        let prev = last_ts.entry(tid).or_insert(0);
        assert!(ts >= *prev, "timestamps went backwards on tid {tid}");
        *prev = ts;
        match ph {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let opened = stacks.entry(tid).or_default().pop();
                assert_eq!(opened, Some(name), "end does not close the innermost begin");
            }
            "i" => assert_eq!(ev.get("s").and_then(Json::as_str), Some("t")),
            other => panic!("unexpected phase {other:?}"),
        }
        if name == "exp.cell" && ph == "B" {
            let args = ev.get("args").expect("exp.cell begin carries args");
            assert!(args.get("rate").and_then(Json::as_f64).is_some());
            assert!(args.get("depth").is_some());
            assert!(args.get("instance").and_then(Json::as_u64).is_some());
            cell_args_seen += 1;
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
    let expected_cells = (result.points.len() * scale.instances) as u64;
    assert_eq!(cell_args_seen, expected_cells);

    // The analyzer agrees the capture is clean and attributes time to
    // the phases the panel actually ran.
    let analysis = tracereport::analyze(&doc).unwrap();
    assert_eq!(analysis.unmatched, 0);
    assert_eq!(analysis.dropped, 0);
    let phase_names: Vec<&str> = analysis.phases.iter().map(|(n, _)| n.as_str()).collect();
    for required in ["exp.panel", "exp.instance", "exp.cell", "pipeline.sample"] {
        assert!(phase_names.contains(&required), "missing phase {required}");
    }
    let report = tracereport::format_report(&analysis, 3);
    assert!(report.contains("critical path"), "{report}");
    assert!(report.contains("exp.cell"), "{report}");

    std::fs::remove_dir_all(&dir).ok();
    trace::set_trace_mode(trace::TraceMode::Off);
    trace::reset();
}
