//! End-to-end checks for the observability commands of the `repro`
//! binary: `dash` must emit one self-contained, byte-identical HTML
//! document; `diff` must pass a run against itself and flag an
//! injected per-cell success shift with a non-zero exit; `history`
//! must list ledger entries and serve them to `diff` as `DIR@N` refs.

use qfab_core::AqftDepth;
use qfab_experiments::ledger;
use qfab_experiments::rundata::{load_run, RunSummary};
use qfab_experiments::{run_panel_with, CellCache, ErrorTarget, OpKind, PanelSpec, Scale};
use qfab_store::wal;
use qfab_telemetry::Json;
use std::path::{Path, PathBuf};
use std::process::Command;

fn spec() -> PanelSpec {
    PanelSpec {
        id: "dashtest",
        title: "dashboard integration".into(),
        op: OpKind::Add,
        n: 3,
        m: 4,
        order_x: 1,
        order_y: 1,
        error_target: ErrorTarget::TwoQubit,
        rates: vec![0.0, 0.02],
        depths: vec![AqftDepth::Limited(2), AqftDepth::Full],
        reference_rate: 0.02,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qfab_dashitest_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// 8 instances per cell: enough that flipping a full cell (8/8 → 0/8)
/// is a z≈4 shift, far below α = 0.01.
fn populate(dir: &Path) {
    let cache = CellCache::open(dir, true).unwrap();
    run_panel_with(
        &spec(),
        Scale {
            instances: 8,
            shots: 32,
        },
        7,
        Some(&cache),
        |_| {},
    );
    cache.close().unwrap();
}

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

/// Forges a copy of `src` whose every record reports the *opposite*
/// success flag. The record digest covers the cell identity only, so
/// the forged store is structurally valid — exactly the shape of a
/// code change that silently redraws outcomes.
fn forge_shifted_store(src: &Path, dst: &Path) {
    let mut out = Vec::new();
    for file in ["index.seg", "journal.wal"] {
        let Ok(bytes) = std::fs::read(src.join(file)) else {
            continue;
        };
        for record in wal::scan(&bytes).records {
            let text = std::str::from_utf8(&record.value).unwrap();
            let Json::Obj(mut fields) = Json::parse(text).unwrap() else {
                panic!("cell payloads are objects");
            };
            for (key, value) in &mut fields {
                if key == "success" {
                    let Json::Bool(b) = value else {
                        panic!("success is a bool")
                    };
                    *value = Json::Bool(!*b);
                }
            }
            let payload = Json::Obj(fields).encode().into_bytes();
            out.extend_from_slice(&wal::encode_record(&record.key, &payload));
        }
    }
    assert!(!out.is_empty(), "source store must hold records");
    std::fs::write(dst.join("journal.wal"), out).unwrap();
}

#[test]
fn dash_renders_byte_identical_self_contained_html() {
    let dir = tmp("dash");
    populate(&dir);
    let out_a = dir.join("a.html");
    let out_b = dir.join("b.html");
    let run = repro(&["dash", dir.to_str().unwrap(), "-o", out_a.to_str().unwrap()]);
    assert!(run.status.success(), "{run:?}");
    let run = repro(&["dash", dir.to_str().unwrap(), "-o", out_b.to_str().unwrap()]);
    assert!(run.status.success(), "{run:?}");
    let a = std::fs::read_to_string(&out_a).unwrap();
    let b = std::fs::read_to_string(&out_b).unwrap();
    assert_eq!(a, b, "two renders of the same store must be byte-identical");
    assert!(a.starts_with("<!DOCTYPE html>"));
    assert!(a.ends_with("</html>\n"));
    assert!(a.contains("<svg "), "charts are inline SVG");
    assert!(
        !a.contains("src=") && !a.contains("href="),
        "self-contained: no external references"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_self_vs_self_exits_zero() {
    let dir = tmp("selfdiff");
    populate(&dir);
    let out = repro(&["diff", dir.to_str().unwrap(), dir.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no significant drift"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_flags_injected_shift_with_nonzero_exit() {
    let a = tmp("shift_a");
    let b = tmp("shift_b");
    populate(&a);
    forge_shifted_store(&a, &b);
    let out = repro(&[
        "diff",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--alpha",
        "0.01",
    ]);
    assert!(
        !out.status.success(),
        "an injected success shift must fail the gate"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("DRIFT"), "{stdout}");
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn history_lists_entries_and_diff_accepts_ledger_refs() {
    let dir = tmp("history");
    populate(&dir);
    let summary = RunSummary::from_run(&load_run(&dir).unwrap());
    assert!(ledger::append(&dir, &summary, Some("v-test-note")).unwrap());

    let out = repro(&["history", dir.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("run history: 1 entry"), "{stdout}");
    assert!(stdout.contains("v-test-note"), "{stdout}");

    // The recorded entry equals the live store: ledger-vs-dir is clean.
    let entry_ref = format!("{}@-1", dir.display());
    let out = repro(&["diff", &entry_ref, dir.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");

    // Out-of-range ledger refs are an error, not a silent pass.
    let bad_ref = format!("{}@5", dir.display());
    let out = repro(&["diff", &bad_ref, dir.to_str().unwrap()]);
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_commands_print_the_unified_usage() {
    let out = repro(&["no-such-command"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    for needle in [
        "dash DIR",
        "diff A B",
        "history DIR",
        "--store DIR",
        "--resume",
    ] {
        assert!(
            stderr.contains(needle),
            "usage missing '{needle}':\n{stderr}"
        );
    }
}
