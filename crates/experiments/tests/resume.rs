//! Resume determinism: a sweep resumed from a half-populated store must
//! produce byte-identical artifacts to an uninterrupted run, and a
//! journal torn mid-record must only cost recomputation, never
//! correctness.

use qfab_core::AqftDepth;
use qfab_experiments::report::{format_panel, panel_csv};
use qfab_experiments::{
    run_panel, run_panel_with, CellCache, ErrorTarget, OpKind, PanelSpec, Scale,
};
use std::path::PathBuf;

fn spec() -> PanelSpec {
    PanelSpec {
        id: "resumetest",
        title: "resume integration".into(),
        op: OpKind::Add,
        n: 3,
        m: 4,
        order_x: 1,
        order_y: 1,
        error_target: ErrorTarget::TwoQubit,
        rates: vec![0.0, 0.02],
        depths: vec![AqftDepth::Limited(2), AqftDepth::Full],
        reference_rate: 0.02,
    }
}

const SEED: u64 = 7;
const SHOTS: u64 = 48;

fn scale(instances: usize) -> Scale {
    Scale {
        instances,
        shots: SHOTS,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qfab_resume_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The cold-run reference artifacts at 6 instances.
fn reference() -> (String, String) {
    let result = run_panel(&spec(), scale(6), SEED, |_| {});
    (format_panel(&result), panel_csv(&result))
}

#[test]
fn resume_from_half_populated_store_is_byte_identical() {
    let (ref_txt, ref_csv) = reference();
    let dir = tmp("half");
    let cells = (spec().rates.len() * spec().depths.len()) as u64;

    // Interrupted run: only the first 3 instances reached the store.
    // Instance count is not part of the cell key, so a grown sweep
    // reuses the prefix.
    let cache = CellCache::open(&dir, true).unwrap();
    let half = run_panel_with(&spec(), scale(3), SEED, Some(&cache), |_| {});
    let half_stats = half.cache.unwrap();
    assert_eq!(half_stats.misses, 3 * cells);
    assert_eq!(half_stats.hits, 0);
    cache.close().unwrap();

    // Resume at full scale: instances 0-2 come from the store, 3-5 are
    // computed, and the artifacts match the uninterrupted run exactly.
    let cache = CellCache::open(&dir, true).unwrap();
    let resumed = run_panel_with(&spec(), scale(6), SEED, Some(&cache), |_| {});
    let stats = resumed.cache.unwrap();
    assert_eq!(stats.hits, 3 * cells);
    assert_eq!(stats.misses, 3 * cells);
    assert_eq!(stats.rejected, 0);
    assert_eq!(format_panel(&resumed), ref_txt);
    assert_eq!(panel_csv(&resumed), ref_csv);
    cache.close().unwrap();

    // A third pass is a pure replay: every cell hits, same bytes again.
    let cache = CellCache::open(&dir, true).unwrap();
    let warm = run_panel_with(&spec(), scale(6), SEED, Some(&cache), |_| {});
    let warm_stats = warm.cache.unwrap();
    assert_eq!(warm_stats.hits, 6 * cells);
    assert_eq!(warm_stats.misses, 0);
    assert_eq!(format_panel(&warm), ref_txt);
    assert_eq!(panel_csv(&warm), ref_csv);
    cache.close().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_costs_recomputation_not_correctness() {
    let (ref_txt, ref_csv) = reference();
    let dir = tmp("torn");

    // Populate the journal without compacting (no close), as a killed
    // process would leave it.
    let cache = CellCache::open(&dir, true).unwrap();
    run_panel_with(&spec(), scale(6), SEED, Some(&cache), |_| {});
    drop(cache);

    // Tear the final record mid-payload, like a kill during append.
    let journal = dir.join("journal.wal");
    let bytes = std::fs::read(&journal).unwrap();
    assert!(bytes.len() > 40, "journal unexpectedly small");
    std::fs::write(&journal, &bytes[..bytes.len() - 17]).unwrap();

    // Recovery drops the torn tail; the affected instance misses (its
    // grid is incomplete) and is recomputed; output bytes are unchanged.
    let cache = CellCache::open(&dir, true).unwrap();
    assert!(cache.recovery().truncated_bytes > 0);
    let resumed = run_panel_with(&spec(), scale(6), SEED, Some(&cache), |_| {});
    let stats = resumed.cache.unwrap();
    assert!(stats.hits > 0, "intact prefix should be served");
    assert!(stats.misses > 0, "torn instance should be recomputed");
    assert_eq!(format_panel(&resumed), ref_txt);
    assert_eq!(panel_csv(&resumed), ref_csv);
    cache.close().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_cache_refresh_recomputes_but_matches() {
    let (ref_txt, ref_csv) = reference();
    let dir = tmp("refresh");

    let cache = CellCache::open(&dir, true).unwrap();
    run_panel_with(&spec(), scale(6), SEED, Some(&cache), |_| {});
    cache.close().unwrap();

    // Reads disabled (`repro --no-cache`): every cell recomputes and
    // overwrites its record, results identical.
    let cache = CellCache::open(&dir, false).unwrap();
    let refreshed = run_panel_with(&spec(), scale(6), SEED, Some(&cache), |_| {});
    let stats = refreshed.cache.unwrap();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, refreshed.cache.unwrap().cells());
    assert_eq!(format_panel(&refreshed), ref_txt);
    assert_eq!(panel_csv(&refreshed), ref_csv);
    cache.close().unwrap();

    let _ = std::fs::remove_dir_all(&dir);
}
