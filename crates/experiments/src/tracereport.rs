//! Offline analysis of Chrome `trace_event` JSON written by
//! `qfab_telemetry::trace` — the engine behind `repro trace-report`.
//!
//! The analyzer rebuilds span trees from flat begin/end event streams
//! (one stack per thread id), then attributes wall clock three ways:
//!
//! * **per-phase totals** — for every span name: count, total time,
//!   *self* time (total minus time spent in child spans), and max;
//! * **critical path** — starting from the slowest root span, descend
//!   into the slowest child at each level;
//! * **top-k slowest cells** — `exp.cell` spans ranked by duration,
//!   with their `(rate, depth, instance)` arguments.
//!
//! Unmatched events (a begin with no end from a ring that overwrote
//! its tail, or vice versa) are tolerated and counted, never fatal:
//! truncated traces should still yield a useful report.

use qfab_telemetry::Json;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One reconstructed span.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Process id that recorded it (distinct per worker in a merged
    /// federation trace; 0 when the capture carries no pids).
    pub pid: u64,
    /// Thread id that recorded it.
    pub tid: u64,
    /// Begin timestamp (µs).
    pub start_us: u64,
    /// Duration (µs).
    pub dur_us: u64,
    /// Time inside child spans (µs).
    pub child_us: u64,
    /// Arguments from the begin and end events, merged (end wins).
    pub args: Vec<(String, String)>,
    /// Indices (into [`Analysis::spans`]) of direct children.
    pub children: Vec<usize>,
    /// Index of the parent span, if any.
    pub parent: Option<usize>,
}

impl SpanNode {
    /// Time not attributable to any child span (µs).
    pub fn self_us(&self) -> u64 {
        self.dur_us.saturating_sub(self.child_us)
    }
}

/// Aggregate statistics for one span name.
#[derive(Clone, Debug, Default)]
pub struct PhaseStats {
    /// Completed spans with this name.
    pub count: u64,
    /// Summed duration (µs).
    pub total_us: u64,
    /// Summed self time (µs).
    pub self_us: u64,
    /// Longest single span (µs).
    pub max_us: u64,
}

/// Everything extracted from one trace file.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Every completed span, in end order.
    pub spans: Vec<SpanNode>,
    /// Indices of spans with no parent (per-thread roots).
    pub roots: Vec<usize>,
    /// Per-name aggregates.
    pub phases: Vec<(String, PhaseStats)>,
    /// Wall clock covered by the trace: max end − min begin (µs).
    pub wall_us: u64,
    /// Instant events per name.
    pub instants: Vec<(String, u64)>,
    /// Begin events with no matching end (+ ends with no begin).
    pub unmatched: u64,
    /// Events the recorder overwrote (from `otherData.dropped`).
    pub dropped: u64,
    /// Process-track labels from `process_name` metadata events
    /// (`trace-merge` writes one per input worker), sorted by pid.
    pub process_names: Vec<(u64, String)>,
}

fn field_u64(event: &Json, key: &str) -> Option<u64> {
    event.get(key).and_then(Json::as_u64)
}

fn args_of(event: &Json) -> Vec<(String, String)> {
    let Some(Json::Obj(fields)) = event.get("args") else {
        return Vec::new();
    };
    fields
        .iter()
        .map(|(k, v)| {
            let rendered = match v {
                Json::Str(s) => s.clone(),
                other => other.encode(),
            };
            (k.clone(), rendered)
        })
        .collect()
}

/// Parses an already-decoded trace document into an [`Analysis`].
///
/// Returns `Err` when the document is structurally not a Chrome trace
/// (missing `traceEvents`); individual malformed events are skipped.
pub fn analyze(doc: &Json) -> Result<Analysis, String> {
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("not a trace file: missing \"traceEvents\" array".into());
    };
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped"))
        .and_then(Json::as_u64)
        .unwrap_or(0);

    struct Open {
        name: String,
        start_us: u64,
        args: Vec<(String, String)>,
        children: Vec<usize>,
        child_us: u64,
    }
    // Stacks are per (pid, tid): in a merged federation trace the same
    // tid exists in several worker processes, and their span nests must
    // never interleave.
    let mut stacks: HashMap<(u64, u64), Vec<Open>> = HashMap::new();
    let mut analysis = Analysis {
        dropped,
        ..Analysis::default()
    };
    let mut instants: HashMap<String, u64> = HashMap::new();
    let mut min_ts = u64::MAX;
    let mut max_ts = 0u64;

    for event in events {
        let (Some(name), Some(ph)) = (
            event.get("name").and_then(Json::as_str),
            event.get("ph").and_then(Json::as_str),
        ) else {
            continue;
        };
        let pid = field_u64(event, "pid").unwrap_or(0);
        if ph == "M" {
            if name == "process_name" {
                if let Some(label) = event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    analysis.process_names.push((pid, label.to_string()));
                }
            }
            continue;
        }
        let (Some(ts), Some(tid)) = (field_u64(event, "ts"), field_u64(event, "tid")) else {
            continue;
        };
        min_ts = min_ts.min(ts);
        max_ts = max_ts.max(ts);
        let stack = stacks.entry((pid, tid)).or_default();
        match ph {
            "B" => stack.push(Open {
                name: name.to_string(),
                start_us: ts,
                args: args_of(event),
                children: Vec::new(),
                child_us: 0,
            }),
            "E" => {
                // Tolerate interleaved unmatched ends: close the nearest
                // open span with this name, discarding (and counting)
                // anything stacked above it.
                let Some(pos) = stack.iter().rposition(|o| o.name == name) else {
                    analysis.unmatched += 1;
                    continue;
                };
                analysis.unmatched += (stack.len() - pos - 1) as u64;
                stack.truncate(pos + 1);
                let open = stack.pop().expect("position just found");
                let dur_us = ts.saturating_sub(open.start_us);
                let mut args = open.args;
                for (k, v) in args_of(event) {
                    match args.iter_mut().find(|(ek, _)| *ek == k) {
                        Some(slot) => slot.1 = v,
                        None => args.push((k, v)),
                    }
                }
                let idx = analysis.spans.len();
                analysis.spans.push(SpanNode {
                    name: open.name,
                    pid,
                    tid,
                    start_us: open.start_us,
                    dur_us,
                    child_us: open.child_us,
                    args,
                    children: open.children,
                    parent: None,
                });
                match stack.last_mut() {
                    Some(parent) => {
                        parent.children.push(idx);
                        parent.child_us += dur_us;
                    }
                    None => analysis.roots.push(idx),
                }
            }
            "i" => *instants.entry(name.to_string()).or_default() += 1,
            _ => {}
        }
    }
    for (_, stack) in stacks {
        analysis.unmatched += stack.len() as u64;
    }

    // Children learned their parent after being pushed — backfill.
    for i in 0..analysis.spans.len() {
        for c in analysis.spans[i].children.clone() {
            analysis.spans[c].parent = Some(i);
        }
    }

    let mut phases: HashMap<String, PhaseStats> = HashMap::new();
    for span in &analysis.spans {
        let p = phases.entry(span.name.clone()).or_default();
        p.count += 1;
        p.total_us += span.dur_us;
        p.self_us += span.self_us();
        p.max_us = p.max_us.max(span.dur_us);
    }
    analysis.phases = phases.into_iter().collect();
    analysis
        .phases
        .sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(&b.0)));
    analysis.instants = instants.into_iter().collect();
    analysis.instants.sort();
    analysis.process_names.sort();
    analysis.process_names.dedup();
    analysis.wall_us = max_ts.saturating_sub(min_ts.min(max_ts));
    Ok(analysis)
}

/// The label for a span's process track: the `process_name` metadata
/// label when one was recorded (merged traces), `pid N` otherwise.
pub fn process_label(analysis: &Analysis, pid: u64) -> String {
    analysis
        .process_names
        .iter()
        .find(|(p, _)| *p == pid)
        .map(|(_, label)| label.clone())
        .unwrap_or_else(|| format!("pid {pid}"))
}

/// The slowest root span and, at each level, its slowest child.
pub fn critical_path(analysis: &Analysis) -> Vec<usize> {
    let mut path = Vec::new();
    let Some(&root) = analysis
        .roots
        .iter()
        .max_by_key(|&&i| analysis.spans[i].dur_us)
    else {
        return path;
    };
    let mut cur = root;
    loop {
        path.push(cur);
        let Some(&next) = analysis.spans[cur]
            .children
            .iter()
            .max_by_key(|&&c| analysis.spans[c].dur_us)
        else {
            break;
        };
        cur = next;
    }
    path
}

/// Indices of the `top_k` slowest spans named `name`, slowest first.
pub fn slowest(analysis: &Analysis, name: &str, top_k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..analysis.spans.len())
        .filter(|&i| analysis.spans[i].name == name)
        .collect();
    idx.sort_by(|&a, &b| analysis.spans[b].dur_us.cmp(&analysis.spans[a].dur_us));
    idx.truncate(top_k);
    idx
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

fn fmt_args(args: &[(String, String)]) -> String {
    if args.is_empty() {
        return String::new();
    }
    let rendered: Vec<String> = args.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!(" [{}]", rendered.join(", "))
}

/// Renders the human-readable report `repro trace-report` prints.
pub fn format_report(analysis: &Analysis, top_k: usize) -> String {
    let mut s = String::new();
    if analysis.dropped > 0 {
        // Lead with the truncation, not a footnote: a ring that wrapped
        // silently would otherwise read as a complete (and wrong)
        // attribution of where the time went.
        let _ = writeln!(
            s,
            "truncated: {} events lost — the trace ring wrapped and overwrote its oldest\n\
             events, so every count and attribution below covers only the surviving\n\
             suffix of the run (raise the ring capacity to capture everything)\n",
            analysis.dropped
        );
    }
    let processes = analysis
        .spans
        .iter()
        .map(|sp| sp.pid)
        .collect::<std::collections::HashSet<_>>();
    let threads = analysis
        .spans
        .iter()
        .map(|sp| (sp.pid, sp.tid))
        .collect::<std::collections::HashSet<_>>()
        .len();
    if processes.len() > 1 {
        let _ = writeln!(
            s,
            "trace: {} spans, {} processes, {} threads, wall {}",
            analysis.spans.len(),
            processes.len(),
            threads,
            fmt_us(analysis.wall_us)
        );
    } else {
        let _ = writeln!(
            s,
            "trace: {} spans, {} threads, wall {}",
            analysis.spans.len(),
            threads,
            fmt_us(analysis.wall_us)
        );
    }
    if analysis.unmatched > 0 {
        let _ = writeln!(
            s,
            "  ({} unmatched begin/end events tolerated)",
            analysis.unmatched
        );
    }

    s.push_str("\nper-phase wall-clock attribution (sorted by self time)\n");
    let name_width = analysis
        .phases
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0)
        .max("phase".len());
    let _ = writeln!(
        s,
        "  {:<name_width$} {:>7} {:>10} {:>10} {:>10}",
        "phase", "count", "total", "self", "max"
    );
    for (name, p) in &analysis.phases {
        let _ = writeln!(
            s,
            "  {:<name_width$} {:>7} {:>10} {:>10} {:>10}",
            name,
            p.count,
            fmt_us(p.total_us),
            fmt_us(p.self_us),
            fmt_us(p.max_us)
        );
    }

    if !analysis.instants.is_empty() {
        s.push_str("\ninstant events\n");
        for (name, count) in &analysis.instants {
            let _ = writeln!(s, "  {name:<name_width$} {count:>7}");
        }
    }

    let path = critical_path(analysis);
    if !path.is_empty() {
        s.push_str("\ncritical path (slowest root, then slowest child at each level)\n");
        for (level, &i) in path.iter().enumerate() {
            let span = &analysis.spans[i];
            let _ = writeln!(
                s,
                "  {:indent$}{} {} (self {}){}",
                "",
                span.name,
                fmt_us(span.dur_us),
                fmt_us(span.self_us()),
                fmt_args(&span.args),
                indent = level * 2
            );
        }
    }

    let cells = slowest(analysis, "exp.cell", top_k);
    if !cells.is_empty() {
        let _ = writeln!(s, "\ntop {} slowest cells", cells.len());
        for &i in &cells {
            let span = &analysis.spans[i];
            // In a merged federation trace, say which worker owned the
            // cell; single-process captures stay byte-identical.
            let owner = if processes.len() > 1 {
                format!(" ({})", process_label(analysis, span.pid))
            } else {
                String::new()
            };
            let _ = writeln!(
                s,
                "  {}{owner}{}",
                fmt_us(span.dur_us),
                fmt_args(&span.args)
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(events: &str) -> Json {
        Json::parse(&format!(
            r#"{{"traceEvents":[{events}],"displayTimeUnit":"ms","otherData":{{"schema":"qfab.trace.v1","dropped":0}}}}"#
        ))
        .unwrap()
    }

    fn ev(name: &str, ph: &str, ts: u64, tid: u64) -> String {
        format!(r#"{{"name":"{name}","cat":"qfab","ph":"{ph}","ts":{ts},"pid":1,"tid":{tid}}}"#)
    }

    #[test]
    fn rejects_non_trace_documents() {
        let doc = Json::parse(r#"{"hello": 1}"#).unwrap();
        assert!(analyze(&doc).is_err());
    }

    #[test]
    fn nests_spans_and_attributes_self_time() {
        let d = doc(&[
            ev("outer", "B", 0, 1),
            ev("inner", "B", 10, 1),
            ev("inner", "E", 40, 1),
            ev("outer", "E", 100, 1),
        ]
        .join(","));
        let a = analyze(&d).unwrap();
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.roots.len(), 1);
        assert_eq!(a.unmatched, 0);
        let outer = &a.spans[a.roots[0]];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.dur_us, 100);
        assert_eq!(outer.child_us, 30);
        assert_eq!(outer.self_us(), 70);
        assert_eq!(outer.children.len(), 1);
        let inner = &a.spans[outer.children[0]];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, Some(a.roots[0]));
        assert_eq!(a.wall_us, 100);
    }

    #[test]
    fn threads_get_independent_stacks() {
        let d = doc(&[
            ev("a", "B", 0, 1),
            ev("b", "B", 5, 2),
            ev("a", "E", 20, 1),
            ev("b", "E", 30, 2),
        ]
        .join(","));
        let a = analyze(&d).unwrap();
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.roots.len(), 2, "one root per thread");
        assert!(a.spans.iter().all(|sp| sp.parent.is_none()));
    }

    #[test]
    fn tolerates_unmatched_events() {
        let d = doc(&[
            ev("orphan_end", "E", 5, 1),
            ev("ok", "B", 10, 1),
            ev("ok", "E", 20, 1),
            ev("never_ends", "B", 30, 1),
        ]
        .join(","));
        let a = analyze(&d).unwrap();
        assert_eq!(a.spans.len(), 1);
        assert_eq!(a.unmatched, 2);
    }

    #[test]
    fn critical_path_follows_slowest_children() {
        let d = doc(&[
            ev("root", "B", 0, 1),
            ev("fast", "B", 0, 1),
            ev("fast", "E", 10, 1),
            ev("slow", "B", 10, 1),
            ev("leaf", "B", 20, 1),
            ev("leaf", "E", 70, 1),
            ev("slow", "E", 90, 1),
            ev("root", "E", 100, 1),
        ]
        .join(","));
        let a = analyze(&d).unwrap();
        let names: Vec<&str> = critical_path(&a)
            .iter()
            .map(|&i| a.spans[i].name.as_str())
            .collect();
        assert_eq!(names, vec!["root", "slow", "leaf"]);
    }

    #[test]
    fn merges_begin_and_end_args_end_wins() {
        let d = doc(concat!(
            r#"{"name":"cell","cat":"qfab","ph":"B","ts":0,"pid":1,"tid":1,"args":{"rate":0.01,"n":1}},"#,
            r#"{"name":"cell","cat":"qfab","ph":"E","ts":50,"pid":1,"tid":1,"args":{"n":2}}"#
        ));
        let a = analyze(&d).unwrap();
        let args = &a.spans[0].args;
        assert!(args.contains(&("rate".to_string(), "0.01".to_string())));
        assert!(args.contains(&("n".to_string(), "2".to_string())));
    }

    #[test]
    fn report_lists_phases_instants_and_cells() {
        let d = doc(concat!(
            r#"{"name":"exp.panel","cat":"qfab","ph":"B","ts":0,"pid":1,"tid":1},"#,
            r#"{"name":"exp.cache.miss","cat":"qfab","ph":"i","ts":1,"pid":1,"tid":1,"s":"t"},"#,
            r#"{"name":"exp.cell","cat":"qfab","ph":"B","ts":2,"pid":1,"tid":1,"args":{"rate":0.05,"depth":-1,"instance":0}},"#,
            r#"{"name":"exp.cell","cat":"qfab","ph":"E","ts":1502,"pid":1,"tid":1},"#,
            r#"{"name":"exp.cell","cat":"qfab","ph":"B","ts":1600,"pid":1,"tid":1,"args":{"rate":0.1,"depth":2,"instance":0}},"#,
            r#"{"name":"exp.cell","cat":"qfab","ph":"E","ts":1900,"pid":1,"tid":1},"#,
            r#"{"name":"exp.panel","cat":"qfab","ph":"E","ts":2000,"pid":1,"tid":1}"#
        ));
        let a = analyze(&d).unwrap();
        let report = format_report(&a, 5);
        assert!(
            report.contains("per-phase wall-clock attribution"),
            "{report}"
        );
        assert!(report.contains("exp.panel"), "{report}");
        assert!(report.contains("exp.cache.miss"), "{report}");
        assert!(report.contains("critical path"), "{report}");
        assert!(report.contains("top 2 slowest cells"), "{report}");
        // The slowest cell (1.5ms, rate 0.05, full depth) leads.
        let cells_at = report.find("slowest cells").unwrap();
        let first_cell = &report[cells_at..];
        let rate_pos = first_cell.find("rate=0.05").unwrap();
        assert!(first_cell.find("rate=0.1").unwrap() > rate_pos, "{report}");
        assert!(first_cell.contains("depth=-1"), "{report}");
    }

    #[test]
    fn report_leads_with_truncation_when_ring_wrapped() {
        // Overflow the real trace ring, not a synthetic doc: a tiny
        // capacity and far more span events than it holds.
        let _guard = qfab_telemetry::exclusive_test_lock();
        use qfab_telemetry::trace;
        trace::reset();
        trace::enable_full(8);
        for _ in 0..32 {
            drop(trace::span("overflow.work"));
        }
        let (events, dropped) = trace::snapshot_events();
        trace::set_trace_mode(trace::TraceMode::Off);
        trace::reset();
        assert!(dropped > 0, "32 spans must overflow an 8-event ring");
        let d = trace::to_chrome_json(&events, dropped);
        let a = analyze(&d).unwrap();
        assert_eq!(a.dropped, dropped);
        let report = format_report(&a, 3);
        assert!(
            report.starts_with(&format!("truncated: {dropped} events lost")),
            "truncation must be the report's first line:\n{report}"
        );
        assert!(report.contains("covers only the surviving"), "{report}");
    }

    #[test]
    fn report_has_no_truncation_header_without_drops() {
        let d = doc(&[ev("ok", "B", 0, 1), ev("ok", "E", 10, 1)].join(","));
        let a = analyze(&d).unwrap();
        let report = format_report(&a, 3);
        assert!(report.starts_with("trace: "), "{report}");
        assert!(!report.contains("truncated"), "{report}");
    }

    #[test]
    fn merged_traces_keep_per_process_stacks_and_attribute_workers() {
        // Two workers, same tid, overlapping span nests — only a
        // per-(pid, tid) stack keeps them from interleaving.
        let merged = crate::tracemerge::merge_docs(&[
            (
                "w0".to_string(),
                doc(concat!(
                    r#"{"name":"exp.panel","cat":"qfab","ph":"B","ts":0,"pid":7,"tid":1},"#,
                    r#"{"name":"exp.cell","cat":"qfab","ph":"B","ts":10,"pid":7,"tid":1,"args":{"instance":0}},"#,
                    r#"{"name":"exp.cell","cat":"qfab","ph":"E","ts":500,"pid":7,"tid":1},"#,
                    r#"{"name":"exp.panel","cat":"qfab","ph":"E","ts":600,"pid":7,"tid":1}"#
                )),
            ),
            (
                "w1".to_string(),
                doc(concat!(
                    r#"{"name":"exp.panel","cat":"qfab","ph":"B","ts":5,"pid":7,"tid":1},"#,
                    r#"{"name":"exp.cell","cat":"qfab","ph":"B","ts":20,"pid":7,"tid":1,"args":{"instance":4}},"#,
                    r#"{"name":"exp.cell","cat":"qfab","ph":"E","ts":900,"pid":7,"tid":1},"#,
                    r#"{"name":"exp.panel","cat":"qfab","ph":"E","ts":950,"pid":7,"tid":1}"#
                )),
            ),
        ])
        .unwrap();
        let a = analyze(&merged).unwrap();
        assert_eq!(a.spans.len(), 4);
        assert_eq!(a.unmatched, 0, "per-process stacks must not interleave");
        assert_eq!(a.roots.len(), 2, "one exp.panel root per worker");
        assert_eq!(
            a.process_names,
            vec![(0, "w0".to_string()), (1, "w1".to_string())]
        );
        assert_eq!(process_label(&a, 1), "w1");
        assert_eq!(process_label(&a, 9), "pid 9");
        // Federation-wide slowest cell is w1's 880µs instance 4.
        let top = slowest(&a, "exp.cell", 1);
        assert_eq!(a.spans[top[0]].pid, 1);
        let report = format_report(&a, 2);
        assert!(report.contains("2 processes"), "{report}");
        assert!(report.contains("880µs (w1) [instance=4]"), "{report}");
    }

    #[test]
    fn slowest_respects_top_k() {
        let d = doc(&(0..5)
            .flat_map(|i| {
                [
                    ev("exp.cell", "B", i * 100, 1),
                    ev("exp.cell", "E", i * 100 + 10 * (i + 1), 1),
                ]
            })
            .collect::<Vec<_>>()
            .join(","));
        let a = analyze(&d).unwrap();
        let top = slowest(&a, "exp.cell", 3);
        assert_eq!(top.len(), 3);
        let durs: Vec<u64> = top.iter().map(|&i| a.spans[i].dur_us).collect();
        assert_eq!(durs, vec![50, 40, 30]);
    }
}
