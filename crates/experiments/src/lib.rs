#![warn(missing_docs)]

//! Workload generation, parameter sweeps, and the paper-reproduction
//! harness.
//!
//! Each table/figure of the paper maps to a runnable experiment:
//!
//! | experiment | paper artifact | entry point |
//! |---|---|---|
//! | gate counts | Table I | [`table1::run_table1`] |
//! | QFA success sweeps | Fig. 1 (a)–(f) | [`sweep::fig1_panels`] + [`runner::run_panel`] |
//! | QFM success sweeps | Fig. 2 (a)–(f) | [`sweep::fig2_panels`] + [`runner::run_panel`] |
//! | optimal-depth summary | §IV discussion | [`analysis::optimal_depths`] |
//! | superposition drop | §V quantitative claim | [`analysis::superposition_drop`] |
//!
//! The `repro` binary drives all of them and writes aligned text tables
//! plus CSV files.
//!
//! Scale: the paper uses 200 instances × 2048 shots per point. That is
//! available (`Scale::paper()`), but the default scales are reduced so a
//! laptop-class machine regenerates every figure in minutes; the
//! success-rate estimator is unbiased at any scale — only the error
//! bars widen.

pub mod analysis;
pub mod attrib;
pub mod benchgate;
pub mod cache;
pub mod cli;
pub mod dashboard;
pub mod drift;
pub mod ledger;
pub mod perfledger;
pub mod replaybench;
pub mod report;
pub mod rundata;
pub mod runner;
pub mod scale;
pub mod servecmd;
pub mod shots;
pub mod sweep;
pub mod table1;
pub mod tracemerge;
pub mod tracereport;
pub mod watch;
pub mod workload;

pub use cache::{verify_store, CellCache, CODE_SALT};
pub use runner::{
    progress_line, run_panel, run_panel_opts, run_panel_shard, run_panel_shard_opts,
    run_panel_with, CacheStats, PanelResult, PointResult, Progress,
};
pub use scale::Scale;
pub use sweep::{fig1_panels, fig2_panels, ErrorTarget, OpKind, PanelSpec};
