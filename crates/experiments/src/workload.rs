//! Ensemble generation.
//!
//! The paper draws, for each figure row, one set of random operand
//! qintegers and reuses it for every error rate, depth, and both error
//! columns. Ensembles here depend only on `(seed, op, geometry,
//! orders)` — not on the error target — so the same property holds:
//! calling [`add_ensemble`] with the same arguments for the 1q and 2q
//! panels of a row yields identical operand sets.

use crate::sweep::{OpKind, PanelSpec};
use qfab_core::{AddInstance, MulInstance};
use qfab_math::rng::Xoshiro256StarStar;

/// A generated workload: the instances behind one figure row.
#[derive(Clone, Debug)]
pub enum Ensemble {
    /// Addition instances.
    Add(Vec<AddInstance>),
    /// Multiplication instances.
    Mul(Vec<MulInstance>),
}

impl Ensemble {
    /// Number of instances.
    pub fn len(&self) -> usize {
        match self {
            Ensemble::Add(v) => v.len(),
            Ensemble::Mul(v) => v.len(),
        }
    }

    /// True when empty (never, for a generated ensemble).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Derives the ensemble RNG stream for a row. The stream index hashes
/// the row parameters so different rows of the same figure (and the
/// same row of different figures) get independent draws.
fn row_stream(op: OpKind, n: u32, m: u32, order_x: usize, order_y: usize) -> u64 {
    let op_tag = match op {
        OpKind::Add => 1u64,
        OpKind::Mul => 2u64,
    };
    op_tag
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add((n as u64) << 32)
        .wrapping_add((m as u64) << 24)
        .wrapping_add((order_x as u64) << 16)
        .wrapping_add(order_y as u64)
}

/// Draws the addition ensemble for a row.
pub fn add_ensemble(
    seed: u64,
    n: u32,
    m: u32,
    order_x: usize,
    order_y: usize,
    count: usize,
) -> Vec<AddInstance> {
    let stream = row_stream(OpKind::Add, n, m, order_x, order_y);
    let mut rng = Xoshiro256StarStar::for_stream(seed, stream);
    (0..count)
        .map(|_| AddInstance::random(n, m, order_x, order_y, &mut rng))
        .collect()
}

/// Draws the multiplication ensemble for a row.
pub fn mul_ensemble(
    seed: u64,
    n: u32,
    m: u32,
    order_x: usize,
    order_y: usize,
    count: usize,
) -> Vec<MulInstance> {
    let stream = row_stream(OpKind::Mul, n, m, order_x, order_y);
    let mut rng = Xoshiro256StarStar::for_stream(seed, stream);
    (0..count)
        .map(|_| MulInstance::random(n, m, order_x, order_y, &mut rng))
        .collect()
}

/// Draws the ensemble a panel needs.
pub fn ensemble_for(spec: &PanelSpec, seed: u64, count: usize) -> Ensemble {
    match spec.op {
        OpKind::Add => Ensemble::Add(add_ensemble(
            seed,
            spec.n,
            spec.m,
            spec.order_x,
            spec.order_y,
            count,
        )),
        OpKind::Mul => Ensemble::Mul(mul_ensemble(
            seed,
            spec.n,
            spec.m,
            spec.order_x,
            spec.order_y,
            count,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::fig1_panels;

    #[test]
    fn ensembles_are_deterministic() {
        let a = add_ensemble(7, 7, 8, 1, 2, 5);
        let b = add_ensemble(7, 7, 8, 1, 2, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.x.values(), y.x.values());
            assert_eq!(x.y.values(), y.y.values());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = add_ensemble(7, 7, 8, 1, 2, 5);
        let b = add_ensemble(8, 7, 8, 1, 2, 5);
        let same = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x.x.values() == y.x.values() && x.y.values() == y.y.values())
            .count();
        assert!(same < a.len(), "seeds should change the draw");
    }

    #[test]
    fn rows_are_independent_streams() {
        let r11 = add_ensemble(7, 7, 8, 1, 1, 3);
        let r22 = add_ensemble(7, 7, 8, 2, 2, 3);
        assert_ne!(r11[0].x.values()[0], r22[0].x.values()[0]);
    }

    #[test]
    fn panel_columns_share_the_row_ensemble() {
        // The paper reuses one operand set for the 1q and 2q columns of
        // a row: panels (c) and (d) share orders, so their ensembles
        // must match.
        let panels = fig1_panels();
        let c = ensemble_for(&panels[2], 42, 4);
        let d = ensemble_for(&panels[3], 42, 4);
        let (Ensemble::Add(c), Ensemble::Add(d)) = (c, d) else {
            panic!("wrong kinds")
        };
        for (x, y) in c.iter().zip(&d) {
            assert_eq!(x.x.values(), y.x.values());
            assert_eq!(x.y.values(), y.y.values());
        }
    }

    #[test]
    fn instance_orders_respect_row() {
        for inst in add_ensemble(3, 7, 8, 1, 2, 4) {
            assert_eq!(inst.x.order(), 1);
            assert_eq!(inst.y.order(), 2);
        }
        for inst in mul_ensemble(3, 4, 4, 2, 2, 4) {
            assert_eq!(inst.x.order(), 2);
            assert_eq!(inst.y.order(), 2);
        }
    }
}
