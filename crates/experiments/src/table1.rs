//! Table I reproduction: transpiled gate counts of the arithmetic
//! circuits.
//!
//! The paper tabulates 1q/2q gate counts for the QFA ("n = 8": a 7-bit
//! addend into an 8-qubit register) at AQFT depths 1, 2, 3, 4 and full
//! (= 7), and the QFM (two 4-qubit multiplicands) at depths 1, 2 and
//! full (labelled 3). Counts are at the CX-plus-atomic-1q granularity
//! (each CP costs 3 1q + 2 CX, each cH 6 + 1, each cR_l 9 + 8), before
//! any optimization — this module reproduces every entry exactly.

use qfab_circuit::GateCounts;
use qfab_core::{qfa, qfm, AqftDepth};
use qfab_transpile::{transpile, Basis};

/// One Table I column: a circuit configuration and its counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table1Entry {
    /// "QFA" or "QFM".
    pub op: &'static str,
    /// The paper's depth label ("1" … "7", where the last is full).
    pub depth_label: String,
    /// Measured 1q gate count.
    pub ours_1q: usize,
    /// Measured 2q gate count.
    pub ours_2q: usize,
    /// The paper's reported 1q count.
    pub paper_1q: usize,
    /// The paper's reported 2q count.
    pub paper_2q: usize,
}

impl Table1Entry {
    /// True when measured counts equal the paper's.
    pub fn matches(&self) -> bool {
        self.ours_1q == self.paper_1q && self.ours_2q == self.paper_2q
    }
}

/// The paper's published numbers: (depth label, 1q, 2q).
pub const PAPER_QFA: [(&str, usize, usize); 5] = [
    ("1", 163, 98),
    ("2", 199, 122),
    ("3", 229, 142),
    ("4", 253, 158),
    ("7", 289, 182),
];

/// The paper's published QFM numbers.
pub const PAPER_QFM: [(&str, usize, usize); 3] =
    [("1", 1032, 744), ("2", 1248, 936), ("3", 1464, 1128)];

fn counts_of(circuit: &qfab_circuit::Circuit) -> GateCounts {
    transpile(circuit, Basis::CxPlus1q).counts()
}

/// Regenerates every Table I entry.
pub fn run_table1() -> Vec<Table1Entry> {
    let mut out = Vec::new();
    let qfa_depths = [
        AqftDepth::Limited(1),
        AqftDepth::Limited(2),
        AqftDepth::Limited(3),
        AqftDepth::Limited(4),
        AqftDepth::Full,
    ];
    for (&(label, p1, p2), &depth) in PAPER_QFA.iter().zip(&qfa_depths) {
        let counts = counts_of(&qfa(7, 8, depth).circuit);
        out.push(Table1Entry {
            op: "QFA",
            depth_label: label.to_string(),
            ours_1q: counts.one_qubit,
            ours_2q: counts.two_qubit,
            paper_1q: p1,
            paper_2q: p2,
        });
    }
    let qfm_depths = [
        AqftDepth::Limited(1),
        AqftDepth::Limited(2),
        AqftDepth::Full,
    ];
    for (&(label, p1, p2), &depth) in PAPER_QFM.iter().zip(&qfm_depths) {
        let counts = counts_of(&qfm(4, 4, depth).circuit);
        out.push(Table1Entry {
            op: "QFM",
            depth_label: label.to_string(),
            ours_1q: counts.one_qubit,
            ours_2q: counts.two_qubit,
            paper_1q: p1,
            paper_2q: p2,
        });
    }
    out
}

/// Renders the regenerated table alongside the paper's values.
pub fn format_table1(entries: &[Table1Entry]) -> String {
    let mut s = String::new();
    s.push_str("Table I — Arithmetic circuit gate counts (transpiled, unoptimized)\n");
    s.push_str("op   depth |  1q ours  1q paper |  2q ours  2q paper | match\n");
    s.push_str("-----------+---------------------+---------------------+------\n");
    for e in entries {
        s.push_str(&format!(
            "{:<4} {:>5} | {:>8}  {:>8} | {:>8}  {:>8} | {}\n",
            e.op,
            e.depth_label,
            e.ours_1q,
            e.paper_1q,
            e.ours_2q,
            e.paper_2q,
            if e.matches() { "yes" } else { "NO" }
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table1_entry_matches_the_paper_exactly() {
        for e in run_table1() {
            assert!(
                e.matches(),
                "{} d={}: ours ({}, {}) vs paper ({}, {})",
                e.op,
                e.depth_label,
                e.ours_1q,
                e.ours_2q,
                e.paper_1q,
                e.paper_2q
            );
        }
    }

    #[test]
    fn table_has_eight_entries() {
        let t = run_table1();
        assert_eq!(t.len(), 8);
        assert_eq!(t.iter().filter(|e| e.op == "QFA").count(), 5);
        assert_eq!(t.iter().filter(|e| e.op == "QFM").count(), 3);
    }

    #[test]
    fn formatting_contains_all_rows() {
        let s = format_table1(&run_table1());
        assert!(s.contains("289"));
        assert!(s.contains("1128"));
        assert!(!s.contains(" NO"));
    }
}
