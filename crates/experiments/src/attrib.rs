//! Per-site error-budget attribution from the shot-provenance ledger.
//!
//! `repro attrib DIR` digests the `qfab.shots.v1` records a
//! `--shots-ledger` sweep left in the store into an *error budget*: for
//! every swept cell, how much of the observed failure rate each noise
//! site (transpiled gate index), each channel, and each rotation order
//! is responsible for.
//!
//! ## The estimator
//!
//! Let `p = fails / shots` be a cell's observed failure rate. For a
//! site `s`, the *lift* is `P(fail | s fired) − p`, with a 95% Wilson
//! interval on the conditional term — a site whose interval clears zero
//! demonstrably degrades the cell. Lift measures association per
//! firing; the *budget* measures total blame: each failing logged shot
//! splits one unit of failure evenly across the `k` sites that fired in
//! it, so per-site budgets sum **exactly** to the number of failing
//! logged noisy shots. Together with the clean-shot failures (the AQFT
//! approximation error — no site fired, the circuit itself is wrong)
//! and the failures among detail-truncated shots, the buckets add up to
//! the cell's observed failure count, unconditionally.
//!
//! ## Rotation orders
//!
//! Site indices point into the transpiled circuit, which attribution
//! rebuilds deterministically from the panel identity (the ensemble
//! draw is seeded, and the circuit *structure* does not depend on the
//! operand values). Each transpiled gate is classified as `h`, `cx`, or
//! `r{l}` — the 1q phase slice of the paper's order-`l` rotation
//! `R_l = CP(2π/2^l)`, recovered from the angle as
//! `l = round(log2(π/|θ|))`. The depth-by-depth order table then shows
//! which rotation orders dominate loss at each AQFT truncation — the
//! budget view of the paper's approximation/noise trade-off.
//!
//! ## Exact cross-check
//!
//! For small cells (≤ [`DENSITY_QUBIT_LIMIT`] qubits) the ledger's
//! Monte-Carlo failure rate is re-derived exactly on the density-matrix
//! engine: evolve `ρ` through the same transpiled circuit, applying
//! each gate's Kraus channel after it, and read the accepted-output
//! mass off the diagonal. The Monte-Carlo estimate must cover the exact
//! value within its Wilson interval.

use crate::rundata::PanelKey;
use crate::runner::model_for;
use crate::shots::{ChannelInfo, ShotsCell, ShotsData};
use crate::sweep::ErrorTarget;
use crate::workload::{add_ensemble, mul_ensemble};
use qfab_circuit::{Circuit, Gate};
use qfab_core::AqftDepth;
use qfab_math::stats::wilson_interval;
use qfab_sim::DensityMatrix;
use qfab_transpile::{transpile, Basis};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// z for the 95% Wilson intervals the report quotes.
pub const Z95: f64 = 1.959_963_985;

/// The density engine's qubit ceiling — cells at most this wide get the
/// exact cross-check.
pub const DENSITY_QUBIT_LIMIT: u32 = 10;

/// Default number of cells `repro attrib --cross-check` reruns on the
/// density engine when no explicit budget is given.
pub const DEFAULT_CROSS_CHECK_CELLS: usize = 64;

/// One noise site's attribution row.
#[derive(Clone, Debug)]
pub struct SiteRow {
    /// Transpiled-circuit gate index.
    pub gate: u64,
    /// Gate-class label (`"h"`, `"cx"`, `"r3"`, … or `"g?"` when the
    /// circuit could not be rebuilt).
    pub order: String,
    /// Channel index into the group's channel list.
    pub channel: u64,
    /// Logged shots in which the site fired.
    pub fired: u64,
    /// Failures among those shots.
    pub fired_fail: u64,
    /// Failure budget: failing shots split `1/k` over their `k` fired
    /// sites. Summed over a group's sites this equals the group's
    /// failing logged-shot count exactly.
    pub budget: f64,
    /// `P(fail | fired) − P(fail)`.
    pub lift: f64,
    /// Wilson-95% bounds on the lift.
    pub lift_lo: f64,
    /// Upper bound.
    pub lift_hi: f64,
}

/// One channel's attribution row.
#[derive(Clone, Debug)]
pub struct ChannelRow {
    /// Channel index.
    pub channel: u64,
    /// Channel family tag.
    pub tag: String,
    /// Per-site fire probability.
    pub error_prob: f64,
    /// Logged shots in which the channel fired at least once.
    pub fired: u64,
    /// Failures among those shots.
    pub fired_fail: u64,
    /// Summed budget of the channel's sites.
    pub budget: f64,
    /// `P(fail | fired) − P(fail)` with Wilson-95% bounds.
    pub lift: f64,
    /// Lower bound.
    pub lift_lo: f64,
    /// Upper bound.
    pub lift_hi: f64,
    /// Pauli-label tally over the channel's site firings, count-sorted.
    pub paulis: Vec<(String, u64)>,
}

/// One gate-class (rotation-order) attribution row.
#[derive(Clone, Debug)]
pub struct OrderRow {
    /// Gate-class label.
    pub order: String,
    /// Distinct sites of this class that fired.
    pub sites: u64,
    /// Total site firings.
    pub fired: u64,
    /// Summed budget of the class's sites.
    pub budget: f64,
}

/// One `(depth, rate)` cell group, aggregated across instances.
#[derive(Clone, Debug)]
pub struct GroupAttribution {
    /// Rate grid index.
    pub ri: u64,
    /// Error rate (fraction).
    pub rate: f64,
    /// Depth grid index.
    pub di: u64,
    /// Depth identity tag.
    pub depth: String,
    /// Transpiled gate count.
    pub gates: u64,
    /// Total shots across the group's records.
    pub shots: u64,
    /// Total failing shots.
    pub fails: u64,
    /// Error-free shots.
    pub clean: u64,
    /// Failures among them (approximation error).
    pub clean_fail: u64,
    /// Detail-logged noisy shots.
    pub logged: u64,
    /// Failures among them (the attributable budget).
    pub logged_fail: u64,
    /// Noisy shots beyond the detail cap.
    pub truncated: u64,
    /// Failures among them (unattributable).
    pub truncated_fail: u64,
    /// The channels the sites reference.
    pub channels: Vec<ChannelInfo>,
    /// Per-site rows, gate-index order.
    pub sites: Vec<SiteRow>,
    /// Per-channel rows.
    pub channel_rows: Vec<ChannelRow>,
    /// Per-gate-class rows, display order.
    pub orders: Vec<OrderRow>,
}

impl GroupAttribution {
    /// Observed failure rate.
    pub fn fail_rate(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.fails as f64 / self.shots as f64
        }
    }

    /// Summed per-site budget — equals `logged_fail` exactly.
    pub fn site_budget(&self) -> f64 {
        // fold, not sum: an empty iterator's f64 sum is -0.0, which
        // would print as "-0.00" in the report's zero-noise rows.
        self.sites.iter().map(|s| s.budget).fold(0.0, |a, b| a + b)
    }

    /// Top-`k` sites by budget (ties broken by gate index).
    pub fn top_sites(&self, k: usize) -> Vec<&SiteRow> {
        let mut v: Vec<&SiteRow> = self.sites.iter().collect();
        v.sort_by(|a, b| {
            b.budget
                .partial_cmp(&a.budget)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.gate.cmp(&b.gate))
        });
        v.truncate(k);
        v
    }
}

/// One panel's attribution.
#[derive(Clone, Debug)]
pub struct PanelAttribution {
    /// The shared identity fields.
    pub key: PanelKey,
    /// Paper panel id when the geometry matches, else synthesized.
    pub id: String,
    /// Whether the run transpiled through the optimizer.
    pub optimize: bool,
    /// Distinct instances recorded.
    pub instances: u64,
    /// Records dropped for internal inconsistency (mixed gate counts or
    /// channel lists within one cell group).
    pub skipped: u64,
    /// Cell groups, depth-major then rate.
    pub groups: Vec<GroupAttribution>,
}

impl PanelAttribution {
    /// True when no noise site fired anywhere in the panel — the error
    /// budget is empty (approximation error only).
    pub fn empty_budget(&self) -> bool {
        self.groups.iter().all(|g| g.sites.is_empty())
    }
}

/// The full attribution report for one store.
#[derive(Clone, Debug, Default)]
pub struct AttribReport {
    /// Panels, key order.
    pub panels: Vec<PanelAttribution>,
    /// Shots records consumed.
    pub records: u64,
    /// Shots-salted records that failed validation at load.
    pub rejected: u64,
}

/// One exact-vs-Monte-Carlo comparison.
#[derive(Clone, Debug)]
pub struct CrossCheck {
    /// Panel id.
    pub panel: String,
    /// Instance index.
    pub inst: u64,
    /// Error rate.
    pub rate: f64,
    /// Depth tag.
    pub depth: String,
    /// Shots behind the Monte-Carlo estimate.
    pub shots: u64,
    /// Monte-Carlo failure rate from the ledger.
    pub mc_fail: f64,
    /// Wilson-95% bounds on it.
    pub mc_lo: f64,
    /// Upper bound.
    pub mc_hi: f64,
    /// Exact noisy failure probability from the density engine.
    pub exact_fail: f64,
}

impl CrossCheck {
    /// Monte-Carlo attribution error against the exact loss.
    pub fn error(&self) -> f64 {
        (self.mc_fail - self.exact_fail).abs()
    }

    /// True when the exact value lies inside the Wilson interval.
    pub fn within(&self) -> bool {
        self.exact_fail >= self.mc_lo && self.exact_fail <= self.mc_hi
    }
}

fn parse_depth(tag: &str) -> Option<AqftDepth> {
    if tag == "full" {
        return Some(AqftDepth::Full);
    }
    tag.parse::<u32>()
        .ok()
        .filter(|&d| d >= 1)
        .map(AqftDepth::Limited)
}

fn parse_target(err: &str) -> Option<ErrorTarget> {
    match err {
        "1q" => Some(ErrorTarget::OneQubit),
        "2q" => Some(ErrorTarget::TwoQubit),
        _ => None,
    }
}

/// Rebuilds the circuit the panel's cells ran at `depth`, using the
/// seeded ensemble draw. The *structure* (and therefore the gate list
/// the site indices point into) is identical for every instance of a
/// panel — only the initial state differs — so instance 0 stands in for
/// all of them.
fn panel_circuit(key: &PanelKey, depth: AqftDepth, instance: usize) -> Option<Circuit> {
    let (n, m) = (key.n as u32, key.m as u32);
    let (ox, oy) = (key.ox as usize, key.oy as usize);
    match key.op.as_str() {
        "add" => {
            let v = add_ensemble(key.seed, n, m, ox, oy, instance + 1);
            Some(v[instance].circuit(depth))
        }
        "mul" => {
            let v = mul_ensemble(key.seed, n, m, ox, oy, instance + 1);
            Some(v[instance].circuit(depth))
        }
        _ => None,
    }
}

fn lower(circuit: &Circuit, optimize: bool) -> Circuit {
    let lowered = transpile(circuit, Basis::CxPlus1q);
    if optimize {
        qfab_transpile::optimize(&lowered).0
    } else {
        lowered
    }
}

/// Classifies one transpiled gate: `h`, `cx`, `r{l}` for the phase
/// slice of the paper's `R_l` rotation, or the gate's own name.
fn order_label(gate: &Gate) -> String {
    match gate {
        Gate::Cx { .. } => "cx".to_string(),
        Gate::H(_) => "h".to_string(),
        Gate::Rz(_, theta) | Gate::Phase(_, theta) => {
            let a = theta.abs();
            if a <= f64::EPSILON {
                return "r?".to_string();
            }
            // CP(2π/2^l) lowers to ±π/2^l phase slices.
            let l = (std::f64::consts::PI / a).log2().round();
            if (0.0..=64.0).contains(&l) {
                format!("r{}", l as u32)
            } else {
                "r?".to_string()
            }
        }
        g => g.name().to_string(),
    }
}

/// Sort key putting `h` first, then `cx`, then rotations by ascending
/// order, then everything else by name.
fn order_sort_key(label: &str) -> (u8, u32, String) {
    match label {
        "h" => (0, 0, String::new()),
        "cx" => (1, 0, String::new()),
        _ => {
            if let Some(rest) = label.strip_prefix('r') {
                if let Ok(l) = rest.parse::<u32>() {
                    return (2, l, String::new());
                }
            }
            (3, 0, label.to_string())
        }
    }
}

/// The per-gate class labels of a panel's circuit at one depth, or
/// `None` when the rebuilt gate list does not match the recorded count
/// (foreign panel op, or records from a different code version).
fn classify_gates(key: &PanelKey, optimize: bool, depth: &str, gates: u64) -> Option<Vec<String>> {
    let circuit = panel_circuit(key, parse_depth(depth)?, 0)?;
    let lowered = lower(&circuit, optimize);
    if lowered.gates().len() as u64 != gates {
        return None;
    }
    Some(lowered.gates().iter().map(order_label).collect())
}

#[derive(Default)]
struct SiteAcc {
    fired: u64,
    fail: u64,
    budget: f64,
}

#[derive(Default)]
struct GroupAcc {
    rate: f64,
    depth: String,
    gates: u64,
    channels: Vec<ChannelInfo>,
    shots: u64,
    fails: u64,
    clean: u64,
    clean_fail: u64,
    logged: u64,
    logged_fail: u64,
    truncated: u64,
    truncated_fail: u64,
    sites: BTreeMap<(u64, u64), SiteAcc>,
    chans: BTreeMap<u64, SiteAcc>,
    paulis: BTreeMap<(u64, String), u64>,
}

fn lift_bounds(fail: u64, fired: u64, base: f64) -> (f64, f64, f64) {
    if fired == 0 {
        return (0.0, 0.0, 0.0);
    }
    let p = fail as f64 / fired as f64;
    let (lo, hi) = wilson_interval(fail, fired, Z95);
    (p - base, lo - base, hi - base)
}

/// Folds a store's shots records into the attribution report.
pub fn attribute(data: &ShotsData) -> AttribReport {
    let mut report = AttribReport {
        records: data.records,
        rejected: data.rejected,
        ..AttribReport::default()
    };
    let mut i = 0;
    while i < data.cells.len() {
        let mut j = i;
        while j < data.cells.len() && data.cells[j].panel == data.cells[i].panel {
            j += 1;
        }
        report.panels.push(attribute_panel(&data.cells[i..j]));
        i = j;
    }
    report
}

fn attribute_panel(cells: &[ShotsCell]) -> PanelAttribution {
    let key = cells[0].panel.clone();
    let optimize = cells[0].optimize;
    let id = crate::rundata::panel_id_for(&key);
    let mut instances: Vec<u64> = cells.iter().map(|c| c.inst).collect();
    instances.sort_unstable();
    instances.dedup();

    let mut groups: BTreeMap<(u64, u64), GroupAcc> = BTreeMap::new();
    let mut skipped = 0u64;
    for cell in cells {
        let acc = groups.entry((cell.di, cell.ri)).or_default();
        let rec = &cell.record;
        if acc.shots == 0 {
            acc.rate = cell.rate;
            acc.depth = cell.depth.clone();
            acc.gates = rec.gates;
            acc.channels = rec.channels.clone();
        } else if acc.gates != rec.gates || acc.channels != rec.channels {
            // A cell group mixes records of different circuits — stale
            // store or code drift. Refuse to blend them.
            skipped += 1;
            continue;
        }
        acc.shots += rec.total_shots();
        acc.fails += rec.total_fails();
        acc.clean += rec.clean;
        acc.clean_fail += rec.clean_fail;
        acc.logged += rec.noisy.len() as u64;
        acc.truncated += rec.truncated;
        acc.truncated_fail += rec.truncated_fail;
        for shot in &rec.noisy {
            let k = shot.sites.len();
            if shot.fail {
                acc.logged_fail += 1;
            }
            let mut per_chan: BTreeMap<u64, u64> = BTreeMap::new();
            for site in &shot.sites {
                *per_chan.entry(site.channel).or_insert(0) += 1;
                *acc.paulis
                    .entry((site.channel, site.pauli.clone()))
                    .or_insert(0) += 1;
                let s = acc.sites.entry((site.gate, site.channel)).or_default();
                s.fired += 1;
                if shot.fail {
                    s.fail += 1;
                    s.budget += 1.0 / k as f64;
                }
            }
            for (chan, count) in per_chan {
                let c = acc.chans.entry(chan).or_default();
                c.fired += 1;
                if shot.fail {
                    c.fail += 1;
                    c.budget += count as f64 / k as f64;
                }
            }
        }
    }

    // Gate-class labels, one rebuild per depth tag.
    let mut labels: BTreeMap<String, Option<Vec<String>>> = BTreeMap::new();
    for acc in groups.values() {
        labels
            .entry(acc.depth.clone())
            .or_insert_with(|| classify_gates(&key, optimize, &acc.depth, acc.gates));
    }

    let groups = groups
        .into_iter()
        .map(|((di, ri), acc)| {
            let base = if acc.shots == 0 {
                0.0
            } else {
                acc.fails as f64 / acc.shots as f64
            };
            let classes = labels.get(&acc.depth).and_then(|l| l.as_ref());
            let label_of = |gate: u64| -> String {
                classes
                    .and_then(|l| l.get(gate as usize))
                    .cloned()
                    .unwrap_or_else(|| "g?".to_string())
            };
            let sites: Vec<SiteRow> = acc
                .sites
                .iter()
                .map(|(&(gate, channel), s)| {
                    let (lift, lift_lo, lift_hi) = lift_bounds(s.fail, s.fired, base);
                    SiteRow {
                        gate,
                        order: label_of(gate),
                        channel,
                        fired: s.fired,
                        fired_fail: s.fail,
                        budget: s.budget,
                        lift,
                        lift_lo,
                        lift_hi,
                    }
                })
                .collect();
            let channel_rows = acc
                .chans
                .iter()
                .map(|(&channel, c)| {
                    let (lift, lift_lo, lift_hi) = lift_bounds(c.fail, c.fired, base);
                    let mut paulis: Vec<(String, u64)> = acc
                        .paulis
                        .range((channel, String::new())..(channel + 1, String::new()))
                        .map(|((_, p), &n)| (p.clone(), n))
                        .collect();
                    paulis.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    let info = acc.channels.get(channel as usize);
                    ChannelRow {
                        channel,
                        tag: info.map_or_else(|| "?".into(), |c| c.tag.clone()),
                        error_prob: info.map_or(0.0, |c| c.error_prob),
                        fired: c.fired,
                        fired_fail: c.fail,
                        budget: c.budget,
                        lift,
                        lift_lo,
                        lift_hi,
                        paulis,
                    }
                })
                .collect();
            let mut by_order: BTreeMap<String, OrderRow> = BTreeMap::new();
            for s in &sites {
                let row = by_order.entry(s.order.clone()).or_insert_with(|| OrderRow {
                    order: s.order.clone(),
                    sites: 0,
                    fired: 0,
                    budget: 0.0,
                });
                row.sites += 1;
                row.fired += s.fired;
                row.budget += s.budget;
            }
            let mut orders: Vec<OrderRow> = by_order.into_values().collect();
            orders.sort_by_key(|r| order_sort_key(&r.order));
            GroupAttribution {
                ri,
                rate: acc.rate,
                di,
                depth: acc.depth,
                gates: acc.gates,
                shots: acc.shots,
                fails: acc.fails,
                clean: acc.clean,
                clean_fail: acc.clean_fail,
                logged: acc.logged,
                logged_fail: acc.logged_fail,
                truncated: acc.truncated,
                truncated_fail: acc.truncated_fail,
                channels: acc.channels,
                sites,
                channel_rows,
                orders,
            }
        })
        .collect();

    PanelAttribution {
        key,
        id,
        optimize,
        instances: instances.len() as u64,
        skipped,
        groups,
    }
}

/// Reruns every cell narrow enough for the density engine exactly and
/// compares against the ledger's Monte-Carlo failure rate. `limit`
/// bounds the number of exact simulations (they cost `4^qubits` per
/// gate); cells are taken in store order.
pub fn density_cross_check(data: &ShotsData, limit: usize) -> Vec<CrossCheck> {
    let mut out = Vec::new();
    for cell in &data.cells {
        if out.len() >= limit {
            break;
        }
        let key = &cell.panel;
        let Some(target) = parse_target(&key.err) else {
            continue;
        };
        let Some(depth) = parse_depth(&cell.depth) else {
            continue;
        };
        let (expected, initial) = match key.op.as_str() {
            "add" => {
                let v = add_ensemble(
                    key.seed,
                    key.n as u32,
                    key.m as u32,
                    key.ox as usize,
                    key.oy as usize,
                    cell.inst as usize + 1,
                );
                let inst = &v[cell.inst as usize];
                (inst.expected_outputs(), inst.initial_state())
            }
            "mul" => {
                let v = mul_ensemble(
                    key.seed,
                    key.n as u32,
                    key.m as u32,
                    key.ox as usize,
                    key.oy as usize,
                    cell.inst as usize + 1,
                );
                let inst = &v[cell.inst as usize];
                (inst.expected_outputs(), inst.initial_state())
            }
            _ => continue,
        };
        if initial.num_qubits() > DENSITY_QUBIT_LIMIT {
            continue;
        }
        let Some(circuit) = panel_circuit(key, depth, cell.inst as usize) else {
            continue;
        };
        let lowered = lower(&circuit, cell.optimize);
        if lowered.gates().len() as u64 != cell.record.gates {
            continue;
        }
        let model = model_for(target, cell.rate);
        let mut rho = DensityMatrix::from_statevector(&initial);
        for g in lowered.gates() {
            rho.apply_gate(g);
            if let Some(ch) = model.channel_for(g) {
                rho.apply_kraus(g.qubits().as_slice(), ch.to_kraus().ops());
            }
        }
        let probs = rho.probabilities();
        let exact_success: f64 = expected.iter().map(|&o| probs[o]).sum();
        let shots = cell.record.total_shots();
        let fails = cell.record.total_fails();
        let (mc_lo, mc_hi) = wilson_interval(fails, shots, Z95);
        out.push(CrossCheck {
            panel: crate::rundata::panel_id_for(key),
            inst: cell.inst,
            rate: cell.rate,
            depth: cell.depth.clone(),
            shots,
            mc_fail: if shots == 0 {
                0.0
            } else {
                fails as f64 / shots as f64
            },
            mc_lo,
            mc_hi,
            exact_fail: (1.0 - exact_success).clamp(0.0, 1.0),
        });
    }
    out
}

fn pct(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        100.0 * num / den
    }
}

/// Renders the attribution report deterministically.
pub fn format_report(report: &AttribReport, top_k: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "shot-provenance attribution: {} panel(s), {} record(s), {} rejected",
        report.panels.len(),
        report.records,
        report.rejected
    );
    for panel in &report.panels {
        let k = &panel.key;
        let _ = writeln!(
            out,
            "\npanel {}: {} {}x{} {}:{} {} | seed {} shots/cell {} instances {}{}",
            panel.id,
            k.op,
            k.n,
            k.m,
            k.ox,
            k.oy,
            k.err,
            k.seed,
            k.shots,
            panel.instances,
            if panel.skipped > 0 {
                format!(" | skipped {} inconsistent record(s)", panel.skipped)
            } else {
                String::new()
            }
        );
        if panel.empty_budget() {
            let _ = writeln!(
                out,
                "  no noise sites fired — error budget is empty (approximation error only)"
            );
        }
        for g in &panel.groups {
            let _ = writeln!(
                out,
                "  depth {:>4} rate {:<8} shots {:>7} fails {:>6} ({:5.2}%) | budget: sites {:.2} ({:.1}%) approx {} ({:.1}%) truncated {}",
                g.depth,
                format!("{}", g.rate),
                g.shots,
                g.fails,
                100.0 * g.fail_rate(),
                g.site_budget(),
                pct(g.site_budget(), g.fails as f64),
                g.clean_fail,
                pct(g.clean_fail as f64, g.fails as f64),
                g.truncated_fail,
            );
            for s in g.top_sites(top_k) {
                let _ = writeln!(
                    out,
                    "    gate {:>4} [{:>4}] ch{}: budget {:8.3} ({:4.1}%) fired {:>6} fail {:>6} lift {:+.4} [{:+.4}, {:+.4}]",
                    s.gate,
                    s.order,
                    s.channel,
                    s.budget,
                    pct(s.budget, g.fails as f64),
                    s.fired,
                    s.fired_fail,
                    s.lift,
                    s.lift_lo,
                    s.lift_hi,
                );
            }
            for c in &g.channel_rows {
                let paulis: Vec<String> = c
                    .paulis
                    .iter()
                    .take(8)
                    .map(|(p, n)| format!("{p}:{n}"))
                    .collect();
                let _ = writeln!(
                    out,
                    "    channel {} {} p={}: budget {:.3} fired {} fail {} lift {:+.4} [{:+.4}, {:+.4}] | {}",
                    c.channel,
                    c.tag,
                    c.error_prob,
                    c.budget,
                    c.fired,
                    c.fired_fail,
                    c.lift,
                    c.lift_lo,
                    c.lift_hi,
                    paulis.join(" "),
                );
            }
        }
        let _ = write!(out, "{}", format_depth_table(panel));
    }
    out
}

/// The depth-by-depth rotation-order table at the panel's largest swept
/// rate — which orders dominate loss at each AQFT truncation.
fn format_depth_table(panel: &PanelAttribution) -> String {
    let Some(&ref_ri) = panel
        .groups
        .iter()
        .filter(|g| !g.sites.is_empty())
        .map(|g| &g.ri)
        .max()
    else {
        return String::new();
    };
    let groups: Vec<&GroupAttribution> = panel.groups.iter().filter(|g| g.ri == ref_ri).collect();
    if groups.is_empty() {
        return String::new();
    }
    let mut orders: Vec<String> = groups
        .iter()
        .flat_map(|g| g.orders.iter().map(|o| o.order.clone()))
        .collect();
    orders.sort_by_key(|l| order_sort_key(l));
    orders.dedup();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  order budget share by depth at rate {} (% of fails; approx = no site fired):",
        groups[0].rate
    );
    let header: Vec<String> = orders.iter().map(|o| format!("{o:>7}")).collect();
    let _ = writeln!(
        out,
        "    {:>5} {:>7} {:>7} {}",
        "depth",
        "fails",
        "approx",
        header.join(" ")
    );
    for g in &groups {
        let by_order: BTreeMap<&str, f64> = g
            .orders
            .iter()
            .map(|o| (o.order.as_str(), o.budget))
            .collect();
        let cells: Vec<String> = orders
            .iter()
            .map(|o| {
                let b = by_order.get(o.as_str()).copied().unwrap_or(0.0);
                format!("{:>6.1}%", pct(b, g.fails as f64))
            })
            .collect();
        let _ = writeln!(
            out,
            "    {:>5} {:>7} {:>6.1}% {}",
            g.depth,
            g.fails,
            pct(g.clean_fail as f64, g.fails as f64),
            cells.join(" ")
        );
    }
    out
}

/// Renders the cross-check table.
pub fn format_cross_check(checks: &[CrossCheck]) -> String {
    let mut out = String::new();
    if checks.is_empty() {
        let _ = writeln!(
            out,
            "density cross-check: no cell is narrow enough (≤ {DENSITY_QUBIT_LIMIT} qubits)"
        );
        return out;
    }
    let _ = writeln!(
        out,
        "density cross-check (exact noisy loss vs Monte-Carlo):"
    );
    let mut agree = 0usize;
    for c in checks {
        if c.within() {
            agree += 1;
        }
        let _ = writeln!(
            out,
            "  {} inst {} depth {:>4} rate {:<8} | mc {:.4} [{:.4}, {:.4}] exact {:.4} |err| {:.4} {}",
            c.panel,
            c.inst,
            c.depth,
            format!("{}", c.rate),
            c.mc_fail,
            c.mc_lo,
            c.mc_hi,
            c.exact_fail,
            c.error(),
            if c.within() { "ok" } else { "OUTSIDE" },
        );
    }
    let _ = writeln!(
        out,
        "  {agree}/{} cell(s) cover the exact loss within Wilson-95%",
        checks.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shots::ShotsRecord;
    use qfab_core::{NoisyRun, RunConfig};
    use qfab_math::rng::Xoshiro256StarStar;
    use qfab_noise::NoiseModel;

    fn small_key(err: &str, shots: u64, seed: u64) -> PanelKey {
        PanelKey {
            op: "add".into(),
            n: 2,
            m: 3,
            ox: 1,
            oy: 1,
            err: err.into(),
            shots,
            seed,
        }
    }

    /// Runs instance 0 of the keyed panel at one (rate, depth) cell and
    /// wraps the logged record as a `ShotsCell`.
    fn run_cell(key: &PanelKey, rate: f64, ri: u64, depth: AqftDepth, di: u64) -> ShotsCell {
        let v = add_ensemble(
            key.seed,
            key.n as u32,
            key.m as u32,
            key.ox as usize,
            key.oy as usize,
            1,
        );
        let inst = &v[0];
        let model = model_for(parse_target(&key.err).unwrap(), rate);
        let config = RunConfig {
            shots: key.shots,
            shots_ledger: true,
            ..RunConfig::default()
        };
        let run = NoisyRun::prepare(&inst.circuit(depth), inst.initial_state(), &model, &config);
        let mut rng = Xoshiro256StarStar::for_stream(key.seed, ri + 1);
        let (_, log) = run.sample_counts_logged(key.shots, &mut rng);
        let record = ShotsRecord::from_log(
            &log,
            run.plan(),
            &inst.expected_outputs(),
            run.transpiled_gates() as u64,
        );
        ShotsCell {
            panel: key.clone(),
            optimize: false,
            inst: 0,
            ri,
            rate,
            di,
            depth: depth.paper_label(),
            record,
        }
    }

    fn data_of(cells: Vec<ShotsCell>) -> ShotsData {
        ShotsData {
            records: cells.len() as u64,
            cells,
            rejected: 0,
        }
    }

    #[test]
    fn budgets_sum_exactly_to_observed_failures() {
        let key = small_key("2q", 400, 11);
        let data = data_of(vec![
            run_cell(&key, 0.0, 0, AqftDepth::Full, 0),
            run_cell(&key, 0.05, 1, AqftDepth::Full, 0),
            run_cell(&key, 0.05, 1, AqftDepth::Limited(1), 1),
        ]);
        let report = attribute(&data);
        assert_eq!(report.panels.len(), 1);
        let panel = &report.panels[0];
        assert_eq!(panel.groups.len(), 3);
        let mut saw_sites = false;
        for g in &panel.groups {
            assert_eq!(g.shots, 400);
            assert_eq!(
                g.clean_fail + g.logged_fail + g.truncated_fail,
                g.fails,
                "bucket totals must cover every failure"
            );
            assert!(
                (g.site_budget() - g.logged_fail as f64).abs() < 1e-9,
                "per-site budgets must sum exactly to attributable failures"
            );
            if !g.sites.is_empty() {
                saw_sites = true;
                for s in &g.sites {
                    assert!(s.gate < g.gates);
                    assert!(s.lift_lo <= s.lift && s.lift <= s.lift_hi);
                }
            }
        }
        assert!(saw_sites, "the noisy cells must attribute something");
        // The report renders without panicking and mentions the panel.
        let text = format_report(&report, 5);
        assert!(text.contains("add 2x3"));
        assert!(text.contains("order budget share by depth"));
    }

    #[test]
    fn gate_classes_are_recovered_from_the_rebuilt_circuit() {
        let key = small_key("2q", 300, 5);
        let data = data_of(vec![run_cell(&key, 0.08, 1, AqftDepth::Full, 0)]);
        let report = attribute(&data);
        let g = &report.panels[0].groups[0];
        assert!(!g.sites.is_empty());
        // Rebuild matched: no site is unclassified, and 2q noise sits
        // on the CX sites by construction.
        for s in &g.sites {
            assert_eq!(
                s.order, "cx",
                "2q-only noise fires on cx sites, got {}",
                s.order
            );
        }
        // The full transpiled circuit contains h / cx / rotation slices.
        let labels = classify_gates(&key, false, "full", g.gates).expect("rebuild matches");
        assert!(labels.iter().any(|l| l == "h"));
        assert!(labels.iter().any(|l| l == "cx"));
        assert!(labels.iter().any(|l| l.starts_with('r')));
    }

    #[test]
    fn single_forced_site_concentrates_the_budget() {
        // Only-2q noise on a circuit with exactly one CX: every unit of
        // attributable budget must land on that one site.
        let mut c = qfab_circuit::Circuit::new(3);
        c.h(0).h(1).h(2).cx(0, 1).h(2).h(1);
        let model = NoiseModel::only_2q_depolarizing(0.4);
        let run = NoisyRun::prepare(
            &c,
            qfab_sim::StateVector::zero_state(3),
            &model,
            &RunConfig::default(),
        );
        let mut rng = Xoshiro256StarStar::new(17);
        let (_, log) = run.sample_counts_logged(500, &mut rng);
        // Accept only |000>: plenty of failures, clean and noisy.
        let record = ShotsRecord::from_log(&log, run.plan(), &[0], 6);
        let cell = ShotsCell {
            panel: small_key("2q", 500, 17),
            optimize: false,
            inst: 0,
            ri: 1,
            rate: 0.4,
            di: 0,
            depth: "full".into(),
            record,
        };
        let report = attribute(&data_of(vec![cell]));
        let g = &report.panels[0].groups[0];
        assert!(g.logged_fail > 0);
        assert_eq!(g.sites.len(), 1, "exactly one site can fire");
        let share = g.sites[0].budget / g.site_budget();
        assert!(share >= 0.99, "forced site holds the budget, got {share}");
        assert_eq!(g.sites[0].gate, 3, "the lone CX is gate 3");
    }

    #[test]
    fn zero_noise_panel_reports_an_empty_budget() {
        let key = small_key("2q", 200, 23);
        let data = data_of(vec![
            run_cell(&key, 0.0, 0, AqftDepth::Full, 0),
            run_cell(&key, 0.0, 0, AqftDepth::Limited(1), 1),
        ]);
        let report = attribute(&data);
        let panel = &report.panels[0];
        assert!(panel.empty_budget());
        for g in &panel.groups {
            assert!(g.sites.is_empty());
            assert_eq!(g.fails, g.clean_fail, "only approximation error remains");
        }
        let text = format_report(&report, 5);
        assert!(text.contains("error budget is empty"));
        // And the truncated depth still shows approximation failures.
        assert!(panel.groups.iter().any(|g| g.depth == "1" && g.fails > 0));
    }

    #[test]
    fn density_cross_check_covers_the_exact_loss() {
        let key = small_key("2q", 800, 29);
        let data = data_of(vec![
            run_cell(&key, 0.0, 0, AqftDepth::Full, 0),
            run_cell(&key, 0.05, 1, AqftDepth::Full, 0),
        ]);
        let checks = density_cross_check(&data, 16);
        assert_eq!(checks.len(), 2, "2+3 qubits fits the density engine");
        for c in &checks {
            assert!(
                c.within(),
                "exact {} outside Wilson [{}, {}] at rate {}",
                c.exact_fail,
                c.mc_lo,
                c.mc_hi,
                c.rate
            );
            assert!(c.error() < 0.08, "MC error {} too large", c.error());
        }
        // Rate 0: the exact loss is the pure approximation error.
        assert!(
            checks[0].exact_fail < 1e-9,
            "full-depth clean adder is exact"
        );
        let text = format_cross_check(&checks);
        assert!(text.contains("2/2 cell(s)"));
    }

    #[test]
    fn limit_and_width_guards_skip_cells() {
        let key = small_key("2q", 100, 31);
        let data = data_of(vec![
            run_cell(&key, 0.05, 1, AqftDepth::Full, 0),
            run_cell(&key, 0.1, 2, AqftDepth::Full, 0),
        ]);
        assert_eq!(density_cross_check(&data, 1).len(), 1);
        // A too-wide panel yields no checks.
        let wide = PanelKey {
            n: 7,
            m: 8,
            ..small_key("2q", 100, 31)
        };
        let mut cell = run_cell(&key, 0.05, 1, AqftDepth::Full, 0);
        cell.panel = wide;
        assert!(density_cross_check(&data_of(vec![cell]), 16).is_empty());
        assert!(format_cross_check(&[]).contains("no cell"));
    }

    #[test]
    fn order_labels_follow_the_rotation_ladder() {
        use std::f64::consts::PI;
        assert_eq!(order_label(&Gate::H(0)), "h");
        assert_eq!(
            order_label(&Gate::Cx {
                control: 0,
                target: 1
            }),
            "cx"
        );
        // CP(2π/2^l) lowers to ±π/2^l slices → r{l}.
        assert_eq!(order_label(&Gate::Rz(0, PI / 4.0)), "r2");
        assert_eq!(order_label(&Gate::Phase(0, -PI / 8.0)), "r3");
        assert_eq!(order_label(&Gate::Rz(0, PI)), "r0");
        // Ladder ordering: h, cx, then ascending rotation order.
        let mut v = vec!["r3", "cx", "r2", "h", "r10"];
        v.sort_by_key(|l| order_sort_key(l));
        assert_eq!(v, vec!["h", "cx", "r2", "r3", "r10"]);
    }
}
