//! Derived analyses backing the paper's discussion-section claims.
//!
//! * [`optimal_depths`] — per error rate, which AQFT depth wins (the
//!   paper: "depths 2, 3 and 4 are the most common optima", clustering
//!   near the Barenco heuristic `log2 n = 3` but varying with noise).
//! * [`superposition_drop`] — the §V quantitative claim: moving 1:2 →
//!   2:2 addition at the hardware-reference 2q rate (1.0%) costs over
//!   50% accuracy, but only ≈3% at an improved 0.7% rate.

use crate::runner::{run_panel, PanelResult};
use crate::scale::Scale;
use crate::sweep::{ErrorTarget, OpKind, PanelSpec};
use qfab_core::AqftDepth;

/// The winning depth at one error rate.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimalDepth {
    /// Gate error rate (fraction).
    pub rate: f64,
    /// The depth with the highest success rate (ties broken toward
    /// shallower depths, which cost fewer gates).
    pub depth: AqftDepth,
    /// Its success rate (percent).
    pub success_pct: f64,
}

/// Extracts the optimal depth per error rate from a finished panel.
pub fn optimal_depths(result: &PanelResult) -> Vec<OptimalDepth> {
    let spec = &result.spec;
    spec.rates
        .iter()
        .enumerate()
        .map(|(ri, &rate)| {
            let mut best: Option<(usize, f64)> = None;
            for di in 0..spec.depths.len() {
                let pct = result.point(ri, di).stats.success_rate_pct;
                let better = match best {
                    None => true,
                    Some((_, b)) => pct > b + 1e-12,
                };
                if better {
                    best = Some((di, pct));
                }
            }
            let (di, pct) = best.expect("panel has at least one depth");
            OptimalDepth {
                rate,
                depth: spec.depths[di],
                success_pct: pct,
            }
        })
        .collect()
}

/// Renders the optimal-depth summary for a panel.
pub fn format_optimal_depths(result: &PanelResult) -> String {
    let mut s = format!("Optimal AQFT depth per error rate — {}\n", result.spec.id);
    let heuristic = AqftDepth::barenco_heuristic(result.spec.m);
    s.push_str(&format!(
        "(Barenco heuristic for this register: d = log2 m = {})\n",
        heuristic.paper_label()
    ));
    for o in optimal_depths(result) {
        s.push_str(&format!(
            "  rate {:>7.3}%  ->  d = {:<4}  ({:.1}% success)\n",
            o.rate * 100.0,
            o.depth.paper_label(),
            o.success_pct
        ));
    }
    s
}

/// The §V superposition-drop experiment result.
#[derive(Clone, Debug)]
pub struct SuperpositionDrop {
    /// 2q error rate (fraction).
    pub rate: f64,
    /// Success at 1:2 (percent), at the optimal depth for that cell.
    pub success_12: f64,
    /// Success at 2:2 (percent), at the optimal depth for that cell.
    pub success_22: f64,
}

impl SuperpositionDrop {
    /// The accuracy drop 1:2 → 2:2 in percentage points.
    pub fn drop_points(&self) -> f64 {
        self.success_12 - self.success_22
    }
}

/// Runs the targeted §V comparison: QFA at 2q rates 1.0% and 0.7%,
/// superposition 1:2 vs 2:2, reporting the best depth per cell.
pub fn superposition_drop(scale: Scale, seed: u64) -> Vec<SuperpositionDrop> {
    superposition_drop_at(scale, seed, &[0.010, 0.007, 0.014, 0.020, 0.028])
}

/// [`superposition_drop`] over an explicit 2q rate grid (the default
/// includes the paper's 1.0%/0.7% pair plus higher rates, since the
/// reproduction's absolute success levels sit above the paper's and
/// the drop regime appears at roughly twice the rate).
pub fn superposition_drop_at(scale: Scale, seed: u64, rates: &[f64]) -> Vec<SuperpositionDrop> {
    let rates = rates.to_vec();
    let depths = vec![
        AqftDepth::Limited(2),
        AqftDepth::Limited(3),
        AqftDepth::Limited(4),
        AqftDepth::Full,
    ];
    let spec_12 = PanelSpec {
        id: "drop12",
        title: "QFA 1:2 targeted".into(),
        op: OpKind::Add,
        n: 7,
        m: 8,
        order_x: 1,
        order_y: 2,
        error_target: ErrorTarget::TwoQubit,
        rates: rates.clone(),
        depths,
        reference_rate: 0.010,
    };
    let mut spec_22 = spec_12.clone();
    spec_22.id = "drop22";
    spec_22.title = "QFA 2:2 targeted".into();
    spec_22.order_x = 2;

    let r12 = run_panel(&spec_12, scale, seed, |_| {});
    let r22 = run_panel(&spec_22, scale, seed, |_| {});
    let best12 = optimal_depths(&r12);
    let best22 = optimal_depths(&r22);
    rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| SuperpositionDrop {
            rate,
            success_12: best12[i].success_pct,
            success_22: best22[i].success_pct,
        })
        .collect()
}

/// Renders the superposition-drop comparison.
pub fn format_superposition_drop(drops: &[SuperpositionDrop]) -> String {
    let mut s = String::from(
        "Superposition drop (QFA n=8, optimal depth per cell) — paper §V:\n\
         \"over a 50% drop at the current 2q rate (~1%), only ~3% at 0.7%\"\n",
    );
    for d in drops {
        s.push_str(&format!(
            "  2q rate {:>5.2}%:  1:2 {:>6.1}%  ->  2:2 {:>6.1}%   (drop {:>5.1} points)\n",
            d.rate * 100.0,
            d.success_12,
            d.success_22,
            d.drop_points()
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_panel_result() -> PanelResult {
        let spec = PanelSpec {
            id: "opt",
            title: "tiny".into(),
            op: OpKind::Add,
            n: 3,
            m: 4,
            order_x: 1,
            order_y: 1,
            error_target: ErrorTarget::TwoQubit,
            rates: vec![0.0, 0.3],
            depths: vec![AqftDepth::Limited(1), AqftDepth::Full],
            reference_rate: 0.3,
        };
        run_panel(
            &spec,
            Scale {
                instances: 3,
                shots: 64,
            },
            4,
            |_| {},
        )
    }

    #[test]
    fn optimal_depth_per_rate() {
        let r = tiny_panel_result();
        let opt = optimal_depths(&r);
        assert_eq!(opt.len(), 2);
        // At zero noise on order-1 operands, everything succeeds; the
        // tie must break toward the shallower depth.
        assert_eq!(opt[0].depth, AqftDepth::Limited(1));
        assert_eq!(opt[0].success_pct, 100.0);
    }

    /// Pins the tie-break rule on a hand-built panel, independent of
    /// any simulation: equal success rates must resolve to the
    /// shallowest depth (fewest gates), and only a strictly higher
    /// rate may prefer a deeper one.
    #[test]
    fn ties_break_toward_the_shallower_depth() {
        use crate::runner::PointResult;
        use qfab_core::EnsembleStats;
        let spec = PanelSpec {
            id: "tiebreak",
            title: "synthetic".into(),
            op: OpKind::Add,
            n: 3,
            m: 4,
            order_x: 1,
            order_y: 1,
            error_target: ErrorTarget::TwoQubit,
            rates: vec![0.0, 0.1],
            depths: vec![
                AqftDepth::Limited(1),
                AqftDepth::Limited(3),
                AqftDepth::Full,
            ],
            reference_rate: 0.1,
        };
        let point = |rate: f64, depth: AqftDepth, pct: f64| PointResult {
            rate,
            depth,
            stats: EnsembleStats {
                success_rate_pct: pct,
                ..EnsembleStats::default()
            },
            cpu_secs: 0.0,
            wall_secs: 0.0,
        };
        let result = PanelResult {
            points: spec
                .rates
                .iter()
                .zip([[100.0, 100.0, 100.0], [40.0, 70.0, 70.0]])
                .flat_map(|(&rate, row)| {
                    spec.depths
                        .iter()
                        .zip(row)
                        .map(move |(&depth, pct)| point(rate, depth, pct))
                })
                .collect(),
            spec,
            scale: crate::scale::Scale {
                instances: 1,
                shots: 1,
            },
            seed: 0,
            elapsed_secs: 0.0,
            cache: None,
        };
        let opt = optimal_depths(&result);
        // Three-way tie at zero noise: the shallowest depth wins.
        assert_eq!(opt[0].depth, AqftDepth::Limited(1));
        // d=3 strictly beats d=1 and ties Full: d=3 wins, not Full.
        assert_eq!(opt[1].depth, AqftDepth::Limited(3));
        assert_eq!(opt[1].success_pct, 70.0);
    }

    #[test]
    fn formatting_mentions_heuristic() {
        let r = tiny_panel_result();
        let s = format_optimal_depths(&r);
        assert!(s.contains("Barenco"));
        assert!(s.contains("d ="));
    }

    #[test]
    fn drop_points_arithmetic() {
        let d = SuperpositionDrop {
            rate: 0.01,
            success_12: 80.0,
            success_22: 30.0,
        };
        assert!((d.drop_points() - 50.0).abs() < 1e-12);
        let s = format_superposition_drop(&[d]);
        assert!(s.contains("drop  50.0 points"));
    }
}
