//! Panel definitions for every figure of the paper.
//!
//! Both figures are 3×2 grids: rows are superposition orders
//! (1:1 / 1:2 / 2:2), columns are the varied error class (1q / 2q).
//! Each panel sweeps a set of gate error rates at several AQFT depths.
//!
//! Register geometry follows the configuration whose transpiled gate
//! counts reproduce the paper's Table I exactly: the QFA's updated
//! register has 8 qubits (7-bit operand values, so the sum never
//! overflows), and the QFM multiplies two 4-qubit qintegers into an
//! 8-qubit product.
//!
//! The IBM hardware reference rates the paper marks with dashed lines —
//! 0.2% (1q) and 1.0% (2q) — appear in the corresponding sweeps.

use qfab_core::AqftDepth;

/// Which arithmetic operation a panel exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Quantum Fourier Addition (Fig. 1).
    Add,
    /// Quantum Fourier Multiplication (Fig. 2).
    Mul,
}

/// Which gate class the panel's noise model targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorTarget {
    /// Depolarizing error on every single-qubit gate.
    OneQubit,
    /// Depolarizing error on every two-qubit gate.
    TwoQubit,
}

/// One figure panel: an operation, a superposition row, an error
/// column, and its sweep grid.
#[derive(Clone, Debug)]
pub struct PanelSpec {
    /// Identifier matching the paper ("fig1a" … "fig2f").
    pub id: &'static str,
    /// Human-readable description.
    pub title: String,
    /// The arithmetic operation.
    pub op: OpKind,
    /// First-operand register width.
    pub n: u32,
    /// Second-operand / target register width.
    pub m: u32,
    /// Superposition order of the first operand.
    pub order_x: usize,
    /// Superposition order of the second operand (for addition this is
    /// the *updated* register, per the paper's 1:2 convention).
    pub order_y: usize,
    /// The error class swept on the horizontal axis.
    pub error_target: ErrorTarget,
    /// Gate error rates (fractions; 0.002 = 0.2%).
    pub rates: Vec<f64>,
    /// AQFT depths (color-coded series in the paper).
    pub depths: Vec<AqftDepth>,
    /// The IBM reference rate the paper marks with a dashed line.
    pub reference_rate: f64,
}

/// The QFA error-rate grids (column a/c/e: 1q, column b/d/f: 2q).
fn fig1_rates(target: ErrorTarget) -> Vec<f64> {
    match target {
        ErrorTarget::OneQubit => vec![0.0, 0.002, 0.004, 0.007, 0.010, 0.014],
        ErrorTarget::TwoQubit => vec![0.0, 0.003, 0.007, 0.010, 0.020, 0.040],
    }
}

/// The QFM error-rate grids — an order of magnitude lower, because its
/// circuits are ~6× longer and success collapses much earlier.
fn fig2_rates(target: ErrorTarget) -> Vec<f64> {
    match target {
        ErrorTarget::OneQubit => vec![0.0, 0.0002, 0.0005, 0.001, 0.002],
        ErrorTarget::TwoQubit => vec![0.0, 0.0002, 0.0005, 0.001, 0.003, 0.010],
    }
}

fn fig1_depths() -> Vec<AqftDepth> {
    vec![
        AqftDepth::Limited(1),
        AqftDepth::Limited(2),
        AqftDepth::Limited(3),
        AqftDepth::Limited(4),
        AqftDepth::Full,
    ]
}

fn fig2_depths() -> Vec<AqftDepth> {
    vec![
        AqftDepth::Limited(1),
        AqftDepth::Limited(2),
        AqftDepth::Full,
    ]
}

fn reference_rate(target: ErrorTarget) -> f64 {
    match target {
        ErrorTarget::OneQubit => 0.002,
        ErrorTarget::TwoQubit => 0.010,
    }
}

/// All six QFA panels of the paper's Fig. 1, in (a)–(f) order.
pub fn fig1_panels() -> Vec<PanelSpec> {
    let rows = [(1usize, 1usize), (1, 2), (2, 2)];
    let cols = [ErrorTarget::OneQubit, ErrorTarget::TwoQubit];
    let ids = ["fig1a", "fig1b", "fig1c", "fig1d", "fig1e", "fig1f"];
    let mut out = Vec::new();
    for (r, &(ox, oy)) in rows.iter().enumerate() {
        for (c, &target) in cols.iter().enumerate() {
            let id = ids[r * 2 + c];
            out.push(PanelSpec {
                id,
                title: format!(
                    "QFA n=8: {ox}:{oy} superposition, {} error sweep",
                    match target {
                        ErrorTarget::OneQubit => "1q-gate",
                        ErrorTarget::TwoQubit => "2q-gate",
                    }
                ),
                op: OpKind::Add,
                n: 7,
                m: 8,
                order_x: ox,
                order_y: oy,
                error_target: target,
                rates: fig1_rates(target),
                depths: fig1_depths(),
                reference_rate: reference_rate(target),
            });
        }
    }
    out
}

/// All six QFM panels of the paper's Fig. 2, in (a)–(f) order.
pub fn fig2_panels() -> Vec<PanelSpec> {
    let rows = [(1usize, 1usize), (1, 2), (2, 2)];
    let cols = [ErrorTarget::OneQubit, ErrorTarget::TwoQubit];
    let ids = ["fig2a", "fig2b", "fig2c", "fig2d", "fig2e", "fig2f"];
    let mut out = Vec::new();
    for (r, &(ox, oy)) in rows.iter().enumerate() {
        for (c, &target) in cols.iter().enumerate() {
            let id = ids[r * 2 + c];
            out.push(PanelSpec {
                id,
                title: format!(
                    "QFM n=4: {ox}:{oy} superposition, {} error sweep",
                    match target {
                        ErrorTarget::OneQubit => "1q-gate",
                        ErrorTarget::TwoQubit => "2q-gate",
                    }
                ),
                op: OpKind::Mul,
                n: 4,
                m: 4,
                order_x: ox,
                order_y: oy,
                error_target: target,
                rates: fig2_rates(target),
                depths: fig2_depths(),
                reference_rate: reference_rate(target),
            });
        }
    }
    out
}

/// Looks a panel up by id across both figures.
pub fn panel_by_id(id: &str) -> Option<PanelSpec> {
    fig1_panels()
        .into_iter()
        .chain(fig2_panels())
        .find(|p| p.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_panels_total() {
        assert_eq!(fig1_panels().len(), 6);
        assert_eq!(fig2_panels().len(), 6);
    }

    #[test]
    fn panel_rows_follow_paper_layout() {
        let p = fig1_panels();
        // (a): 1:1 with 1q error, (b): 1:1 with 2q, (c): 1:2 with 1q …
        assert_eq!(p[0].id, "fig1a");
        assert_eq!((p[0].order_x, p[0].order_y), (1, 1));
        assert_eq!(p[0].error_target, ErrorTarget::OneQubit);
        assert_eq!(p[1].error_target, ErrorTarget::TwoQubit);
        assert_eq!((p[2].order_x, p[2].order_y), (1, 2));
        assert_eq!((p[4].order_x, p[4].order_y), (2, 2));
        assert_eq!(p[5].id, "fig1f");
    }

    #[test]
    fn sweeps_include_noise_free_origin_and_reference_rate() {
        for p in fig1_panels().into_iter().chain(fig2_panels()) {
            assert_eq!(p.rates[0], 0.0, "{}: first point is the x-origin", p.id);
            assert!(
                p.rates.windows(2).all(|w| w[0] < w[1]),
                "{}: rates must ascend",
                p.id
            );
        }
        // Fig 1 sweeps cross the paper's dashed reference rates.
        for p in fig1_panels() {
            assert!(p.rates.contains(&p.reference_rate), "{}", p.id);
        }
    }

    #[test]
    fn depth_grids_match_paper_series() {
        let f1 = &fig1_panels()[0];
        assert_eq!(f1.depths.len(), 5);
        assert_eq!(f1.depths[4], AqftDepth::Full);
        let f2 = &fig2_panels()[0];
        assert_eq!(f2.depths.len(), 3);
        assert_eq!(f2.depths[2], AqftDepth::Full);
    }

    #[test]
    fn geometry_matches_table1_configuration() {
        for p in fig1_panels() {
            assert_eq!((p.n, p.m), (7, 8));
        }
        for p in fig2_panels() {
            assert_eq!((p.n, p.m), (4, 4));
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(panel_by_id("fig1d").is_some());
        assert!(panel_by_id("fig2f").is_some());
        assert!(panel_by_id("fig3a").is_none());
        assert_eq!(panel_by_id("fig2c").unwrap().op, OpKind::Mul);
    }
}
