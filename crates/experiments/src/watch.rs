//! Live sweep monitoring for `repro --watch`: heartbeat publishing and
//! the read-only HTTP status endpoints.
//!
//! The watch layer glues three existing pieces together without
//! touching any of their outputs:
//!
//! * [`qfab_telemetry::monitor`] samples the metric registry into a
//!   `qfab.timeline.v1` ring and atomically rewrites `status.json`;
//! * [`qfab_telemetry::httpd`] serves the results over HTTP;
//! * the sweep runner's progress callback feeds panel/instance/cell
//!   progress and cache traffic into the [`STATUS_SCHEMA`] heartbeat.
//!
//! Everything served is read-only and derived: `/dash` renders the
//! store through the same [`crate::dashboard::render_dir`] that
//! `repro dash` uses, `/history` formats the same ledger as
//! `repro history`, and the store itself is never written by any
//! request. A sweep with `--watch` produces byte-identical panel
//! outputs to one without.

use crate::dashboard;
use crate::ledger;
use crate::runner::{eta_secs, Progress};
use qfab_telemetry::httpd::{self, Handler, HttpServer, Method, Response};
use qfab_telemetry::monitor::{self, MonitorConfig};
use qfab_telemetry::promtext;
use qfab_telemetry::Json;
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Schema identifier of the `status.json` heartbeat.
pub const STATUS_SCHEMA: &str = "qfab.status.v1";

struct PanelState {
    id: String,
    instances_done: usize,
    instances_total: usize,
    cells_per_instance: usize,
    last_instance: Option<usize>,
    cache: Option<crate::runner::CacheStats>,
    eta_secs: Option<f64>,
}

struct WatchState {
    run_state: &'static str,
    started: Instant,
    addr: Option<SocketAddr>,
    panel: Option<PanelState>,
    panels_completed: Vec<String>,
}

fn state() -> &'static Mutex<Option<WatchState>> {
    static STATE: OnceLock<Mutex<Option<WatchState>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

fn lock_state() -> MutexGuard<'static, Option<WatchState>> {
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Builds the current [`STATUS_SCHEMA`] heartbeat document.
///
/// This is what the monitor's sampler persists as `status.json` and
/// what `GET /status.json` serves; exposed for tests.
pub fn heartbeat_json() -> Json {
    let guard = lock_state();
    let Some(ws) = guard.as_ref() else {
        return Json::Obj(vec![
            ("schema".into(), Json::Str(STATUS_SCHEMA.into())),
            ("state".into(), Json::Str("idle".into())),
        ]);
    };
    let mut fields = vec![
        ("schema".into(), Json::Str(STATUS_SCHEMA.into())),
        ("state".into(), Json::Str(ws.run_state.into())),
        (
            "elapsed_secs".into(),
            Json::F64(ws.started.elapsed().as_secs_f64()),
        ),
    ];
    if let Some(addr) = ws.addr {
        fields.push((
            "server".into(),
            Json::Obj(vec![("addr".into(), Json::Str(addr.to_string()))]),
        ));
    }
    let panel = match &ws.panel {
        None => Json::Null,
        Some(p) => {
            let mut pf = vec![
                ("id".into(), Json::Str(p.id.clone())),
                (
                    "instances".into(),
                    Json::Obj(vec![
                        ("done".into(), Json::U64(p.instances_done as u64)),
                        ("total".into(), Json::U64(p.instances_total as u64)),
                    ]),
                ),
                (
                    "cells".into(),
                    Json::Obj(vec![
                        (
                            "done".into(),
                            Json::U64((p.instances_done * p.cells_per_instance) as u64),
                        ),
                        (
                            "total".into(),
                            Json::U64((p.instances_total * p.cells_per_instance) as u64),
                        ),
                    ]),
                ),
            ];
            pf.push((
                "last_instance".into(),
                match p.last_instance {
                    Some(i) => Json::U64(i as u64),
                    None => Json::Null,
                },
            ));
            pf.push((
                "eta_secs".into(),
                match p.eta_secs {
                    Some(s) => Json::F64(s),
                    None => Json::Null,
                },
            ));
            pf.push((
                "cache".into(),
                match &p.cache {
                    None => Json::Null,
                    Some(c) => Json::Obj(vec![
                        ("hits".into(), Json::U64(c.hits)),
                        ("misses".into(), Json::U64(c.misses)),
                        ("rejected".into(), Json::U64(c.rejected)),
                        ("append_failed".into(), Json::U64(c.append_failed)),
                    ]),
                },
            ));
            Json::Obj(pf)
        }
    };
    fields.push(("panel".into(), panel));
    fields.push((
        "panels_completed".into(),
        Json::Arr(
            ws.panels_completed
                .iter()
                .map(|p| Json::Str(p.clone()))
                .collect(),
        ),
    ));
    Json::Obj(fields)
}

/// Checks that `doc` is a well-formed [`STATUS_SCHEMA`] heartbeat.
///
/// Used by the schema tests and usable against a `status.json` read
/// back from disk (e.g. after a crash).
pub fn validate_status(doc: &Json) -> Result<(), String> {
    let expect = |cond: bool, what: &str| -> Result<(), String> {
        if cond {
            Ok(())
        } else {
            Err(format!("status.json invalid: {what}"))
        }
    };
    expect(
        doc.get("schema").and_then(Json::as_str) == Some(STATUS_SCHEMA),
        "schema must be qfab.status.v1",
    )?;
    let run_state = doc.get("state").and_then(Json::as_str);
    expect(
        matches!(
            run_state,
            Some("running") | Some("done") | Some("failed") | Some("idle")
        ),
        "state must be running|done|failed|idle",
    )?;
    if run_state == Some("idle") {
        return Ok(());
    }
    expect(
        doc.get("elapsed_secs")
            .and_then(Json::as_f64)
            .is_some_and(|s| s >= 0.0),
        "elapsed_secs must be a non-negative number",
    )?;
    expect(
        matches!(doc.get("panels_completed"), Some(Json::Arr(_))),
        "panels_completed must be an array",
    )?;
    match doc.get("panel") {
        Some(Json::Null) => {}
        Some(panel @ Json::Obj(_)) => {
            expect(
                panel.get("id").and_then(Json::as_str).is_some(),
                "panel.id must be a string",
            )?;
            for group in ["instances", "cells"] {
                let done = panel
                    .get(group)
                    .and_then(|g| g.get("done"))
                    .and_then(Json::as_u64);
                let total = panel
                    .get(group)
                    .and_then(|g| g.get("total"))
                    .and_then(Json::as_u64);
                match (done, total) {
                    (Some(d), Some(t)) => {
                        expect(d <= t, "progress done must not exceed total")?;
                    }
                    _ => return Err(format!("status.json invalid: panel.{group} incomplete")),
                }
            }
        }
        _ => return Err("status.json invalid: panel must be an object or null".into()),
    }
    Ok(())
}

/// Records that a panel sweep is starting (shows up in the next
/// heartbeat). A no-op when no monitor is running.
pub fn panel_started(id: &str, instances_total: usize, cells_per_instance: usize) {
    if !monitor::active() {
        return;
    }
    {
        let mut guard = lock_state();
        if let Some(ws) = guard.as_mut() {
            ws.panel = Some(PanelState {
                id: id.to_string(),
                instances_done: 0,
                instances_total,
                cells_per_instance,
                last_instance: None,
                cache: None,
                eta_secs: None,
            });
        }
    }
    monitor::publish_now();
}

/// Feeds one progress callback into the heartbeat state. Memory-only —
/// the monitor's sampler persists it on its own schedule — and a single
/// relaxed atomic load when no monitor is running.
#[inline]
pub fn publish_progress(progress: &Progress, elapsed_secs: f64) {
    if !monitor::active() {
        return;
    }
    let mut guard = lock_state();
    let Some(ws) = guard.as_mut() else { return };
    let Some(panel) = ws.panel.as_mut() else {
        return;
    };
    panel.instances_done = progress.done;
    panel.instances_total = progress.total;
    panel.last_instance = progress.last_instance;
    panel.cache = progress.cache;
    panel.eta_secs = eta_secs(progress, elapsed_secs);
}

/// Records that a panel finished; its id moves to `panels_completed`.
/// A no-op when no monitor is running.
pub fn panel_finished(id: &str) {
    if !monitor::active() {
        return;
    }
    {
        let mut guard = lock_state();
        if let Some(ws) = guard.as_mut() {
            ws.panel = None;
            ws.panels_completed.push(id.to_string());
        }
    }
    monitor::publish_now();
}

/// Builds the route handler serving a (possibly still-running) store
/// directory. Every route is read-only.
pub fn routes(store_dir: PathBuf) -> Handler {
    Arc::new(move |req| {
        if req.method != Method::Get {
            // The watch server is strictly read-only; job submission
            // lives on `repro serve`, not here.
            return Response::method_not_allowed("GET");
        }
        match req.path.as_str() {
            "/" => Response::text(
                "qfab live monitor\n\
             /status.json  heartbeat (qfab.status.v1)\n\
             /metrics.json metric time-series (qfab.timeline.v1)\n\
             /metrics      Prometheus text exposition of the registry\n\
             /dash         live dashboard (same renderer as `repro dash`)\n\
             /history      run-history ledger\n",
            ),
            "/status.json" => Response::json(heartbeat_json().encode_pretty()),
            "/metrics" => Response {
                content_type: promtext::CONTENT_TYPE,
                cache_control: Some("no-store"),
                ..Response::text(promtext::render_registry())
            },
            "/metrics.json" => match monitor::timeline_json() {
                Some(json) => Response::json(json),
                None => Response::not_found(),
            },
            "/dash" => match dashboard::render_dir(&store_dir) {
                Ok(html) => Response::html(html),
                Err(e) => Response {
                    status: 404,
                    ..Response::text(format!("dashboard unavailable: {e}\n"))
                },
            },
            "/history" => match ledger::read(&store_dir) {
                Ok(history) => Response::text(ledger::format_history(&history)),
                Err(e) => Response {
                    status: 404,
                    ..Response::text(format!("history unavailable: {e}\n"))
                },
            },
            _ => Response::not_found(),
        }
    })
}

/// A live `--watch` session: the monitor plus its HTTP server.
pub struct WatchSession {
    server: HttpServer,
}

impl WatchSession {
    /// The address the status server actually bound (port 0 resolves).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Marks the run done, publishes the final heartbeat, holds the
    /// server up for `hold_secs` (so a dashboard poller can observe the
    /// terminal state), then shuts everything down. The final
    /// `status.json` stays on disk.
    pub fn finish(mut self, hold_secs: u64) {
        {
            let mut guard = lock_state();
            if let Some(ws) = guard.as_mut() {
                ws.run_state = "done";
                ws.panel = None;
            }
        }
        monitor::publish_now();
        if hold_secs > 0 {
            std::thread::sleep(std::time::Duration::from_secs(hold_secs));
        }
        self.server.shutdown();
        monitor::stop();
        *lock_state() = None;
    }
}

/// Starts a watch session: initializes the heartbeat state, starts the
/// global monitor (sampling into `status_path`), and binds the HTTP
/// server at `addr` (use port 0 for an OS-assigned port).
///
/// Fails if a monitor is already running or the address cannot bind.
pub fn start(addr: &str, store_dir: &Path, status_path: PathBuf) -> io::Result<WatchSession> {
    {
        let mut guard = lock_state();
        if guard.is_some() {
            // Refuse without touching the live session's state — a
            // failed second start must not blank its heartbeat.
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "a watch session is already running in this process",
            ));
        }
        *guard = Some(WatchState {
            run_state: "running",
            started: Instant::now(),
            addr: None,
            panel: None,
            panels_completed: Vec::new(),
        });
    }
    if !monitor::start(MonitorConfig {
        status_path: Some(status_path),
        provider: Some(Box::new(heartbeat_json)),
        ..MonitorConfig::default()
    }) {
        *lock_state() = None;
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "a monitor is already running in this process",
        ));
    }
    let server = match httpd::serve(addr, routes(store_dir.to_path_buf())) {
        Ok(s) => s,
        Err(e) => {
            monitor::stop();
            *lock_state() = None;
            return Err(e);
        }
    };
    {
        let mut guard = lock_state();
        if let Some(ws) = guard.as_mut() {
            ws.addr = Some(server.local_addr());
        }
    }
    // Re-publish so the on-disk heartbeat carries the bound address.
    monitor::publish_now();
    Ok(WatchSession { server })
}
