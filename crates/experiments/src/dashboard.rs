//! The result dashboard: one self-contained HTML page per run
//! (`repro dash`).
//!
//! A run directory accumulates heterogeneous evidence — the cell store,
//! `*.manifest.json` provenance files, optional `*.trace.json`
//! timelines — and reading it all back means juggling four different
//! text formats. This module folds everything into a single HTML
//! document with inline SVG charts ([`qfab_telemetry::svg`]): the
//! paper-layout success-vs-error-rate curve per panel (one series per
//! AQFT depth, Wilson error bars, the IBM reference rate as a dashed
//! line), an optimal-depth strip against the Barenco `log₂ m`
//! heuristic, the Table I gate-count comparison, and — when present —
//! cache/telemetry manifest summaries and trace phase attribution.
//!
//! The page embeds nothing external (no scripts, fonts, or stylesheets
//! beyond an inline `<style>`) and contains no timestamps or absolute
//! paths, so rendering the same store twice produces **byte-identical
//! output** — `cmp a.html b.html` is a valid regression check, and the
//! dashboard can be archived next to the data it describes.

use crate::attrib;
use crate::ledger;
use crate::rundata::{load_run, PanelData, RunData};
use crate::shots::{load_shots, ShotsData};
use crate::table1::{format_table1, run_table1};
use crate::tracereport::{self, Analysis};
use qfab_core::AqftDepth;
use qfab_telemetry::svg::{escape, DataPoint, LineChart, Series, XScale};
use qfab_telemetry::Json;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Everything `repro dash` reads from a run directory.
#[derive(Debug, Default)]
pub struct DashboardInput {
    /// The reconstructed cell store.
    pub run: RunData,
    /// Parsed manifests, sorted by file name.
    pub manifests: Vec<(String, Json)>,
    /// Parsed traces, sorted by file name.
    pub traces: Vec<(String, Analysis)>,
    /// The run-history ledger.
    pub history: ledger::History,
    /// The shot-provenance ledger (empty unless the sweep ran with
    /// `--shots-ledger`).
    pub shots: ShotsData,
    /// Files that looked relevant but could not be parsed.
    pub unreadable: Vec<String>,
}

/// Gathers store records, manifests, traces, and ledger from `dir`.
pub fn collect(dir: &Path) -> io::Result<DashboardInput> {
    let mut input = DashboardInput {
        run: load_run(dir)?,
        history: ledger::read(dir)?,
        shots: load_shots(dir)?,
        ..DashboardInput::default()
    };
    let mut names: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .collect();
    names.sort();
    for name in names {
        let is_manifest = name.ends_with(".manifest.json");
        let is_trace = name.ends_with(".trace.json");
        if !is_manifest && !is_trace {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(dir.join(&name)) else {
            input.unreadable.push(name);
            continue;
        };
        let Ok(doc) = Json::parse(&text) else {
            input.unreadable.push(name);
            continue;
        };
        if is_manifest {
            input.manifests.push((name, doc));
        } else {
            match tracereport::analyze(&doc) {
                Ok(analysis) => input.traces.push((name, analysis)),
                Err(_) => input.unreadable.push(name),
            }
        }
    }
    Ok(input)
}

/// Renders the directory at `dir` straight to HTML.
pub fn render_dir(dir: &Path) -> io::Result<String> {
    Ok(render(&collect(dir)?))
}

const PALETTE: [&str; 6] = [
    "#1b6ca8", "#b23a48", "#2e7d32", "#8e24aa", "#ef6c00", "#00838f",
];

/// Trims a percentage for tick labels: `0`, `0.2`, `1`, `1.4`.
fn fmt_pct(v: f64) -> String {
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".into()
    } else {
        s.into()
    }
}

fn depth_series_label(tag: &str) -> String {
    if tag == "full" {
        "full".into()
    } else {
        format!("d={tag}")
    }
}

/// Builds the paper-layout chart for one reconstructed panel.
fn panel_chart(panel: &PanelData) -> LineChart {
    let mut chart = LineChart::new(format!("{} — {}", panel.id, panel.title));
    chart.x_label = "gate error rate (%)".into();
    chart.y_label = "success rate (%)".into();
    chart.x_scale = XScale::Linear;
    chart.x_ticks = panel
        .rows
        .iter()
        .map(|&(_, rate)| (rate * 100.0, fmt_pct(rate * 100.0)))
        .collect();
    chart.y_ticks = (0..=4)
        .map(|i| (25.0 * i as f64, format!("{}", 25 * i)))
        .collect();
    if let Some(reference) = panel.reference_rate {
        chart.ref_x = Some((reference * 100.0, "IBM ref".into()));
    }
    for (ci, (_, depth)) in panel.cols.iter().enumerate() {
        let mut points = Vec::new();
        for (ri, &(_, rate)) in panel.rows.iter().enumerate() {
            let Some(cell) = &panel.cells[ri][ci] else {
                continue;
            };
            let stats = &cell.stats;
            points.push(DataPoint {
                x: rate * 100.0,
                y: stats.success_rate_pct,
                y_lo: Some(stats.wilson_low_pct),
                y_hi: Some(stats.wilson_high_pct),
                note: Some(format!(
                    "{}/{} ok · wilson95 [{:.1}, {:.1}] · gap σ {:.2}",
                    cell.successes,
                    cell.instances,
                    stats.wilson_low_pct,
                    stats.wilson_high_pct,
                    stats.gap_sigma
                )),
            });
        }
        chart.series.push(Series {
            label: depth_series_label(depth),
            color: PALETTE[ci % PALETTE.len()].into(),
            points,
        });
    }
    chart
}

/// Best depth per rate: highest success, ties toward the shallower
/// depth (column order is depth order), cells without data skipped.
fn optimal_strip(panel: &PanelData) -> Vec<(f64, String, f64)> {
    panel
        .rows
        .iter()
        .enumerate()
        .filter_map(|(ri, &(_, rate))| {
            let mut best: Option<(usize, f64)> = None;
            for (ci, _) in panel.cols.iter().enumerate() {
                let Some(cell) = &panel.cells[ri][ci] else {
                    continue;
                };
                if cell.instances == 0 {
                    continue;
                }
                let pct = cell.stats.success_rate_pct;
                if best.is_none_or(|(_, b)| pct > b + 1e-12) {
                    best = Some((ci, pct));
                }
            }
            best.map(|(ci, pct)| (rate, panel.cols[ci].1.clone(), pct))
        })
        .collect()
}

fn html_head(out: &mut String) {
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\"/>");
    out.push_str("<title>qfab result dashboard</title><style>\n");
    out.push_str(
        "body{font-family:sans-serif;margin:24px;color:#222;max-width:1080px}\n\
         h1{font-size:22px}h2{font-size:17px;border-bottom:1px solid #ccc;padding-bottom:4px}\n\
         table{border-collapse:collapse;margin:8px 0}\n\
         td,th{border:1px solid #ccc;padding:3px 9px;font-size:13px;text-align:right}\n\
         th{background:#f2f2f2}td.l,th.l{text-align:left}\n\
         .panels{display:flex;flex-wrap:wrap;gap:16px}\n\
         .panel{border:1px solid #ddd;padding:8px;border-radius:4px}\n\
         .ok{color:#2e7d32}.bad{color:#b23a48}\n\
         .note{color:#666;font-size:12px}\n\
         .bar{background:#1b6ca8;height:10px;display:inline-block}\n\
         pre{background:#f7f7f7;padding:8px;font-size:12px;overflow-x:auto}\n",
    );
    out.push_str("</style></head><body>\n");
}

fn render_panels(out: &mut String, run: &RunData) {
    out.push_str("<h2>Success-rate panels</h2>\n");
    if run.panels.is_empty() {
        out.push_str("<p class=\"note\">The store holds no decodable cell records.</p>\n");
        return;
    }
    out.push_str("<div class=\"panels\">\n");
    for panel in &run.panels {
        let _ = writeln!(
            out,
            "<div class=\"panel\" id=\"panel-{}\">",
            escape(&panel.id)
        );
        out.push_str(&panel_chart(panel).render());
        let _ = writeln!(
            out,
            "\n<p class=\"note\">seed {} · {} shots/instance · {} instance records</p>",
            panel.key.seed,
            panel.key.shots,
            panel.instance_records()
        );
        out.push_str("</div>\n");
    }
    out.push_str("</div>\n");
}

fn render_optimal_strip(out: &mut String, run: &RunData) {
    if run.panels.is_empty() {
        return;
    }
    out.push_str("<h2>Optimal depth vs Barenco heuristic</h2>\n");
    out.push_str(
        "<p class=\"note\">Per error rate, the depth with the highest measured success \
         (ties to the shallower depth); the heuristic column is the paper's \
         d&nbsp;=&nbsp;log<sub>2</sub>&nbsp;m rule of thumb.</p>\n",
    );
    out.push_str(
        "<table><tr><th class=\"l\">panel</th><th>rate (%)</th>\
         <th>best depth</th><th>success (%)</th><th>heuristic</th><th class=\"l\">agrees</th></tr>\n",
    );
    for panel in &run.panels {
        let heuristic = AqftDepth::barenco_heuristic(panel.key.m as u32);
        let heuristic_tag = heuristic.identity_tag();
        for (rate, depth, pct) in optimal_strip(panel) {
            let agrees = depth == heuristic_tag;
            let _ = writeln!(
                out,
                "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{:.1}</td>\
                 <td>{}</td><td class=\"l {}\">{}</td></tr>",
                escape(&panel.id),
                fmt_pct(rate * 100.0),
                escape(&depth_series_label(&depth)),
                pct,
                escape(&depth_series_label(&heuristic_tag)),
                if agrees { "ok" } else { "bad" },
                if agrees { "yes" } else { "no" },
            );
        }
    }
    out.push_str("</table>\n");
}

/// Width of a 100%-share bar in the channel/class tables, px.
const BAR_FULL_PX: f64 = 120.0;

/// The per-gate-position budget strip for one panel: gate index on x,
/// each site's share of the group's attributed failure budget on y,
/// one series per `(depth, rate)` group that saw sites fire (noisiest
/// groups first, capped at the palette).
fn budget_strip(panel: &attrib::PanelAttribution) -> Option<LineChart> {
    let mut groups: Vec<&attrib::GroupAttribution> = panel
        .groups
        .iter()
        .filter(|g| !g.sites.is_empty() && g.logged_fail > 0)
        .collect();
    if groups.is_empty() {
        return None;
    }
    groups.sort_by(|a, b| {
        b.logged_fail
            .cmp(&a.logged_fail)
            .then(a.di.cmp(&b.di))
            .then(a.ri.cmp(&b.ri))
    });
    groups.truncate(PALETTE.len());
    // Redraw in grid order so the legend reads naturally.
    groups.sort_by_key(|g| (g.di, g.ri));
    let mut chart = LineChart::new(format!("{} — failure budget by gate position", panel.id));
    chart.x_label = "transpiled gate index".into();
    chart.y_label = "budget share (%)".into();
    let gates = groups.iter().map(|g| g.gates).max().unwrap_or(0);
    let mut y_max = 0.0f64;
    for (gi, group) in groups.iter().enumerate() {
        let total = group.site_budget();
        let mut points = Vec::with_capacity(group.sites.len());
        for site in &group.sites {
            let share = if total > 0.0 {
                site.budget / total * 100.0
            } else {
                0.0
            };
            y_max = y_max.max(share);
            let mut point = DataPoint::new(site.gate as f64, share);
            point.note = Some(format!(
                "gate {} ({}): budget {:.2} of {:.0}",
                site.gate, site.order, site.budget, total
            ));
            points.push(point);
        }
        chart.series.push(Series {
            label: format!(
                "{} @ {}%",
                depth_series_label(&group.depth),
                fmt_pct(group.rate * 100.0)
            ),
            color: PALETTE[gi % PALETTE.len()].into(),
            points,
        });
    }
    // Headroom above the tallest spike; ticks at 0 / mid / top.
    chart.y_max = (y_max * 1.15).max(1.0);
    chart.y_ticks = vec![
        (0.0, "0".into()),
        (chart.y_max / 2.0, fmt_pct(chart.y_max / 2.0)),
        (chart.y_max, fmt_pct(chart.y_max)),
    ];
    let last = gates.saturating_sub(1) as f64;
    chart.x_ticks = (0..=4)
        .map(|i| {
            let x = (last * i as f64 / 4.0).round();
            (x, format!("{x:.0}"))
        })
        .collect();
    chart.x_ticks.dedup_by(|a, b| a.0 == b.0);
    Some(chart)
}

/// A `<td>` pair rendering a share as a number plus an inline bar.
fn share_cells(out: &mut String, share: f64) {
    let width = (share / 100.0 * BAR_FULL_PX).clamp(0.0, BAR_FULL_PX);
    let _ = write!(
        out,
        "<td>{:.1}</td><td class=\"l\"><span class=\"bar\" style=\"width:{:.0}px\"></span></td>",
        share, width
    );
}

fn render_attribution(out: &mut String, shots: &ShotsData) {
    if shots.cells.is_empty() {
        return;
    }
    let report = attrib::attribute(shots);
    out.push_str("<h2>Error attribution</h2>\n");
    let _ = writeln!(
        out,
        "<p class=\"note\">{} shot-provenance records across {} panels; failing shots \
         split their budget 1/k over the k noise sites that fired, so per-site budgets \
         sum exactly to the attributed failures.</p>",
        report.records,
        report.panels.len()
    );
    for panel in &report.panels {
        if panel.empty_budget() {
            let _ = writeln!(
                out,
                "<p class=\"note\">{}: no noise sites fired — error budget is empty \
                 (approximation error only).</p>",
                escape(&panel.id)
            );
            continue;
        }
        let _ = writeln!(
            out,
            "<div class=\"panel\" id=\"attrib-{}\">",
            escape(&panel.id)
        );
        if let Some(chart) = budget_strip(panel) {
            out.push_str(&chart.render());
            out.push('\n');
        }
        out.push_str("</div>\n");
        // Channel bars: how much budget each noise channel carries.
        out.push_str(
            "<table><tr><th class=\"l\">group</th><th class=\"l\">channel</th>\
             <th>p</th><th>fired</th><th>failed</th><th>lift</th>\
             <th>share (%)</th><th class=\"l\"></th></tr>\n",
        );
        for group in &panel.groups {
            let total = group.site_budget();
            for ch in &group.channel_rows {
                let _ = write!(
                    out,
                    "<tr><td class=\"l\">{} @ {}%</td><td class=\"l\">{}</td>\
                     <td>{}</td><td>{}</td><td>{}</td><td>{:+.3}</td>",
                    escape(&depth_series_label(&group.depth)),
                    fmt_pct(group.rate * 100.0),
                    escape(&ch.tag),
                    fmt_pct(ch.error_prob * 100.0),
                    ch.fired,
                    ch.fired_fail,
                    ch.lift,
                );
                share_cells(
                    out,
                    if total > 0.0 {
                        ch.budget / total * 100.0
                    } else {
                        0.0
                    },
                );
                out.push_str("</tr>\n");
            }
        }
        out.push_str("</table>\n");
        // Rotation-order bars: which gate classes dominate the loss.
        out.push_str(
            "<table><tr><th class=\"l\">group</th><th class=\"l\">class</th>\
             <th>sites</th><th>fired</th><th>budget</th>\
             <th>share (%)</th><th class=\"l\"></th></tr>\n",
        );
        for group in &panel.groups {
            let total = group.site_budget();
            for row in &group.orders {
                let _ = write!(
                    out,
                    "<tr><td class=\"l\">{} @ {}%</td><td class=\"l\">{}</td>\
                     <td>{}</td><td>{}</td><td>{:.2}</td>",
                    escape(&depth_series_label(&group.depth)),
                    fmt_pct(group.rate * 100.0),
                    escape(&row.order),
                    row.sites,
                    row.fired,
                    row.budget,
                );
                share_cells(
                    out,
                    if total > 0.0 {
                        row.budget / total * 100.0
                    } else {
                        0.0
                    },
                );
                out.push_str("</tr>\n");
            }
        }
        out.push_str("</table>\n");
    }
}

fn render_table1(out: &mut String) {
    out.push_str("<h2>Table I — gate counts</h2>\n");
    out.push_str(
        "<table><tr><th class=\"l\">op</th><th>depth</th><th>1q ours</th><th>1q paper</th>\
         <th>2q ours</th><th>2q paper</th><th class=\"l\">match</th></tr>\n",
    );
    for e in run_table1() {
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td class=\"l {}\">{}</td></tr>",
            e.op,
            escape(&e.depth_label),
            e.ours_1q,
            e.paper_1q,
            e.ours_2q,
            e.paper_2q,
            if e.matches() { "ok" } else { "bad" },
            if e.matches() { "yes" } else { "NO" },
        );
    }
    out.push_str("</table>\n");
}

fn manifest_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_u64)
}

fn render_manifests(out: &mut String, manifests: &[(String, Json)]) {
    if manifests.is_empty() {
        return;
    }
    out.push_str("<h2>Run manifests</h2>\n");
    out.push_str(
        "<table><tr><th class=\"l\">id</th><th>seed</th><th>instances</th><th>shots</th>\
         <th>threads</th><th>elapsed (s)</th><th>cache hits</th><th>misses</th>\
         <th>rejected</th><th class=\"l\">metrics</th></tr>\n",
    );
    for (_, doc) in manifests {
        let id = doc.get("id").and_then(Json::as_str).unwrap_or("?");
        let cache = doc.get("cache");
        let cache_field = |k: &str| {
            cache
                .and_then(|c| c.get(k))
                .and_then(Json::as_u64)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into())
        };
        let metric_count = match doc.get("metrics") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(_, section)| match section {
                    Json::Obj(entries) => entries.len(),
                    _ => 0,
                })
                .sum::<usize>()
                .to_string(),
            _ => "-".into(),
        };
        let _ = writeln!(
            out,
            "<tr><td class=\"l\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td class=\"l\">{}</td></tr>",
            escape(id),
            manifest_u64(doc, "seed").map_or("-".into(), |v| v.to_string()),
            manifest_u64(doc, "instances").map_or("-".into(), |v| v.to_string()),
            manifest_u64(doc, "shots").map_or("-".into(), |v| v.to_string()),
            manifest_u64(doc, "threads").map_or("-".into(), |v| v.to_string()),
            doc.get("elapsed_secs")
                .and_then(Json::as_f64)
                .map_or("-".into(), |v| format!("{v:.2}")),
            cache_field("hits"),
            cache_field("misses"),
            cache_field("rejected"),
            metric_count,
        );
    }
    out.push_str("</table>\n");
}

fn render_traces(out: &mut String, traces: &[(String, Analysis)]) {
    if traces.is_empty() {
        return;
    }
    out.push_str("<h2>Trace phase attribution</h2>\n");
    for (name, analysis) in traces {
        let _ = writeln!(
            out,
            "<h3 class=\"note\">{} — {} spans over {:.1} ms wall</h3>",
            escape(name),
            analysis.spans.len(),
            analysis.wall_us as f64 / 1000.0
        );
        out.push_str(
            "<table><tr><th class=\"l\">phase</th><th>count</th><th>total (ms)</th>\
             <th>self (ms)</th><th>max (ms)</th></tr>\n",
        );
        let mut phases: Vec<_> = analysis.phases.iter().collect();
        phases.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(&b.0)));
        for (name, stats) in phases.into_iter().take(12) {
            let _ = writeln!(
                out,
                "<tr><td class=\"l\">{}</td><td>{}</td><td>{:.2}</td><td>{:.2}</td>\
                 <td>{:.2}</td></tr>",
                escape(name),
                stats.count,
                stats.total_us as f64 / 1000.0,
                stats.self_us as f64 / 1000.0,
                stats.max_us as f64 / 1000.0,
            );
        }
        out.push_str("</table>\n");
    }
}

fn render_history(out: &mut String, history: &ledger::History) {
    if history.entries.is_empty() {
        return;
    }
    out.push_str("<h2>Run history</h2>\n");
    out.push_str(
        "<table><tr><th>entry</th><th class=\"l\">digest</th><th class=\"l\">git</th>\
         <th>panels</th><th>successes</th><th>instances</th></tr>\n",
    );
    for (i, entry) in history.entries.iter().enumerate() {
        let (successes, instances) = entry.summary.panels.iter().fold((0u64, 0u64), |(s, n), p| {
            let (ps, pn) = p.totals();
            (s + ps, n + pn)
        });
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td class=\"l\">{}</td><td class=\"l\">{}</td>\
             <td>{}</td><td>{}</td><td>{}</td></tr>",
            i,
            escape(&entry.digest[..12.min(entry.digest.len())]),
            escape(entry.git.as_deref().unwrap_or("-")),
            entry.summary.panels.len(),
            successes,
            instances,
        );
    }
    out.push_str("</table>\n");
}

/// Renders the collected inputs into one self-contained HTML document.
pub fn render(input: &DashboardInput) -> String {
    let mut out = String::new();
    html_head(&mut out);
    out.push_str("<h1>qfab result dashboard</h1>\n");
    let _ = writeln!(
        out,
        "<p class=\"note\">{} panels from {} store records ({} rejected) · \
         {} manifests · {} traces · {} ledger entries</p>",
        input.run.panels.len(),
        input.run.records,
        input.run.rejected,
        input.manifests.len(),
        input.traces.len(),
        input.history.entries.len(),
    );
    if !input.unreadable.is_empty() {
        let _ = writeln!(
            out,
            "<p class=\"note bad\">unreadable inputs skipped: {}</p>",
            escape(&input.unreadable.join(", "))
        );
    }
    render_panels(&mut out, &input.run);
    render_optimal_strip(&mut out, &input.run);
    render_attribution(&mut out, &input.shots);
    render_table1(&mut out);
    render_manifests(&mut out, &input.manifests);
    render_traces(&mut out, &input.traces);
    render_history(&mut out, &input.history);
    // The plain-text Table I rendering doubles as a copy-pastable
    // appendix (same data as the table above, gate-for-gate).
    out.push_str("<h2>Appendix: Table I (text)</h2>\n<pre>");
    out.push_str(&escape(&format_table1(&run_table1())));
    out.push_str("</pre>\n</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CellCache;
    use crate::runner::run_panel_with;
    use crate::scale::Scale;
    use crate::sweep::{ErrorTarget, OpKind, PanelSpec};

    fn tiny_spec() -> PanelSpec {
        PanelSpec {
            id: "dashload",
            title: "tiny".into(),
            op: OpKind::Add,
            n: 3,
            m: 4,
            order_x: 1,
            order_y: 1,
            error_target: ErrorTarget::TwoQubit,
            rates: vec![0.0, 0.02],
            depths: vec![qfab_core::AqftDepth::Limited(2), qfab_core::AqftDepth::Full],
            reference_rate: 0.02,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qfab_dash_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn populate(dir: &std::path::Path) {
        let cache = CellCache::open(dir, true).unwrap();
        run_panel_with(
            &tiny_spec(),
            Scale {
                instances: 2,
                shots: 16,
            },
            7,
            Some(&cache),
            |_| {},
        );
        cache.close().unwrap();
    }

    /// HTML-aware tag balance: void elements self-close, everything
    /// else must nest LIFO.
    pub(crate) fn assert_tag_balanced(html: &str) {
        let mut stack: Vec<String> = Vec::new();
        let mut rest = html;
        while let Some(open) = rest.find('<') {
            let Some(close) = rest[open..].find('>') else {
                panic!("unterminated tag");
            };
            let tag = &rest[open + 1..open + close];
            rest = &rest[open + close + 1..];
            if let Some(name) = tag.strip_prefix('/') {
                let top = stack.pop().unwrap_or_else(|| panic!("stray </{name}>"));
                assert_eq!(top, name, "mismatched closing tag");
            } else if !tag.ends_with('/') && !tag.starts_with('!') && !tag.starts_with('?') {
                let name: String = tag.chars().take_while(|c| !c.is_whitespace()).collect();
                stack.push(name);
            }
        }
        assert!(stack.is_empty(), "unclosed tags: {stack:?}");
    }

    #[test]
    fn renders_byte_identical_well_formed_html() {
        let dir = tmp("identical");
        populate(&dir);
        let a = render_dir(&dir).unwrap();
        let b = render_dir(&dir).unwrap();
        assert_eq!(a, b, "same store must render to identical bytes");
        assert_tag_balanced(&a);
        assert!(a.starts_with("<!DOCTYPE html>"));
        assert!(a.ends_with("</html>\n"));
        assert!(a.contains("<svg "), "panels render as inline SVG");
        assert!(a.contains("Table I"));
        assert!(a.contains("Barenco"));
        assert!(!a.contains(dir.to_str().unwrap()), "no absolute paths");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attribution_section_appears_only_with_a_shots_ledger() {
        // Ledger off: the page carries no attribution section at all.
        let plain = tmp("attrib_off");
        populate(&plain);
        let off = render_dir(&plain).unwrap();
        assert!(!off.contains("Error attribution"));

        // Ledger on: the budget strip and channel/class bars render,
        // deterministically.
        let dir = tmp("attrib_on");
        let cache = CellCache::open(&dir, true).unwrap();
        crate::runner::run_panel_opts(
            &tiny_spec(),
            Scale {
                instances: 2,
                shots: 64,
            },
            7,
            Some(&cache),
            true,
            |_| {},
        );
        cache.close().unwrap();
        let a = render_dir(&dir).unwrap();
        let b = render_dir(&dir).unwrap();
        assert_eq!(a, b, "attribution must render to identical bytes");
        assert_tag_balanced(&a);
        assert!(a.contains("Error attribution"));
        assert!(a.contains("failure budget by gate position"));
        assert!(a.contains("class=\"bar\""));
        let _ = std::fs::remove_dir_all(&plain);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_still_renders_a_complete_page() {
        let dir = tmp("empty");
        let html = render_dir(&dir).unwrap();
        assert_tag_balanced(&html);
        assert!(html.contains("no decodable cell records"));
        assert!(html.contains("Table I"), "gate counts need no store");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifests_and_history_are_summarized_when_present() {
        let dir = tmp("extras");
        populate(&dir);
        let manifest = qfab_telemetry::Manifest::new("dashload")
            .field("seed", 7u64)
            .field("instances", 2u64)
            .field("shots", 16u64)
            .field("elapsed_secs", 0.25)
            .field(
                "cache",
                Json::Obj(vec![
                    ("hits".into(), Json::U64(3)),
                    ("misses".into(), Json::U64(5)),
                    ("rejected".into(), Json::U64(0)),
                ]),
            );
        manifest.write_to_dir(&dir).unwrap();
        let summary = crate::rundata::RunSummary::from_run(&load_run(&dir).unwrap());
        ledger::append(&dir, &summary, Some("v-test")).unwrap();
        let html = render_dir(&dir).unwrap();
        assert_tag_balanced(&html);
        assert!(html.contains("Run manifests"));
        assert!(html.contains("dashload"));
        assert!(html.contains("Run history"));
        assert!(html.contains("v-test"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_inputs_are_reported_not_fatal() {
        let dir = tmp("unreadable");
        std::fs::write(dir.join("broken.manifest.json"), "{not json").unwrap();
        std::fs::write(dir.join("broken.trace.json"), "{}").unwrap();
        let input = collect(&dir).unwrap();
        assert_eq!(
            input.unreadable,
            vec!["broken.manifest.json", "broken.trace.json"]
        );
        let html = render(&input);
        assert_tag_balanced(&html);
        assert!(html.contains("unreadable inputs skipped"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn optimal_strip_prefers_shallower_on_ties() {
        let dir = tmp("strip");
        populate(&dir);
        let run = load_run(&dir).unwrap();
        let strip = optimal_strip(&run.panels[0]);
        // Noiseless row: both depths succeed fully; d=2 must win.
        assert_eq!(strip[0].1, "2");
        assert_eq!(strip[0].2, 100.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pct_labels_trim_trailing_zeros() {
        assert_eq!(fmt_pct(0.0), "0");
        assert_eq!(fmt_pct(0.2), "0.2");
        assert_eq!(fmt_pct(1.0), "1");
        assert_eq!(fmt_pct(1.4), "1.4");
        assert_eq!(fmt_pct(0.07), "0.07");
    }
}
