//! Panel execution and the resumable sweep engine.
//!
//! One panel = one ensemble of instances × a grid of (error rate ×
//! AQFT depth) cells. The expensive artifact — the noiseless
//! checkpointed simulation of an instance at a given depth — is built
//! once per (instance, depth) and shared across every error rate, and
//! instances run in parallel under rayon (a no-op on one core,
//! deterministic on any number of cores by stream-seeded RNGs).
//!
//! With a [`CellCache`] attached ([`run_panel_with`]), the sweep is
//! *resumable*: before computing an instance it consults the store, and
//! after computing one it durably appends every cell. Because outcomes
//! are exact integers keyed by the full experiment identity, a resumed
//! panel is byte-identical to an uninterrupted one — the cache can only
//! save time, never change results.

use crate::cache::{CellCache, CellRecord};
use crate::scale::Scale;
use crate::shots::ShotsRecord;
use crate::sweep::{ErrorTarget, PanelSpec};
use crate::workload::{ensemble_for, Ensemble};
use qfab_core::{
    metric::evaluate_instance, pipeline::PreparedInstance, AqftDepth, EnsembleStats,
    InstanceOutcome, RunConfig,
};
use qfab_math::rng::Xoshiro256StarStar;
use qfab_noise::NoiseModel;
use qfab_telemetry as telemetry;
use qfab_telemetry::trace;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One plotted point: a (rate, depth) cell's aggregate statistics.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Gate error rate (fraction).
    pub rate: f64,
    /// AQFT depth.
    pub depth: AqftDepth,
    /// Aggregated success statistics.
    pub stats: EnsembleStats,
    /// Compute seconds spent on this cell **summed across instances** —
    /// CPU-time-like, can exceed the panel's wall clock under rayon.
    /// Cells served from the store contribute their originally recorded
    /// compute time.
    pub cpu_secs: f64,
    /// Compute seconds of the *slowest single instance* at this cell —
    /// the cell's critical-path (wall-clock-like) cost.
    pub wall_secs: f64,
}

/// Cache traffic of one panel run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cells served from the store.
    pub hits: u64,
    /// Cells computed (and appended) this run.
    pub misses: u64,
    /// Records rejected by salt/digest validation.
    pub rejected: u64,
    /// Instance grids whose store append failed (results kept in memory
    /// but lost to future resumes — lossy persistence).
    pub append_failed: u64,
}

impl CacheStats {
    /// Total cells the panel needed.
    pub fn cells(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A progress snapshot handed to the per-instance callback.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Progress {
    /// Instances completed so far.
    pub done: usize,
    /// Instances the panel needs in total.
    pub total: usize,
    /// Cache traffic so far — `Some` only when a store is attached.
    pub cache: Option<CacheStats>,
    /// Index of the instance that just completed (the callback's
    /// trigger), when known. Instances run in parallel, so indices do
    /// not arrive in order.
    pub last_instance: Option<usize>,
}

/// A completed panel.
#[derive(Clone, Debug)]
pub struct PanelResult {
    /// The panel definition.
    pub spec: PanelSpec,
    /// The scale it ran at.
    pub scale: Scale,
    /// The root seed.
    pub seed: u64,
    /// Every (rate, depth) point, rates outer, depths inner.
    pub points: Vec<PointResult>,
    /// Wall-clock seconds the panel took.
    pub elapsed_secs: f64,
    /// Store traffic, when the panel ran against a [`CellCache`].
    pub cache: Option<CacheStats>,
}

impl PanelResult {
    /// The point for a given (rate index, depth index).
    pub fn point(&self, rate_idx: usize, depth_idx: usize) -> &PointResult {
        &self.points[rate_idx * self.spec.depths.len() + depth_idx]
    }
}

/// The per-cell noise model the sweep binds: a depolarizing channel on
/// the panel's error class, or the ideal model at rate 0. Shared with
/// the attribution cross-check so the exact density-engine rerun
/// evaluates precisely the model the Monte-Carlo cells sampled.
pub fn model_for(target: ErrorTarget, rate: f64) -> NoiseModel {
    if rate == 0.0 {
        return NoiseModel::ideal();
    }
    match target {
        ErrorTarget::OneQubit => NoiseModel::only_1q_depolarizing(rate),
        ErrorTarget::TwoQubit => NoiseModel::only_2q_depolarizing(rate),
    }
}

/// Runs a full panel at the given scale and seed, without a store.
///
/// `progress` is invoked after each completed instance with a
/// [`Progress`] snapshot — pass `|_| {}` to ignore.
pub fn run_panel(
    spec: &PanelSpec,
    scale: Scale,
    seed: u64,
    progress: impl Fn(Progress) + Sync,
) -> PanelResult {
    run_panel_with(spec, scale, seed, None, progress)
}

/// Runs a full panel, consulting and populating `cache` when given.
///
/// Per instance: if every cell of the instance's grid validates in the
/// store it is served from there (counted as hits); otherwise the whole
/// grid is recomputed and durably appended before the instance reports
/// progress — a killed run therefore restarts with whole-instance
/// granularity and recomputes only what never reached the store.
pub fn run_panel_with(
    spec: &PanelSpec,
    scale: Scale,
    seed: u64,
    cache: Option<&CellCache>,
    progress: impl Fn(Progress) + Sync,
) -> PanelResult {
    run_panel_opts(spec, scale, seed, cache, false, progress)
}

/// [`run_panel_with`] plus the shot-provenance ledger switch.
///
/// With `shots_ledger` on (and a store attached), every *computed*
/// instance also appends one `qfab.shots.v1` record per cell. Cells
/// served from the store skip ledger writes — their shots were never
/// resampled, so there is nothing truthful to record. The ledger is
/// pure observability: panel outcomes are byte-identical with it on or
/// off (the samplers log values they already produce).
pub fn run_panel_opts(
    spec: &PanelSpec,
    scale: Scale,
    seed: u64,
    cache: Option<&CellCache>,
    shots_ledger: bool,
    progress: impl Fn(Progress) + Sync,
) -> PanelResult {
    let start = std::time::Instant::now();
    telemetry::gauge("exp.threads").set(rayon::current_num_threads() as u64);
    let panel_trace = trace::span_args(
        "exp.panel",
        &[
            ("id", trace::ArgValue::Str(spec.id)),
            ("instances", trace::ArgValue::U64(scale.instances as u64)),
        ],
    );
    let ensemble = ensemble_for(spec, seed, scale.instances);
    let config = RunConfig {
        shots: scale.shots,
        shots_ledger,
        ..RunConfig::default()
    };
    let cells_per_instance = (spec.rates.len() * spec.depths.len()) as u64;

    let done = AtomicUsize::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let append_failed = AtomicU64::new(0);
    let stats_now = || CacheStats {
        hits: hits.load(Ordering::Relaxed),
        misses: misses.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        append_failed: append_failed.load(Ordering::Relaxed),
    };

    // outcomes[instance][rate][depth]
    let outcomes: Vec<Vec<Vec<CellRecord>>> = (0..scale.instances)
        .into_par_iter()
        .map(|i| {
            let cached = cache.map(|c| c.lookup_instance(spec, &config, seed, i));
            let result = match cached {
                Some(lookup) => {
                    rejected.fetch_add(lookup.rejected, Ordering::Relaxed);
                    match lookup.grid {
                        Some(grid) => {
                            hits.fetch_add(cells_per_instance, Ordering::Relaxed);
                            telemetry::counter("exp.cache.hits").add(cells_per_instance);
                            trace::instant_args(
                                "exp.cache.hit",
                                &[("instance", trace::ArgValue::U64(i as u64))],
                            );
                            grid
                        }
                        None => {
                            trace::instant_args(
                                "exp.cache.miss",
                                &[("instance", trace::ArgValue::U64(i as u64))],
                            );
                            let (grid, shots) = compute_instance(spec, &ensemble, i, &config, seed);
                            misses.fetch_add(cells_per_instance, Ordering::Relaxed);
                            telemetry::counter("exp.cache.misses").add(cells_per_instance);
                            if let Some(c) = cache {
                                if let Err(e) = c.store_instance(spec, &config, seed, i, &grid) {
                                    // The store is an accelerator, never a
                                    // correctness dependency: log and go on —
                                    // but count it so lossy persistence shows
                                    // up in the manifest and progress line.
                                    append_failed.fetch_add(1, Ordering::Relaxed);
                                    telemetry::counter("exp.store.append_failed").incr();
                                    trace::instant_args(
                                        "exp.store.append_failed",
                                        &[("instance", trace::ArgValue::U64(i as u64))],
                                    );
                                    eprintln!("warning: store append failed: {e}");
                                } else if let Err(e) =
                                    c.store_instance_shots(spec, &config, seed, i, &shots)
                                {
                                    // Ledger records ride along with the same
                                    // lossy-persistence contract as outcomes.
                                    append_failed.fetch_add(1, Ordering::Relaxed);
                                    telemetry::counter("exp.store.append_failed").incr();
                                    eprintln!("warning: shots-ledger append failed: {e}");
                                }
                            }
                            grid
                        }
                    }
                }
                None => compute_instance(spec, &ensemble, i, &config, seed).0,
            };
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            progress(Progress {
                done: d,
                total: scale.instances,
                cache: cache.map(|_| stats_now()),
                last_instance: Some(i),
            });
            result
        })
        .collect();

    let mut points = Vec::with_capacity(spec.rates.len() * spec.depths.len());
    for (ri, &rate) in spec.rates.iter().enumerate() {
        for (di, &depth) in spec.depths.iter().enumerate() {
            let cell: Vec<InstanceOutcome> = outcomes
                .iter()
                .map(|per_inst| per_inst[ri][di].outcome)
                .collect();
            let cpu_secs: f64 = outcomes
                .iter()
                .map(|per_inst| per_inst[ri][di].wall_secs)
                .sum();
            let wall_secs = outcomes
                .iter()
                .map(|per_inst| per_inst[ri][di].wall_secs)
                .fold(0.0, f64::max);
            points.push(PointResult {
                rate,
                depth,
                stats: EnsembleStats::from_outcomes(&cell),
                cpu_secs,
                wall_secs,
            });
        }
    }
    drop(panel_trace);
    PanelResult {
        spec: spec.clone(),
        scale,
        seed,
        points,
        elapsed_secs: start.elapsed().as_secs_f64(),
        cache: cache.map(|_| stats_now()),
    }
}

/// Populates `cache` with every cell of this worker's instance shard
/// (`index % shards == shard`), reusing anything already stored.
///
/// This is the compute half of `repro worker`: it produces no panel —
/// aggregation happens later, when the service re-runs the panel
/// against the merged (fully cached) store. Because the full ensemble
/// is constructed exactly as a single-process run would construct it,
/// every cell a shard appends carries the identical key and payload
/// bytes, so the union of all shard stores is indistinguishable from a
/// store grown by one process.
///
/// Returns the shard's cache traffic. Panics if `shard >= shards`.
pub fn run_panel_shard(
    spec: &PanelSpec,
    scale: Scale,
    seed: u64,
    cache: &CellCache,
    shard: usize,
    shards: usize,
    progress: impl Fn(Progress) + Sync,
) -> CacheStats {
    run_panel_shard_opts(spec, scale, seed, cache, shard, shards, false, progress)
}

/// [`run_panel_shard`] plus the shot-provenance ledger switch — the
/// worker-side counterpart of [`run_panel_opts`], so sharded sweeps
/// record identical `qfab.shots.v1` records to a single-process run
/// (same cell RNG streams, same logged draws).
#[allow(clippy::too_many_arguments)]
pub fn run_panel_shard_opts(
    spec: &PanelSpec,
    scale: Scale,
    seed: u64,
    cache: &CellCache,
    shard: usize,
    shards: usize,
    shots_ledger: bool,
    progress: impl Fn(Progress) + Sync,
) -> CacheStats {
    assert!(shard < shards, "shard {shard} out of range 0..{shards}");
    let panel_trace = trace::span_args(
        "exp.panel_shard",
        &[
            ("id", trace::ArgValue::Str(spec.id)),
            ("shard", trace::ArgValue::U64(shard as u64)),
        ],
    );
    let ensemble = ensemble_for(spec, seed, scale.instances);
    let config = RunConfig {
        shots: scale.shots,
        shots_ledger,
        ..RunConfig::default()
    };
    let cells_per_instance = (spec.rates.len() * spec.depths.len()) as u64;
    let indices: Vec<usize> = (0..scale.instances)
        .filter(|i| i % shards == shard)
        .collect();
    let total = indices.len();

    let done = AtomicUsize::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let append_failed = AtomicU64::new(0);
    let stats_now = || CacheStats {
        hits: hits.load(Ordering::Relaxed),
        misses: misses.load(Ordering::Relaxed),
        rejected: rejected.load(Ordering::Relaxed),
        append_failed: append_failed.load(Ordering::Relaxed),
    };

    indices.into_par_iter().for_each(|i| {
        let lookup = cache.lookup_instance(spec, &config, seed, i);
        rejected.fetch_add(lookup.rejected, Ordering::Relaxed);
        if lookup.grid.is_some() {
            hits.fetch_add(cells_per_instance, Ordering::Relaxed);
            telemetry::counter("exp.cache.hits").add(cells_per_instance);
        } else {
            let (grid, shots) = compute_instance(spec, &ensemble, i, &config, seed);
            misses.fetch_add(cells_per_instance, Ordering::Relaxed);
            telemetry::counter("exp.cache.misses").add(cells_per_instance);
            if let Err(e) = cache.store_instance(spec, &config, seed, i, &grid) {
                append_failed.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("exp.store.append_failed").incr();
                eprintln!("warning: store append failed: {e}");
            } else if let Err(e) = cache.store_instance_shots(spec, &config, seed, i, &shots) {
                append_failed.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("exp.store.append_failed").incr();
                eprintln!("warning: shots-ledger append failed: {e}");
            }
        }
        let d = done.fetch_add(1, Ordering::Relaxed) + 1;
        progress(Progress {
            done: d,
            total,
            cache: Some(stats_now()),
            last_instance: Some(i),
        });
    });
    drop(panel_trace);
    stats_now()
}

/// Computes one instance's full grid, with telemetry. The second grid
/// holds the cells' shot-provenance records and is empty unless
/// `config.shots_ledger` is set.
fn compute_instance(
    spec: &PanelSpec,
    ensemble: &Ensemble,
    index: usize,
    config: &RunConfig,
    seed: u64,
) -> (Vec<Vec<CellRecord>>, Vec<Vec<ShotsRecord>>) {
    let inst_span = telemetry::histogram("exp.instance_ns").span();
    let inst_trace = trace::span_args(
        "exp.instance",
        &[("instance", trace::ArgValue::U64(index as u64))],
    );
    let result = run_instance_grid(spec, ensemble, index, config, seed);
    drop(inst_trace);
    drop(inst_span);
    telemetry::counter("exp.instances").incr();
    result
}

/// Builds the instance's circuit at a given AQFT depth.
type CircuitBuilder = Box<dyn Fn(AqftDepth) -> qfab_circuit::Circuit>;

/// Runs every (rate, depth) cell for one instance, sharing the
/// noiseless preparation across rates.
fn run_instance_grid(
    spec: &PanelSpec,
    ensemble: &Ensemble,
    index: usize,
    config: &RunConfig,
    seed: u64,
) -> (Vec<Vec<CellRecord>>, Vec<Vec<ShotsRecord>>) {
    let (circuit_for, initial, expected): (CircuitBuilder, qfab_sim::StateVector, Vec<usize>) =
        match ensemble {
            Ensemble::Add(v) => {
                let inst = v[index].clone();
                let initial = inst.initial_state();
                let expected = inst.expected_outputs();
                (Box::new(move |d| inst.circuit(d)), initial, expected)
            }
            Ensemble::Mul(v) => {
                let inst = v[index].clone();
                let initial = inst.initial_state();
                let expected = inst.expected_outputs();
                (Box::new(move |d| inst.circuit(d)), initial, expected)
            }
        };

    // rate-major output to match the aggregation layout.
    let mut out = vec![
        vec![
            CellRecord {
                outcome: InstanceOutcome {
                    success: false,
                    min_gap: 0
                },
                wall_secs: 0.0
            };
            spec.depths.len()
        ];
        spec.rates.len()
    ];
    let mut shots_out = if config.shots_ledger {
        vec![vec![ShotsRecord::default(); spec.depths.len()]; spec.rates.len()]
    } else {
        Vec::new()
    };
    for (di, &depth) in spec.depths.iter().enumerate() {
        let prep = PreparedInstance::new(&circuit_for(depth), initial.clone(), config);
        for (ri, &rate) in spec.rates.iter().enumerate() {
            let cell_start = std::time::Instant::now();
            // AQFT depth as a signed arg: −1 encodes Full.
            let depth_arg = match depth {
                AqftDepth::Full => -1i64,
                AqftDepth::Limited(d) => d as i64,
            };
            let _cell_trace = trace::span_args(
                "exp.cell",
                &[
                    ("rate", trace::ArgValue::F64(rate)),
                    ("depth", trace::ArgValue::I64(depth_arg)),
                    ("instance", trace::ArgValue::U64(index as u64)),
                ],
            );
            let model = model_for(spec.error_target, rate);
            let run = prep.noisy(&model);
            // Stream id: unique per (instance, depth, rate) cell.
            let stream = ((index as u64) << 24) | ((di as u64) << 16) | (ri as u64 + 1);
            let mut rng = Xoshiro256StarStar::for_stream(seed ^ 0xA5A5_5A5A, stream);
            // The logged and unlogged samplers consume the identical RNG
            // stream and tabulate identical counts — the ledger can only
            // add a record, never change an outcome.
            let counts = if config.shots_ledger {
                let (counts, log) = run.sample_counts_logged(config.shots, &mut rng);
                shots_out[ri][di] = ShotsRecord::from_log(
                    &log,
                    run.plan(),
                    &expected,
                    prep.transpiled_gates() as u64,
                );
                counts
            } else {
                run.sample_counts(config.shots, &mut rng)
            };
            let wall = cell_start.elapsed();
            telemetry::histogram("exp.cell.wall_ns").record(wall.as_nanos() as u64);
            out[ri][di] = CellRecord {
                outcome: evaluate_instance(&counts, &expected),
                wall_secs: wall.as_secs_f64(),
            };
        }
    }
    (out, shots_out)
}

/// Formats the live progress line the `repro` binary prints after each
/// completed instance: done/total, percent, elapsed, a linear-rate ETA
/// (blank until the first instance lands), and — when a store is
/// active — cache hit/miss/rejected counts, so resumed sweeps visibly
/// distinguish replayed from recomputed cells.
///
/// With a store attached the ETA is estimated from **cache-miss
/// completions only**: replayed instances finish in ~zero time, so a
/// naive all-instances rate would promise a resumed sweep finishes far
/// sooner than the remaining (uncached) compute allows. Until the first
/// miss lands there is no compute rate to extrapolate, and the line
/// shows `eta ~--:--`.
pub fn progress_line(progress: Progress, elapsed_secs: f64) -> String {
    let Progress {
        done, total, cache, ..
    } = progress;
    let pct = if total == 0 {
        100.0
    } else {
        done as f64 / total as f64 * 100.0
    };
    let mut s = format!("instance {done}/{total} | {pct:3.0}% | {elapsed_secs:.1}s elapsed");
    if done > 0 && done < total {
        match eta_secs(&progress, elapsed_secs) {
            Some(eta) => s.push_str(&format!(" | eta ~{eta:.1}s")),
            None => s.push_str(" | eta ~--:--"),
        }
    }
    if let Some(c) = cache {
        s.push_str(&format!(
            " | cache {} hit / {} miss / {} rejected",
            c.hits, c.misses, c.rejected
        ));
        if c.append_failed > 0 {
            s.push_str(&format!(" / {} append-failed", c.append_failed));
        }
    }
    s
}

/// The linear-rate ETA behind [`progress_line`], also published in the
/// `--watch` heartbeat.
///
/// `None` when there is nothing to extrapolate: no instance has
/// finished yet, the sweep is already done, or — with a store attached —
/// every completed instance so far was a cache replay (replays finish
/// in ~zero time, so their rate says nothing about the remaining
/// compute). With a store, the rate comes from cache-miss completions
/// only, recovered from the cell-level hit/miss ratio because instances
/// are whole-grid hit or miss.
pub fn eta_secs(progress: &Progress, elapsed_secs: f64) -> Option<f64> {
    let Progress {
        done, total, cache, ..
    } = *progress;
    if done == 0 || done >= total {
        return None;
    }
    match cache {
        None => Some(elapsed_secs / done as f64 * (total - done) as f64),
        Some(c) => {
            let miss_instances = if c.cells() == 0 {
                0.0
            } else {
                done as f64 * c.misses as f64 / c.cells() as f64
            };
            if miss_instances > 0.0 {
                Some(elapsed_secs / miss_instances * (total - done) as f64)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{fig1_panels, OpKind};

    fn tiny_spec() -> PanelSpec {
        // A shrunken QFA panel for fast tests.
        PanelSpec {
            id: "test",
            title: "tiny".into(),
            op: OpKind::Add,
            n: 3,
            m: 4,
            order_x: 1,
            order_y: 2,
            error_target: ErrorTarget::TwoQubit,
            rates: vec![0.0, 0.01, 0.2],
            depths: vec![AqftDepth::Limited(2), AqftDepth::Full],
            reference_rate: 0.01,
        }
    }

    #[test]
    fn tiny_panel_runs_and_aggregates() {
        let scale = Scale {
            instances: 4,
            shots: 96,
        };
        let result = run_panel(&tiny_spec(), scale, 5, |_| {});
        assert_eq!(result.points.len(), 6);
        for p in &result.points {
            assert_eq!(p.stats.instances, 4);
        }
        // Noise-free origin at full depth: everything succeeds.
        let origin_full = result.point(0, 1);
        assert_eq!(origin_full.stats.success_rate_pct, 100.0);
        // Extreme noise: success collapses below the noise-free level.
        let heavy_full = result.point(2, 1);
        assert!(heavy_full.stats.success_rate_pct < origin_full.stats.success_rate_pct + 1e-9);
    }

    #[test]
    fn panel_is_deterministic() {
        let scale = Scale {
            instances: 3,
            shots: 64,
        };
        let a = run_panel(&tiny_spec(), scale, 9, |_| {});
        let b = run_panel(&tiny_spec(), scale, 9, |_| {});
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn point_indexing_layout() {
        let scale = Scale {
            instances: 2,
            shots: 32,
        };
        let spec = tiny_spec();
        let result = run_panel(&spec, scale, 1, |_| {});
        for (ri, &rate) in spec.rates.iter().enumerate() {
            for (di, &depth) in spec.depths.iter().enumerate() {
                let p = result.point(ri, di);
                assert_eq!(p.rate, rate);
                assert_eq!(p.depth, depth);
            }
        }
    }

    #[test]
    fn progress_callback_fires_per_instance() {
        let scale = Scale {
            instances: 3,
            shots: 16,
        };
        let hits = std::sync::atomic::AtomicUsize::new(0);
        let _ = run_panel(&tiny_spec(), scale, 2, |p| {
            assert_eq!(p.total, 3);
            assert!(p.done >= 1 && p.done <= 3);
            assert!(p.cache.is_none(), "no store attached");
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 3);
    }

    #[test]
    fn points_carry_cpu_and_wall_timing() {
        let scale = Scale {
            instances: 2,
            shots: 32,
        };
        let result = run_panel(&tiny_spec(), scale, 4, |_| {});
        for p in &result.points {
            assert!(
                p.cpu_secs > 0.0,
                "cell {}/{:?} has no cpu time",
                p.rate,
                p.depth
            );
            // The summed-CPU figure can never undercut the slowest
            // single instance — the two measures are now distinct.
            assert!(p.wall_secs > 0.0 && p.wall_secs <= p.cpu_secs);
        }
        assert!(result.cache.is_none(), "no store attached");
    }

    #[test]
    fn batched_and_sequential_panels_are_identical() {
        // `batch_shots` is a pure performance knob: every cell outcome
        // — success flags and exact count gaps — must be identical
        // whether trajectories replay through 8-lane SoA batches or
        // one at a time.
        let spec = tiny_spec();
        let ensemble = ensemble_for(&spec, 11, 2);
        let run = |batch_shots: usize| -> Vec<Vec<Vec<InstanceOutcome>>> {
            let config = RunConfig {
                shots: 64,
                batch_shots,
                ..RunConfig::default()
            };
            (0..2)
                .map(|i| {
                    run_instance_grid(&spec, &ensemble, i, &config, 11)
                        .0
                        .into_iter()
                        .map(|row| row.into_iter().map(|c| c.outcome).collect())
                        .collect()
                })
                .collect()
        };
        assert_eq!(run(8), run(1), "outcomes must not depend on batching");
    }

    #[test]
    fn shots_ledger_never_perturbs_outcomes() {
        // The flag is pure observability: outcomes byte-identical with
        // the ledger on or off, on both replay paths — and the logged
        // records themselves are identical across batching widths.
        let spec = tiny_spec();
        let ensemble = ensemble_for(&spec, 13, 2);
        let run = |shots_ledger: bool, batch_shots: usize| {
            let config = RunConfig {
                shots: 64,
                batch_shots,
                shots_ledger,
                ..RunConfig::default()
            };
            run_instance_grid(&spec, &ensemble, 0, &config, 13)
        };
        let (plain, no_log) = run(false, 8);
        let (logged, log_batched) = run(true, 8);
        let (_, log_seq) = run(true, 1);
        assert!(no_log.is_empty(), "ledger off records nothing");
        assert_eq!(
            plain
                .iter()
                .flatten()
                .map(|c| c.outcome)
                .collect::<Vec<_>>(),
            logged
                .iter()
                .flatten()
                .map(|c| c.outcome)
                .collect::<Vec<_>>(),
            "ledger must not change outcomes"
        );
        assert_eq!(log_batched, log_seq, "records must not depend on batching");
        for (ri, row) in log_batched.iter().enumerate() {
            for cell in row {
                assert_eq!(cell.total_shots(), 64);
                if spec.rates[ri] == 0.0 {
                    assert!(cell.noisy.is_empty(), "rate 0 draws no noisy shots");
                }
            }
        }
        // The heavy-noise row actually logged noisy shots.
        assert!(log_batched
            .last()
            .unwrap()
            .iter()
            .any(|c| !c.noisy.is_empty()));
    }

    #[test]
    fn cached_rerun_hits_every_cell_and_matches() {
        let dir =
            std::env::temp_dir().join(format!("qfab_runner_cache_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scale = Scale {
            instances: 3,
            shots: 64,
        };
        let spec = tiny_spec();
        let cache = crate::cache::CellCache::open(&dir, true).unwrap();
        let cold = run_panel_with(&spec, scale, 11, Some(&cache), |_| {});
        let cells = (spec.rates.len() * spec.depths.len() * scale.instances) as u64;
        assert_eq!(
            cold.cache,
            Some(CacheStats {
                hits: 0,
                misses: cells,
                rejected: 0,
                append_failed: 0
            })
        );
        let warm = run_panel_with(&spec, scale, 11, Some(&cache), |_| {});
        assert_eq!(
            warm.cache,
            Some(CacheStats {
                hits: cells,
                misses: 0,
                rejected: 0,
                append_failed: 0
            })
        );
        for (a, b) in cold.points.iter().zip(&warm.points) {
            assert_eq!(a.stats, b.stats);
            // Cached cells report their originally recorded compute cost.
            assert_eq!(a.cpu_secs, b.cpu_secs);
        }
        // A plain uncached run agrees too.
        let plain = run_panel(&spec, scale, 11, |_| {});
        for (a, b) in cold.points.iter().zip(&plain.points) {
            assert_eq!(a.stats, b.stats);
        }
        cache.close().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_line_formats_and_estimates() {
        let p = |done, total| Progress {
            done,
            total,
            cache: None,
            last_instance: None,
        };
        assert_eq!(
            progress_line(p(0, 4), 0.0),
            "instance 0/4 |   0% | 0.0s elapsed"
        );
        let mid = progress_line(p(1, 4), 2.0);
        assert!(
            mid.starts_with("instance 1/4 |  25% | 2.0s elapsed | eta ~6.0s"),
            "{mid}"
        );
        // Finished: no ETA tail.
        assert_eq!(
            progress_line(p(4, 4), 8.0),
            "instance 4/4 | 100% | 8.0s elapsed"
        );
    }

    #[test]
    fn eta_extrapolates_only_with_evidence() {
        let plain = |done, total| Progress {
            done,
            total,
            cache: None,
            last_instance: None,
        };
        assert_eq!(eta_secs(&plain(0, 4), 5.0), None, "nothing finished yet");
        assert_eq!(eta_secs(&plain(4, 4), 5.0), None, "already done");
        assert_eq!(eta_secs(&plain(1, 4), 2.0), Some(6.0));
        // All-replay resumes have no compute rate to extrapolate.
        let replayed = Progress {
            done: 2,
            total: 4,
            cache: Some(CacheStats {
                hits: 12,
                misses: 0,
                rejected: 0,
                append_failed: 0,
            }),
            last_instance: None,
        };
        assert_eq!(eta_secs(&replayed, 0.2), None);
    }

    #[test]
    fn progress_line_eta_comes_from_cache_misses_only() {
        // A resumed sweep: 3/6 done, all three served from the store in
        // ~0.2s. The old all-instances rate would claim ~0.2s remain;
        // with no computed instance yet there is nothing to extrapolate.
        let all_hits = Progress {
            done: 3,
            total: 6,
            cache: Some(CacheStats {
                hits: 18,
                misses: 0,
                rejected: 0,
                append_failed: 0,
            }),
            last_instance: None,
        };
        assert_eq!(
            progress_line(all_hits, 0.2),
            "instance 3/6 |  50% | 0.2s elapsed | eta ~--:-- | \
             cache 18 hit / 0 miss / 0 rejected"
        );

        // One of four done instances was a real miss (6 cells per
        // instance): the rate comes from that one computed instance, so
        // 10s elapsed -> 10s per computed instance -> eta 4 * 10s.
        let mixed = Progress {
            done: 4,
            total: 8,
            cache: Some(CacheStats {
                hits: 18,
                misses: 6,
                rejected: 0,
                append_failed: 0,
            }),
            last_instance: None,
        };
        assert_eq!(
            progress_line(mixed, 10.0),
            "instance 4/8 |  50% | 10.0s elapsed | eta ~40.0s | \
             cache 18 hit / 6 miss / 0 rejected"
        );
    }

    #[test]
    fn progress_line_shows_cache_traffic_when_store_active() {
        let with_cache = Progress {
            done: 4,
            total: 4,
            cache: Some(CacheStats {
                hits: 18,
                misses: 6,
                rejected: 1,
                append_failed: 0,
            }),
            last_instance: None,
        };
        assert_eq!(
            progress_line(with_cache, 8.0),
            "instance 4/4 | 100% | 8.0s elapsed | cache 18 hit / 6 miss / 1 rejected"
        );
        let lossy = Progress {
            cache: Some(CacheStats {
                append_failed: 2,
                ..with_cache.cache.unwrap()
            }),
            ..with_cache
        };
        assert!(
            progress_line(lossy, 8.0).ends_with("/ 2 append-failed"),
            "{}",
            progress_line(lossy, 8.0)
        );
    }

    #[test]
    fn real_fig1_spec_is_runnable_at_tiny_scale() {
        // Smoke-test the actual paper geometry with minimal work.
        let mut spec = fig1_panels().swap_remove(0);
        spec.rates = vec![0.0];
        spec.depths = vec![AqftDepth::Full];
        let result = run_panel(
            &spec,
            Scale {
                instances: 1,
                shots: 32,
            },
            3,
            |_| {},
        );
        assert_eq!(result.points.len(), 1);
        assert_eq!(result.points[0].stats.success_rate_pct, 100.0);
    }
}
