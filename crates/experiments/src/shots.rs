//! The shot-provenance ledger: store-backed `qfab.shots.v1` records.
//!
//! A sweep run with `--shots-ledger` appends, next to every cell's
//! outcome record, one *shots record* describing where that cell's
//! error budget went: for each sampled noisy shot, whether it failed
//! and which noise sites fired (gate index, channel, Pauli label), plus
//! the clean-shot outcome tally (clean shots can still fail — that is
//! the AQFT approximation error the paper trades against noise).
//!
//! ## Why the ledger cannot perturb results
//!
//! The record is built from a [`ShotLog`], which the pipeline fills
//! with values the sampler produces anyway (the trajectory each noisy
//! shot replays, and the outcome that entered the count table). Fired
//! sites are *derived after the fact* from each trajectory's insertion
//! list by matching `after_gate` against the plan's site metadata — the
//! samplers are untouched, so panel outputs are byte-identical with the
//! ledger on or off.
//!
//! ## Keying
//!
//! Shots records share the cell identity fields (`op`, `n`, `m`, …,
//! `ri`, `di`) but carry their own salt, [`SHOTS_SALT`] — their digests
//! can therefore never collide with outcome records, and every reader
//! of the store distinguishes the two families by salt alone.
//! Detail is bounded: at most [`qfab_core::MAX_LOGGED_SHOTS`] noisy
//! shots per cell carry their insertion multiset; the rest contribute
//! only to the `truncated` / `truncated_fail` tallies, so aggregate
//! failure rates stay exact while record size stays bounded.

use crate::cache::cell_identity_with_salt;
use crate::rundata::PanelKey;
use crate::sweep::PanelSpec;
use qfab_circuit::Gate;
use qfab_core::{AqftDepth, RunConfig, ShotLog};
use qfab_noise::TrajectoryPlan;
use qfab_store::wal::scan;
use qfab_store::{blake2s256, Key};
use qfab_telemetry::Json;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The code-version salt of shot-provenance records. Distinct from
/// [`crate::cache::CODE_SALT`] so ledger records can never alias cell
/// outcome records; versioned independently because the provenance
/// format can evolve without retiring cached outcomes.
pub const SHOTS_SALT: &str = "qfab-shots-v1";

/// Schema identifier embedded in every shots record payload.
pub const SHOTS_SCHEMA: &str = "qfab.shots.v1";

/// One fired noise site within a shot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteFire {
    /// Transpiled-circuit gate index the channel is attached to.
    pub gate: u64,
    /// Channel index into [`ShotsRecord::channels`].
    pub channel: u64,
    /// Pauli label over the site's operand qubits, e.g. `"X"` (1q) or
    /// `"IZ"` / `"XY"` (2q, first operand first). Never all-`I`.
    pub pauli: String,
}

/// One logged noisy shot: did it fail, and which sites fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShotDetail {
    /// True when the tabulated outcome was not an accepted output.
    pub fail: bool,
    /// Fired sites, in circuit order.
    pub sites: Vec<SiteFire>,
}

/// A channel referenced by the record's sites.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelInfo {
    /// Channel family tag (`"pauli1q"` / `"pauli2q"`).
    pub tag: String,
    /// Probability that the channel fires at a site.
    pub error_prob: f64,
}

/// The per-cell shot-provenance record (`qfab.shots.v1`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShotsRecord {
    /// Channels the sites reference.
    pub channels: Vec<ChannelInfo>,
    /// Transpiled gate count of the cell's circuit (site indices are
    /// positions in this gate list).
    pub gates: u64,
    /// Error-free shots.
    pub clean: u64,
    /// Error-free shots whose outcome was still wrong (approximation /
    /// truncation error, plus readout error when modeled).
    pub clean_fail: u64,
    /// Detailed noisy shots, in draw order (bounded).
    pub noisy: Vec<ShotDetail>,
    /// Noisy shots beyond the detail cap.
    pub truncated: u64,
    /// Failures among the truncated shots.
    pub truncated_fail: u64,
}

impl ShotsRecord {
    /// Builds a record from a pipeline [`ShotLog`].
    ///
    /// `expected` is the cell's sorted accepted-output list;
    /// `plan` supplies the site → (channel, qubits) metadata the fired
    /// sites are derived from.
    pub fn from_log(log: &ShotLog, plan: &TrajectoryPlan, expected: &[usize], gates: u64) -> Self {
        debug_assert!(expected.windows(2).all(|w| w[0] < w[1]), "sorted expected");
        let fails = |outcome: usize| expected.binary_search(&outcome).is_err();
        let tally_fails = |tally: &BTreeMap<usize, u64>| {
            tally
                .iter()
                .filter(|(&o, _)| fails(o))
                .map(|(_, &c)| c)
                .sum::<u64>()
        };
        let channels = (0..plan.num_channels())
            .map(|i| {
                let ch = plan.channel(i);
                ChannelInfo {
                    tag: format!("pauli{}q", ch.arity()),
                    error_prob: ch.error_prob(),
                }
            })
            .collect();
        // Site metadata by gate index, for post-hoc derivation.
        let sites: BTreeMap<usize, (usize, Vec<u32>)> = plan
            .sites()
            .map(|s| (s.gate_index, (s.channel, s.qubits.to_vec())))
            .collect();
        let noisy = log
            .noisy
            .iter()
            .map(|shot| {
                let mut fired: Vec<SiteFire> = Vec::new();
                // Insertions arrive sorted by `after_gate`; one run of
                // equal indices = one fired site.
                let ins = &shot.insertions;
                let mut i = 0;
                while i < ins.len() {
                    let gate_index = ins[i].after_gate;
                    let mut j = i;
                    while j < ins.len() && ins[j].after_gate == gate_index {
                        j += 1;
                    }
                    let (channel, qubits) = sites
                        .get(&gate_index)
                        .expect("insertion lands on a plan site");
                    let pauli: String = qubits
                        .iter()
                        .map(|&q| {
                            ins[i..j]
                                .iter()
                                .find_map(|x| match x.gate {
                                    Gate::X(p) if p == q => Some('X'),
                                    Gate::Y(p) if p == q => Some('Y'),
                                    Gate::Z(p) if p == q => Some('Z'),
                                    _ => None,
                                })
                                .unwrap_or('I')
                        })
                        .collect();
                    fired.push(SiteFire {
                        gate: gate_index as u64,
                        channel: *channel as u64,
                        pauli,
                    });
                    i = j;
                }
                ShotDetail {
                    fail: fails(shot.outcome),
                    sites: fired,
                }
            })
            .collect();
        Self {
            channels,
            gates,
            clean: log.clean_shots(),
            clean_fail: tally_fails(&log.clean),
            noisy,
            truncated: log.truncated_shots(),
            truncated_fail: tally_fails(&log.truncated),
        }
    }

    /// Total shots the record accounts for.
    pub fn total_shots(&self) -> u64 {
        self.clean + self.noisy.len() as u64 + self.truncated
    }

    /// Total failing shots.
    pub fn total_fails(&self) -> u64 {
        self.clean_fail + self.noisy.iter().filter(|s| s.fail).count() as u64 + self.truncated_fail
    }

    /// Encodes the record body (everything but the identity).
    fn body_json(&self) -> Vec<(String, Json)> {
        let channels = self
            .channels
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("tag".into(), Json::Str(c.tag.clone())),
                    ("p".into(), Json::F64(c.error_prob)),
                ])
            })
            .collect();
        // Compact array form: one shot = [fail, [[gate, channel,
        // pauli], …]] — the dominant payload, kept terse.
        let noisy = self
            .noisy
            .iter()
            .map(|s| {
                let sites = s
                    .sites
                    .iter()
                    .map(|f| {
                        Json::Arr(vec![
                            Json::U64(f.gate),
                            Json::U64(f.channel),
                            Json::Str(f.pauli.clone()),
                        ])
                    })
                    .collect();
                Json::Arr(vec![Json::U64(s.fail as u64), Json::Arr(sites)])
            })
            .collect();
        vec![
            ("schema".into(), Json::Str(SHOTS_SCHEMA.into())),
            ("channels".into(), Json::Arr(channels)),
            ("gates".into(), Json::U64(self.gates)),
            ("clean".into(), Json::U64(self.clean)),
            ("clean_fail".into(), Json::U64(self.clean_fail)),
            ("noisy".into(), Json::Arr(noisy)),
            ("truncated".into(), Json::U64(self.truncated)),
            ("truncated_fail".into(), Json::U64(self.truncated_fail)),
        ]
    }

    fn from_body(value: &Json) -> Option<Self> {
        if value.get("schema")?.as_str()? != SHOTS_SCHEMA {
            return None;
        }
        let Some(Json::Arr(channels)) = value.get("channels") else {
            return None;
        };
        let channels = channels
            .iter()
            .map(|c| {
                Some(ChannelInfo {
                    tag: c.get("tag")?.as_str()?.to_string(),
                    error_prob: c.get("p")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let Some(Json::Arr(noisy)) = value.get("noisy") else {
            return None;
        };
        let noisy = noisy
            .iter()
            .map(|s| {
                let Json::Arr(pair) = s else { return None };
                let [fail, Json::Arr(sites)] = pair.as_slice() else {
                    return None;
                };
                let sites = sites
                    .iter()
                    .map(|f| {
                        let Json::Arr(triple) = f else { return None };
                        let [gate, channel, pauli] = triple.as_slice() else {
                            return None;
                        };
                        Some(SiteFire {
                            gate: gate.as_u64()?,
                            channel: channel.as_u64()?,
                            pauli: pauli.as_str()?.to_string(),
                        })
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(ShotDetail {
                    fail: fail.as_u64()? != 0,
                    sites,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Self {
            channels,
            gates: value.get("gates")?.as_u64()?,
            clean: value.get("clean")?.as_u64()?,
            clean_fail: value.get("clean_fail")?.as_u64()?,
            noisy,
            truncated: value.get("truncated")?.as_u64()?,
            truncated_fail: value.get("truncated_fail")?.as_u64()?,
        })
    }
}

/// The canonical identity JSON of one cell's shots record — the same
/// coordinates as the cell outcome record, under [`SHOTS_SALT`].
#[allow(clippy::too_many_arguments)]
pub fn shots_identity(
    spec: &PanelSpec,
    config: &RunConfig,
    seed: u64,
    instance: usize,
    rate_idx: usize,
    rate: f64,
    depth_idx: usize,
    depth: AqftDepth,
) -> Json {
    cell_identity_with_salt(
        SHOTS_SALT, spec, config, seed, instance, rate_idx, rate, depth_idx, depth,
    )
}

/// Serializes a shots record payload: identity plus body.
pub fn encode_shots_record(identity: &Json, record: &ShotsRecord) -> Vec<u8> {
    let mut fields = vec![("id".to_string(), identity.clone())];
    fields.extend(record.body_json());
    Json::Obj(fields).encode().into_bytes()
}

/// Decodes and validates a shots payload against its key. `None` on
/// parse failure, foreign salt, digest mismatch, or schema mismatch.
pub fn decode_shots_record(key: &Key, payload: &[u8]) -> Option<ShotsRecord> {
    let text = std::str::from_utf8(payload).ok()?;
    let value = Json::parse(text).ok()?;
    let identity = value.get("id")?;
    if identity.get("salt")?.as_str()? != SHOTS_SALT {
        return None;
    }
    if &blake2s256(identity.encode().as_bytes()) != key {
        return None;
    }
    ShotsRecord::from_body(&value)
}

/// True when a store payload is a shots-ledger record (by salt) —
/// readers of cell records use this to skip the other family without
/// counting it as rejected.
pub fn is_shots_payload(payload: &[u8]) -> bool {
    payload_salt(payload).as_deref() == Some(SHOTS_SALT)
}

/// The `id.salt` of any record payload, if it parses.
pub fn payload_salt(payload: &[u8]) -> Option<String> {
    let value = Json::parse(std::str::from_utf8(payload).ok()?).ok()?;
    Some(value.get("id")?.get("salt")?.as_str()?.to_string())
}

/// One shots record with its cell coordinates.
#[derive(Clone, Debug)]
pub struct ShotsCell {
    /// The identity fields shared across a panel.
    pub panel: PanelKey,
    /// Whether the run transpiled through the peephole optimizer
    /// (attribution must rebuild the same gate list).
    pub optimize: bool,
    /// Instance index.
    pub inst: u64,
    /// Rate grid index.
    pub ri: u64,
    /// Error rate (fraction).
    pub rate: f64,
    /// Depth grid index.
    pub di: u64,
    /// Depth identity tag (`"full"` or the cap).
    pub depth: String,
    /// The record itself.
    pub record: ShotsRecord,
}

/// Everything the ledger holds for one store directory.
#[derive(Clone, Debug, Default)]
pub struct ShotsData {
    /// Cells sorted by `(panel, ri, di, inst)`.
    pub cells: Vec<ShotsCell>,
    /// Live shots records decoded.
    pub records: u64,
    /// Live shots-salted records that failed validation.
    pub rejected: u64,
}

/// Reads every shots record from the store at `dir`, read-only —
/// the same scan discipline as [`crate::rundata::load_run`].
pub fn load_shots(dir: &Path) -> io::Result<ShotsData> {
    let mut live: BTreeMap<Key, Vec<u8>> = BTreeMap::new();
    for file in ["index.seg", "journal.wal"] {
        let path = dir.join(file);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for record in scan(&bytes).records {
            live.insert(record.key, record.value);
        }
    }
    let mut data = ShotsData::default();
    for (key, payload) in &live {
        if !is_shots_payload(payload) {
            continue;
        }
        match decode_shots_cell(key, payload) {
            Some(cell) => {
                data.records += 1;
                data.cells.push(cell);
            }
            None => data.rejected += 1,
        }
    }
    data.cells
        .sort_by(|a, b| (&a.panel, a.ri, a.di, a.inst).cmp(&(&b.panel, b.ri, b.di, b.inst)));
    Ok(data)
}

fn decode_shots_cell(key: &Key, payload: &[u8]) -> Option<ShotsCell> {
    let record = decode_shots_record(key, payload)?;
    let value = Json::parse(std::str::from_utf8(payload).ok()?).ok()?;
    let id = value.get("id")?;
    Some(ShotsCell {
        panel: PanelKey {
            op: id.get("op")?.as_str()?.to_string(),
            n: id.get("n")?.as_u64()?,
            m: id.get("m")?.as_u64()?,
            ox: id.get("ox")?.as_u64()?,
            oy: id.get("oy")?.as_u64()?,
            err: id.get("err")?.as_str()?.to_string(),
            shots: id.get("config")?.get("shots")?.as_u64()?,
            seed: id.get("seed")?.as_u64()?,
        },
        optimize: id
            .get("config")?
            .get("optimize")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        inst: id.get("inst")?.as_u64()?,
        ri: id.get("ri")?.as_u64()?,
        rate: id.get("rate")?.as_f64()?,
        di: id.get("di")?.as_u64()?,
        depth: id.get("depth")?.as_str()?.to_string(),
        record,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{ErrorTarget, OpKind};
    use qfab_core::{AddInstance, NoisyRun, Qinteger};
    use qfab_math::rng::Xoshiro256StarStar;
    use qfab_noise::NoiseModel;

    fn tiny_spec() -> PanelSpec {
        PanelSpec {
            id: "shotstest",
            title: "tiny".into(),
            op: OpKind::Add,
            n: 3,
            m: 4,
            order_x: 1,
            order_y: 1,
            error_target: ErrorTarget::TwoQubit,
            rates: vec![0.0, 0.02],
            depths: vec![AqftDepth::Full],
            reference_rate: 0.02,
        }
    }

    fn sample_log() -> (ShotsRecord, u64) {
        let inst = AddInstance {
            n: 3,
            m: 4,
            x: Qinteger::new(3, vec![5]),
            y: Qinteger::new(4, vec![6]),
        };
        let model = NoiseModel::depolarizing(0.02, 0.05);
        let run = NoisyRun::prepare(
            &inst.circuit(AqftDepth::Full),
            inst.initial_state(),
            &model,
            &RunConfig::default(),
        );
        let mut rng = Xoshiro256StarStar::new(3);
        let (_, log) = run.sample_counts_logged(300, &mut rng);
        let expected = inst.expected_outputs();
        let record =
            ShotsRecord::from_log(&log, run.plan(), &expected, run.transpiled_gates() as u64);
        (record, 300)
    }

    #[test]
    fn record_accounts_for_every_shot_and_site() {
        let (record, shots) = sample_log();
        assert_eq!(record.total_shots(), shots);
        assert!(!record.noisy.is_empty());
        // Depolarizing 1q+2q: two channels.
        assert_eq!(record.channels.len(), 2);
        for shot in &record.noisy {
            assert!(!shot.sites.is_empty(), "noisy shots fire at least once");
            for site in &shot.sites {
                assert!(site.gate < record.gates);
                assert!((site.channel as usize) < record.channels.len());
                let arity = match record.channels[site.channel as usize].tag.as_str() {
                    "pauli1q" => 1,
                    "pauli2q" => 2,
                    other => panic!("unknown tag {other}"),
                };
                assert_eq!(site.pauli.len(), arity);
                assert!(site.pauli.chars().all(|c| "IXYZ".contains(c)));
                assert!(
                    site.pauli.chars().any(|c| c != 'I'),
                    "a fired site inserts at least one Pauli"
                );
            }
            // Sites arrive in circuit order, no duplicates.
            assert!(shot.sites.windows(2).all(|w| w[0].gate < w[1].gate));
        }
    }

    #[test]
    fn record_json_round_trips_byte_stably() {
        let (record, _) = sample_log();
        let spec = tiny_spec();
        let cfg = RunConfig {
            shots: 300,
            ..RunConfig::default()
        };
        let identity = shots_identity(&spec, &cfg, 7, 0, 1, 0.02, 0, AqftDepth::Full);
        let key = blake2s256(identity.encode().as_bytes());
        let payload = encode_shots_record(&identity, &record);
        let decoded = decode_shots_record(&key, &payload).expect("round trip");
        assert_eq!(decoded, record);
        // Re-encoding is byte-stable.
        assert_eq!(encode_shots_record(&identity, &decoded), payload);
        assert!(is_shots_payload(&payload));
    }

    #[test]
    fn shots_identity_never_aliases_cell_identity() {
        let spec = tiny_spec();
        let cfg = RunConfig {
            shots: 300,
            ..RunConfig::default()
        };
        let shots = shots_identity(&spec, &cfg, 7, 0, 1, 0.02, 0, AqftDepth::Full);
        let cell = crate::cache::cell_identity(&spec, &cfg, 7, 0, 1, 0.02, 0, AqftDepth::Full);
        assert_ne!(
            blake2s256(shots.encode().as_bytes()),
            blake2s256(cell.encode().as_bytes())
        );
    }

    #[test]
    fn decode_rejects_foreign_salt_and_wrong_key() {
        let (record, _) = sample_log();
        let spec = tiny_spec();
        let cfg = RunConfig {
            shots: 300,
            ..RunConfig::default()
        };
        let identity = shots_identity(&spec, &cfg, 7, 0, 1, 0.02, 0, AqftDepth::Full);
        let key = blake2s256(identity.encode().as_bytes());
        let payload = encode_shots_record(&identity, &record);
        let mut wrong = key;
        wrong[0] ^= 1;
        assert!(decode_shots_record(&wrong, &payload).is_none());
        // A cell-salted payload is not a shots record.
        let cell_id = crate::cache::cell_identity(&spec, &cfg, 7, 0, 1, 0.02, 0, AqftDepth::Full);
        let cell_key = blake2s256(cell_id.encode().as_bytes());
        let cell_payload = encode_shots_record(&cell_id, &record);
        assert!(decode_shots_record(&cell_key, &cell_payload).is_none());
        assert!(decode_shots_record(&key, b"garbage").is_none());
    }

    #[test]
    fn single_channel_single_site_paulis_are_nontrivial() {
        // A one-CX circuit under a 2q channel: every fired site is the
        // lone CX with a 2-character Pauli.
        let mut c = qfab_circuit::Circuit::new(2);
        c.h(0).cx(0, 1);
        let model = NoiseModel::only_2q_depolarizing(0.5);
        let run = NoisyRun::prepare(
            &c,
            qfab_sim::StateVector::zero_state(2),
            &model,
            &RunConfig::default(),
        );
        let mut rng = Xoshiro256StarStar::new(1);
        let (_, log) = run.sample_counts_logged(200, &mut rng);
        let record = ShotsRecord::from_log(&log, run.plan(), &[0, 1, 2, 3], 2);
        for shot in &record.noisy {
            assert_eq!(shot.sites.len(), 1);
            assert_eq!(shot.sites[0].gate, 1);
            assert_eq!(shot.sites[0].pauli.len(), 2);
        }
        // Accepting every outcome: no failures.
        assert_eq!(record.total_fails(), 0);
    }
}
