//! Result rendering: aligned text tables, CSV, metric summaries, and
//! JSON run manifests.

use crate::runner::PanelResult;
use crate::sweep::OpKind;
use qfab_telemetry::{Json, Manifest, MetricValue, Snapshot};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Renders a panel as an aligned text table: one row per error rate,
/// one column per AQFT depth, each cell `success% (↓lower/↑upper)`.
///
/// Deliberately timing-free: two runs of the same panel — cold, cached,
/// or resumed — produce byte-identical tables. Timing lives in
/// [`format_panel_timing`] and the manifest.
pub fn format_panel(result: &PanelResult) -> String {
    let spec = &result.spec;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} — {} [{} instances × {} shots, seed {}]",
        spec.id, spec.title, result.scale.instances, result.scale.shots, result.seed,
    );
    let _ = write!(s, "{:>9} |", "err rate");
    for d in &spec.depths {
        let _ = write!(s, " {:>18} |", format!("d={}", d.paper_label()));
    }
    s.push('\n');
    let width = 11 + spec.depths.len() * 21;
    s.push_str(&"-".repeat(width));
    s.push('\n');
    for (ri, &rate) in spec.rates.iter().enumerate() {
        let marker = if (rate - spec.reference_rate).abs() < 1e-12 {
            "*"
        } else {
            " "
        };
        let _ = write!(s, "{:>7.3}%{} |", rate * 100.0, marker);
        for di in 0..spec.depths.len() {
            let st = &result.point(ri, di).stats;
            let _ = write!(
                s,
                " {:>6.1}% (↓{:>2.0}/↑{:>2.0}) |",
                st.success_rate_pct, st.lower_bar_pct, st.upper_bar_pct
            );
        }
        s.push('\n');
    }
    s.push_str("(* = IBM hardware reference rate; ↓/↑ = % of instances within 1σ of the\n");
    s.push_str(" success/failure threshold — the paper's error-bar statistic)\n");
    s
}

/// Renders a panel as an ASCII chart: success rate (y, 0–100%) against
/// the error-rate grid (x), one symbol per AQFT depth series — a quick
/// visual of the figure's shape without leaving the terminal.
pub fn format_panel_chart(result: &PanelResult) -> String {
    const ROWS: usize = 11; // 0%, 10%, …, 100%
    let spec = &result.spec;
    let n_rates = spec.rates.len();
    let col_width = 6;
    let symbols: Vec<char> = spec
        .depths
        .iter()
        .map(|d| match d.paper_label().as_str() {
            "full" => 'F',
            other => other.chars().next().unwrap_or('?'),
        })
        .collect();

    // grid[row][col]: row 0 = 100%.
    let mut grid = vec![vec![' '; n_rates * col_width]; ROWS];
    for (ri, _) in spec.rates.iter().enumerate() {
        for (di, _) in spec.depths.iter().enumerate() {
            let pct = result.point(ri, di).stats.success_rate_pct;
            let row = ROWS - 1 - ((pct / 100.0 * (ROWS - 1) as f64).round() as usize);
            // Spread depth series horizontally within the rate's column
            // block, like the paper's clustered points.
            let col = ri * col_width + 1 + di.min(col_width - 2);
            let cell = &mut grid[row][col];
            *cell = if *cell == ' ' { symbols[di] } else { '*' };
        }
    }

    let mut s = format!("{} — success rate vs error rate\n", spec.id);
    for (row, line) in grid.iter().enumerate() {
        let pct = 100 - row * 10;
        s.push_str(&format!("{pct:>4}% |"));
        s.extend(line.iter());
        s.push('\n');
    }
    s.push_str("      +");
    s.push_str(&"-".repeat(n_rates * col_width));
    s.push('\n');
    s.push_str("       ");
    for &rate in &spec.rates {
        s.push_str(&format!(
            "{:<width$}",
            format!("{:.2}%", rate * 100.0),
            width = col_width
        ));
    }
    s.push('\n');
    s.push_str("  series: ");
    for (d, sym) in spec.depths.iter().zip(&symbols) {
        s.push_str(&format!("{sym}=d{}  ", d.paper_label()));
    }
    s.push_str("*=overlap\n");
    s
}

/// Renders a panel as CSV: `rate,depth,success_pct,lower_pct,upper_pct,\
/// gap_mean,gap_sigma,instances,shots`.
pub fn panel_csv(result: &PanelResult) -> String {
    let mut s = String::from(
        "rate,depth,success_pct,lower_bar_pct,upper_bar_pct,gap_mean,gap_sigma,instances,shots\n",
    );
    for p in &result.points {
        let _ = writeln!(
            s,
            "{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{},{}",
            p.rate,
            p.depth.paper_label(),
            p.stats.success_rate_pct,
            p.stats.lower_bar_pct,
            p.stats.upper_bar_pct,
            p.stats.gap_mean,
            p.stats.gap_sigma,
            p.stats.instances,
            result.scale.shots
        );
    }
    s
}

/// One-line timing summary: panel wall clock against summed per-cell
/// compute time (distinct measures — the sum spans all rayon workers),
/// plus store traffic when a cache was attached. Printed to stderr by
/// `repro` so the stdout tables stay byte-identical across runs.
pub fn format_panel_timing(result: &PanelResult) -> String {
    let cpu: f64 = result.points.iter().map(|p| p.cpu_secs).sum();
    let mut s = format!(
        "{}: wall {:.1}s, compute {:.1}s summed across instances",
        result.spec.id, result.elapsed_secs, cpu
    );
    if let Some(cache) = &result.cache {
        let _ = write!(
            s,
            " | store: {} hits / {} misses of {} cells",
            cache.hits,
            cache.misses,
            cache.cells()
        );
        if cache.rejected > 0 {
            let _ = write!(s, " ({} rejected)", cache.rejected);
        }
        if cache.append_failed > 0 {
            let _ = write!(s, " ({} appends FAILED)", cache.append_failed);
        }
    }
    s
}

/// Renders a metrics snapshot as an aligned text table — the summary
/// `repro --metrics` prints after each panel.
pub fn format_metrics_summary(snapshot: &Snapshot) -> String {
    let mut s = String::from("metrics\n");
    let name_width = snapshot
        .entries
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0)
        .max("name".len());
    let _ = writeln!(s, "  {:<name_width$}  value", "name");
    for (name, value) in &snapshot.entries {
        let rendered = match value {
            MetricValue::Counter(c) => format!("{c}"),
            MetricValue::Gauge(last, high) => format!("{last} (high {high})"),
            MetricValue::Histogram(h) => format!(
                "n={} mean={:.0} p50={} p90={} p99={} max={}",
                h.count, h.mean, h.p50, h.p90, h.p99, h.max
            ),
        };
        let _ = writeln!(s, "  {name:<name_width$}  {rendered}");
    }
    if let Some(h) = snapshot.histogram("exp.cell.wall_ns") {
        if h.count > 0 {
            let ms = |ns: u64| ns as f64 / 1e6;
            let _ = writeln!(s, "cell latency ({} cells computed)", h.count);
            let _ = writeln!(
                s,
                "  p50 {:.2}ms | p90 {:.2}ms | max {:.2}ms",
                ms(h.p50),
                ms(h.p90),
                ms(h.max)
            );
        }
    }
    s
}

/// Builds the run manifest for a completed panel: provenance header
/// (spec id, seed, scale, thread count, elapsed), per-point results,
/// and — when given — the telemetry snapshot of the run.
pub fn panel_manifest(result: &PanelResult, snapshot: Option<&Snapshot>) -> Manifest {
    let spec = &result.spec;
    let points: Vec<Json> = result
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("rate".into(), Json::F64(p.rate)),
                ("depth".into(), Json::Str(p.depth.paper_label())),
                ("success_pct".into(), Json::F64(p.stats.success_rate_pct)),
                ("wilson_low_pct".into(), Json::F64(p.stats.wilson_low_pct)),
                ("wilson_high_pct".into(), Json::F64(p.stats.wilson_high_pct)),
                ("cpu_secs".into(), Json::F64(p.cpu_secs)),
                ("wall_secs".into(), Json::F64(p.wall_secs)),
            ])
        })
        .collect();
    let mut m = Manifest::new(spec.id)
        .field("title", spec.title.as_str())
        .field(
            "op",
            match spec.op {
                OpKind::Add => "add",
                OpKind::Mul => "mul",
            },
        )
        .field("n", spec.n as u64)
        .field("m", spec.m as u64)
        .field("seed", result.seed)
        .field("instances", result.scale.instances)
        .field("shots", result.scale.shots)
        .field("threads", rayon::current_num_threads())
        .field("elapsed_secs", result.elapsed_secs)
        .field("points", Json::Arr(points));
    if let Some(cache) = &result.cache {
        m = m.field(
            "cache",
            Json::Obj(vec![
                ("hits".into(), Json::U64(cache.hits)),
                ("misses".into(), Json::U64(cache.misses)),
                ("rejected".into(), Json::U64(cache.rejected)),
                ("append_failed".into(), Json::U64(cache.append_failed)),
            ]),
        );
    }
    if let Some(snap) = snapshot {
        m = m.metrics(snap);
    }
    m
}

/// Writes `<dir>/<id>.manifest.json` and returns the written path.
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> io::Result<std::path::PathBuf> {
    manifest.write_to_dir(dir)
}

/// Writes `<id>.txt` (table + ASCII chart) and `<id>.csv` into `dir`
/// (created if missing).
pub fn write_panel(dir: &Path, result: &PanelResult) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let text = format!("{}\n{}", format_panel(result), format_panel_chart(result));
    std::fs::write(dir.join(format!("{}.txt", result.spec.id)), text)?;
    std::fs::write(
        dir.join(format!("{}.csv", result.spec.id)),
        panel_csv(result),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_panel;
    use crate::scale::Scale;
    use crate::sweep::{ErrorTarget, OpKind, PanelSpec};
    use qfab_core::AqftDepth;

    fn tiny_result() -> PanelResult {
        let spec = PanelSpec {
            id: "testpanel",
            title: "tiny".into(),
            op: OpKind::Add,
            n: 2,
            m: 3,
            order_x: 1,
            order_y: 1,
            error_target: ErrorTarget::TwoQubit,
            rates: vec![0.0, 0.01],
            depths: vec![AqftDepth::Limited(1), AqftDepth::Full],
            reference_rate: 0.01,
        };
        run_panel(
            &spec,
            Scale {
                instances: 2,
                shots: 32,
            },
            1,
            |_| {},
        )
    }

    #[test]
    fn text_table_structure() {
        let r = tiny_result();
        let s = format_panel(&r);
        assert!(s.contains("testpanel"));
        assert!(s.contains("d=1"));
        assert!(s.contains("d=full"));
        assert!(s.contains("0.000%"));
        assert!(s.contains("1.000%*"), "reference marker missing:\n{s}");
    }

    #[test]
    fn chart_renders_axes_and_series() {
        let r = tiny_result();
        let chart = format_panel_chart(&r);
        assert!(chart.contains("100% |"));
        assert!(chart.contains("   0% |"));
        assert!(chart.contains("1=d1"));
        assert!(chart.contains("F=dfull"));
        assert!(chart.contains("0.00%"));
        assert!(chart.contains("1.00%"));
        // The noiseless full-depth point sits on the 100% row.
        let top_row = chart.lines().find(|l| l.starts_with(" 100% |")).unwrap();
        assert!(top_row.contains('F') || top_row.contains('*'));
    }

    #[test]
    fn panel_text_is_timing_free_and_reproducible() {
        // Two runs of the same panel must render byte-identically —
        // the property the resumable sweep's acceptance check rests on.
        let a = tiny_result();
        let b = tiny_result();
        assert_eq!(format_panel(&a), format_panel(&b));
        assert_eq!(format_panel_chart(&a), format_panel_chart(&b));
        assert_eq!(panel_csv(&a), panel_csv(&b));
    }

    #[test]
    fn timing_line_separates_wall_from_summed_compute() {
        let mut r = tiny_result();
        r.elapsed_secs = 2.0;
        for p in &mut r.points {
            p.cpu_secs = 1.0;
            p.wall_secs = 0.5;
        }
        let line = format_panel_timing(&r);
        assert!(line.contains("wall 2.0s"), "{line}");
        assert!(line.contains("compute 4.0s summed"), "{line}");
        assert!(!line.contains("store:"), "{line}");
        r.cache = Some(crate::runner::CacheStats {
            hits: 6,
            misses: 2,
            rejected: 1,
            append_failed: 0,
        });
        let line = format_panel_timing(&r);
        assert!(
            line.contains("store: 6 hits / 2 misses of 8 cells"),
            "{line}"
        );
        assert!(line.contains("(1 rejected)"), "{line}");
        assert!(!line.contains("FAILED"), "{line}");
        r.cache.as_mut().unwrap().append_failed = 3;
        let line = format_panel_timing(&r);
        assert!(line.contains("(3 appends FAILED)"), "{line}");
    }

    #[test]
    fn manifest_carries_cache_stats_when_present() {
        let mut r = tiny_result();
        assert!(!panel_manifest(&r, None)
            .to_json()
            .encode()
            .contains("\"cache\""));
        r.cache = Some(crate::runner::CacheStats {
            hits: 10,
            misses: 3,
            rejected: 0,
            append_failed: 2,
        });
        let encoded = panel_manifest(&r, None).to_json().encode();
        assert!(
            encoded.contains(r#""cache":{"hits":10,"misses":3,"rejected":0,"append_failed":2}"#),
            "{encoded}"
        );
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = tiny_result();
        let csv = panel_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4); // header + 2 rates × 2 depths
        assert!(lines[0].starts_with("rate,depth,success_pct"));
        assert!(lines[1].starts_with("0,1,"));
    }

    /// A fully hand-constructed panel: golden tests below pin the
    /// exact output bytes independent of any simulation.
    fn golden_result() -> PanelResult {
        use crate::runner::PointResult;
        use qfab_core::EnsembleStats;
        let spec = PanelSpec {
            id: "golden",
            title: "fixed".into(),
            op: OpKind::Add,
            n: 3,
            m: 4,
            order_x: 1,
            order_y: 1,
            error_target: ErrorTarget::TwoQubit,
            rates: vec![0.0, 0.01],
            depths: vec![AqftDepth::Limited(2), AqftDepth::Full],
            reference_rate: 0.01,
        };
        let stats = |pct: f64, lo: f64, hi: f64, mean: f64, sigma: f64| EnsembleStats {
            instances: 4,
            successes: (pct / 25.0) as usize,
            success_rate_pct: pct,
            gap_sigma: sigma,
            gap_mean: mean,
            lower_bar_pct: lo,
            upper_bar_pct: hi,
            ..EnsembleStats::default()
        };
        let cells = [
            (
                0.0,
                AqftDepth::Limited(2),
                stats(100.0, 100.0, 0.0, 12.0, 1.5),
            ),
            (0.0, AqftDepth::Full, stats(75.0, 50.0, 25.0, 6.0, 2.0)),
            (
                0.01,
                AqftDepth::Limited(2),
                stats(50.0, 25.0, 25.0, 0.5, 3.25),
            ),
            (0.01, AqftDepth::Full, stats(0.0, 0.0, 100.0, -4.0, 0.125)),
        ];
        PanelResult {
            spec,
            scale: Scale {
                instances: 4,
                shots: 32,
            },
            seed: 11,
            points: cells
                .into_iter()
                .map(|(rate, depth, stats)| PointResult {
                    rate,
                    depth,
                    stats,
                    cpu_secs: 0.0,
                    wall_secs: 0.0,
                })
                .collect(),
            elapsed_secs: 0.0,
            cache: None,
        }
    }

    #[test]
    fn golden_csv_bytes() {
        assert_eq!(
            panel_csv(&golden_result()),
            "rate,depth,success_pct,lower_bar_pct,upper_bar_pct,gap_mean,gap_sigma,instances,shots\n\
             0,2,100.0000,100.0000,0.0000,12.0000,1.5000,4,32\n\
             0,full,75.0000,50.0000,25.0000,6.0000,2.0000,4,32\n\
             0.01,2,50.0000,25.0000,25.0000,0.5000,3.2500,4,32\n\
             0.01,full,0.0000,0.0000,100.0000,-4.0000,0.1250,4,32\n"
        );
    }

    #[test]
    fn golden_ascii_chart_bytes() {
        let expected = concat!(
            "golden — success rate vs error rate\n",
            " 100% | 2          \n",
            "  90% |            \n",
            "  80% |  F         \n",
            "  70% |            \n",
            "  60% |            \n",
            "  50% |       2    \n",
            "  40% |            \n",
            "  30% |            \n",
            "  20% |            \n",
            "  10% |            \n",
            "   0% |        F   \n",
            "      +------------\n",
            "       0.00% 1.00% \n",
            "  series: 2=d2  F=dfull  *=overlap\n",
        );
        assert_eq!(format_panel_chart(&golden_result()), expected);
    }

    #[test]
    fn metrics_summary_renders_every_metric_kind() {
        use qfab_telemetry::{HistogramSummary, MetricValue, Snapshot};
        let snap = Snapshot {
            entries: vec![
                ("a.counter".into(), MetricValue::Counter(42)),
                ("b.gauge".into(), MetricValue::Gauge(7, 9)),
                (
                    "c.hist".into(),
                    MetricValue::Histogram(HistogramSummary {
                        count: 3,
                        sum: 30,
                        mean: 10.0,
                        min: 5,
                        max: 15,
                        p50: 10,
                        p90: 15,
                        p99: 15,
                    }),
                ),
            ],
        };
        let s = format_metrics_summary(&snap);
        assert!(s.contains("a.counter"));
        assert!(s.contains("42"));
        assert!(s.contains("7 (high 9)"));
        assert!(s.contains("n=3 mean=10 p50=10 p90=15 p99=15 max=15"), "{s}");
        assert!(
            !s.contains("cell latency"),
            "no latency section without the histogram:\n{s}"
        );
    }

    #[test]
    fn metrics_summary_adds_cell_latency_section() {
        use qfab_telemetry::{HistogramSummary, MetricValue, Snapshot};
        let snap = Snapshot {
            entries: vec![(
                "exp.cell.wall_ns".into(),
                MetricValue::Histogram(HistogramSummary {
                    count: 12,
                    sum: 60_000_000,
                    mean: 5_000_000.0,
                    min: 1_000_000,
                    max: 20_000_000,
                    p50: 4_000_000,
                    p90: 15_500_000,
                    p99: 20_000_000,
                }),
            )],
        };
        let s = format_metrics_summary(&snap);
        assert!(s.contains("cell latency (12 cells computed)"), "{s}");
        assert!(s.contains("p50 4.00ms | p90 15.50ms | max 20.00ms"), "{s}");
    }

    #[test]
    fn manifest_captures_panel_provenance_and_points() {
        let r = tiny_result();
        let m = panel_manifest(&r, None);
        let encoded = m.to_json().encode();
        assert!(
            encoded.starts_with(r#"{"schema":"qfab.run.v1","id":"testpanel""#),
            "{encoded}"
        );
        assert!(encoded.contains(r#""op":"add""#));
        assert!(encoded.contains(r#""seed":1"#));
        assert!(encoded.contains(r#""instances":2"#));
        assert!(encoded.contains(r#""shots":32"#));
        assert!(
            encoded.contains(r#""points":[{"rate":0,"depth":"1""#),
            "{encoded}"
        );
        // 2 rates × 2 depths, each with a Wilson interval.
        assert_eq!(encoded.matches(r#""success_pct""#).count(), 4);
        assert_eq!(encoded.matches(r#""wilson_low_pct""#).count(), 4);
        assert_eq!(encoded.matches(r#""wilson_high_pct""#).count(), 4);
        assert_eq!(m.file_name(), "testpanel.manifest.json");
    }

    #[test]
    fn write_manifest_round_trips() {
        let r = tiny_result();
        let dir = std::env::temp_dir().join("qfab_manifest_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_manifest(&dir, &panel_manifest(&r, None)).unwrap();
        assert!(path.ends_with("testpanel.manifest.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema\": \"qfab.run.v1\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_panel_creates_files() {
        let r = tiny_result();
        let dir = std::env::temp_dir().join("qfab_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_panel(&dir, &r).unwrap();
        assert!(dir.join("testpanel.txt").exists());
        assert!(dir.join("testpanel.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
