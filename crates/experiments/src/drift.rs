//! Scientific drift gate: statistical comparison of two runs'
//! success rates (`repro diff`).
//!
//! `bench-gate` watches performance; this module watches *results*. It
//! joins two [`RunSummary`] views cell-by-cell on the science
//! coordinates — panel geometry, error rate, AQFT depth — and tests
//! each matched cell's success proportions with a pooled two-proportion
//! z-test. A cell whose two-sided p-value falls below α is a *drift*:
//! evidence that a code change moved what the reproduction measures,
//! not just sampling noise. The PR-4 RNG fix is the motivating case: it
//! redrew every sampled outcome, and only a cache-salt bump caught it.
//! This gate catches such shifts directly, at a chosen false-alarm
//! rate.
//!
//! Cells are pooled across seeds, shots, and grid indices before
//! testing: two runs at different seeds (or resumed at different
//! scales) are still independent samples of the same cell proportion,
//! and pooling is what makes runs from different commits comparable.
//! Cells present in only one run are counted and reported but are
//! never drift — coverage differences are visible, not alarming.
//!
//! The default α = 0.01 is deliberately conservative: a full 12-panel
//! sweep compares a few hundred cells, so α = 0.01 yields a handful of
//! expected false positives per *thousand* clean comparisons while
//! still flagging any real redraw (which shifts many cells at once).

use crate::rundata::RunSummary;
use qfab_core::AqftDepth;
use qfab_math::stats::{two_proportion_z_test, wilson_interval};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default significance level for `repro diff`.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Standard normal quantile for the 95% Wilson intervals in the table.
const WILSON_Z95: f64 = 1.959_963_985;

/// One compared cell.
#[derive(Clone, Debug)]
pub struct CellDrift {
    /// Panel display id.
    pub panel: String,
    /// Error rate (fraction).
    pub rate: f64,
    /// Depth identity tag.
    pub depth: String,
    /// `(successes, instances)` pooled over run A.
    pub a: (u64, u64),
    /// `(successes, instances)` pooled over run B.
    pub b: (u64, u64),
    /// Pooled z statistic (A minus B).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Whether `p_value < α`.
    pub significant: bool,
}

impl CellDrift {
    fn rate_pct(&self) -> f64 {
        self.rate * 100.0
    }
}

/// The full comparison of two runs.
#[derive(Clone, Debug)]
pub struct DriftReport {
    /// Significance level the gate ran at.
    pub alpha: f64,
    /// Matched cells, in (panel, rate, depth) order.
    pub cells: Vec<CellDrift>,
    /// Cells present only in run A.
    pub only_a: u64,
    /// Cells present only in run B.
    pub only_b: u64,
    /// Set when the two runs were recorded under different
    /// code-version salts (worth knowing, not itself a failure — the
    /// gate exists precisely to compare across code versions).
    pub salt_mismatch: Option<(String, String)>,
}

impl DriftReport {
    /// Number of cells drifting at α.
    pub fn drifted(&self) -> usize {
        self.cells.iter().filter(|c| c.significant).count()
    }

    /// True when no cell shows a significant shift.
    pub fn passed(&self) -> bool {
        self.drifted() == 0
    }
}

/// One side's cells pooled onto the science coordinates.
type Pooled = BTreeMap<(String, u64, u32, String), (f64, u64, u64)>;

fn depth_rank(tag: &str) -> u32 {
    match AqftDepth::from_identity_tag(tag) {
        Some(AqftDepth::Limited(d)) => d,
        Some(AqftDepth::Full) => u32::MAX,
        None => u32::MAX - 1, // unknown tags sort just before full
    }
}

fn pool(run: &RunSummary) -> Pooled {
    let mut pooled: Pooled = BTreeMap::new();
    for panel in &run.panels {
        for cell in &panel.cells {
            let key = (
                panel.id.clone(),
                cell.rate.to_bits(),
                depth_rank(&cell.depth),
                cell.depth.clone(),
            );
            let entry = pooled.entry(key).or_insert((cell.rate, 0, 0));
            entry.1 += cell.successes;
            entry.2 += cell.instances;
        }
    }
    pooled
}

/// Compares two run summaries at significance level `alpha`.
pub fn compare(a: &RunSummary, b: &RunSummary, alpha: f64) -> DriftReport {
    let pa = pool(a);
    let pb = pool(b);
    let mut cells = Vec::new();
    let mut only_a = 0u64;
    let mut only_b = pb.keys().filter(|k| !pa.contains_key(*k)).count() as u64;
    for (key, &(rate, sa, na)) in &pa {
        let Some(&(_, sb, nb)) = pb.get(key) else {
            only_a += 1;
            continue;
        };
        let Some(test) = two_proportion_z_test(sa, na, sb, nb) else {
            // A zero-instance side carries no evidence either way.
            only_b += 0;
            continue;
        };
        cells.push(CellDrift {
            panel: key.0.clone(),
            rate,
            depth: key.3.clone(),
            a: (sa, na),
            b: (sb, nb),
            z: test.z,
            p_value: test.p_value,
            significant: test.p_value < alpha,
        });
    }
    let salt_mismatch = (a.salt != b.salt).then(|| (a.salt.clone(), b.salt.clone()));
    DriftReport {
        alpha,
        cells,
        only_a,
        only_b,
        salt_mismatch,
    }
}

fn side(successes: u64, instances: u64) -> String {
    let (lo, hi) = wilson_interval(successes, instances, WILSON_Z95);
    format!(
        "{:>3}/{:<3} {:>5.1}% [{:>5.1},{:>5.1}]",
        successes,
        instances,
        100.0 * successes as f64 / instances.max(1) as f64,
        100.0 * lo,
        100.0 * hi
    )
}

/// Renders the per-panel drift table.
pub fn format_report(report: &DriftReport) -> String {
    let mut s = format!(
        "drift gate at alpha {} — {} cells compared, {} drifted",
        report.alpha,
        report.cells.len(),
        report.drifted()
    );
    if report.only_a + report.only_b > 0 {
        let _ = write!(
            s,
            " ({} only in A, {} only in B)",
            report.only_a, report.only_b
        );
    }
    s.push('\n');
    if let Some((sa, sb)) = &report.salt_mismatch {
        let _ = writeln!(
            s,
            "note: comparing across code-version salts ({sa} vs {sb})"
        );
    }
    let mut current_panel: Option<&str> = None;
    for c in &report.cells {
        if current_panel != Some(c.panel.as_str()) {
            let _ = writeln!(s, "panel {}", c.panel);
            let _ = writeln!(
                s,
                "  {:>8} {:>5}  {:<28} {:<28} {:>6} {:>9}",
                "rate", "depth", "A s/n pct [wilson95]", "B s/n pct [wilson95]", "z", "p"
            );
            current_panel = Some(c.panel.as_str());
        }
        let _ = writeln!(
            s,
            "  {:>7.3}% {:>5}  {:<28} {:<28} {:>+6.2} {:>9.2e}{}",
            c.rate_pct(),
            c.depth,
            side(c.a.0, c.a.1),
            side(c.b.0, c.b.1),
            c.z,
            c.p_value,
            if c.significant { "  DRIFT" } else { "" }
        );
    }
    if report.passed() {
        let _ = writeln!(s, "verdict: no significant drift");
    } else {
        let _ = writeln!(
            s,
            "verdict: DRIFT — {} cell(s) shifted at alpha {}",
            report.drifted(),
            report.alpha
        );
    }
    s
}

/// The machine-readable form of the drift report (`repro diff --json`):
/// one stable JSON object with per-cell z, p, and verdict. Field order
/// is fixed, so equal reports encode to equal bytes.
pub fn json_report(report: &DriftReport) -> qfab_telemetry::Json {
    use qfab_telemetry::Json;
    let cells = report
        .cells
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("panel".into(), Json::Str(c.panel.clone())),
                ("rate".into(), Json::F64(c.rate)),
                ("depth".into(), Json::Str(c.depth.clone())),
                (
                    "a".into(),
                    Json::Obj(vec![
                        ("successes".into(), Json::U64(c.a.0)),
                        ("instances".into(), Json::U64(c.a.1)),
                    ]),
                ),
                (
                    "b".into(),
                    Json::Obj(vec![
                        ("successes".into(), Json::U64(c.b.0)),
                        ("instances".into(), Json::U64(c.b.1)),
                    ]),
                ),
                ("z".into(), Json::F64(c.z)),
                ("p".into(), Json::F64(c.p_value)),
                (
                    "verdict".into(),
                    Json::Str(if c.significant { "drift" } else { "ok" }.into()),
                ),
            ])
        })
        .collect();
    let mut fields = vec![
        ("schema".into(), Json::Str("qfab.drift.v1".into())),
        ("alpha".into(), Json::F64(report.alpha)),
        ("compared".into(), Json::U64(report.cells.len() as u64)),
        ("drifted".into(), Json::U64(report.drifted() as u64)),
        ("only_a".into(), Json::U64(report.only_a)),
        ("only_b".into(), Json::U64(report.only_b)),
        (
            "verdict".into(),
            Json::Str(if report.passed() { "ok" } else { "drift" }.into()),
        ),
    ];
    if let Some((sa, sb)) = &report.salt_mismatch {
        fields.push((
            "salt_mismatch".into(),
            Json::Obj(vec![
                ("a".into(), Json::Str(sa.clone())),
                ("b".into(), Json::Str(sb.clone())),
            ]),
        ));
    }
    fields.push(("cells".into(), Json::Arr(cells)));
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rundata::{CellSummary, PanelKey, PanelSummary};

    fn summary(cells: Vec<(f64, &str, u64, u64)>, seed: u64) -> RunSummary {
        RunSummary {
            salt: "qfab-cell-v2".into(),
            panels: vec![PanelSummary {
                id: "fig1a".into(),
                key: PanelKey {
                    op: "add".into(),
                    n: 7,
                    m: 8,
                    ox: 1,
                    oy: 1,
                    err: "1q".into(),
                    shots: 32,
                    seed,
                },
                cells: cells
                    .into_iter()
                    .enumerate()
                    .map(|(i, (rate, depth, successes, instances))| CellSummary {
                        ri: i as u64,
                        rate,
                        di: 0,
                        depth: depth.into(),
                        successes,
                        instances,
                    })
                    .collect(),
            }],
        }
    }

    #[test]
    fn self_comparison_is_clean() {
        let a = summary(vec![(0.0, "1", 40, 40), (0.01, "full", 22, 40)], 1);
        let report = compare(&a, &a, DEFAULT_ALPHA);
        assert_eq!(report.cells.len(), 2);
        assert!(report.passed());
        assert_eq!(report.drifted(), 0);
        let text = format_report(&report);
        assert!(text.contains("no significant drift"), "{text}");
        assert!(!text.contains("DRIFT —"), "{text}");
    }

    #[test]
    fn injected_shift_is_flagged_at_alpha_001() {
        let a = summary(vec![(0.0, "1", 40, 40), (0.01, "full", 38, 40)], 1);
        let b = summary(vec![(0.0, "1", 40, 40), (0.01, "full", 10, 40)], 1);
        let report = compare(&a, &b, 0.01);
        assert!(!report.passed());
        assert_eq!(report.drifted(), 1);
        let drifted = report.cells.iter().find(|c| c.significant).unwrap();
        assert_eq!(drifted.depth, "full");
        assert!(drifted.z > 0.0, "A is higher");
        let text = format_report(&report);
        assert!(text.contains("DRIFT"), "{text}");
        assert!(text.contains("verdict: DRIFT — 1 cell(s)"), "{text}");
    }

    #[test]
    fn sampling_noise_is_not_drift() {
        // 38/40 vs 36/40: p ≈ 0.4, far above any sane alpha.
        let a = summary(vec![(0.0, "1", 38, 40)], 1);
        let b = summary(vec![(0.0, "1", 36, 40)], 2);
        assert!(compare(&a, &b, 0.01).passed());
    }

    #[test]
    fn pools_across_seeds_before_testing() {
        // Run A holds the same cell under two seeds; they pool to
        // 20/40 and compare against B's 20/40 — identical, clean.
        let mut a = summary(vec![(0.0, "1", 12, 20)], 1);
        a.panels
            .push(summary(vec![(0.0, "1", 8, 20)], 2).panels.remove(0));
        let b = summary(vec![(0.0, "1", 20, 40)], 3);
        let report = compare(&a, &b, 0.05);
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].a, (20, 40));
        assert_eq!(report.cells[0].b, (20, 40));
        assert!(report.passed());
    }

    #[test]
    fn unmatched_cells_are_counted_not_flagged() {
        let a = summary(vec![(0.0, "1", 10, 10), (0.01, "1", 9, 10)], 1);
        let b = summary(vec![(0.0, "1", 10, 10)], 1);
        let report = compare(&a, &b, 0.01);
        assert_eq!(report.only_a, 1);
        assert_eq!(report.only_b, 0);
        assert!(report.passed());
        assert!(format_report(&report).contains("1 only in A"));
    }

    #[test]
    fn salt_mismatch_is_noted_not_fatal() {
        let a = summary(vec![(0.0, "1", 10, 10)], 1);
        let mut b = a.clone();
        b.salt = "qfab-cell-v1".into();
        let report = compare(&a, &b, 0.01);
        assert!(report.salt_mismatch.is_some());
        assert!(report.passed());
        assert!(format_report(&report).contains("code-version salts"));
    }

    #[test]
    fn json_report_emits_the_golden_bytes() {
        let a = summary(vec![(0.0, "1", 40, 40), (0.01, "full", 38, 40)], 1);
        let b = summary(vec![(0.0, "1", 40, 40), (0.01, "full", 10, 40)], 1);
        let report = compare(&a, &b, 0.01);
        let json = json_report(&report);
        let golden = concat!(
            r#"{"schema":"qfab.drift.v1","alpha":0.01,"compared":2,"drifted":1,"#,
            r#""only_a":0,"only_b":0,"verdict":"drift","cells":["#,
            r#"{"panel":"fig1a","rate":0,"depth":"1","a":{"successes":40,"instances":40},"#,
            r#""b":{"successes":40,"instances":40},"z":0,"p":1,"verdict":"ok"},"#,
            r#"{"panel":"fig1a","rate":0.01,"depth":"full","a":{"successes":38,"instances":40},"#,
            r#""b":{"successes":10,"instances":40},"z":6.390096504226937,"#,
            r#""p":0.0000000001665458268192937,"verdict":"drift"}]}"#,
        );
        assert_eq!(json.encode(), golden, "byte-stable machine output");
        let reparsed = qfab_telemetry::Json::parse(&json.encode()).expect("valid JSON");
        assert_eq!(reparsed.encode(), json.encode(), "encoding is stable");
        assert_eq!(
            reparsed.get("verdict").and_then(|v| v.as_str()),
            Some("drift")
        );
        assert_eq!(reparsed.get("drifted").and_then(|v| v.as_u64()), Some(1));
        let cells = match reparsed.get("cells") {
            Some(qfab_telemetry::Json::Arr(c)) => c,
            other => panic!("cells array missing: {other:?}"),
        };
        assert_eq!(cells.len(), 2);
        assert_eq!(
            cells[1].get("verdict").and_then(|v| v.as_str()),
            Some("drift")
        );
        assert!(cells[1].get("z").and_then(|v| v.as_f64()).unwrap() > 5.0);
        assert!(cells[1].get("p").and_then(|v| v.as_f64()).unwrap() < 0.01);
    }

    #[test]
    fn depths_order_numerically_with_full_last() {
        let a = summary(
            vec![(0.0, "full", 5, 10), (0.0, "2", 5, 10), (0.0, "10", 5, 10)],
            1,
        );
        let report = compare(&a, &a, 0.01);
        let depths: Vec<&str> = report.cells.iter().map(|c| c.depth.as_str()).collect();
        assert_eq!(depths, vec!["2", "10", "full"]);
    }
}
