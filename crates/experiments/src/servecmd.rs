//! The experiment-side wiring of `qfab-serve`: grid expansion, the
//! `repro merge` / `repro serve` / `repro worker` subcommands, and the
//! [`Hooks`] that teach the generic service what a sweep job means.
//!
//! The division of labour: `qfab-serve` sequences queues, processes,
//! and HTTP without knowing what a cell is; this module supplies the
//! meaning — how a grid name expands to [`PanelSpec`]s, how a worker
//! subprocess is invoked (the `repro` binary re-executing itself with
//! `worker`), and how a finished job is rendered. Because workers
//! compute whole instances into content-addressed shard stores and the
//! finalize step re-runs each panel against the *merged* store (every
//! cell a hit), a job served by N workers produces byte-identical
//! `.txt`/`.csv` panels and ledger entries to a single-process
//! `repro --store` run of the same spec.

use crate::cache::{CellCache, CODE_SALT};
use crate::cli::DEFAULT_SEED;
use crate::report::write_panel;
use crate::rundata::{load_run, RunSummary};
use crate::runner::{eta_secs, progress_line, run_panel_shard_opts, run_panel_with, Progress};
use crate::scale::OpCost;
use crate::shots::SHOTS_SALT;
use crate::sweep::{fig1_panels, fig2_panels, panel_by_id, OpKind, PanelSpec};
use crate::watch::STATUS_SCHEMA;
use crate::{dashboard, drift, ledger, Scale};
use qfab_serve::service::{start, Hooks, ServiceConfig};
use qfab_serve::{merge_stores, salts_validator, JobSpec, MergeReport};
use qfab_telemetry::monitor::{self, MonitorConfig};
use qfab_telemetry::trace::{self, TraceMode};
use qfab_telemetry::Json;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default worker-subprocess count for `repro serve`.
pub const DEFAULT_WORKERS: usize = 2;

/// Expands a job grid into panel specs: `fig1` / `fig2` / `all`
/// aliases or individual panel ids, deduplicated in first-mention
/// order.
pub fn expand_grid(grid: &[String]) -> Result<Vec<PanelSpec>, String> {
    let mut panels: Vec<PanelSpec> = Vec::new();
    let push = |spec: PanelSpec, panels: &mut Vec<PanelSpec>| {
        if !panels.iter().any(|p| p.id == spec.id) {
            panels.push(spec);
        }
    };
    for name in grid {
        match name.as_str() {
            "fig1" => fig1_panels().into_iter().for_each(|p| push(p, &mut panels)),
            "fig2" => fig2_panels().into_iter().for_each(|p| push(p, &mut panels)),
            "all" => fig1_panels()
                .into_iter()
                .chain(fig2_panels())
                .for_each(|p| push(p, &mut panels)),
            id => match panel_by_id(id) {
                Some(spec) => push(spec, &mut panels),
                None => {
                    return Err(format!(
                        "unknown grid entry '{id}' (expected fig1, fig2, all, or a panel id)"
                    ))
                }
            },
        }
    }
    Ok(panels)
}

/// Resolves a job's scale for one panel — the same preset/override
/// rules as the sweep CLI's `--scale/--instances/--shots`.
pub fn scale_for(job: &JobSpec, op: OpKind) -> Result<Scale, String> {
    let cost = match op {
        OpKind::Add => OpCost::Adder,
        OpKind::Mul => OpCost::Multiplier,
    };
    let mut scale = match job.scale.as_str() {
        "quick" => Scale::quick_for(cost),
        "default" => Scale::default_for(cost),
        "paper" => Scale::paper(),
        other => {
            return Err(format!(
                "unknown scale '{other}' (expected quick, default, or paper)"
            ))
        }
    };
    if let Some(i) = job.instances {
        scale.instances = i as usize;
    }
    if let Some(s) = job.shots {
        scale.shots = s;
    }
    Ok(scale)
}

/// Validates a job end to end (grid resolves, scale is known) and
/// returns the total cell count it covers — the service's `validate`
/// hook.
pub fn job_cells(job: &JobSpec) -> Result<u64, String> {
    let panels = expand_grid(&job.grid)?;
    let mut cells = 0u64;
    for spec in &panels {
        let scale = scale_for(job, spec.op)?;
        cells += (scale.instances * spec.rates.len() * spec.depths.len()) as u64;
    }
    Ok(cells)
}

/// Renders the drift report between the store's two most recent ledger
/// entries — the service's `GET /diff`.
fn render_diff(dir: &Path) -> Result<String, String> {
    let history = ledger::read(dir).map_err(|e| format!("cannot read ledger: {e}"))?;
    let n = history.entries.len();
    if n < 2 {
        return Err(format!("drift needs two recorded runs, ledger has {n}"));
    }
    let report = drift::compare(
        &history.entries[n - 2].summary,
        &history.entries[n - 1].summary,
        drift::DEFAULT_ALPHA,
    );
    Ok(drift::format_report(&report))
}

/// Renders a completed job from the merged store into
/// `<store>/jobs/<id>/` — the service's `finalize` hook.
///
/// Each panel is re-run in-process against the merged store. Every
/// cell is served from the cache (the shards covered all instances),
/// so this is pure aggregation; and because panel text/CSV outputs
/// carry no timing, the files are byte-identical to a single-process
/// run's. The store summary is then recorded in the run-history
/// ledger, exactly as `repro --store` records a sweep.
fn finalize_job(id: &str, job: &JobSpec, store_dir: &Path) -> Result<String, String> {
    let panels = expand_grid(&job.grid)?;
    let out_dir = store_dir.join("jobs").join(id);
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let cache = CellCache::open(store_dir, true)
        .map_err(|e| format!("cannot open store {}: {e}", store_dir.display()))?;
    let mut recomputed = 0u64;
    for spec in &panels {
        let scale = scale_for(job, spec.op)?;
        let result = run_panel_with(spec, scale, job.seed, Some(&cache), |_| {});
        if let Some(stats) = result.cache {
            // Safety net, not the plan: a missing shard cell gets
            // recomputed here (identical bytes, slower path).
            recomputed += stats.misses;
        }
        write_panel(&out_dir, &result)
            .map_err(|e| format!("cannot write {} outputs: {e}", spec.id))?;
    }
    cache
        .close()
        .map_err(|e| format!("store compaction failed: {e}"))?;
    let run = load_run(store_dir).map_err(|e| format!("cannot re-read store: {e}"))?;
    if !run.panels.is_empty() {
        let summary = RunSummary::from_run(&run);
        ledger::append(store_dir, &summary, ledger::git_describe().as_deref())
            .map_err(|e| format!("ledger append failed: {e}"))?;
    }
    let mut note = format!("wrote {}", out_dir.display());
    if recomputed > 0 {
        note.push_str(&format!(" ({recomputed} cells missed the shards)"));
    }
    Ok(note)
}

/// The full hook set wiring panels, the runner, and the dashboards
/// into the generic service.
pub fn hooks() -> Hooks {
    Hooks {
        validate: Box::new(job_cells),
        worker_command: Box::new(|job, shard, shards, dir| {
            // The service re-executes its own binary in worker mode, so
            // worker and service can never disagree about simulation
            // semantics.
            let exe = std::env::current_exe().unwrap_or_else(|_| PathBuf::from("repro"));
            let mut cmd = std::process::Command::new(exe);
            cmd.arg("worker")
                .arg("--job")
                .arg(job.to_json().encode())
                .arg("--shard")
                .arg(format!("{shard}/{shards}"))
                .arg("--store")
                .arg(dir);
            if job.shots_ledger {
                cmd.arg("--shots-ledger");
            }
            // Cross-shard trace federation: when the service itself was
            // asked to trace (`QFAB_TRACE=on`), each worker traces into
            // a per-shard file *outside* the shard dir — shard dirs are
            // deleted after a successful merge, and `repro trace-merge`
            // wants the files afterwards. Untraced runs spawn untraced
            // workers, keeping the default path observability-free.
            if trace::trace_mode() == TraceMode::Full {
                if let Some(path) = worker_trace_path(dir) {
                    cmd.env("QFAB_TRACE", format!("on:{}", path.display()));
                }
            }
            cmd
        }),
        finalize: Box::new(finalize_job),
        render_dash: Box::new(|dir| {
            dashboard::render_dir(dir).map_err(|e| format!("cannot read store: {e}"))
        }),
        render_diff: Box::new(render_diff),
    }
}

/// Where shard `store/shards/<id>/w<k>` should write its trace:
/// `store/traces/<id>/w<k>.trace.json`, which survives the shard
/// cleanup that follows a successful merge.
fn worker_trace_path(shard_dir: &Path) -> Option<PathBuf> {
    let worker = shard_dir.file_name()?.to_str()?.to_string();
    let job_dir = shard_dir.parent()?; // store/shards/<id>
    let job = job_dir.file_name()?.to_str()?.to_string();
    let store = job_dir.parent()?.parent()?; // store
    let dir = store.join("traces").join(job);
    std::fs::create_dir_all(&dir).ok()?;
    Some(dir.join(format!("{worker}.trace.json")))
}

/// Live progress of one worker shard, feeding the heartbeat the
/// service aggregates into `GET /jobs/{id}/progress`.
struct WorkerProgress {
    shard: usize,
    shards: usize,
    started: Instant,
    run_state: &'static str,
    panel: Option<(String, usize, Progress)>, // (id, cells_per_instance, progress)
    panels_completed: Vec<String>,
}

/// Builds the worker's [`STATUS_SCHEMA`] heartbeat: the same shape the
/// `--watch` server publishes (so `validate_status` accepts it), plus a
/// `worker` object identifying the shard.
fn worker_heartbeat_json(wp: &WorkerProgress) -> Json {
    let mut fields = vec![
        ("schema".into(), Json::Str(STATUS_SCHEMA.into())),
        ("state".into(), Json::Str(wp.run_state.into())),
        (
            "elapsed_secs".into(),
            Json::F64(wp.started.elapsed().as_secs_f64()),
        ),
        (
            "worker".into(),
            Json::Obj(vec![
                ("shard".into(), Json::U64(wp.shard as u64)),
                ("shards".into(), Json::U64(wp.shards as u64)),
            ]),
        ),
    ];
    let panel = match &wp.panel {
        None => Json::Null,
        Some((id, cells_per_instance, p)) => {
            let elapsed = wp.started.elapsed().as_secs_f64();
            Json::Obj(vec![
                ("id".into(), Json::Str(id.clone())),
                (
                    "instances".into(),
                    Json::Obj(vec![
                        ("done".into(), Json::U64(p.done as u64)),
                        ("total".into(), Json::U64(p.total as u64)),
                    ]),
                ),
                (
                    "cells".into(),
                    Json::Obj(vec![
                        (
                            "done".into(),
                            Json::U64((p.done * cells_per_instance) as u64),
                        ),
                        (
                            "total".into(),
                            Json::U64((p.total * cells_per_instance) as u64),
                        ),
                    ]),
                ),
                (
                    "last_instance".into(),
                    match p.last_instance {
                        Some(i) => Json::U64(i as u64),
                        None => Json::Null,
                    },
                ),
                (
                    "eta_secs".into(),
                    match eta_secs(p, elapsed) {
                        Some(s) => Json::F64(s),
                        None => Json::Null,
                    },
                ),
                (
                    "cache".into(),
                    match &p.cache {
                        None => Json::Null,
                        Some(c) => Json::Obj(vec![
                            ("hits".into(), Json::U64(c.hits)),
                            ("misses".into(), Json::U64(c.misses)),
                            ("rejected".into(), Json::U64(c.rejected)),
                            ("append_failed".into(), Json::U64(c.append_failed)),
                        ]),
                    },
                ),
            ])
        }
    };
    fields.push(("panel".into(), panel));
    fields.push((
        "panels_completed".into(),
        Json::Arr(
            wp.panels_completed
                .iter()
                .map(|p| Json::Str(p.clone()))
                .collect(),
        ),
    ));
    Json::Obj(fields)
}

/// `repro worker --job JSON --shard K/W --store DIR` — computes one
/// instance shard of a job into an isolated shard store. Normally
/// spawned by `repro serve`, but runnable by hand for offline
/// federation (compute halves on two machines, `repro merge` them).
pub fn worker_cmd(args: &[String]) -> Result<(), String> {
    let mut job_text: Option<String> = None;
    let mut shard_spec: Option<String> = None;
    let mut store: Option<PathBuf> = None;
    let mut shots_ledger = false;
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--job" => {
                job_text = Some(need_value(i)?.clone());
                i += 2;
            }
            "--shard" => {
                shard_spec = Some(need_value(i)?.clone());
                i += 2;
            }
            "--store" => {
                store = Some(PathBuf::from(need_value(i)?));
                i += 2;
            }
            "--shots-ledger" => {
                shots_ledger = true;
                i += 1;
            }
            other => return Err(format!("unknown worker option '{other}'")),
        }
    }
    let job_text = job_text.ok_or("worker needs --job JSON")?;
    let store = store.ok_or("worker needs --store DIR")?;
    let (shard, shards) = parse_shard(shard_spec.as_deref().unwrap_or("0/1"))?;
    let job =
        JobSpec::parse(job_text.as_bytes(), DEFAULT_SEED).map_err(|e| format!("--job: {e}"))?;
    // Either side may request provenance: the service via the job spec,
    // an offline federation by hand via the flag.
    let shots_ledger = shots_ledger || job.shots_ledger;
    let panels = expand_grid(&job.grid)?;
    let cache = CellCache::open(&store, true).map_err(|e| format!("cannot open store: {e}"))?;
    // Shard-local observability: the monitor heartbeats this worker's
    // progress into `<store>/status.json` and persists its metric
    // timeline ring as `<store>/timeline.json`, where the service
    // aggregates them for `GET /jobs/{id}/progress` and `/metrics`.
    // Extra files only — the shard store's cells are untouched, so
    // merged panels stay byte-identical.
    let progress = Arc::new(Mutex::new(WorkerProgress {
        shard,
        shards,
        started: Instant::now(),
        run_state: "running",
        panel: None,
        panels_completed: Vec::new(),
    }));
    let provider_state = Arc::clone(&progress);
    let monitoring = monitor::start(MonitorConfig {
        status_path: Some(store.join("status.json")),
        timeline_path: Some(store.join("timeline.json")),
        provider: Some(Box::new(move || {
            worker_heartbeat_json(&provider_state.lock().unwrap_or_else(|e| e.into_inner()))
        })),
        ..MonitorConfig::default()
    });
    let update = |f: &dyn Fn(&mut WorkerProgress)| {
        f(&mut progress.lock().unwrap_or_else(|e| e.into_inner()));
    };
    let result = (|| -> Result<(), String> {
        for spec in &panels {
            let scale = scale_for(&job, spec.op)?;
            eprintln!(
                "worker {shard}/{shards}: {} at {} instances x {} shots",
                spec.id, scale.instances, scale.shots
            );
            let cells_per_instance = spec.rates.len() * spec.depths.len();
            update(&|wp| {
                wp.panel = Some((spec.id.to_string(), cells_per_instance, Progress::default()))
            });
            monitor::publish_now();
            let started = std::time::Instant::now();
            let stats = run_panel_shard_opts(
                spec,
                scale,
                job.seed,
                &cache,
                shard,
                shards,
                shots_ledger,
                |p| {
                    update(&|wp| {
                        if let Some((_, _, progress)) = wp.panel.as_mut() {
                            *progress = p;
                        }
                    });
                    eprint!("\r  {}", progress_line(p, started.elapsed().as_secs_f64()));
                    if p.done == p.total {
                        eprintln!();
                    }
                },
            );
            // Durability point per panel: a killed worker resumes from here.
            cache
                .checkpoint()
                .map_err(|e| format!("store checkpoint failed: {e}"))?;
            update(&|wp| {
                wp.panel = None;
                wp.panels_completed.push(spec.id.to_string());
            });
            monitor::publish_now();
            eprintln!(
                "worker {shard}/{shards}: {} done ({} hit / {} miss)",
                spec.id, stats.hits, stats.misses
            );
        }
        cache
            .close()
            .map_err(|e| format!("store compaction failed: {e}"))?;
        Ok(())
    })();
    if monitoring {
        update(&|wp| wp.run_state = if result.is_ok() { "done" } else { "failed" });
        monitor::stop();
    }
    // Honor `QFAB_TRACE` (typically injected per shard by the service's
    // spawn hook): flush this worker's trace before exiting. The main
    // binary's flush runs only on the sweep path, not for subcommands.
    if let Ok(Some(path)) = trace::write_configured_trace() {
        eprintln!(
            "worker {shard}/{shards}: trace written to {}",
            path.display()
        );
    }
    result
}

/// Parses `K/W` (shard K of W).
fn parse_shard(spec: &str) -> Result<(usize, usize), String> {
    let Some((k, w)) = spec.split_once('/') else {
        return Err(format!("--shard wants K/W, got '{spec}'"));
    };
    let k: usize = k.parse().map_err(|e| format!("--shard: {e}"))?;
    let w: usize = w.parse().map_err(|e| format!("--shard: {e}"))?;
    if w == 0 || k >= w {
        return Err(format!("--shard {k}/{w} out of range (want K < W, W > 0)"));
    }
    Ok((k, w))
}

/// `repro merge A B ... -o DIR` — unions N stores. Returns the report;
/// the binary fails the command when conflicts were found.
pub fn merge_cmd(args: &[String]) -> Result<MergeReport, String> {
    let mut sources: Vec<PathBuf> = Vec::new();
    let mut dest: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--out" => {
                dest = Some(PathBuf::from(
                    args.get(i + 1).ok_or("-o needs a directory")?,
                ));
                i += 2;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown merge option '{other}'"))
            }
            src => {
                sources.push(PathBuf::from(src));
                i += 1;
            }
        }
    }
    if sources.is_empty() {
        return Err("merge needs at least one source store".into());
    }
    let dest = dest.ok_or("merge needs -o DIR for the destination store")?;
    for src in &sources {
        if !src.is_dir() {
            return Err(format!("source {} is not a directory", src.display()));
        }
    }
    // Both record families written under the current semantics merge:
    // result cells and (when a sweep ran with --shots-ledger) the
    // shot-provenance records attribution reads.
    merge_stores(&sources, &dest, salts_validator(&[CODE_SALT, SHOTS_SALT]))
        .map_err(|e| format!("merge failed: {e}"))
}

/// `repro serve [ADDR:PORT] --store DIR [--workers N] [--seed N]` —
/// runs the sweep service in the foreground until killed. Queued jobs
/// are durable: a killed service resumes them on the next start.
pub fn serve_cmd(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut store: Option<PathBuf> = None;
    let mut workers = DEFAULT_WORKERS;
    let mut seed = DEFAULT_SEED;
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--store" => {
                store = Some(PathBuf::from(need_value(i)?));
                i += 2;
            }
            "--workers" => {
                workers = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
                i += 2;
            }
            "--seed" => {
                seed = need_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            a if a.contains(':') && !a.starts_with('-') => {
                addr = a.to_string();
                i += 1;
            }
            other => return Err(format!("unknown serve option '{other}'")),
        }
    }
    let store = store.ok_or("serve needs --store DIR")?;
    let config = ServiceConfig {
        addr,
        store_dir: store,
        workers,
        salts: vec![CODE_SALT.to_string(), SHOTS_SALT.to_string()],
        default_seed: seed,
        poll: Duration::from_millis(200),
    };
    let handle = start(config, hooks()).map_err(|e| format!("cannot start service: {e}"))?;
    eprintln!(
        "serve: http://{}/ ({} workers; POST /jobs, GET /jobs, /dash, /diff)",
        handle.local_addr(),
        workers
    );
    handle.wait();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_aliases_expand_and_dedup() {
        let panels = expand_grid(&["fig1".into()]).unwrap();
        assert_eq!(panels.len(), 6);
        let both = expand_grid(&["all".into()]).unwrap();
        assert_eq!(both.len(), 12);
        // A panel already covered by an alias is not duplicated.
        let dup = expand_grid(&["fig1a".into(), "fig1".into()]).unwrap();
        assert_eq!(dup.len(), 6);
        assert_eq!(dup[0].id, "fig1a");
        assert!(expand_grid(&["nope".into()]).unwrap_err().contains("nope"));
    }

    fn job(grid: &[&str], scale: &str) -> JobSpec {
        JobSpec {
            grid: grid.iter().map(|s| s.to_string()).collect(),
            scale: scale.to_string(),
            instances: None,
            shots: None,
            seed: DEFAULT_SEED,
            shots_ledger: false,
        }
    }

    #[test]
    fn scales_resolve_presets_and_overrides() {
        let quick = scale_for(&job(&["fig1a"], "quick"), OpKind::Add).unwrap();
        assert_eq!(quick, Scale::quick_for(OpCost::Adder));
        let paper = scale_for(&job(&["fig1a"], "paper"), OpKind::Mul).unwrap();
        assert_eq!(paper, Scale::paper());
        let mut custom = job(&["fig1a"], "quick");
        custom.instances = Some(3);
        custom.shots = Some(17);
        let scale = scale_for(&custom, OpKind::Add).unwrap();
        assert_eq!((scale.instances, scale.shots), (3, 17));
        assert!(scale_for(&job(&["fig1a"], "warp"), OpKind::Add).is_err());
    }

    #[test]
    fn job_cells_counts_the_whole_grid() {
        let mut j = job(&["fig1a"], "quick");
        j.instances = Some(4);
        let spec = panel_by_id("fig1a").unwrap();
        let expected = (4 * spec.rates.len() * spec.depths.len()) as u64;
        assert_eq!(job_cells(&j).unwrap(), expected);
        assert!(job_cells(&job(&["bogus"], "quick")).is_err());
    }

    #[test]
    fn shard_specs_parse_and_validate() {
        assert_eq!(parse_shard("0/2"), Ok((0, 2)));
        assert_eq!(parse_shard("3/4"), Ok((3, 4)));
        assert!(parse_shard("2/2").is_err());
        assert!(parse_shard("0/0").is_err());
        assert!(parse_shard("nope").is_err());
        assert!(parse_shard("1").is_err());
    }

    #[test]
    fn merge_cmd_wants_sources_and_a_destination() {
        assert!(merge_cmd(&["-o".into(), "x".into()])
            .unwrap_err()
            .contains("at least one source"));
        assert!(merge_cmd(&["a".into()]).unwrap_err().contains("-o DIR"));
        assert!(
            merge_cmd(&["/definitely/not/a/dir".into(), "-o".into(), "x".into()])
                .unwrap_err()
                .contains("not a directory")
        );
    }

    #[test]
    fn worker_cmd_validates_its_arguments() {
        assert!(worker_cmd(&[]).unwrap_err().contains("--job"));
        assert!(
            worker_cmd(&["--job".into(), r#"{"grid":["fig1a"]}"#.into()])
                .unwrap_err()
                .contains("--store")
        );
        let err = worker_cmd(&[
            "--job".into(),
            "not json".into(),
            "--store".into(),
            std::env::temp_dir().display().to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("--job"), "{err}");
    }

    #[test]
    fn serve_cmd_validates_its_arguments() {
        assert!(serve_cmd(&[]).unwrap_err().contains("--store"));
        assert!(
            serve_cmd(&["--store".into(), "s".into(), "--workers".into(), "0".into()])
                .unwrap_err()
                .contains("--workers")
        );
        assert!(serve_cmd(&["--bogus".into()])
            .unwrap_err()
            .contains("bogus"));
    }

    /// The federation invariant at unit scale: two worker shards into
    /// separate stores, merged, equal one single-process sweep — same
    /// live cells, and a replay over the merged store is all hits with
    /// identical panel statistics.
    #[test]
    fn sharded_stores_merge_into_a_single_process_equivalent() {
        let base = std::env::temp_dir().join(format!("qfab_servecmd_fed_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let spec = panel_by_id("fig1a").unwrap();
        let scale = Scale {
            instances: 4,
            shots: 16,
        };
        let seed = 99;

        // Single-process reference.
        let single = base.join("single");
        let cache = CellCache::open(&single, true).unwrap();
        let reference = run_panel_with(&spec, scale, seed, Some(&cache), |_| {});
        cache.close().unwrap();

        // Two worker shards into isolated stores, both recording shot
        // provenance — the ledger records must federate alongside the
        // cells without perturbing them.
        let mut shards = Vec::new();
        for w in 0..2usize {
            let dir = base.join(format!("w{w}"));
            let cache = CellCache::open(&dir, true).unwrap();
            run_panel_shard_opts(&spec, scale, seed, &cache, w, 2, true, |_| {});
            cache.close().unwrap();
            shards.push(dir);
        }

        // Merge and replay: every cell cached, stats identical.
        let merged = base.join("merged");
        let report =
            merge_stores(&shards, &merged, salts_validator(&[CODE_SALT, SHOTS_SALT])).unwrap();
        assert_eq!(report.conflicts, 0);
        assert_eq!(report.rejected, 0);
        let cache = CellCache::open(&merged, true).unwrap();
        let replay = run_panel_with(&spec, scale, seed, Some(&cache), |_| {});
        let stats = replay.cache.unwrap();
        assert_eq!(stats.misses, 0, "merged store must cover every cell");
        let cells = (scale.instances * spec.rates.len() * spec.depths.len()) as u64;
        assert_eq!(stats.hits, cells);
        // The merge carried both families: every result cell plus the
        // per-cell provenance records the shards wrote alongside them.
        assert_eq!(report.added, 2 * cells);
        for (a, b) in reference.points.iter().zip(&replay.points) {
            assert_eq!(a.stats, b.stats);
        }
        cache.close().unwrap();
        let provenance = crate::shots::load_shots(&merged).unwrap();
        assert_eq!(provenance.cells.len(), cells as usize);
        let _ = std::fs::remove_dir_all(&base);
    }
}
