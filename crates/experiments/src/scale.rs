//! Experiment scale presets.

/// How many instances and shots each plotted point aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Random arithmetic instances per point (the paper: 200).
    pub instances: usize,
    /// Measurement shots per instance (the paper: 2048).
    pub shots: u64,
}

impl Scale {
    /// The paper's full scale: 200 instances × 2048 shots.
    pub fn paper() -> Self {
        Self {
            instances: 200,
            shots: 2048,
        }
    }

    /// A balanced reduced scale for interactive use.
    pub fn default_for(op_cost: OpCost) -> Self {
        match op_cost {
            OpCost::Adder => Self {
                instances: 24,
                shots: 384,
            },
            OpCost::Multiplier => Self {
                instances: 10,
                shots: 128,
            },
        }
    }

    /// The cheapest preset that still shows every figure's shape.
    pub fn quick_for(op_cost: OpCost) -> Self {
        match op_cost {
            OpCost::Adder => Self {
                instances: 8,
                shots: 128,
            },
            OpCost::Multiplier => Self {
                instances: 5,
                shots: 64,
            },
        }
    }
}

/// Coarse circuit-cost class used to pick preset scales.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpCost {
    /// ~15-qubit, ~500-gate circuits.
    Adder,
    /// ~16-qubit, ~2600-gate circuits.
    Multiplier,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        for cost in [OpCost::Adder, OpCost::Multiplier] {
            let q = Scale::quick_for(cost);
            let d = Scale::default_for(cost);
            let p = Scale::paper();
            assert!(q.instances <= d.instances && d.instances <= p.instances);
            assert!(q.shots <= d.shots && d.shots <= p.shots);
        }
    }

    #[test]
    fn paper_scale_matches_paper() {
        let p = Scale::paper();
        assert_eq!(p.instances, 200);
        assert_eq!(p.shots, 2048);
    }
}
