//! `repro bench` — trajectory-replay timing, fused plan vs per-gate.
//!
//! The Monte-Carlo pipeline spends almost all of its time replaying the
//! same transpiled circuit with different error insertions. This bench
//! times that hot path both ways on the paper's full-depth kernels —
//! through the compiled [`FusedPlan`] (what the pipeline runs) and
//! through the pre-fusion per-gate loop — and reports the mean
//! per-trajectory wall time and the speedup.
//!
//! Unlike the criterion microbenches in `qfab-bench`, this runs inside
//! the `repro` binary with zero harness overhead, so it is the quickest
//! way to confirm the fusion win on a given machine.

use qfab_circuit::Gate;
use qfab_core::{AddInstance, AqftDepth, MulInstance, Qinteger};
use qfab_math::rng::Xoshiro256StarStar;
use qfab_sim::{BatchedState, FusedPlan, Insertion, StateVector};
use qfab_transpile::{transpile, Basis};
use std::time::Instant;

/// Trajectories per SoA batch in the batched timing pass — the
/// pipeline's default batch width.
pub const BATCH_K: usize = 8;

/// Mean per-trajectory replay timings for one kernel, both paths.
#[derive(Clone, Debug)]
pub struct ReplayTimings {
    /// Kernel label, e.g. `qfm 4x4 full`.
    pub label: String,
    /// Transpiled gate count.
    pub gates: usize,
    /// Fused op count.
    pub ops: usize,
    /// Mean wall milliseconds per trajectory through the fused plan.
    pub fused_ms: f64,
    /// Mean wall milliseconds per trajectory through the per-gate loop.
    pub per_gate_ms: f64,
    /// Mean wall milliseconds per trajectory through [`BATCH_K`]-lane
    /// SoA batches of the fused plan.
    pub batched_ms: f64,
}

impl ReplayTimings {
    /// Per-gate over fused time: >1 means fusion is winning.
    pub fn speedup(&self) -> f64 {
        if self.fused_ms <= 0.0 {
            return 1.0;
        }
        self.per_gate_ms / self.fused_ms
    }

    /// Fused-sequential over batched per-trajectory time: >1 means
    /// batching is winning on top of fusion.
    pub fn batched_speedup(&self) -> f64 {
        if self.batched_ms <= 0.0 {
            return 1.0;
        }
        self.fused_ms / self.batched_ms
    }

    /// Gates-in over ops-out for the fused plan.
    pub fn fusion_ratio(&self) -> f64 {
        if self.ops == 0 {
            return 1.0;
        }
        self.gates as f64 / self.ops as f64
    }
}

/// One replay kernel: the fixed paper-geometry instances, full depth —
/// the same geometry `qfab-bench` pins.
struct Kernel {
    label: String,
    circuit: qfab_circuit::Circuit,
    initial: StateVector,
    num_qubits: u32,
}

fn kernels() -> Vec<Kernel> {
    let add = AddInstance {
        n: 7,
        m: 8,
        x: Qinteger::new(7, vec![53]),
        y: Qinteger::new(8, vec![19, 101]),
    };
    let mul = MulInstance {
        n: 4,
        m: 4,
        x: Qinteger::new(4, vec![11]),
        y: Qinteger::new(4, vec![6, 13]),
    };
    vec![
        Kernel {
            label: "qfa 7+8 full".into(),
            circuit: transpile(&add.circuit(AqftDepth::Full), Basis::CxPlus1q),
            initial: add.initial_state(),
            num_qubits: add.num_qubits(),
        },
        Kernel {
            label: "qfm 4x4 full".into(),
            circuit: transpile(&mul.circuit(AqftDepth::Full), Basis::CxPlus1q),
            initial: mul.initial_state(),
            num_qubits: mul.num_qubits(),
        },
    ]
}

/// Draws the per-trajectory error-insertion patterns: two Pauli-X
/// errors at uniform sites, like a realistic low-rate trajectory.
fn trajectories(k: &Kernel, count: usize, seed: u64) -> Vec<Vec<Insertion>> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..count)
        .map(|_| {
            let mut sites: Vec<usize> = (0..2)
                .map(|_| rng.next_bounded(k.circuit.len() as u64) as usize)
                .collect();
            sites.sort_unstable();
            sites
                .into_iter()
                .map(|after_gate| Insertion {
                    after_gate,
                    gate: Gate::X(rng.next_bounded(u64::from(k.num_qubits)) as u32),
                })
                .collect()
        })
        .collect()
}

fn replay_per_gate(k: &Kernel, insertions: &[Insertion]) -> StateVector {
    let mut s = k.initial.clone();
    let mut pending = insertions.iter().peekable();
    for (i, gate) in k.circuit.gates().iter().enumerate() {
        s.apply_gate(gate);
        while pending.peek().is_some_and(|x| x.after_gate == i) {
            s.apply_gate(&pending.next().unwrap().gate);
        }
    }
    s
}

/// Times `count` trajectory replays of each full-depth kernel through
/// both paths. Trajectories are identical across paths, so the numbers
/// are directly comparable.
pub fn run(count: usize, seed: u64) -> Vec<ReplayTimings> {
    kernels()
        .into_iter()
        .map(|k| {
            let plan = FusedPlan::compile(&k.circuit);
            let trajs = trajectories(&k, count, seed);
            // One untimed warmup pass per path primes caches and page
            // tables so the first timed trajectory is not an outlier.
            let mut s = k.initial.clone();
            plan.run_from(&mut s, 0, &trajs[0]);
            let start = Instant::now();
            for ins in &trajs {
                let mut s = k.initial.clone();
                plan.run_from(&mut s, 0, ins);
                std::hint::black_box(&s);
            }
            let fused_ms = start.elapsed().as_secs_f64() * 1e3 / count as f64;
            std::hint::black_box(replay_per_gate(&k, &trajs[0]));
            let start = Instant::now();
            for ins in &trajs {
                std::hint::black_box(replay_per_gate(&k, ins));
            }
            let per_gate_ms = start.elapsed().as_secs_f64() * 1e3 / count as f64;
            // Batched path: the same trajectories, BATCH_K lanes per
            // SoA sweep (the last chunk may be narrower).
            let run_chunk = |chunk: &[Vec<Insertion>]| {
                let lanes: Vec<&[Insertion]> = chunk.iter().map(|t| t.as_slice()).collect();
                let mut b = BatchedState::broadcast(&k.initial, lanes.len());
                plan.run_batch(&mut b, 0, &lanes);
                std::hint::black_box(&b);
            };
            run_chunk(&trajs[..trajs.len().min(BATCH_K)]);
            let start = Instant::now();
            for chunk in trajs.chunks(BATCH_K) {
                run_chunk(chunk);
            }
            let batched_ms = start.elapsed().as_secs_f64() * 1e3 / count as f64;
            ReplayTimings {
                label: k.label,
                gates: k.circuit.len(),
                ops: plan.num_ops(),
                fused_ms,
                per_gate_ms,
                batched_ms,
            }
        })
        .collect()
}

/// Formats the bench report the `repro bench` subcommand prints.
pub fn format_report(results: &[ReplayTimings], count: usize) -> String {
    let mut out =
        format!("trajectory replay, mean over {count} trajectories (batch K={BATCH_K}):\n");
    out.push_str(
        "kernel          |  gates |   ops | ratio | fused ms | per-gate ms | speedup | batched ms | batch speedup\n",
    );
    for r in results {
        out.push_str(&format!(
            "{:<15} | {:>6} | {:>5} | {:>5.2} | {:>8.3} | {:>11.3} | {:>6.2}x | {:>10.3} | {:>12.2}x\n",
            r.label,
            r.gates,
            r.ops,
            r.fusion_ratio(),
            r.fused_ms,
            r.per_gate_ms,
            r.speedup(),
            r.batched_ms,
            r.batched_speedup()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qfab_math::approx::approx_eq_slice;

    #[test]
    fn both_replay_paths_agree_and_report_is_complete() {
        // 2 trajectories keeps this fast; equivalence is the point, the
        // timings just need to be populated and positive.
        let results = run(2, 99);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.gates > r.ops, "{}: nothing fused", r.label);
            assert!(r.fused_ms > 0.0 && r.per_gate_ms > 0.0 && r.batched_ms > 0.0);
        }
        let report = format_report(&results, 2);
        assert!(report.contains("qfm 4x4 full"));
        assert!(report.contains("speedup"));
        assert!(report.contains("batched ms"));

        // Spot-check path equivalence on one kernel + trajectory.
        let k = &kernels()[1];
        let trajs = trajectories(k, 1, 99);
        let plan = FusedPlan::compile(&k.circuit);
        let mut fused = k.initial.clone();
        plan.run_from(&mut fused, 0, &trajs[0]);
        let reference = replay_per_gate(k, &trajs[0]);
        assert!(approx_eq_slice(
            fused.amplitudes(),
            reference.amplitudes(),
            1e-10
        ));
    }

    #[test]
    fn batched_replay_lanes_match_fused_sequential() {
        let k = &kernels()[1];
        let trajs = trajectories(k, 4, 7);
        let plan = FusedPlan::compile(&k.circuit);
        let lanes: Vec<&[Insertion]> = trajs.iter().map(|t| t.as_slice()).collect();
        let mut batch = BatchedState::broadcast(&k.initial, lanes.len());
        plan.run_batch(&mut batch, 0, &lanes);
        for (lane, traj) in trajs.iter().enumerate() {
            let mut sequential = k.initial.clone();
            plan.run_from(&mut sequential, 0, traj);
            assert_eq!(
                batch.lane_amplitudes(lane),
                sequential.amplitudes(),
                "lane {lane} not bit-identical"
            );
        }
    }
}
