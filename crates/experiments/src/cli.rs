//! The `repro` command registry: one table driving both the help
//! screen and dispatch.
//!
//! Every subcommand is declared exactly once, as a [`Subcommand`] row
//! pairing its name with its [`Command`] value, synopsis, and blurb.
//! The binary parses commands through [`parse_command`] and prints
//! [`usage`], both generated from the same table — so a subcommand
//! cannot exist without appearing in the help screen, and the help
//! screen cannot advertise a command the dispatcher does not accept.
//! The unit tests below pin that agreement.

use std::fmt::Write as _;

/// Root seed every sweep entry point defaults to (the paper's
/// submission date) — shared by the sweep options, the job schema, and
/// the service so a job without an explicit seed reproduces the
/// default single-process run.
pub const DEFAULT_SEED: u64 = 20220513;

/// Every dispatchable `repro` subcommand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// `list` — enumerate regenerable artifacts.
    List,
    /// `table1` — Table I gate counts.
    Table1,
    /// `fig1` — all six QFA panels.
    Fig1,
    /// `fig2` — all six QFM panels.
    Fig2,
    /// `all` — table1 + every panel.
    All,
    /// `optimal-depth` — §IV winning-depth summary.
    OptimalDepth,
    /// `superposition-drop` — §V quantitative claim.
    SuperpositionDrop,
    /// `dump` — print a circuit.
    Dump,
    /// `dash` — render a run directory to one HTML dashboard.
    Dash,
    /// `attrib` — per-site error-budget attribution from the
    /// shot-provenance ledger.
    Attrib,
    /// `diff` — statistical drift gate between two runs.
    Diff,
    /// `history` — list a store's run-history ledger.
    History,
    /// `merge` — union N stores into one (salt-checked, deduplicated).
    Merge,
    /// `serve` — long-running sweep service with worker subprocesses.
    Serve,
    /// `worker` — compute one instance shard of a job (spawned by
    /// `serve`, or by hand for offline federation).
    Worker,
    /// `trace-report` — analyze a `QFAB_TRACE` capture.
    TraceReport,
    /// `trace-merge` — union per-worker captures into one timeline.
    TraceMerge,
    /// `bench` — fused vs per-gate replay timing.
    Bench,
    /// `bench-gate` — kernel-bench regression gate.
    BenchGate,
    /// `--store-verify` — integrity-check a result store.
    StoreVerify,
}

/// One row of the command table.
pub struct Subcommand {
    /// The dispatch value.
    pub command: Command,
    /// The literal first argument that selects this command.
    pub name: &'static str,
    /// Synopsis line shown in the usage screen (starts with `name`).
    pub synopsis: &'static str,
    /// Short description shown next to the synopsis.
    pub blurb: &'static str,
}

/// The command table — the single source of truth for dispatch and
/// help.
pub const SUBCOMMANDS: &[Subcommand] = &[
    Subcommand {
        command: Command::List,
        name: "list",
        synopsis: "list",
        blurb: "every regenerable artifact",
    },
    Subcommand {
        command: Command::Table1,
        name: "table1",
        synopsis: "table1",
        blurb: "Table I gate counts (exact match)",
    },
    Subcommand {
        command: Command::Fig1,
        name: "fig1",
        synopsis: "fig1 [options]",
        blurb: "all six QFA panels",
    },
    Subcommand {
        command: Command::Fig2,
        name: "fig2",
        synopsis: "fig2 [options]",
        blurb: "all six QFM panels",
    },
    Subcommand {
        command: Command::All,
        name: "all",
        synopsis: "all [options]",
        blurb: "table1 + every panel",
    },
    Subcommand {
        command: Command::OptimalDepth,
        name: "optimal-depth",
        synopsis: "optimal-depth [options]",
        blurb: "per-rate winning depth (paper SIV)",
    },
    Subcommand {
        command: Command::SuperpositionDrop,
        name: "superposition-drop",
        synopsis: "superposition-drop [options]",
        blurb: "1:2 vs 2:2 accuracy drop (paper SV)",
    },
    Subcommand {
        command: Command::Dump,
        name: "dump",
        synopsis: "dump qfa|qfm|qft <depth|full> [--basis B] [--qasm]",
        blurb: "print a circuit (diagram or OpenQASM)",
    },
    Subcommand {
        command: Command::Dash,
        name: "dash",
        synopsis: "dash DIR [-o FILE]",
        blurb: "render a run directory to one self-contained HTML dashboard",
    },
    Subcommand {
        command: Command::Attrib,
        name: "attrib",
        synopsis: "attrib DIR [--top N] [--cross-check [N]]",
        blurb: "error-budget attribution from a --shots-ledger store",
    },
    Subcommand {
        command: Command::Diff,
        name: "diff",
        synopsis: "diff A B [--alpha P] [--json]",
        blurb: "drift gate: compare two runs' success rates (A/B: DIR or DIR@N)",
    },
    Subcommand {
        command: Command::History,
        name: "history",
        synopsis: "history DIR",
        blurb: "list the store's run-history ledger",
    },
    Subcommand {
        command: Command::Merge,
        name: "merge",
        synopsis: "merge A B... -o DIR",
        blurb: "union N result stores (salt-checked, digest-deduplicated)",
    },
    Subcommand {
        command: Command::Serve,
        name: "serve",
        synopsis: "serve [ADDR:PORT] --store DIR [--workers N] [--seed N]",
        blurb: "sweep service: durable job queue + sharded worker subprocesses",
    },
    Subcommand {
        command: Command::Worker,
        name: "worker",
        synopsis: "worker --job JSON --shard K/W --store DIR",
        blurb: "compute one instance shard of a job into a shard store",
    },
    Subcommand {
        command: Command::TraceReport,
        name: "trace-report",
        synopsis: "trace-report FILE [--top N]",
        blurb: "wall-clock attribution for a QFAB_TRACE capture",
    },
    Subcommand {
        command: Command::TraceMerge,
        name: "trace-merge",
        synopsis: "trace-merge A B... -o FILE",
        blurb: "union per-worker QFAB_TRACE captures into one timeline",
    },
    Subcommand {
        command: Command::Bench,
        name: "bench",
        synopsis: "bench [--trajectories N] [--seed N] [--history DIR]",
        blurb: "time fused vs per-gate trajectory replay (+ perf ledger)",
    },
    Subcommand {
        command: Command::BenchGate,
        name: "bench-gate",
        synopsis: "bench-gate [FILE] [--baseline FILE] [--threshold PCT] [--history DIR]",
        blurb: "kernel-bench regression gate (file- or history-based)",
    },
    Subcommand {
        command: Command::StoreVerify,
        name: "--store-verify",
        synopsis: "--store-verify DIR",
        blurb: "integrity-check a result store",
    },
];

/// Resolves a first argument to its [`Command`]; `None` for panel ids
/// and typos (the binary tries `panel_by_id` next).
pub fn parse_command(name: &str) -> Option<Command> {
    SUBCOMMANDS
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.command)
}

/// The full help screen, generated from [`SUBCOMMANDS`].
pub fn usage() -> String {
    let mut s = String::from("usage: repro <command> [args]\n\ncommands:\n");
    let width = SUBCOMMANDS
        .iter()
        .map(|c| c.synopsis.len())
        .max()
        .unwrap_or(0);
    for c in SUBCOMMANDS {
        let _ = writeln!(s, "  {:<width$}  {}", c.synopsis, c.blurb);
    }
    s.push_str(
        "  <panel id>                                          \
         one panel, e.g. fig1a (see 'repro list')\n",
    );
    s.push_str(
        "\nsweep options (fig1/fig2/all/optimal-depth/superposition-drop/<panel id>):\n\
         \x20 --scale quick|default|paper   preset instance/shot counts\n\
         \x20 --instances N                 override instance count\n\
         \x20 --shots N                     override shots per instance\n\
         \x20 --seed N                      root seed (default 20220513)\n\
         \x20 --out DIR                     also write <id>.txt / <id>.csv\n\
         \x20 --metrics                     collect telemetry, print a metrics summary,\n\
         \x20                               and write <id>.manifest.json\n\
         \x20 --store DIR                   durable cell store: reuse cached cells,\n\
         \x20                               persist fresh ones, and record the sweep\n\
         \x20                               in the run-history ledger\n\
         \x20 --resume                      continue an interrupted --store run\n\
         \x20                               (requires the store to already exist)\n\
         \x20 --no-cache                    with --store: recompute every cell and\n\
         \x20                               overwrite its record (refresh)\n\
         \x20 --shots-ledger                with --store: record per-shot provenance\n\
         \x20                               (qfab.shots.v1) for 'repro attrib'; never\n\
         \x20                               changes sampled outcomes\n\
         \x20 --watch [ADDR:PORT]           live read-only status server + status.json\n\
         \x20                               heartbeat (default 127.0.0.1:0 = free port);\n\
         \x20                               never changes the sweep's outputs\n\
         \x20 --watch-hold SECS             keep the --watch server up this long after\n\
         \x20                               the sweep finishes (default 0)\n\
         \nenvironment:\n\
         \x20 QFAB_TRACE=on[:<path>]        capture a Chrome trace_event timeline\n\
         \x20                               (default path qfab_trace.json)\n\
         \nrun 'repro list' for every regenerable artifact.",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_names_are_unique_and_synopses_lead_with_them() {
        for (i, a) in SUBCOMMANDS.iter().enumerate() {
            assert!(
                a.synopsis.starts_with(a.name),
                "synopsis for {} must start with its name",
                a.name
            );
            for b in &SUBCOMMANDS[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate subcommand name");
                assert_ne!(a.command, b.command, "two names for one command");
            }
        }
    }

    #[test]
    fn usage_and_dispatch_agree() {
        let text = usage();
        for c in SUBCOMMANDS {
            assert!(
                text.contains(c.synopsis),
                "usage screen is missing '{}'",
                c.synopsis
            );
            assert!(
                text.contains(c.blurb),
                "usage screen is missing the blurb for '{}'",
                c.name
            );
            assert_eq!(
                parse_command(c.name),
                Some(c.command),
                "advertised command '{}' does not dispatch",
                c.name
            );
        }
    }

    #[test]
    fn every_required_subcommand_is_listed() {
        for name in [
            "dash",
            "attrib",
            "diff",
            "history",
            "merge",
            "serve",
            "worker",
            "bench",
            "trace-report",
            "trace-merge",
            "bench-gate",
            "--store-verify",
        ] {
            assert!(parse_command(name).is_some(), "missing '{name}'");
        }
        let text = usage();
        assert!(text.contains("--store DIR"));
        assert!(text.contains("--resume"));
        assert!(text.contains("--no-cache"));
        assert!(text.contains("--metrics"));
        assert!(text.contains("--watch [ADDR:PORT]"));
        assert!(text.contains("--watch-hold SECS"));
        assert!(text.contains("--shots-ledger"));
    }

    #[test]
    fn panel_ids_and_typos_fall_through() {
        assert_eq!(parse_command("fig1a"), None);
        assert_eq!(parse_command("dashh"), None);
        assert_eq!(parse_command(""), None);
    }
}
