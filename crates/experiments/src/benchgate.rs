//! Kernel-benchmark regression gate — the engine behind
//! `repro bench-gate`.
//!
//! Compares a freshly emitted `BENCH_kernels.json` manifest (see
//! `qfab-bench`) against a committed baseline: for every
//! `bench.kernels.*` histogram present in both, the gate flags a
//! regression when `current_mean > baseline_mean × (1 + threshold%)`.
//!
//! The committed baseline is a coarse cross-machine guard, so CI runs
//! with a generous threshold (orders of magnitude catch real breakage:
//! an accidentally quadratic kernel, a lost fast path). For same-machine
//! comparisons, regenerate the baseline locally and gate tightly.

use qfab_telemetry::Json;
use std::fmt::Write as _;

/// Comparison of one kernel histogram between baseline and current.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelDelta {
    /// Histogram name (e.g. `bench.kernels.14q.h_low_ns`).
    pub name: String,
    /// Baseline mean (ns).
    pub baseline_mean: f64,
    /// Current mean (ns).
    pub current_mean: f64,
    /// `current/baseline − 1`, as a percent (negative = faster).
    pub change_pct: f64,
    /// Whether the change exceeds the threshold.
    pub regressed: bool,
}

/// The gate's verdict over all kernels.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Every kernel present in both manifests, sorted by name.
    pub deltas: Vec<KernelDelta>,
    /// Kernels only in the baseline (vanished from the bench).
    pub missing: Vec<String>,
    /// Kernels only in the current run (new, ungated).
    pub new: Vec<String>,
    /// The threshold applied, in percent.
    pub threshold_pct: f64,
}

impl GateReport {
    /// True when no kernel regressed beyond the threshold.
    pub fn passed(&self) -> bool {
        self.deltas.iter().all(|d| !d.regressed)
    }
}

/// Extracts `bench.kernels.*` and `bench.replay.*` histogram means
/// (per-gate kernels and the fused/per-gate/batched replay paths) from
/// a manifest document.
fn kernel_means(doc: &Json) -> Result<Vec<(String, f64)>, String> {
    let Some(Json::Obj(hists)) = doc.get("metrics").and_then(|m| m.get("histograms")) else {
        return Err("manifest has no metrics.histograms block".into());
    };
    let mut out: Vec<(String, f64)> = hists
        .iter()
        .filter(|(name, _)| name.starts_with("bench.kernels.") || name.starts_with("bench.replay."))
        .filter_map(|(name, h)| Some((name.clone(), h.get("mean")?.as_f64()?)))
        .collect();
    if out.is_empty() {
        return Err("manifest has no bench.kernels.* histograms".into());
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Runs the gate: baseline vs current manifests, threshold in percent.
pub fn compare(baseline: &Json, current: &Json, threshold_pct: f64) -> Result<GateReport, String> {
    let base = kernel_means(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = kernel_means(current).map_err(|e| format!("current: {e}"))?;
    let mut report = GateReport {
        threshold_pct,
        ..GateReport::default()
    };
    for (name, baseline_mean) in &base {
        match cur.iter().find(|(n, _)| n == name) {
            Some((_, current_mean)) => {
                let change_pct = if *baseline_mean > 0.0 {
                    (current_mean / baseline_mean - 1.0) * 100.0
                } else {
                    0.0
                };
                report.deltas.push(KernelDelta {
                    name: name.clone(),
                    baseline_mean: *baseline_mean,
                    current_mean: *current_mean,
                    change_pct,
                    regressed: change_pct > threshold_pct,
                });
            }
            None => report.missing.push(name.clone()),
        }
    }
    for (name, _) in &cur {
        if !base.iter().any(|(n, _)| n == name) {
            report.new.push(name.clone());
        }
    }
    Ok(report)
}

/// Renders the gate report.
pub fn format_report(report: &GateReport) -> String {
    let mut s = format!(
        "bench gate: {} kernels, threshold +{:.0}%\n",
        report.deltas.len(),
        report.threshold_pct
    );
    let name_width = report
        .deltas
        .iter()
        .map(|d| d.name.len())
        .max()
        .unwrap_or(0)
        .max("kernel".len());
    let _ = writeln!(
        s,
        "  {:<name_width$} {:>12} {:>12} {:>9}",
        "kernel", "baseline", "current", "change"
    );
    for d in &report.deltas {
        let _ = writeln!(
            s,
            "  {:<name_width$} {:>10.0}ns {:>10.0}ns {:>+8.1}%{}",
            d.name,
            d.baseline_mean,
            d.current_mean,
            d.change_pct,
            if d.regressed { "  REGRESSED" } else { "" }
        );
    }
    for name in &report.missing {
        let _ = writeln!(s, "  {name}: in baseline but not in current run");
    }
    for name in &report.new {
        let _ = writeln!(s, "  {name}: new kernel, no baseline (ungated)");
    }
    let _ = writeln!(
        s,
        "{}",
        if report.passed() {
            "bench gate PASSED"
        } else {
            "bench gate FAILED"
        }
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(kernels: &[(&str, f64)]) -> Json {
        let hists: Vec<String> = kernels
            .iter()
            .map(|(name, mean)| {
                format!(
                    r#""{name}":{{"count":25,"sum":100,"mean":{mean},"min":1,"max":9,"p50":4,"p90":8,"p99":9}}"#
                )
            })
            .collect();
        Json::parse(&format!(
            r#"{{"schema":"qfab.run.v1","id":"BENCH_kernels","metrics":{{"counters":{{}},"gauges":{{}},"histograms":{{{}}}}}}}"#,
            hists.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn passes_within_threshold_and_flags_beyond() {
        let base = manifest(&[
            ("bench.kernels.14q.h_low_ns", 100.0),
            ("bench.kernels.14q.cx_ns", 200.0),
        ]);
        let cur = manifest(&[
            ("bench.kernels.14q.h_low_ns", 120.0),
            ("bench.kernels.14q.cx_ns", 700.0),
        ]);
        let report = compare(&base, &cur, 50.0).unwrap();
        assert_eq!(report.deltas.len(), 2);
        assert!(!report.passed());
        let cx = report
            .deltas
            .iter()
            .find(|d| d.name.ends_with("cx_ns"))
            .unwrap();
        assert!(cx.regressed);
        assert!((cx.change_pct - 250.0).abs() < 1e-9);
        let h = report
            .deltas
            .iter()
            .find(|d| d.name.ends_with("h_low_ns"))
            .unwrap();
        assert!(!h.regressed);
        // Speedups never trip the gate.
        let faster = manifest(&[
            ("bench.kernels.14q.h_low_ns", 10.0),
            ("bench.kernels.14q.cx_ns", 20.0),
        ]);
        assert!(compare(&base, &faster, 50.0).unwrap().passed());
    }

    #[test]
    fn tracks_missing_and_new_kernels_without_failing() {
        let base = manifest(&[("bench.kernels.14q.h_low_ns", 100.0)]);
        let cur = manifest(&[("bench.kernels.17q.rz_ns", 80.0)]);
        let report = compare(&base, &cur, 50.0).unwrap();
        assert!(report.passed(), "coverage drift alone is not a regression");
        assert_eq!(report.missing, vec!["bench.kernels.14q.h_low_ns"]);
        assert_eq!(report.new, vec!["bench.kernels.17q.rz_ns"]);
        let rendered = format_report(&report);
        assert!(rendered.contains("in baseline but not"), "{rendered}");
        assert!(rendered.contains("no baseline (ungated)"), "{rendered}");
        assert!(rendered.contains("bench gate PASSED"), "{rendered}");
    }

    #[test]
    fn replay_histograms_are_gated_too() {
        let base = manifest(&[
            ("bench.replay.qfm_full.fused_ns", 1000.0),
            ("bench.replay.qfm_full.batched_ns", 400.0),
        ]);
        let cur = manifest(&[
            ("bench.replay.qfm_full.fused_ns", 1100.0),
            // Batched path collapsed back to sequential cost: regression.
            ("bench.replay.qfm_full.batched_ns", 1100.0),
        ]);
        let report = compare(&base, &cur, 50.0).unwrap();
        assert_eq!(report.deltas.len(), 2);
        assert!(!report.passed());
        let batched = report
            .deltas
            .iter()
            .find(|d| d.name.ends_with("batched_ns"))
            .unwrap();
        assert!(batched.regressed);
    }

    #[test]
    fn rejects_manifests_without_kernel_histograms() {
        let empty = Json::parse(r#"{"schema":"qfab.run.v1","id":"x"}"#).unwrap();
        let base = manifest(&[("bench.kernels.14q.h_low_ns", 100.0)]);
        assert!(compare(&empty, &base, 50.0).is_err());
        assert!(compare(&base, &empty, 50.0).is_err());
    }

    #[test]
    fn report_marks_regression_lines() {
        let base = manifest(&[("bench.kernels.14q.x_ns", 100.0)]);
        let cur = manifest(&[("bench.kernels.14q.x_ns", 400.0)]);
        let report = compare(&base, &cur, 100.0).unwrap();
        let rendered = format_report(&report);
        assert!(rendered.contains("REGRESSED"), "{rendered}");
        assert!(rendered.contains("bench gate FAILED"), "{rendered}");
        assert!(rendered.contains("+300.0%"), "{rendered}");
    }
}
