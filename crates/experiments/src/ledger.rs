//! Run-history ledger: an append-only record of completed sweeps.
//!
//! Every store directory can carry a `history.wal` alongside the cell
//! store. When a sweep completes, `repro` appends one *ledger entry*:
//! the run's [`RunSummary`] (schema `qfab.history.v1`) plus a best-effort
//! `git describe` note, framed by the same checksummed WAL encoding the
//! cell store uses — so a torn append is detected and skipped on read,
//! never mistaken for history. Each entry is keyed by the digest of its
//! summary, which doubles as a dedup guard: re-running an already
//! recorded sweep (a fully cached replay) does not append a duplicate.
//!
//! `repro history DIR` lists the ledger; `repro diff` accepts `DIR@N`
//! to compare against any recorded entry (`N` may be negative to count
//! from the latest), so "did this branch move the physics?" is a
//! one-command question against any point in the store's history.

use crate::rundata::RunSummary;
use qfab_store::wal::{encode_record, scan, Key};
use qfab_store::{blake2s256, to_hex};
use qfab_telemetry::Json;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::Path;

/// Ledger file name inside a store directory.
pub const HISTORY_FILE: &str = "history.wal";

/// One recorded sweep.
#[derive(Clone, Debug)]
pub struct LedgerEntry {
    /// Digest of the summary (hex), the entry's identity.
    pub digest: String,
    /// The recorded run summary.
    pub summary: RunSummary,
    /// `git describe` output at record time, when available.
    pub git: Option<String>,
}

/// The decoded ledger.
#[derive(Clone, Debug, Default)]
pub struct History {
    /// Entries in append order.
    pub entries: Vec<LedgerEntry>,
    /// Whether a torn tail was detected (and ignored) on read.
    pub truncated: bool,
    /// Well-framed records whose payload was not a valid summary
    /// (foreign or future-schema — skipped).
    pub skipped: u64,
}

fn summary_key(summary: &RunSummary) -> Key {
    blake2s256(summary.to_json().encode().as_bytes())
}

fn encode_entry(summary: &RunSummary, git: Option<&str>) -> (Key, Vec<u8>) {
    let Json::Obj(mut fields) = summary.to_json() else {
        unreachable!("summaries encode as objects")
    };
    if let Some(note) = git {
        fields.push(("git".into(), Json::Str(note.into())));
    }
    (
        summary_key(summary),
        Json::Obj(fields).encode().into_bytes(),
    )
}

fn decode_entry(key: &Key, value: &[u8]) -> Option<LedgerEntry> {
    let doc = Json::parse(std::str::from_utf8(value).ok()?).ok()?;
    let summary = RunSummary::from_json(&doc).ok()?;
    let git = doc.get("git").and_then(Json::as_str).map(str::to_string);
    Some(LedgerEntry {
        digest: to_hex(key),
        summary,
        git,
    })
}

/// Reads the ledger at `dir`; a missing file is an empty history.
pub fn read(dir: &Path) -> io::Result<History> {
    let bytes = match std::fs::read(dir.join(HISTORY_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(History::default()),
        Err(e) => return Err(e),
    };
    let outcome = scan(&bytes);
    let mut history = History {
        truncated: outcome.truncated > 0,
        ..History::default()
    };
    for record in &outcome.records {
        match decode_entry(&record.key, &record.value) {
            Some(entry) => history.entries.push(entry),
            None => history.skipped += 1,
        }
    }
    Ok(history)
}

/// Appends `summary` to the ledger unless it is identical to the most
/// recent entry. Returns whether a record was written.
pub fn append(dir: &Path, summary: &RunSummary, git: Option<&str>) -> io::Result<bool> {
    let (key, value) = encode_entry(summary, git);
    if let Some(last) = read(dir)?.entries.last() {
        if last.digest == to_hex(&key) {
            return Ok(false);
        }
    }
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(HISTORY_FILE))?;
    file.write_all(&encode_record(&key, &value))?;
    file.sync_all()?;
    Ok(true)
}

/// Best-effort `git describe` for provenance notes; `None` when git or
/// the repository is unavailable.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let note = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!note.is_empty()).then_some(note)
}

/// Resolves an entry index: non-negative from the start, negative from
/// the end (`-1` = latest).
pub fn resolve(history: &History, index: i64) -> Option<&LedgerEntry> {
    let len = history.entries.len() as i64;
    let i = if index < 0 { len + index } else { index };
    (0..len).contains(&i).then(|| &history.entries[i as usize])
}

/// Renders `repro history` output.
pub fn format_history(history: &History) -> String {
    let mut s = format!("run history: {} entr", history.entries.len());
    s.push_str(if history.entries.len() == 1 {
        "y"
    } else {
        "ies"
    });
    if history.skipped > 0 {
        let _ = write!(s, " ({} unreadable records skipped)", history.skipped);
    }
    if history.truncated {
        s.push_str(" [torn tail ignored]");
    }
    s.push('\n');
    for (i, entry) in history.entries.iter().enumerate() {
        let _ = writeln!(
            s,
            "[{i}] digest {}  git {}",
            &entry.digest[..12.min(entry.digest.len())],
            entry.git.as_deref().unwrap_or("-")
        );
        for panel in &entry.summary.panels {
            let (successes, instances) = panel.totals();
            let pct = 100.0 * successes as f64 / instances.max(1) as f64;
            let _ = writeln!(
                s,
                "    {:<18} seed {:<12} {:>5} cells  {:>6}/{:<6} ({:.1}%)",
                panel.id,
                panel.key.seed,
                panel.cells.len(),
                successes,
                instances,
                pct
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rundata::{CellSummary, PanelKey, PanelSummary};

    fn summary(successes: u64) -> RunSummary {
        RunSummary {
            salt: "qfab-cell-v2".into(),
            panels: vec![PanelSummary {
                id: "fig1a".into(),
                key: PanelKey {
                    op: "add".into(),
                    n: 7,
                    m: 8,
                    ox: 1,
                    oy: 1,
                    err: "1q".into(),
                    shots: 32,
                    seed: 9,
                },
                cells: vec![CellSummary {
                    ri: 0,
                    rate: 0.0,
                    di: 0,
                    depth: "full".into(),
                    successes,
                    instances: 20,
                }],
            }],
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qfab_ledger_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = tmp("roundtrip");
        assert!(read(&dir).unwrap().entries.is_empty());
        assert!(append(&dir, &summary(18), Some("v1.2-3-gabc")).unwrap());
        assert!(append(&dir, &summary(15), None).unwrap());
        let history = read(&dir).unwrap();
        assert_eq!(history.entries.len(), 2);
        assert!(!history.truncated);
        assert_eq!(history.skipped, 0);
        assert_eq!(history.entries[0].git.as_deref(), Some("v1.2-3-gabc"));
        assert_eq!(history.entries[0].summary, summary(18));
        assert_eq!(history.entries[1].git, None);
        assert_eq!(history.entries[1].summary, summary(15));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_tail_appends_are_deduplicated() {
        let dir = tmp("dedup");
        assert!(append(&dir, &summary(18), Some("a")).unwrap());
        // Same summary, even under a different git note: no new entry.
        assert!(!append(&dir, &summary(18), Some("b")).unwrap());
        assert_eq!(read(&dir).unwrap().entries.len(), 1);
        // A different summary appends, after which the earlier one may
        // legitimately recur (A, B, A is real history).
        assert!(append(&dir, &summary(15), None).unwrap());
        assert!(append(&dir, &summary(18), None).unwrap());
        assert_eq!(read(&dir).unwrap().entries.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_ignored_not_fatal() {
        let dir = tmp("torn");
        append(&dir, &summary(18), None).unwrap();
        append(&dir, &summary(15), None).unwrap();
        let path = dir.join(HISTORY_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let history = read(&dir).unwrap();
        assert_eq!(history.entries.len(), 1);
        assert!(history.truncated);
        // The ledger stays appendable after a torn tail... but the torn
        // bytes remain, so the next scan still stops at the tear.
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn negative_indices_resolve_from_the_end() {
        let dir = tmp("resolve");
        append(&dir, &summary(18), None).unwrap();
        append(&dir, &summary(15), None).unwrap();
        let history = read(&dir).unwrap();
        assert_eq!(resolve(&history, 0).unwrap().summary, summary(18));
        assert_eq!(resolve(&history, 1).unwrap().summary, summary(15));
        assert_eq!(resolve(&history, -1).unwrap().summary, summary(15));
        assert_eq!(resolve(&history, -2).unwrap().summary, summary(18));
        assert!(resolve(&history, 2).is_none());
        assert!(resolve(&history, -3).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_records_are_skipped_and_counted() {
        let dir = tmp("foreign");
        append(&dir, &summary(18), None).unwrap();
        let value = br#"{"schema":"qfab.other.v1"}"#;
        let key = blake2s256(value);
        let mut file = OpenOptions::new()
            .append(true)
            .open(dir.join(HISTORY_FILE))
            .unwrap();
        file.write_all(&encode_record(&key, value)).unwrap();
        drop(file);
        let history = read(&dir).unwrap();
        assert_eq!(history.entries.len(), 1);
        assert_eq!(history.skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn history_listing_shows_digest_git_and_headline_rates() {
        let dir = tmp("format");
        append(&dir, &summary(18), Some("v2-dirty")).unwrap();
        let history = read(&dir).unwrap();
        let text = format_history(&history);
        assert!(text.contains("run history: 1 entry"), "{text}");
        assert!(text.contains("v2-dirty"), "{text}");
        assert!(text.contains("fig1a"), "{text}");
        assert!(text.contains("18/20"), "{text}");
        assert!(text.contains("(90.0%)"), "{text}");
        assert!(text.contains(&history.entries[0].digest[..12]), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
