//! Perf-trajectory ledger: append-only `qfab.perf.v1` bench history.
//!
//! Every `repro bench` run appends one record — the replay-kernel mean
//! timings plus a best-effort `git describe` note — to a WAL-framed
//! `bench-history.wal`, and snapshots the same numbers as a
//! `BENCH_replay.json` manifest (the `qfab.run.v1` shape `bench-gate`
//! already consumes). Per-PR perf history therefore accrues in one
//! torn-write-safe file, and "did this branch slow the replay path?"
//! becomes `repro bench-gate --history DIR`: the latest recorded entry
//! against its predecessor (or any explicit baseline manifest), on the
//! same machine — so the threshold can be far tighter than the
//! cross-machine committed baseline allows.
//!
//! The framing, dedup, and torn-tail discipline mirror the run-history
//! ledger in [`crate::ledger`]; only the payload schema differs.

use crate::replaybench::ReplayTimings;
use qfab_store::wal::{encode_record, scan, Key};
use qfab_store::{blake2s256, to_hex};
use qfab_telemetry::Json;
use std::fmt::Write as _;
use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;

/// Ledger file name (repo root by convention).
pub const PERF_FILE: &str = "bench-history.wal";

/// Schema identifier of each perf record.
pub const PERF_SCHEMA: &str = "qfab.perf.v1";

/// Snapshot manifest file name (repo root by convention).
pub const REPLAY_SNAPSHOT: &str = "BENCH_replay.json";

/// One timed kernel histogram: full telemetry-style name and its mean.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfKernel {
    /// Histogram name, e.g. `bench.replay.qfm_4x4_full.fused_ns`.
    pub name: String,
    /// Mean wall nanoseconds per trajectory.
    pub mean_ns: f64,
}

/// One recorded bench run.
#[derive(Clone, Debug)]
pub struct PerfEntry {
    /// Digest of the measurement payload (hex), the entry's identity.
    pub digest: String,
    /// Trajectories per kernel per path.
    pub trajectories: u64,
    /// Kernel means, sorted by name.
    pub kernels: Vec<PerfKernel>,
    /// `git describe` output at record time, when available.
    pub git: Option<String>,
}

/// The decoded perf history.
#[derive(Clone, Debug, Default)]
pub struct PerfHistory {
    /// Entries in append order.
    pub entries: Vec<PerfEntry>,
    /// Whether a torn tail was detected (and ignored) on read.
    pub truncated: bool,
    /// Well-framed records whose payload was not a valid perf entry.
    pub skipped: u64,
}

/// Flattens `repro bench` timings into named kernel means, one
/// histogram per (kernel, path), matching the `bench.replay.*` naming
/// the criterion bench and `bench-gate` use.
pub fn kernels_from_timings(results: &[ReplayTimings]) -> Vec<PerfKernel> {
    let mut out = Vec::new();
    for r in results {
        let slug: String = r
            .label
            .chars()
            .map(|c| if c == ' ' { '_' } else { c })
            .collect();
        for (path, ms) in [
            ("fused_ns", r.fused_ms),
            ("per_gate_ns", r.per_gate_ms),
            ("batched_ns", r.batched_ms),
        ] {
            out.push(PerfKernel {
                name: format!("bench.replay.{slug}.{path}"),
                mean_ns: ms * 1e6,
            });
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Builds the `qfab.run.v1` manifest holding these kernel means — the
/// exact shape [`crate::benchgate::compare`] consumes, so a history
/// entry and a `BENCH_kernels.json` file are interchangeable operands.
pub fn manifest(kernels: &[PerfKernel], trajectories: u64) -> Json {
    let hists = kernels
        .iter()
        .map(|k| {
            // Only `mean` is load-bearing for the gate; the rest keeps
            // the histogram shape consistent with real manifests.
            let h = Json::Obj(vec![
                ("count".into(), Json::U64(trajectories)),
                ("sum".into(), Json::F64(k.mean_ns * trajectories as f64)),
                ("mean".into(), Json::F64(k.mean_ns)),
            ]);
            (k.name.clone(), h)
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str("qfab.run.v1".into())),
        ("id".into(), Json::Str("BENCH_replay".into())),
        ("trajectories".into(), Json::U64(trajectories)),
        (
            "metrics".into(),
            Json::Obj(vec![
                ("counters".into(), Json::Obj(vec![])),
                ("gauges".into(), Json::Obj(vec![])),
                ("histograms".into(), Json::Obj(hists)),
            ]),
        ),
    ])
}

/// The manifest view of a recorded entry (for gating against it).
pub fn entry_manifest(entry: &PerfEntry) -> Json {
    manifest(&entry.kernels, entry.trajectories)
}

fn measurement_json(trajectories: u64, kernels: &[PerfKernel]) -> Json {
    let ks = kernels
        .iter()
        .map(|k| (k.name.clone(), Json::F64(k.mean_ns)))
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str(PERF_SCHEMA.into())),
        ("trajectories".into(), Json::U64(trajectories)),
        ("kernels".into(), Json::Obj(ks)),
    ])
}

fn encode_entry(trajectories: u64, kernels: &[PerfKernel], git: Option<&str>) -> (Key, Vec<u8>) {
    let measurement = measurement_json(trajectories, kernels);
    let key = blake2s256(measurement.encode().as_bytes());
    let Json::Obj(mut fields) = measurement else {
        unreachable!("measurements encode as objects")
    };
    if let Some(note) = git {
        fields.push(("git".into(), Json::Str(note.into())));
    }
    (key, Json::Obj(fields).encode().into_bytes())
}

fn decode_entry(key: &Key, value: &[u8]) -> Option<PerfEntry> {
    let doc = Json::parse(std::str::from_utf8(value).ok()?).ok()?;
    if doc.get("schema")?.as_str()? != PERF_SCHEMA {
        return None;
    }
    let Some(Json::Obj(ks)) = doc.get("kernels") else {
        return None;
    };
    let mut kernels = ks
        .iter()
        .map(|(name, v)| {
            Some(PerfKernel {
                name: name.clone(),
                mean_ns: v.as_f64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    kernels.sort_by(|a, b| a.name.cmp(&b.name));
    Some(PerfEntry {
        digest: to_hex(key),
        trajectories: doc.get("trajectories")?.as_u64()?,
        kernels,
        git: doc.get("git").and_then(Json::as_str).map(str::to_string),
    })
}

/// Reads the perf ledger at `dir`; a missing file is an empty history.
pub fn read(dir: &Path) -> io::Result<PerfHistory> {
    let bytes = match std::fs::read(dir.join(PERF_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(PerfHistory::default()),
        Err(e) => return Err(e),
    };
    let outcome = scan(&bytes);
    let mut history = PerfHistory {
        truncated: outcome.truncated > 0,
        ..PerfHistory::default()
    };
    for record in &outcome.records {
        match decode_entry(&record.key, &record.value) {
            Some(entry) => history.entries.push(entry),
            None => history.skipped += 1,
        }
    }
    Ok(history)
}

/// Appends one bench run unless it is identical to the most recent
/// entry. Returns whether a record was written.
pub fn append(
    dir: &Path,
    trajectories: u64,
    kernels: &[PerfKernel],
    git: Option<&str>,
) -> io::Result<bool> {
    let (key, value) = encode_entry(trajectories, kernels, git);
    if let Some(last) = read(dir)?.entries.last() {
        if last.digest == to_hex(&key) {
            return Ok(false);
        }
    }
    fs::create_dir_all(dir)?;
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(PERF_FILE))?;
    file.write_all(&encode_record(&key, &value))?;
    file.sync_all()?;
    Ok(true)
}

/// Resolves an entry index: non-negative from the start, negative from
/// the end (`-1` = latest).
pub fn resolve(history: &PerfHistory, index: i64) -> Option<&PerfEntry> {
    let len = history.entries.len() as i64;
    let i = if index < 0 { len + index } else { index };
    (0..len).contains(&i).then(|| &history.entries[i as usize])
}

/// Renders a short listing of the perf history.
pub fn format_history(history: &PerfHistory) -> String {
    let mut s = format!("bench history: {} entr", history.entries.len());
    s.push_str(if history.entries.len() == 1 {
        "y"
    } else {
        "ies"
    });
    if history.skipped > 0 {
        let _ = write!(s, " ({} unreadable records skipped)", history.skipped);
    }
    if history.truncated {
        s.push_str(" [torn tail ignored]");
    }
    s.push('\n');
    for (i, entry) in history.entries.iter().enumerate() {
        let _ = writeln!(
            s,
            "[{i}] digest {}  git {}  {} kernels x {} trajectories",
            &entry.digest[..12.min(entry.digest.len())],
            entry.git.as_deref().unwrap_or("-"),
            entry.kernels.len(),
            entry.trajectories
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings(fused: f64) -> Vec<ReplayTimings> {
        vec![ReplayTimings {
            label: "qfm 4x4 full".into(),
            gates: 1000,
            ops: 300,
            fused_ms: fused,
            per_gate_ms: fused * 3.0,
            batched_ms: fused / 2.0,
        }]
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qfab_perf_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn timings_flatten_to_replay_histogram_names() {
        let kernels = kernels_from_timings(&timings(2.0));
        let names: Vec<&str> = kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "bench.replay.qfm_4x4_full.batched_ns",
                "bench.replay.qfm_4x4_full.fused_ns",
                "bench.replay.qfm_4x4_full.per_gate_ns",
            ]
        );
        let fused = kernels
            .iter()
            .find(|k| k.name.ends_with("fused_ns"))
            .unwrap();
        assert!((fused.mean_ns - 2e6).abs() < 1e-6);
    }

    #[test]
    fn manifest_is_gateable_and_append_read_round_trips() {
        let dir = tmp("roundtrip");
        let k1 = kernels_from_timings(&timings(2.0));
        let k2 = kernels_from_timings(&timings(9.0));
        assert!(append(&dir, 20, &k1, Some("v1-g1234")).unwrap());
        assert!(append(&dir, 20, &k2, None).unwrap());
        // Identical re-measurement dedups against the tail.
        assert!(!append(&dir, 20, &k2, Some("other-note")).unwrap());
        let history = read(&dir).unwrap();
        assert_eq!(history.entries.len(), 2);
        assert_eq!(history.entries[0].git.as_deref(), Some("v1-g1234"));
        assert_eq!(history.entries[0].kernels, k1);
        assert_eq!(history.entries[1].trajectories, 20);
        // The latest entry gates against its predecessor: 4.5x slower
        // fused path must trip a 100% threshold.
        let base = entry_manifest(resolve(&history, -2).unwrap());
        let cur = entry_manifest(resolve(&history, -1).unwrap());
        let report = crate::benchgate::compare(&base, &cur, 100.0).unwrap();
        assert_eq!(report.deltas.len(), 3);
        assert!(!report.passed());
        let listing = format_history(&history);
        assert!(listing.contains("bench history: 2 entries"), "{listing}");
        assert!(listing.contains("v1-g1234"), "{listing}");
        assert!(listing.contains("3 kernels x 20 trajectories"), "{listing}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_creates_a_missing_history_dir() {
        let dir = tmp("mkdir").join("nested").join("history");
        let k = kernels_from_timings(&timings(2.0));
        assert!(append(&dir, 4, &k, None).unwrap());
        assert_eq!(read(&dir).unwrap().entries.len(), 1);
        let _ = std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
    }

    #[test]
    fn torn_tail_and_foreign_records_are_tolerated() {
        let dir = tmp("torn");
        let k = kernels_from_timings(&timings(2.0));
        append(&dir, 20, &k, None).unwrap();
        // A foreign well-framed record is skipped, not fatal.
        let value = br#"{"schema":"qfab.other.v1"}"#;
        let mut file = OpenOptions::new()
            .append(true)
            .open(dir.join(PERF_FILE))
            .unwrap();
        file.write_all(&encode_record(&blake2s256(value), value))
            .unwrap();
        drop(file);
        let history = read(&dir).unwrap();
        assert_eq!(history.entries.len(), 1);
        assert_eq!(history.skipped, 1);
        // Tear the tail: the scan stops cleanly at the last good frame.
        let path = dir.join(PERF_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let history = read(&dir).unwrap();
        assert_eq!(history.entries.len(), 1);
        assert!(history.truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_manifest_has_the_qfab_run_shape() {
        let kernels = kernels_from_timings(&timings(2.0));
        let doc = manifest(&kernels, 20);
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("qfab.run.v1"));
        assert_eq!(doc.get("id").unwrap().as_str(), Some("BENCH_replay"));
        let mean = doc
            .get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(|h| h.get("bench.replay.qfm_4x4_full.batched_ns"))
            .and_then(|h| h.get("mean"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((mean - 1e6).abs() < 1e-6);
    }
}
