//! The panel cell cache: experiment-identity keying over `qfab-store`.
//!
//! ## Keying scheme
//!
//! One record = one *cell*: the outcome of a single arithmetic instance
//! at one (error rate × AQFT depth) grid position. The record key is
//! the BLAKE2s-256 digest of the cell's canonical identity JSON, which
//! covers **every input that can change the outcome**:
//!
//! ```json
//! {"salt":"qfab-cell-v1","op":"add","n":7,"m":8,"ox":1,"oy":2,
//!  "err":"2q","config":{"shots":128,"optimize":false},"seed":20220513,
//!  "inst":3,"ri":2,"rate":0.007,"di":1,"depth":"2"}
//! ```
//!
//! The grid *indices* (`ri`, `di`) are keyed alongside the values
//! because the per-cell RNG stream is derived from them; the
//! code-version `salt` is bumped whenever simulation semantics change,
//! which retires every existing record at once (their digests no longer
//! match any lookup). The instance *count* is deliberately absent:
//! ensembles are drawn sequentially from a seeded stream, so instance
//! `i` is identical for any scale with more than `i` instances and a
//! grown sweep reuses every cell of a smaller one.
//!
//! ## Trust model
//!
//! A lookup never trusts a record blindly: the payload embeds the full
//! identity, and [`CellCache::lookup_instance`] re-derives the digest
//! and re-checks the salt before serving it. A record that fails either
//! check is counted (`exp.cache.rejected`) and treated as a miss, so a
//! stale or hand-edited store can cost time but never poison a panel.

use crate::sweep::{ErrorTarget, OpKind, PanelSpec};
use qfab_core::fingerprint::f64_identity;
use qfab_core::{AqftDepth, InstanceOutcome, RunConfig};
use qfab_store::{blake2s256, Key, RecoveryReport, Store};
use qfab_telemetry::{self as telemetry, Json};
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// The code-version salt baked into every cell key and payload.
///
/// Bump this whenever a change alters what any cell *computes* —
/// circuit construction, transpilation, noise insertion, RNG streams,
/// the success metric. Every record written under the old salt is then
/// unreachable (and `repro --store-verify` will still validate it
/// against the salt it was written with).
///
/// v2: fused replay plans reorder floating-point accumulation and the
/// `SplitMix64::child` derivation changed — both re-draw sampled
/// outcomes, so v1 cells no longer describe what the code computes.
pub const CODE_SALT: &str = "qfab-cell-v2";

/// Journal size that triggers compaction at the next checkpoint.
const COMPACT_THRESHOLD: u64 = 256 * 1024;

pub(crate) fn op_tag(op: OpKind) -> &'static str {
    match op {
        OpKind::Add => "add",
        OpKind::Mul => "mul",
    }
}

pub(crate) fn err_tag(target: ErrorTarget) -> &'static str {
    match target {
        ErrorTarget::OneQubit => "1q",
        ErrorTarget::TwoQubit => "2q",
    }
}

/// The canonical identity JSON of one cell.
#[allow(clippy::too_many_arguments)]
pub fn cell_identity(
    spec: &PanelSpec,
    config: &RunConfig,
    seed: u64,
    instance: usize,
    rate_idx: usize,
    rate: f64,
    depth_idx: usize,
    depth: AqftDepth,
) -> Json {
    cell_identity_with_salt(
        CODE_SALT, spec, config, seed, instance, rate_idx, rate, depth_idx, depth,
    )
}

/// The canonical cell identity under an explicit salt — shared with the
/// shot-provenance ledger, whose records cover the same cell coordinates
/// but live under their own salt (so the two record families can never
/// alias).
#[allow(clippy::too_many_arguments)]
pub(crate) fn cell_identity_with_salt(
    salt: &str,
    spec: &PanelSpec,
    config: &RunConfig,
    seed: u64,
    instance: usize,
    rate_idx: usize,
    rate: f64,
    depth_idx: usize,
    depth: AqftDepth,
) -> Json {
    let rate = f64_identity(rate).expect("sweep rates are finite");
    Json::Obj(vec![
        ("salt".into(), Json::Str(salt.into())),
        ("op".into(), Json::Str(op_tag(spec.op).into())),
        ("n".into(), Json::U64(spec.n as u64)),
        ("m".into(), Json::U64(spec.m as u64)),
        ("ox".into(), Json::U64(spec.order_x as u64)),
        ("oy".into(), Json::U64(spec.order_y as u64)),
        ("err".into(), Json::Str(err_tag(spec.error_target).into())),
        ("config".into(), config.identity_json()),
        ("seed".into(), Json::U64(seed)),
        ("inst".into(), Json::U64(instance as u64)),
        ("ri".into(), Json::U64(rate_idx as u64)),
        ("rate".into(), rate),
        ("di".into(), Json::U64(depth_idx as u64)),
        ("depth".into(), Json::Str(depth.identity_tag())),
    ])
}

/// The content-address of an identity: BLAKE2s-256 of its compact
/// encoding.
pub fn identity_key(identity: &Json) -> Key {
    blake2s256(identity.encode().as_bytes())
}

/// One cached cell result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellRecord {
    /// The instance outcome at this cell.
    pub outcome: InstanceOutcome,
    /// Wall-clock seconds the cell took to compute originally.
    pub wall_secs: f64,
}

/// Serializes a record payload: the identity plus the result fields.
pub fn encode_record(identity: &Json, record: &CellRecord) -> Vec<u8> {
    Json::Obj(vec![
        ("id".into(), identity.clone()),
        ("success".into(), Json::Bool(record.outcome.success)),
        ("gap".into(), Json::I64(record.outcome.min_gap)),
        ("wall_secs".into(), Json::F64(record.wall_secs)),
    ])
    .encode()
    .into_bytes()
}

/// Decodes and validates a record payload against the key it was
/// filed under. Returns `None` (a reject) when the payload does not
/// parse, carries a different code-version salt, or its identity does
/// not digest back to `key`.
pub fn decode_record(key: &Key, payload: &[u8]) -> Option<CellRecord> {
    let text = std::str::from_utf8(payload).ok()?;
    let value = Json::parse(text).ok()?;
    let identity = value.get("id")?;
    if identity.get("salt")?.as_str()? != CODE_SALT {
        return None;
    }
    if &identity_key(identity) != key {
        return None;
    }
    Some(CellRecord {
        outcome: InstanceOutcome {
            success: value.get("success")?.as_bool()?,
            min_gap: value.get("gap")?.as_i64()?,
        },
        wall_secs: value.get("wall_secs")?.as_f64()?,
    })
}

/// What a whole-instance lookup found.
#[derive(Debug)]
pub struct InstanceLookup {
    /// The full rate-major grid, present only when *every* cell hit.
    pub grid: Option<Vec<Vec<CellRecord>>>,
    /// Records that failed salt/digest validation during this lookup.
    pub rejected: u64,
}

/// A thread-safe durable cache of panel cells.
pub struct CellCache {
    store: Mutex<Store>,
    read: bool,
}

impl CellCache {
    /// Opens (creating if needed) the cache at `dir`. With `read` false
    /// the cache is write-only: every lookup misses and fresh results
    /// overwrite existing records (`repro --no-cache`).
    pub fn open(dir: impl AsRef<Path>, read: bool) -> io::Result<Self> {
        let store = Store::open(dir.as_ref().to_path_buf())?;
        Ok(Self {
            store: Mutex::new(store),
            read,
        })
    }

    /// What recovery found when the store was opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.lock().recovery()
    }

    /// Live records in the store.
    pub fn entries(&self) -> usize {
        self.lock().len()
    }

    /// Bytes currently in the append journal.
    pub fn journal_bytes(&self) -> u64 {
        self.lock().journal_bytes()
    }

    /// Whether lookups are enabled.
    pub fn reads_enabled(&self) -> bool {
        self.read
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Store> {
        self.store.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up every cell of one instance's grid (rate-major, matching
    /// the runner's layout). All-or-nothing: the sweep recomputes the
    /// whole instance unless every cell validates, because a partial
    /// instance costs nearly as much as a full one (the noiseless
    /// preparation dominates and is shared across rates).
    pub fn lookup_instance(
        &self,
        spec: &PanelSpec,
        config: &RunConfig,
        seed: u64,
        instance: usize,
    ) -> InstanceLookup {
        let mut rejected = 0u64;
        if !self.read {
            return InstanceLookup {
                grid: None,
                rejected,
            };
        }
        let store = self.lock();
        let mut grid = Vec::with_capacity(spec.rates.len());
        for (ri, &rate) in spec.rates.iter().enumerate() {
            let mut row = Vec::with_capacity(spec.depths.len());
            for (di, &depth) in spec.depths.iter().enumerate() {
                let identity = cell_identity(spec, config, seed, instance, ri, rate, di, depth);
                let key = identity_key(&identity);
                match store.get(&key) {
                    Some(payload) => match decode_record(&key, payload) {
                        Some(record) => row.push(record),
                        None => {
                            rejected += 1;
                            telemetry::counter("exp.cache.rejected").incr();
                            return InstanceLookup {
                                grid: None,
                                rejected,
                            };
                        }
                    },
                    None => {
                        return InstanceLookup {
                            grid: None,
                            rejected,
                        }
                    }
                }
            }
            grid.push(row);
        }
        InstanceLookup {
            grid: Some(grid),
            rejected,
        }
    }

    /// Appends every cell of one freshly computed instance grid and
    /// makes the batch durable (one `fdatasync` per instance).
    pub fn store_instance(
        &self,
        spec: &PanelSpec,
        config: &RunConfig,
        seed: u64,
        instance: usize,
        grid: &[Vec<CellRecord>],
    ) -> io::Result<()> {
        let mut store = self.lock();
        for (ri, &rate) in spec.rates.iter().enumerate() {
            for (di, &depth) in spec.depths.iter().enumerate() {
                let identity = cell_identity(spec, config, seed, instance, ri, rate, di, depth);
                let key = identity_key(&identity);
                store.put(key, encode_record(&identity, &grid[ri][di]))?;
            }
        }
        store.sync()
    }

    /// Appends one instance's shot-provenance records (`qfab.shots.v1`)
    /// next to its cell outcomes, one record per cell, under the
    /// [`crate::shots::SHOTS_SALT`] identity family. A no-op on an
    /// empty grid (the ledger was off for this run).
    pub fn store_instance_shots(
        &self,
        spec: &PanelSpec,
        config: &RunConfig,
        seed: u64,
        instance: usize,
        grid: &[Vec<crate::shots::ShotsRecord>],
    ) -> io::Result<()> {
        if grid.is_empty() {
            return Ok(());
        }
        let mut store = self.lock();
        for (ri, &rate) in spec.rates.iter().enumerate() {
            for (di, &depth) in spec.depths.iter().enumerate() {
                let identity =
                    crate::shots::shots_identity(spec, config, seed, instance, ri, rate, di, depth);
                let key = identity_key(&identity);
                store.put(
                    key,
                    crate::shots::encode_shots_record(&identity, &grid[ri][di]),
                )?;
            }
        }
        store.sync()
    }

    /// Durability + space checkpoint: syncs the journal and compacts it
    /// into the index segment once it outgrows the threshold.
    pub fn checkpoint(&self) -> io::Result<()> {
        let mut store = self.lock();
        store.sync()?;
        if store.journal_bytes() > COMPACT_THRESHOLD {
            store.compact()?;
        }
        Ok(())
    }

    /// Final sync + unconditional compaction (end of a run).
    pub fn close(self) -> io::Result<()> {
        let mut store = self.lock();
        store.sync()?;
        store.compact()
    }
}

/// A content-level verification report for `repro --store-verify`.
pub struct StoreVerification {
    /// The structural + content report.
    pub report: qfab_store::VerifyReport,
}

/// Verifies every record in the store at `dir`: framing and checksums
/// (structural, from `qfab-store`) plus payload parse, salt, and
/// key-digest match (content, from this layer). Records written under
/// an older salt are validated against *their own* salt — they are
/// stale, not corrupt.
pub fn verify_store(dir: &Path) -> io::Result<StoreVerification> {
    let report = qfab_store::verify_dir(dir, |key, payload| {
        let text = std::str::from_utf8(payload)
            .map_err(|_| format!("record {} payload is not UTF-8", qfab_store::to_hex(key)))?;
        let value =
            Json::parse(text).map_err(|e| format!("record {}: {e}", qfab_store::to_hex(key)))?;
        let identity = value
            .get("id")
            .ok_or_else(|| format!("record {} has no identity", qfab_store::to_hex(key)))?;
        let salt = identity
            .get("salt")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {} has no salt", qfab_store::to_hex(key)))?;
        if &identity_key(identity) != key {
            return Err(format!(
                "record {} identity does not digest to its key",
                qfab_store::to_hex(key)
            ));
        }
        if salt == crate::shots::SHOTS_SALT {
            // Shot-provenance records carry the shots schema instead of
            // the cell-outcome fields.
            return match crate::shots::decode_shots_record(key, payload) {
                Some(_) => Ok(()),
                None => Err(format!(
                    "record {} is not a valid {} record",
                    qfab_store::to_hex(key),
                    crate::shots::SHOTS_SCHEMA
                )),
            };
        }
        for (field, check) in [
            (
                "success",
                value.get("success").and_then(Json::as_bool).is_some(),
            ),
            ("gap", value.get("gap").and_then(Json::as_i64).is_some()),
            (
                "wall_secs",
                value.get("wall_secs").and_then(Json::as_f64).is_some(),
            ),
        ] {
            if !check {
                return Err(format!(
                    "record {} is missing result field '{field}'",
                    qfab_store::to_hex(key)
                ));
            }
        }
        Ok(())
    })?;
    Ok(StoreVerification { report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn tiny_spec() -> PanelSpec {
        PanelSpec {
            id: "cachetest",
            title: "tiny".into(),
            op: OpKind::Add,
            n: 3,
            m: 4,
            order_x: 1,
            order_y: 1,
            error_target: ErrorTarget::TwoQubit,
            rates: vec![0.0, 0.01],
            depths: vec![AqftDepth::Limited(2), AqftDepth::Full],
            reference_rate: 0.01,
        }
    }

    fn config(shots: u64) -> RunConfig {
        RunConfig {
            shots,
            ..RunConfig::default()
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qfab_cache_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_grid(spec: &PanelSpec) -> Vec<Vec<CellRecord>> {
        (0..spec.rates.len())
            .map(|ri| {
                (0..spec.depths.len())
                    .map(|di| CellRecord {
                        outcome: InstanceOutcome {
                            success: (ri + di) % 2 == 0,
                            min_gap: (ri as i64) * 10 - di as i64,
                        },
                        wall_secs: 0.25,
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn identity_is_canonical_and_sensitive() {
        let spec = tiny_spec();
        let cfg = config(64);
        let base = cell_identity(&spec, &cfg, 7, 0, 1, 0.01, 0, AqftDepth::Limited(2));
        assert_eq!(
            base.encode(),
            format!(
                r#"{{"salt":"{CODE_SALT}","op":"add","n":3,"m":4,"ox":1,"oy":1,"err":"2q","config":{{"shots":64,"optimize":false}},"seed":7,"inst":0,"ri":1,"rate":0.01,"di":0,"depth":"2"}}"#
            )
        );
        let base_key = identity_key(&base);
        // Any keyed field flips the digest.
        let variants = [
            cell_identity(&spec, &cfg, 8, 0, 1, 0.01, 0, AqftDepth::Limited(2)),
            cell_identity(&spec, &cfg, 7, 1, 1, 0.01, 0, AqftDepth::Limited(2)),
            cell_identity(&spec, &cfg, 7, 0, 0, 0.01, 0, AqftDepth::Limited(2)),
            cell_identity(&spec, &cfg, 7, 0, 1, 0.02, 0, AqftDepth::Limited(2)),
            cell_identity(&spec, &cfg, 7, 0, 1, 0.01, 1, AqftDepth::Limited(2)),
            cell_identity(&spec, &cfg, 7, 0, 1, 0.01, 0, AqftDepth::Full),
            cell_identity(&spec, &config(65), 7, 0, 1, 0.01, 0, AqftDepth::Limited(2)),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(identity_key(v), base_key, "variant {i} should not alias");
        }
    }

    #[test]
    fn record_round_trips() {
        let spec = tiny_spec();
        let cfg = config(64);
        let identity = cell_identity(&spec, &cfg, 3, 2, 0, 0.0, 1, AqftDepth::Full);
        let key = identity_key(&identity);
        let record = CellRecord {
            outcome: InstanceOutcome {
                success: true,
                min_gap: -12,
            },
            wall_secs: 1.5,
        };
        let payload = encode_record(&identity, &record);
        assert_eq!(decode_record(&key, &payload), Some(record));
    }

    #[test]
    fn decode_rejects_wrong_salt_and_wrong_key() {
        let spec = tiny_spec();
        let cfg = config(64);
        let identity = cell_identity(&spec, &cfg, 3, 2, 0, 0.0, 1, AqftDepth::Full);
        let key = identity_key(&identity);
        let record = CellRecord {
            outcome: InstanceOutcome {
                success: true,
                min_gap: 4,
            },
            wall_secs: 0.1,
        };
        // Wrong key (record filed under a different address).
        let payload = encode_record(&identity, &record);
        let mut other_key = key;
        other_key[0] ^= 1;
        assert_eq!(decode_record(&other_key, &payload), None);
        // Wrong salt: rewrite the identity with a foreign salt. The
        // digest over the *modified* identity keeps key and payload
        // consistent, so only the salt check can reject it — exactly
        // the stale-store scenario.
        let stale = Json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
        let Json::Obj(mut fields) = stale else {
            panic!()
        };
        let Json::Obj(ref mut id_fields) = fields[0].1 else {
            panic!()
        };
        id_fields[0].1 = Json::Str("qfab-cell-v0".into());
        let stale_identity = fields[0].1.clone();
        let stale_key = identity_key(&stale_identity);
        let stale_payload = Json::Obj(fields).encode().into_bytes();
        assert_eq!(decode_record(&stale_key, &stale_payload), None);
        // Garbage payloads are rejects, not panics.
        assert_eq!(decode_record(&key, b"not json"), None);
        assert_eq!(decode_record(&key, &[0xFF, 0xFE]), None);
    }

    #[test]
    fn cache_round_trips_instances_and_respects_read_flag() {
        let dir = tmp("roundtrip");
        let spec = tiny_spec();
        let cfg = config(64);
        let grid = sample_grid(&spec);
        {
            let cache = CellCache::open(&dir, true).unwrap();
            assert!(cache.lookup_instance(&spec, &cfg, 5, 0).grid.is_none());
            cache.store_instance(&spec, &cfg, 5, 0, &grid).unwrap();
            let found = cache.lookup_instance(&spec, &cfg, 5, 0).grid.unwrap();
            assert_eq!(found, grid);
            // Other instances still miss.
            assert!(cache.lookup_instance(&spec, &cfg, 5, 1).grid.is_none());
            cache.close().unwrap();
        }
        // Survives reopen (now from the compacted segment).
        let cache = CellCache::open(&dir, true).unwrap();
        assert_eq!(cache.entries(), spec.rates.len() * spec.depths.len());
        assert_eq!(cache.lookup_instance(&spec, &cfg, 5, 0).grid.unwrap(), grid);
        // Write-only mode misses everything.
        drop(cache);
        let blind = CellCache::open(&dir, false).unwrap();
        assert!(blind.lookup_instance(&spec, &cfg, 5, 0).grid.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn salt_mismatch_in_store_is_rejected_not_served() {
        let dir = tmp("salt");
        let spec = tiny_spec();
        let cfg = config(64);
        let grid = sample_grid(&spec);
        let cache = CellCache::open(&dir, true).unwrap();
        cache.store_instance(&spec, &cfg, 5, 0, &grid).unwrap();
        drop(cache);

        // Corrupt one record in place: swap its payload for a stale-salt
        // payload filed under the *current* key (a poisoned store).
        let identity = cell_identity(&spec, &cfg, 5, 0, 0, spec.rates[0], 0, spec.depths[0]);
        let key = identity_key(&identity);
        let mut store = Store::open(&dir).unwrap();
        let stale = {
            let Json::Obj(mut id_fields) = identity.clone() else {
                panic!()
            };
            id_fields[0].1 = Json::Str("qfab-cell-v0".into());
            Json::Obj(vec![
                ("id".into(), Json::Obj(id_fields)),
                ("success".into(), Json::Bool(true)),
                ("gap".into(), Json::I64(999)),
                ("wall_secs".into(), Json::F64(0.0)),
            ])
            .encode()
            .into_bytes()
        };
        store.put(key, stale).unwrap();
        store.sync().unwrap();
        drop(store);

        let cache = CellCache::open(&dir, true).unwrap();
        let lookup = cache.lookup_instance(&spec, &cfg, 5, 0);
        assert!(lookup.grid.is_none(), "poisoned record must not be served");
        assert_eq!(lookup.rejected, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_store_flags_key_mismatch() {
        let dir = tmp("verify");
        let spec = tiny_spec();
        let cfg = config(64);
        let cache = CellCache::open(&dir, true).unwrap();
        cache
            .store_instance(&spec, &cfg, 5, 0, &sample_grid(&spec))
            .unwrap();
        drop(cache);
        let v = verify_store(&dir).unwrap();
        assert!(v.report.is_clean());
        assert_eq!(
            v.report.intact_records as usize,
            spec.rates.len() * spec.depths.len()
        );

        // File a valid payload under the wrong key.
        let identity = cell_identity(&spec, &cfg, 5, 9, 0, spec.rates[0], 0, spec.depths[0]);
        let payload = encode_record(
            &identity,
            &CellRecord {
                outcome: InstanceOutcome {
                    success: true,
                    min_gap: 0,
                },
                wall_secs: 0.0,
            },
        );
        let mut wrong = identity_key(&identity);
        wrong[5] ^= 0x10;
        let mut store = Store::open(&dir).unwrap();
        store.put(wrong, payload).unwrap();
        store.sync().unwrap();
        drop(store);
        let v = verify_store(&dir).unwrap();
        assert!(!v.report.is_clean());
        assert!(v.report.issues[0].detail.contains("does not digest"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scale_is_not_part_of_the_key() {
        // Growing the instance count must reuse smaller-run cells:
        // only per-cell fields enter the identity.
        let spec = tiny_spec();
        let cfg = config(64);
        let _ = Scale {
            instances: 4,
            shots: 64,
        };
        let a = cell_identity(&spec, &cfg, 7, 2, 0, 0.0, 0, AqftDepth::Limited(2));
        // Identity has no field depending on the panel's instance count.
        assert!(!a.encode().contains("instances"));
    }
}
