//! Read-only reconstruction of sweep results from a cell store.
//!
//! The dashboard, drift gate, and run-history ledger all need the same
//! view of a `--store` directory: *which panels ran, and what every
//! cell measured*. This module rebuilds that view purely from the
//! store's records — it opens nothing for writing (`repro dash` on a
//! store that a sweep is still appending to must never truncate or
//! extend it), and it trusts nothing blindly (every record re-derives
//! its digest and re-checks the code-version salt exactly like the
//! cache's lookup path; stale or tampered records are counted and
//! skipped, never rendered).
//!
//! Records carry their full identity in the payload, so panels are
//! reconstructed from the records alone: cells sharing
//! `(op, n, m, ox, oy, err, config, seed)` form one panel, their
//! `(ri, rate)` / `(di, depth)` coordinates span its grid, and the
//! result is labeled with the paper's panel id when the geometry
//! matches a known spec. A store holding a custom or truncated sweep
//! still reconstructs faithfully — it just gets a synthesized id.
//!
//! [`RunSummary`] is the compact `(successes, instances)` projection
//! of that view: the exchange format of the drift gate and the ledger
//! (schema `qfab.history.v1`), with a lossless JSON round-trip.

use crate::cache::{decode_record, CODE_SALT};
use crate::sweep::{fig1_panels, fig2_panels, PanelSpec};
use qfab_core::{EnsembleStats, InstanceOutcome};
use qfab_store::wal::{scan, Key};
use qfab_telemetry::Json;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The identity fields every cell of one panel shares.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PanelKey {
    /// Operation tag (`"add"` / `"mul"`).
    pub op: String,
    /// First-operand width.
    pub n: u64,
    /// Second-operand / target width.
    pub m: u64,
    /// First-operand superposition order.
    pub ox: u64,
    /// Second-operand superposition order.
    pub oy: u64,
    /// Error-class tag (`"1q"` / `"2q"`).
    pub err: String,
    /// Shots per instance.
    pub shots: u64,
    /// Root seed.
    pub seed: u64,
}

/// One reconstructed grid cell.
#[derive(Clone, Debug)]
pub struct CellData {
    /// Instances recorded at this cell.
    pub instances: u64,
    /// Successful instances.
    pub successes: u64,
    /// Full ensemble statistics (σ bars, Wilson interval, gap moments)
    /// over the recorded outcomes, instance-ordered.
    pub stats: EnsembleStats,
}

/// One reconstructed panel.
#[derive(Clone, Debug)]
pub struct PanelData {
    /// The shared identity fields.
    pub key: PanelKey,
    /// Paper panel id when the geometry matches a known spec
    /// (`"fig1a"` …), otherwise synthesized from the key.
    pub id: String,
    /// Human-readable title (from the spec, or synthesized).
    pub title: String,
    /// The matched spec's IBM reference rate, if any.
    pub reference_rate: Option<f64>,
    /// Row coordinates, sorted: `(ri, rate)`.
    pub rows: Vec<(u64, f64)>,
    /// Column coordinates, sorted: `(di, depth identity tag)`.
    pub cols: Vec<(u64, String)>,
    /// `cells[row][col]`, indexed like `rows`/`cols`; `None` where the
    /// store holds no record.
    pub cells: Vec<Vec<Option<CellData>>>,
}

impl PanelData {
    /// Total instances recorded across all cells.
    pub fn instance_records(&self) -> u64 {
        self.cells
            .iter()
            .flatten()
            .flatten()
            .map(|c| c.instances)
            .sum()
    }
}

/// Everything reconstructed from one store directory.
#[derive(Clone, Debug, Default)]
pub struct RunData {
    /// Panels sorted by `(id, key)`.
    pub panels: Vec<PanelData>,
    /// Live records decoded into cells.
    pub records: u64,
    /// Live records that failed salt/digest/parse validation (stale or
    /// foreign — skipped).
    pub rejected: u64,
}

/// Reads the store at `dir` without opening it for writing: the
/// compacted segment and the journal are scanned as plain files, later
/// journal records shadowing the segment (the store's own replay
/// order).
pub fn load_run(dir: &Path) -> io::Result<RunData> {
    let mut live: BTreeMap<Key, Vec<u8>> = BTreeMap::new();
    for file in ["index.seg", "journal.wal"] {
        let path = dir.join(file);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for record in scan(&bytes).records {
            live.insert(record.key, record.value);
        }
    }
    Ok(build_run(&live))
}

/// One decoded cell observation.
struct Observation {
    inst: u64,
    ri: u64,
    rate: f64,
    di: u64,
    depth: String,
    outcome: InstanceOutcome,
}

fn decode_observation(key: &Key, payload: &[u8]) -> Option<(PanelKey, Observation)> {
    // Salt + digest validation (and outcome extraction) exactly as the
    // sweep's lookup path does it.
    let record = decode_record(key, payload)?;
    let value = Json::parse(std::str::from_utf8(payload).ok()?).ok()?;
    let id = value.get("id")?;
    let key = PanelKey {
        op: id.get("op")?.as_str()?.to_string(),
        n: id.get("n")?.as_u64()?,
        m: id.get("m")?.as_u64()?,
        ox: id.get("ox")?.as_u64()?,
        oy: id.get("oy")?.as_u64()?,
        err: id.get("err")?.as_str()?.to_string(),
        shots: id.get("config")?.get("shots")?.as_u64()?,
        seed: id.get("seed")?.as_u64()?,
    };
    let obs = Observation {
        inst: id.get("inst")?.as_u64()?,
        ri: id.get("ri")?.as_u64()?,
        rate: id.get("rate")?.as_f64()?,
        di: id.get("di")?.as_u64()?,
        depth: id.get("depth")?.as_str()?.to_string(),
        outcome: record.outcome,
    };
    Some((key, obs))
}

fn build_run(live: &BTreeMap<Key, Vec<u8>>) -> RunData {
    let mut rejected = 0u64;
    let mut records = 0u64;
    let mut panels: BTreeMap<PanelKey, Vec<Observation>> = BTreeMap::new();
    for (key, payload) in live {
        if crate::shots::is_shots_payload(payload) {
            // Shot-provenance records share the store but belong to the
            // attribution reader ([`crate::shots::load_shots`]); they
            // are a different record family, not stale cells.
            continue;
        }
        match decode_observation(key, payload) {
            Some((panel_key, obs)) => {
                records += 1;
                panels.entry(panel_key).or_default().push(obs);
            }
            None => rejected += 1,
        }
    }
    let mut out: Vec<PanelData> = panels
        .into_iter()
        .map(|(key, obs)| build_panel(key, obs))
        .collect();
    out.sort_by(|a, b| (&a.id, &a.key).cmp(&(&b.id, &b.key)));
    RunData {
        panels: out,
        records,
        rejected,
    }
}

fn build_panel(key: PanelKey, mut obs: Vec<Observation>) -> PanelData {
    let mut rows: Vec<(u64, f64)> = Vec::new();
    let mut cols: Vec<(u64, String)> = Vec::new();
    for o in &obs {
        if !rows.iter().any(|&(ri, r)| ri == o.ri && r == o.rate) {
            rows.push((o.ri, o.rate));
        }
        if !cols.iter().any(|(di, d)| *di == o.di && *d == o.depth) {
            cols.push((o.di, o.depth.clone()));
        }
    }
    rows.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite rates"));
    cols.sort();
    // Instance-ordered outcomes give byte-stable aggregate statistics.
    obs.sort_by_key(|o| (o.ri, o.di, o.inst));
    let mut grid: Vec<Vec<Vec<InstanceOutcome>>> = vec![vec![Vec::new(); cols.len()]; rows.len()];
    for o in obs {
        let row = rows
            .iter()
            .position(|&(ri, r)| ri == o.ri && r == o.rate)
            .expect("row registered above");
        let col = cols
            .iter()
            .position(|(di, d)| *di == o.di && *d == o.depth)
            .expect("col registered above");
        grid[row][col].push(o.outcome);
    }
    let cells: Vec<Vec<Option<CellData>>> = grid
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|outcomes| {
                    (!outcomes.is_empty()).then(|| CellData {
                        instances: outcomes.len() as u64,
                        successes: outcomes.iter().filter(|o| o.success).count() as u64,
                        stats: EnsembleStats::from_outcomes(&outcomes),
                    })
                })
                .collect()
        })
        .collect();
    let spec = known_spec(&key);
    let (id, title, reference_rate) = match spec {
        Some(spec) => (spec.id.to_string(), spec.title, Some(spec.reference_rate)),
        None => (
            panel_id_for(&key),
            format!(
                "custom {} n={} m={} {}:{} {} sweep",
                key.op, key.n, key.m, key.ox, key.oy, key.err
            ),
            None,
        ),
    };
    PanelData {
        key,
        id,
        title,
        reference_rate,
        rows,
        cols,
        cells,
    }
}

/// The display id of a panel key: the paper's figure id when the
/// geometry matches a known spec, else a synthesized slug.
pub fn panel_id_for(key: &PanelKey) -> String {
    match known_spec(key) {
        Some(spec) => spec.id.to_string(),
        None => format!(
            "{}-{}x{}-{}:{}-{}",
            key.op, key.n, key.m, key.ox, key.oy, key.err
        ),
    }
}

fn known_spec(key: &PanelKey) -> Option<PanelSpec> {
    fig1_panels().into_iter().chain(fig2_panels()).find(|s| {
        crate::cache::op_tag(s.op) == key.op
            && s.n as u64 == key.n
            && s.m as u64 == key.m
            && s.order_x as u64 == key.ox
            && s.order_y as u64 == key.oy
            && crate::cache::err_tag(s.error_target) == key.err
    })
}

/// The compact per-cell `(successes, instances)` projection of one
/// panel — the drift gate's and ledger's unit of comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSummary {
    /// Rate grid index.
    pub ri: u64,
    /// Error rate (fraction).
    pub rate: f64,
    /// Depth grid index.
    pub di: u64,
    /// Depth identity tag (`"full"` or the cap).
    pub depth: String,
    /// Successful instances.
    pub successes: u64,
    /// Recorded instances.
    pub instances: u64,
}

/// One panel's summary.
#[derive(Clone, Debug, PartialEq)]
pub struct PanelSummary {
    /// Display id (paper id or synthesized).
    pub id: String,
    /// The panel's identity fields.
    pub key: PanelKey,
    /// Cells in row-major grid order.
    pub cells: Vec<CellSummary>,
}

impl PanelSummary {
    /// Total `(successes, instances)` over every cell.
    pub fn totals(&self) -> (u64, u64) {
        self.cells
            .iter()
            .fold((0, 0), |(s, n), c| (s + c.successes, n + c.instances))
    }
}

/// The summary of a whole run — what the ledger records and the drift
/// gate compares.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunSummary {
    /// Code-version salt the cells were recorded under.
    pub salt: String,
    /// Per-panel summaries, sorted like [`RunData::panels`].
    pub panels: Vec<PanelSummary>,
}

/// Schema identifier for encoded run summaries / ledger records.
pub const SUMMARY_SCHEMA: &str = "qfab.history.v1";

impl RunSummary {
    /// Projects a reconstructed run down to its summary.
    pub fn from_run(run: &RunData) -> Self {
        let panels = run
            .panels
            .iter()
            .map(|p| PanelSummary {
                id: p.id.clone(),
                key: p.key.clone(),
                cells: p
                    .rows
                    .iter()
                    .enumerate()
                    .flat_map(|(r, &(ri, rate))| {
                        p.cols
                            .iter()
                            .enumerate()
                            .filter_map(move |(c, (di, depth))| {
                                p.cells[r][c].as_ref().map(|cell| CellSummary {
                                    ri,
                                    rate,
                                    di: *di,
                                    depth: depth.clone(),
                                    successes: cell.successes,
                                    instances: cell.instances,
                                })
                            })
                    })
                    .collect(),
            })
            .collect();
        Self {
            salt: CODE_SALT.to_string(),
            panels,
        }
    }

    /// Encodes the summary as canonical JSON (`qfab.history.v1`).
    pub fn to_json(&self) -> Json {
        let panels: Vec<Json> = self
            .panels
            .iter()
            .map(|p| {
                let cells: Vec<Json> = p
                    .cells
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("ri".into(), Json::U64(c.ri)),
                            ("rate".into(), Json::F64(c.rate)),
                            ("di".into(), Json::U64(c.di)),
                            ("depth".into(), Json::Str(c.depth.clone())),
                            ("successes".into(), Json::U64(c.successes)),
                            ("instances".into(), Json::U64(c.instances)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("id".into(), Json::Str(p.id.clone())),
                    ("op".into(), Json::Str(p.key.op.clone())),
                    ("n".into(), Json::U64(p.key.n)),
                    ("m".into(), Json::U64(p.key.m)),
                    ("ox".into(), Json::U64(p.key.ox)),
                    ("oy".into(), Json::U64(p.key.oy)),
                    ("err".into(), Json::Str(p.key.err.clone())),
                    ("shots".into(), Json::U64(p.key.shots)),
                    ("seed".into(), Json::U64(p.key.seed)),
                    ("cells".into(), Json::Arr(cells)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(SUMMARY_SCHEMA.into())),
            ("salt".into(), Json::Str(self.salt.clone())),
            ("panels".into(), Json::Arr(panels)),
        ])
    }

    /// Decodes a summary produced by [`RunSummary::to_json`].
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("summary has no schema")?;
        if schema != SUMMARY_SCHEMA {
            return Err(format!(
                "unsupported summary schema '{schema}' (expected {SUMMARY_SCHEMA})"
            ));
        }
        let salt = doc
            .get("salt")
            .and_then(Json::as_str)
            .ok_or("summary has no salt")?
            .to_string();
        let Some(Json::Arr(panels)) = doc.get("panels") else {
            return Err("summary has no panels array".into());
        };
        let panels = panels
            .iter()
            .map(|p| {
                let str_field = |k: &str| {
                    p.get(k)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("panel missing '{k}'"))
                };
                let u64_field = |k: &str| {
                    p.get(k)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("panel missing '{k}'"))
                };
                let Some(Json::Arr(cells)) = p.get("cells") else {
                    return Err("panel has no cells array".to_string());
                };
                let cells = cells
                    .iter()
                    .map(|c| {
                        let cu64 = |k: &str| {
                            c.get(k)
                                .and_then(Json::as_u64)
                                .ok_or_else(|| format!("cell missing '{k}'"))
                        };
                        Ok(CellSummary {
                            ri: cu64("ri")?,
                            rate: c
                                .get("rate")
                                .and_then(Json::as_f64)
                                .ok_or("cell missing 'rate'")?,
                            di: cu64("di")?,
                            depth: c
                                .get("depth")
                                .and_then(Json::as_str)
                                .ok_or("cell missing 'depth'")?
                                .to_string(),
                            successes: cu64("successes")?,
                            instances: cu64("instances")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(PanelSummary {
                    id: str_field("id")?,
                    key: PanelKey {
                        op: str_field("op")?,
                        n: u64_field("n")?,
                        m: u64_field("m")?,
                        ox: u64_field("ox")?,
                        oy: u64_field("oy")?,
                        err: str_field("err")?,
                        shots: u64_field("shots")?,
                        seed: u64_field("seed")?,
                    },
                    cells,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self { salt, panels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CellCache;
    use crate::runner::run_panel_with;
    use crate::scale::Scale;
    use crate::sweep::{panel_by_id, ErrorTarget, OpKind};
    use qfab_core::AqftDepth;

    fn tiny_spec() -> PanelSpec {
        PanelSpec {
            id: "runload",
            title: "tiny".into(),
            op: OpKind::Add,
            n: 3,
            m: 4,
            order_x: 1,
            order_y: 1,
            error_target: ErrorTarget::TwoQubit,
            rates: vec![0.0, 0.02],
            depths: vec![AqftDepth::Limited(2), AqftDepth::Full],
            reference_rate: 0.02,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qfab_rundata_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn populate(dir: &std::path::Path, seed: u64, instances: usize) {
        let cache = CellCache::open(dir, true).unwrap();
        run_panel_with(
            &tiny_spec(),
            Scale {
                instances,
                shots: 32,
            },
            seed,
            Some(&cache),
            |_| {},
        );
        cache.close().unwrap();
    }

    #[test]
    fn reconstructs_a_panel_from_the_store() {
        let dir = tmp("basic");
        populate(&dir, 7, 3);
        let run = load_run(&dir).unwrap();
        assert_eq!(run.rejected, 0);
        assert_eq!(run.records, 2 * 2 * 3); // rates × depths × instances
        assert_eq!(run.panels.len(), 1);
        let p = &run.panels[0];
        assert_eq!(p.rows, vec![(0, 0.0), (1, 0.02)]);
        assert_eq!(p.cols, vec![(0, "2".into()), (1, "full".into())]);
        assert_eq!(p.key.seed, 7);
        assert_eq!(p.key.shots, 32);
        // Geometry 3x4 1:1 matches no paper panel: synthesized id.
        assert_eq!(p.id, "add-3x4-1:1-2q");
        for row in &p.cells {
            for cell in row {
                let cell = cell.as_ref().expect("complete grid");
                assert_eq!(cell.instances, 3);
                assert!(cell.successes <= 3);
                assert_eq!(cell.stats.instances, 3);
            }
        }
        // Noiseless full-depth cell on trivial operands: all succeed.
        assert_eq!(p.cells[0][1].as_ref().unwrap().successes, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_is_read_only_and_deterministic() {
        let dir = tmp("readonly");
        populate(&dir, 7, 2);
        let before: Vec<(String, u64)> = ["index.seg", "journal.wal"]
            .iter()
            .filter_map(|f| {
                let p = dir.join(f);
                p.metadata().ok().map(|m| (f.to_string(), m.len()))
            })
            .collect();
        let a = load_run(&dir).unwrap();
        let b = load_run(&dir).unwrap();
        assert_eq!(RunSummary::from_run(&a), RunSummary::from_run(&b));
        let after: Vec<(String, u64)> = ["index.seg", "journal.wal"]
            .iter()
            .filter_map(|f| {
                let p = dir.join(f);
                p.metadata().ok().map(|m| (f.to_string(), m.len()))
            })
            .collect();
        assert_eq!(before, after, "load_run must not touch store files");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multiple_seeds_become_separate_panels() {
        let dir = tmp("seeds");
        populate(&dir, 7, 2);
        populate(&dir, 8, 2);
        let run = load_run(&dir).unwrap();
        assert_eq!(run.panels.len(), 2);
        assert_eq!(run.panels[0].key.seed, 7);
        assert_eq!(run.panels[1].key.seed, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_store_dir_is_an_error_but_empty_dir_is_empty() {
        let dir = tmp("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let run = load_run(&dir).unwrap();
        assert!(run.panels.is_empty());
        assert_eq!((run.records, run.rejected), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paper_geometry_gets_the_paper_id() {
        // Run one cell of the real fig1a geometry (truncated grid) and
        // confirm the panel is labeled fig1a with its reference rate.
        let dir = tmp("paperid");
        let mut spec = panel_by_id("fig1a").unwrap();
        spec.rates.truncate(1);
        spec.depths.truncate(1);
        let cache = CellCache::open(&dir, true).unwrap();
        run_panel_with(
            &spec,
            Scale {
                instances: 1,
                shots: 8,
            },
            1,
            Some(&cache),
            |_| {},
        );
        cache.close().unwrap();
        let run = load_run(&dir).unwrap();
        assert_eq!(run.panels.len(), 1);
        assert_eq!(run.panels[0].id, "fig1a");
        assert_eq!(run.panels[0].reference_rate, Some(0.002));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_json_round_trips() {
        let dir = tmp("roundtrip");
        populate(&dir, 7, 2);
        let summary = RunSummary::from_run(&load_run(&dir).unwrap());
        assert_eq!(summary.salt, CODE_SALT);
        let encoded = summary.to_json();
        assert!(encoded
            .encode()
            .starts_with(r#"{"schema":"qfab.history.v1","salt":"#));
        let decoded = RunSummary::from_json(&encoded).unwrap();
        assert_eq!(decoded, summary);
        // Re-encoding is byte-stable.
        assert_eq!(decoded.to_json().encode(), encoded.encode());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_json_rejects_foreign_schemas() {
        let doc = Json::parse(r#"{"schema":"qfab.other.v9","salt":"s","panels":[]}"#).unwrap();
        assert!(RunSummary::from_json(&doc).unwrap_err().contains("schema"));
        let doc = Json::parse(r#"{"salt":"s","panels":[]}"#).unwrap();
        assert!(RunSummary::from_json(&doc).is_err());
    }

    #[test]
    fn stale_salt_records_are_rejected_not_rendered() {
        use crate::cache::{cell_identity, identity_key};
        use qfab_core::RunConfig;
        let dir = tmp("stale");
        populate(&dir, 7, 1);
        // Poison: rewrite one record under a stale salt, filed under a
        // digest consistent with the *modified* identity (so only the
        // salt check can catch it).
        let spec = tiny_spec();
        let cfg = RunConfig {
            shots: 32,
            ..RunConfig::default()
        };
        let identity = cell_identity(&spec, &cfg, 7, 0, 0, 0.0, 0, AqftDepth::Limited(2));
        let Json::Obj(mut fields) = identity else {
            panic!()
        };
        fields[0].1 = Json::Str("qfab-cell-v0".into());
        let stale_identity = Json::Obj(fields);
        let stale_key = identity_key(&stale_identity);
        let payload = Json::Obj(vec![
            ("id".into(), stale_identity),
            ("success".into(), Json::Bool(true)),
            ("gap".into(), Json::I64(1)),
            ("wall_secs".into(), Json::F64(0.0)),
        ])
        .encode()
        .into_bytes();
        let mut store = qfab_store::Store::open(&dir).unwrap();
        store.put(stale_key, payload).unwrap();
        store.sync().unwrap();
        drop(store);

        let run = load_run(&dir).unwrap();
        assert_eq!(run.rejected, 1);
        assert_eq!(run.records, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
