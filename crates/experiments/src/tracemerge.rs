//! Cross-shard trace federation — the engine behind `repro
//! trace-merge`.
//!
//! Each federated worker captures its own `QFAB_TRACE` ring into a
//! per-shard Chrome `trace_event` file. Those files are valid on their
//! own but useless side by side: every worker stamps its events with
//! its real (arbitrary) OS pid, and nothing names the tracks. This
//! module unions N capture files into ONE trace:
//!
//! * every input file becomes one *process* in the merged timeline —
//!   events are re-stamped with a deterministic pid (the input's
//!   position), so two captures can never collide even if the OS
//!   recycled a pid;
//! * a `process_name` metadata event labels each track with the
//!   input's stem (`w0.trace.json` → `w0`), so Perfetto shows worker
//!   tracks by name;
//! * `otherData.dropped` counts are summed, so a downstream
//!   `trace-report` still leads with the total truncation.
//!
//! The output is a plain `qfab.trace.v1` Chrome trace: Perfetto,
//! `chrome://tracing`, and `repro trace-report` all load it unchanged.

use qfab_telemetry::Json;
use std::path::Path;

/// Strips a capture filename down to its track label:
/// `w0.trace.json` → `w0`, `qfab_trace.json` → `qfab_trace`.
fn track_label(path: &Path) -> String {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("trace");
    let name = name.strip_suffix(".json").unwrap_or(name);
    let name = name.strip_suffix(".trace").unwrap_or(name);
    name.to_string()
}

fn process_name_event(pid: u64, label: &str) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str("process_name".into())),
        ("ph".to_string(), Json::Str("M".into())),
        ("pid".to_string(), Json::U64(pid)),
        ("tid".to_string(), Json::U64(0)),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::Str(label.to_string()))]),
        ),
    ])
}

fn is_process_name_meta(event: &Json) -> bool {
    event.get("ph").and_then(Json::as_str) == Some("M")
        && event.get("name").and_then(Json::as_str) == Some("process_name")
}

/// Re-stamps one event's `pid`, preserving every other field.
fn with_pid(event: &Json, pid: u64) -> Json {
    let Json::Obj(fields) = event else {
        return event.clone();
    };
    let mut out: Vec<(String, Json)> = fields
        .iter()
        .filter(|(k, _)| k != "pid")
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    out.push(("pid".to_string(), Json::U64(pid)));
    Json::Obj(out)
}

/// Unions already-decoded trace documents into one. `inputs` pairs a
/// track label with the decoded capture; input order fixes the merged
/// pids (input `i` becomes process `i`).
pub fn merge_docs(inputs: &[(String, Json)]) -> Result<Json, String> {
    if inputs.is_empty() {
        return Err("nothing to merge: no input traces".into());
    }
    let mut merged = Vec::new();
    let mut dropped = 0u64;
    for (pid, (label, doc)) in inputs.iter().enumerate() {
        let pid = pid as u64;
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            return Err(format!(
                "{label}: not a trace file: missing \"traceEvents\" array"
            ));
        };
        dropped += doc
            .get("otherData")
            .and_then(|o| o.get("dropped"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        merged.push(process_name_event(pid, label));
        // Pre-existing process_name metadata would fight the track
        // label just injected; everything else is kept verbatim.
        merged.extend(
            events
                .iter()
                .filter(|e| !is_process_name_meta(e))
                .map(|e| with_pid(e, pid)),
        );
    }
    Ok(Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(merged)),
        ("displayTimeUnit".to_string(), Json::Str("ms".into())),
        (
            "otherData".to_string(),
            Json::Obj(vec![
                ("schema".to_string(), Json::Str("qfab.trace.v1".into())),
                ("dropped".to_string(), Json::U64(dropped)),
            ]),
        ),
    ]))
}

/// Reads N capture files, merges them, writes the union to `out`, and
/// returns a one-line summary for the CLI.
pub fn merge_files(paths: &[std::path::PathBuf], out: &Path) -> Result<String, String> {
    let mut inputs = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        inputs.push((track_label(path), doc));
    }
    let merged = merge_docs(&inputs)?;
    let events = match merged.get("traceEvents") {
        Some(Json::Arr(events)) => events.len(),
        _ => 0,
    };
    std::fs::write(out, merged.encode_pretty()).map_err(|e| format!("{}: {e}", out.display()))?;
    Ok(format!(
        "merged {} trace(s), {} events -> {}",
        paths.len(),
        events,
        out.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(pid: u64, names: &[(&str, u64)]) -> Json {
        let events: Vec<String> = names
            .iter()
            .flat_map(|(name, t)| {
                [
                    format!(
                        r#"{{"name":"{name}","cat":"qfab","ph":"B","ts":{t},"pid":{pid},"tid":1}}"#
                    ),
                    format!(
                        r#"{{"name":"{name}","cat":"qfab","ph":"E","ts":{},"pid":{pid},"tid":1}}"#,
                        t + 10
                    ),
                ]
            })
            .collect();
        Json::parse(&format!(
            r#"{{"traceEvents":[{}],"displayTimeUnit":"ms","otherData":{{"schema":"qfab.trace.v1","dropped":2}}}}"#,
            events.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn merged_trace_has_one_process_per_input_with_named_tracks() {
        // Both captures carry the SAME OS pid — recycled across runs —
        // which is exactly the collision the re-stamp exists for.
        let merged = merge_docs(&[
            ("w0".to_string(), capture(4242, &[("exp.cell", 0)])),
            ("w1".to_string(), capture(4242, &[("exp.cell", 5)])),
        ])
        .unwrap();
        let Some(Json::Arr(events)) = merged.get("traceEvents") else {
            panic!("missing traceEvents")
        };
        // 2 metadata + 2×2 span events.
        assert_eq!(events.len(), 6);
        let pids: std::collections::HashSet<u64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(Json::as_u64))
            .collect();
        assert_eq!(pids, [0u64, 1].into_iter().collect());
        let metas: Vec<(u64, &str)> = events
            .iter()
            .filter(|e| is_process_name_meta(e))
            .map(|e| {
                (
                    e.get("pid").and_then(Json::as_u64).unwrap(),
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(metas, vec![(0, "w0"), (1, "w1")]);
        // Dropped counts sum across shards.
        assert_eq!(
            merged
                .get("otherData")
                .and_then(|o| o.get("dropped"))
                .and_then(Json::as_u64),
            Some(4)
        );
    }

    #[test]
    fn non_trace_inputs_and_empty_input_sets_are_rejected() {
        assert!(merge_docs(&[]).is_err());
        let err =
            merge_docs(&[("w0".to_string(), Json::parse(r#"{"hello":1}"#).unwrap())]).unwrap_err();
        assert!(err.contains("w0"), "{err}");
        assert!(err.contains("traceEvents"), "{err}");
    }

    #[test]
    fn track_labels_strip_capture_suffixes() {
        assert_eq!(track_label(Path::new("/x/w0.trace.json")), "w0");
        assert_eq!(track_label(Path::new("qfab_trace.json")), "qfab_trace");
        assert_eq!(track_label(Path::new("raw")), "raw");
    }

    #[test]
    fn merge_files_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("qfab_tracemerge_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("w0.trace.json");
        let b = dir.join("w1.trace.json");
        std::fs::write(&a, capture(10, &[("exp.panel", 0)]).encode_pretty()).unwrap();
        std::fs::write(&b, capture(11, &[("exp.panel", 3)]).encode_pretty()).unwrap();
        let out = dir.join("merged.json");
        let note = merge_files(&[a, b], &out).unwrap();
        assert!(note.contains("merged 2 trace(s)"), "{note}");
        let doc = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("missing traceEvents")
        };
        assert_eq!(events.len(), 6);
        // A second merge of the merged file is still a valid trace
        // (labels come from the new file name).
        let again = dir.join("again.json");
        merge_files(std::slice::from_ref(&out), &again).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&again).unwrap()).unwrap();
        assert!(matches!(doc.get("traceEvents"), Some(Json::Arr(_))));
        let missing = dir.join("nope.json");
        assert!(merge_files(&[missing], &dir.join("x.json")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
