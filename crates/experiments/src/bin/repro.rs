//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro list                        # what can be regenerated
//! repro table1                      # Table I gate counts (exact match)
//! repro fig1a [options]             # one panel
//! repro fig1 | fig2 | all [options] # panel groups
//! repro optimal-depth [options]     # §IV optimal-depth summary
//! repro superposition-drop [opts]   # §V quantitative claim
//! repro --store-verify DIR          # integrity-check a result store
//! repro trace-report FILE [--top N] # analyze a QFAB_TRACE capture
//! repro bench [--trajectories N]    # fused vs per-gate replay timing
//! repro bench-gate FILE [options]   # kernel-bench regression gate
//!
//! options:
//!   --scale quick|default|paper   preset instance/shot counts
//!   --instances N                 override instance count
//!   --shots N                     override shots per instance
//!   --seed N                      root seed (default 20220513)
//!   --out DIR                     also write <id>.txt / <id>.csv
//!   --metrics                     collect telemetry, print a metrics
//!                                 summary, and write <id>.manifest.json
//!   --store DIR                   durable cell store: reuse cached cells,
//!                                 persist fresh ones (incremental sweeps)
//!   --resume                      continue an interrupted --store run
//!                                 (requires the store to already exist)
//!   --no-cache                    with --store: recompute every cell and
//!                                 overwrite its record (refresh)
//! ```
//!
//! Set `QFAB_TRACE=on` (or `QFAB_TRACE=on:<path>`) to capture a Chrome
//! `trace_event` JSON timeline of any run, loadable in Perfetto or
//! `chrome://tracing` and analyzable offline with `repro trace-report`.

use qfab_experiments::analysis::{
    format_optimal_depths, format_superposition_drop, superposition_drop,
};
use qfab_experiments::report::{
    format_metrics_summary, format_panel, format_panel_timing, panel_manifest, write_manifest,
    write_panel,
};
use qfab_experiments::scale::OpCost;
use qfab_experiments::sweep::panel_by_id;
use qfab_experiments::table1::{format_table1, run_table1};
use qfab_experiments::{
    fig1_panels, fig2_panels, progress_line, run_panel_with, verify_store, CellCache, OpKind,
    PanelSpec, Scale,
};
use qfab_telemetry as telemetry;
use std::path::PathBuf;
use std::process::ExitCode;

const DEFAULT_SEED: u64 = 20220513;

const USAGE: &str = "\
usage: repro <experiment> [options]
       repro --store-verify DIR
       repro trace-report FILE [--top N]
       repro bench [--trajectories N] [--seed N]
       repro bench-gate FILE [--baseline FILE] [--threshold PCT]

experiments: list | table1 | fig1 | fig2 | all | optimal-depth |
             superposition-drop | dump | <panel id, e.g. fig1a>

options:
  --scale quick|default|paper   preset instance/shot counts
  --instances N                 override instance count
  --shots N                     override shots per instance
  --seed N                      root seed (default 20220513)
  --out DIR                     also write <id>.txt / <id>.csv
  --metrics                     collect telemetry, print a metrics summary,
                                and write <id>.manifest.json
  --store DIR                   durable cell store: reuse cached cells,
                                persist fresh ones (incremental sweeps)
  --resume                      continue an interrupted --store run
                                (requires the store to already exist)
  --no-cache                    with --store: recompute every cell and
                                overwrite its record (refresh)

environment:
  QFAB_TRACE=on[:<path>]        capture a Chrome trace_event timeline
                                (default path qfab_trace.json)

run 'repro list' for every regenerable artifact.";

struct Options {
    scale_name: String,
    instances: Option<usize>,
    shots: Option<u64>,
    seed: u64,
    out: Option<PathBuf>,
    metrics: bool,
    store: Option<PathBuf>,
    resume: bool,
    no_cache: bool,
}

impl Options {
    fn scale_for(&self, op: OpKind) -> Scale {
        let cost = match op {
            OpKind::Add => OpCost::Adder,
            OpKind::Mul => OpCost::Multiplier,
        };
        // Unknown names are rejected in parse_options.
        let mut scale = match self.scale_name.as_str() {
            "quick" => Scale::quick_for(cost),
            "paper" => Scale::paper(),
            _ => Scale::default_for(cost),
        };
        if let Some(i) = self.instances {
            scale.instances = i;
        }
        if let Some(s) = self.shots {
            scale.shots = s;
        }
        scale
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        scale_name: "quick".to_string(),
        instances: None,
        shots: None,
        seed: DEFAULT_SEED,
        out: None,
        metrics: false,
        store: None,
        resume: false,
        no_cache: false,
    };
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--scale" => {
                let name = need_value(i)?.clone();
                if !matches!(name.as_str(), "quick" | "default" | "paper") {
                    return Err(format!(
                        "unknown scale '{name}' (expected quick, default, or paper)"
                    ));
                }
                opts.scale_name = name;
                i += 2;
            }
            "--instances" => {
                opts.instances = Some(
                    need_value(i)?
                        .parse()
                        .map_err(|e| format!("--instances: {e}"))?,
                );
                i += 2;
            }
            "--shots" => {
                opts.shots = Some(
                    need_value(i)?
                        .parse()
                        .map_err(|e| format!("--shots: {e}"))?,
                );
                i += 2;
            }
            "--seed" => {
                opts.seed = need_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--out" => {
                opts.out = Some(PathBuf::from(need_value(i)?));
                i += 2;
            }
            "--metrics" => {
                opts.metrics = true;
                i += 1;
            }
            "--store" => {
                opts.store = Some(PathBuf::from(need_value(i)?));
                i += 2;
            }
            "--resume" => {
                opts.resume = true;
                i += 1;
            }
            "--no-cache" => {
                opts.no_cache = true;
                i += 1;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if opts.store.is_none() && (opts.resume || opts.no_cache) {
        return Err("--resume and --no-cache require --store DIR".to_string());
    }
    if opts.resume && opts.no_cache {
        return Err("--resume and --no-cache are mutually exclusive".to_string());
    }
    if opts.resume {
        // Resuming against a store that does not exist is almost always a
        // mistyped path; a fresh run should omit --resume.
        let dir = opts.store.as_ref().expect("checked above");
        if !dir.is_dir() {
            return Err(format!(
                "--resume: store directory {} does not exist (drop --resume to start fresh)",
                dir.display()
            ));
        }
    }
    if opts.metrics {
        // Enable before any simulation so every handle registers live
        // (see the qfab-telemetry enable-before-first-use rule).
        telemetry::set_mode(telemetry::Mode::Detail);
    }
    Ok(opts)
}

fn run_one(spec: &PanelSpec, opts: &Options, cache: Option<&CellCache>) {
    let scale = opts.scale_for(spec.op);
    eprintln!(
        "running {} at {} instances x {} shots ...",
        spec.id, scale.instances, scale.shots
    );
    if telemetry::enabled() {
        // Per-panel isolation: each manifest reflects exactly one panel.
        telemetry::reset();
    }
    // Always-on crash forensics: if this panel panics, the last few
    // hundred trace events land next to the panel's other outputs.
    let dump_dir = opts.out.clone().unwrap_or_else(|| PathBuf::from("."));
    telemetry::trace::install_flight_recorder(
        &dump_dir.join(format!("{}.flightrec.json", spec.id)),
    );
    let started = std::time::Instant::now();
    let result = run_panel_with(spec, scale, opts.seed, cache, |p| {
        eprint!("\r  {}", progress_line(p, started.elapsed().as_secs_f64()));
        if p.done == p.total {
            eprintln!();
        }
    });
    println!("{}", format_panel(&result));
    eprintln!("{}", format_panel_timing(&result));
    if let Some(cache) = cache {
        // Durability point: everything this panel computed survives a
        // kill from here on.
        if let Err(e) = cache.checkpoint() {
            eprintln!("warning: store checkpoint failed: {e}");
        }
    }
    if let Some(dir) = &opts.out {
        match write_panel(dir, &result) {
            Ok(()) => eprintln!("wrote {}/{}.{{txt,csv}}", dir.display(), spec.id),
            Err(e) => eprintln!("failed writing outputs: {e}"),
        }
    }
    if telemetry::enabled() {
        let snap = telemetry::snapshot();
        println!("{}", format_metrics_summary(&snap));
        let manifest = panel_manifest(&result, Some(&snap));
        let dir = opts.out.clone().unwrap_or_else(|| PathBuf::from("."));
        match write_manifest(&dir, &manifest) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed writing manifest: {e}"),
        }
    }
}

fn list() {
    println!("available experiments:");
    println!("  table1               Table I transpiled gate counts (exact reproduction)");
    for p in fig1_panels().into_iter().chain(fig2_panels()) {
        println!("  {:<20} {}", p.id, p.title);
    }
    println!("  fig1                 all six QFA panels");
    println!("  fig2                 all six QFM panels");
    println!("  all                  table1 + every panel");
    println!("  optimal-depth        per-rate winning depth (paper SIV)");
    println!("  superposition-drop   1:2 vs 2:2 at 1.0%/0.7% 2q error (paper SV)");
    println!("  dump qfa|qfm|qft <depth|full> [--basis logical|cx|ibm] [--qasm]");
    println!("                       print a circuit (diagram or OpenQASM)");
    println!("  trace-report FILE    wall-clock attribution for a QFAB_TRACE capture");
    println!("  bench                time fused vs per-gate trajectory replay");
    println!("  bench-gate FILE      compare BENCH_kernels.json against the baseline");
}

fn dump(args: &[String]) -> Result<(), String> {
    use qfab_core::AqftDepth;
    let kind = args
        .first()
        .ok_or("dump needs a circuit kind (qfa|qfm|qft)")?;
    let depth_arg = args.get(1).ok_or("dump needs a depth (number or 'full')")?;
    let depth = if depth_arg == "full" {
        AqftDepth::Full
    } else {
        AqftDepth::Limited(depth_arg.parse().map_err(|e| format!("bad depth: {e}"))?)
    };
    let mut basis: Option<qfab_transpile::Basis> = None;
    let mut qasm = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--basis" => {
                basis = match args.get(i + 1).map(String::as_str) {
                    Some("logical") => None,
                    Some("cx") => Some(qfab_transpile::Basis::CxPlus1q),
                    Some("ibm") => Some(qfab_transpile::Basis::Ibm),
                    other => return Err(format!("unknown basis {other:?}")),
                };
                i += 2;
            }
            "--qasm" => {
                qasm = true;
                i += 1;
            }
            other => return Err(format!("unknown dump option '{other}'")),
        }
    }
    let circuit = match kind.as_str() {
        "qfa" => qfab_core::qfa(7, 8, depth).circuit,
        "qfm" => qfab_core::qfm(4, 4, depth).circuit,
        "qft" => qfab_core::aqft(8, depth),
        other => return Err(format!("unknown circuit kind '{other}'")),
    };
    let circuit = match basis {
        Some(b) => qfab_transpile::transpile(&circuit, b),
        None => circuit,
    };
    if qasm {
        print!("{}", qfab_circuit::qasm::to_qasm(&circuit));
    } else {
        let counts = circuit.counts();
        println!(
            "{kind} at depth {}: {} gates ({counts}), depth {}",
            depth.paper_label(),
            circuit.len(),
            circuit.depth()
        );
        println!("{}", qfab_circuit::diagram::render(&circuit));
    }
    Ok(())
}

fn load_json(path: &str) -> Result<telemetry::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    telemetry::Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn trace_report(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("trace-report needs a trace file")?;
    let mut top_k = 5usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                top_k = args
                    .get(i + 1)
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown trace-report option '{other}'")),
        }
    }
    let doc = load_json(path)?;
    let analysis = qfab_experiments::tracereport::analyze(&doc)?;
    print!(
        "{}",
        qfab_experiments::tracereport::format_report(&analysis, top_k)
    );
    Ok(())
}

/// Committed cross-machine baseline; regenerate with
/// `QFAB_BENCH_OUT=crates/bench/baseline cargo bench -p qfab-bench --bench simulator_kernels`.
const DEFAULT_BASELINE: &str = "crates/bench/baseline/BENCH_kernels.json";
/// Generous by design: the committed baseline comes from a different
/// machine, so only order-of-magnitude regressions should trip CI.
const DEFAULT_THRESHOLD_PCT: f64 = 300.0;

fn replay_bench(args: &[String]) -> Result<(), String> {
    let mut trajectories = 20usize;
    let mut seed = DEFAULT_SEED;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trajectories" => {
                trajectories = args
                    .get(i + 1)
                    .ok_or("--trajectories needs a value")?
                    .parse()
                    .map_err(|e| format!("--trajectories: {e}"))?;
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown bench option '{other}'")),
        }
    }
    if trajectories == 0 {
        return Err("--trajectories must be at least 1".into());
    }
    eprintln!("timing {trajectories} trajectory replays per kernel per path ...");
    let results = qfab_experiments::replaybench::run(trajectories, seed);
    print!(
        "{}",
        qfab_experiments::replaybench::format_report(&results, trajectories)
    );
    Ok(())
}

fn bench_gate(args: &[String]) -> Result<bool, String> {
    let current_path = args
        .first()
        .ok_or("bench-gate needs a current BENCH_kernels.json")?;
    let mut baseline_path = DEFAULT_BASELINE.to_string();
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                baseline_path = args.get(i + 1).ok_or("--baseline needs a value")?.clone();
                i += 2;
            }
            "--threshold" => {
                threshold = args
                    .get(i + 1)
                    .ok_or("--threshold needs a value")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown bench-gate option '{other}'")),
        }
    }
    let baseline = load_json(&baseline_path)?;
    let current = load_json(current_path)?;
    let report = qfab_experiments::benchgate::compare(&baseline, &current, threshold)?;
    print!("{}", qfab_experiments::benchgate::format_report(&report));
    Ok(report.passed())
}

fn store_verify(dir: &std::path::Path) -> ExitCode {
    if !dir.is_dir() {
        // Both store files are optional, so a missing directory would
        // verify vacuously clean — almost certainly a mistyped path.
        eprintln!("error: {} is not a directory", dir.display());
        return ExitCode::FAILURE;
    }
    let verification = match verify_store(dir) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: cannot read store {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let report = &verification.report;
    println!(
        "store {}: {} intact records, {} live cells",
        dir.display(),
        report.intact_records,
        report.live_keys
    );
    if report.is_clean() {
        println!("store is clean");
        ExitCode::SUCCESS
    } else {
        for issue in &report.issues {
            println!("  {}: {}", issue.file, issue.detail);
        }
        eprintln!("error: store has {} issue(s)", report.issues.len());
        ExitCode::FAILURE
    }
}

fn open_cache(opts: &Options) -> Result<Option<CellCache>, String> {
    let Some(dir) = &opts.store else {
        return Ok(None);
    };
    let cache = CellCache::open(dir, !opts.no_cache)
        .map_err(|e| format!("cannot open store {}: {e}", dir.display()))?;
    let recovery = cache.recovery();
    if recovery.truncated_bytes > 0 {
        eprintln!(
            "store {}: dropped {} bytes of torn journal tail (crash recovery)",
            dir.display(),
            recovery.truncated_bytes
        );
    }
    eprintln!(
        "store {}: {} cached cells{}",
        dir.display(),
        cache.entries(),
        if opts.no_cache {
            " (reads disabled, refreshing)"
        } else {
            ""
        }
    );
    Ok(Some(cache))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        list();
        return ExitCode::SUCCESS;
    };
    if command == "dump" {
        return match dump(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "trace-report" {
        return match trace_report(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "bench" {
        return match replay_bench(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "bench-gate" {
        return match bench_gate(&args[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if command == "--store-verify" {
        let Some(dir) = args.get(1) else {
            eprintln!("error: --store-verify needs a directory\n\n{USAGE}");
            return ExitCode::FAILURE;
        };
        return store_verify(std::path::Path::new(dir));
    }
    let opts = match parse_options(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let cache = match open_cache(&opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match command.as_str() {
        "list" => list(),
        "table1" => {
            let entries = run_table1();
            print!("{}", format_table1(&entries));
            if entries.iter().any(|e| !e.matches()) {
                eprintln!("WARNING: some entries deviate from the paper");
                return ExitCode::FAILURE;
            }
        }
        "fig1" => {
            for spec in fig1_panels() {
                run_one(&spec, &opts, cache.as_ref());
            }
        }
        "fig2" => {
            for spec in fig2_panels() {
                run_one(&spec, &opts, cache.as_ref());
            }
        }
        "all" => {
            print!("{}", format_table1(&run_table1()));
            println!();
            for spec in fig1_panels().into_iter().chain(fig2_panels()) {
                run_one(&spec, &opts, cache.as_ref());
            }
        }
        "optimal-depth" => {
            // The depth question is most interesting where noise bites:
            // the 2:2 2q-error panels of both figures.
            for id in ["fig1f", "fig2f"] {
                let spec = panel_by_id(id).expect("known panel");
                let scale = opts.scale_for(spec.op);
                eprintln!("running {} for the optimal-depth summary ...", spec.id);
                let result = run_panel_with(&spec, scale, opts.seed, cache.as_ref(), |_| {});
                println!("{}", format_optimal_depths(&result));
            }
        }
        "superposition-drop" => {
            let scale = opts.scale_for(OpKind::Add);
            eprintln!(
                "running targeted 1:2 / 2:2 comparison at {} instances x {} shots ...",
                scale.instances, scale.shots
            );
            let drops = superposition_drop(scale, opts.seed);
            println!("{}", format_superposition_drop(&drops));
        }
        id => match panel_by_id(id) {
            Some(spec) => run_one(&spec, &opts, cache.as_ref()),
            None => {
                eprintln!("error: unknown experiment '{id}'\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        },
    }
    if let Some(cache) = cache {
        // Fold the journal into the index segment so the next open
        // replays one sorted file instead of the whole append history.
        if let Err(e) = cache.close() {
            eprintln!("warning: store compaction failed: {e}");
        }
    }
    match telemetry::trace::write_configured_trace() {
        Ok(Some(path)) => eprintln!("wrote trace {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("failed writing trace: {e}"),
    }
    ExitCode::SUCCESS
}
