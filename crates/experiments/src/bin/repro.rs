//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro list                        # what can be regenerated
//! repro table1                      # Table I gate counts (exact match)
//! repro fig1a [options]             # one panel
//! repro fig1 | fig2 | all [options] # panel groups
//! repro optimal-depth [options]     # §IV optimal-depth summary
//! repro superposition-drop [opts]   # §V quantitative claim
//! repro dash DIR [-o FILE]          # one-page HTML result dashboard
//! repro diff A B [--alpha P]        # statistical drift gate
//! repro history DIR                 # run-history ledger listing
//! repro merge A B... -o DIR         # union N result stores
//! repro serve [ADDR] --store DIR    # sweep service (durable job queue)
//! repro worker --job J --shard K/W  # one instance shard of a job
//! repro --store-verify DIR          # integrity-check a result store
//! repro trace-report FILE [--top N] # analyze a QFAB_TRACE capture
//! repro bench [--trajectories N] [--min-batched-speedup X]
//!                                   # fused vs per-gate vs batched replay timing
//! repro bench-gate FILE [options]   # kernel-bench regression gate
//! ```
//!
//! The authoritative help screen — every subcommand plus the shared
//! sweep options — is generated from [`qfab_experiments::cli`], whose
//! tests guarantee it matches this binary's dispatch table. Run
//! `repro --help` to see it.
//!
//! Set `QFAB_TRACE=on` (or `QFAB_TRACE=on:<path>`) to capture a Chrome
//! `trace_event` JSON timeline of any run, loadable in Perfetto or
//! `chrome://tracing` and analyzable offline with `repro trace-report`.

use qfab_experiments::analysis::{
    format_optimal_depths, format_superposition_drop, superposition_drop,
};
use qfab_experiments::cli::{self, Command, DEFAULT_SEED};
use qfab_experiments::report::{
    format_metrics_summary, format_panel, format_panel_timing, panel_manifest, write_manifest,
    write_panel,
};
use qfab_experiments::rundata::{load_run, RunSummary};
use qfab_experiments::scale::OpCost;
use qfab_experiments::servecmd;
use qfab_experiments::sweep::panel_by_id;
use qfab_experiments::table1::{format_table1, run_table1};
use qfab_experiments::{
    attrib, dashboard, drift, fig1_panels, fig2_panels, ledger, perfledger, progress_line,
    run_panel_opts, run_panel_with, shots, verify_store, watch, CellCache, OpKind, PanelSpec,
    Scale,
};
use qfab_telemetry as telemetry;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    scale_name: String,
    instances: Option<usize>,
    shots: Option<u64>,
    seed: u64,
    out: Option<PathBuf>,
    metrics: bool,
    store: Option<PathBuf>,
    resume: bool,
    no_cache: bool,
    shots_ledger: bool,
    watch: Option<String>,
    watch_hold: u64,
    /// Whether this run prints the metrics summary and writes manifests.
    ///
    /// Captured *before* `--watch` silently enables telemetry: watching a
    /// sweep must not change its stdout or on-disk outputs, so only an
    /// explicit `--metrics` (or the `QFAB_TELEMETRY` env) emits them.
    emit_metrics: bool,
}

impl Options {
    fn scale_for(&self, op: OpKind) -> Scale {
        let cost = match op {
            OpKind::Add => OpCost::Adder,
            OpKind::Mul => OpCost::Multiplier,
        };
        // Unknown names are rejected in parse_options.
        let mut scale = match self.scale_name.as_str() {
            "quick" => Scale::quick_for(cost),
            "paper" => Scale::paper(),
            _ => Scale::default_for(cost),
        };
        if let Some(i) = self.instances {
            scale.instances = i;
        }
        if let Some(s) = self.shots {
            scale.shots = s;
        }
        scale
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        scale_name: "quick".to_string(),
        instances: None,
        shots: None,
        seed: DEFAULT_SEED,
        out: None,
        metrics: false,
        store: None,
        resume: false,
        no_cache: false,
        shots_ledger: false,
        watch: None,
        watch_hold: 0,
        emit_metrics: false,
    };
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--scale" => {
                let name = need_value(i)?.clone();
                if !matches!(name.as_str(), "quick" | "default" | "paper") {
                    return Err(format!(
                        "unknown scale '{name}' (expected quick, default, or paper)"
                    ));
                }
                opts.scale_name = name;
                i += 2;
            }
            "--instances" => {
                opts.instances = Some(
                    need_value(i)?
                        .parse()
                        .map_err(|e| format!("--instances: {e}"))?,
                );
                i += 2;
            }
            "--shots" => {
                opts.shots = Some(
                    need_value(i)?
                        .parse()
                        .map_err(|e| format!("--shots: {e}"))?,
                );
                i += 2;
            }
            "--seed" => {
                opts.seed = need_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--out" => {
                opts.out = Some(PathBuf::from(need_value(i)?));
                i += 2;
            }
            "--metrics" => {
                opts.metrics = true;
                i += 1;
            }
            "--store" => {
                opts.store = Some(PathBuf::from(need_value(i)?));
                i += 2;
            }
            "--resume" => {
                opts.resume = true;
                i += 1;
            }
            "--no-cache" => {
                opts.no_cache = true;
                i += 1;
            }
            "--shots-ledger" => {
                opts.shots_ledger = true;
                i += 1;
            }
            "--watch" => {
                // ADDR:PORT is optional; a following option (or nothing)
                // means "pick a free local port".
                match args.get(i + 1) {
                    Some(v) if v.contains(':') && !v.starts_with('-') => {
                        opts.watch = Some(v.clone());
                        i += 2;
                    }
                    _ => {
                        opts.watch = Some("127.0.0.1:0".to_string());
                        i += 1;
                    }
                }
            }
            "--watch-hold" => {
                opts.watch_hold = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--watch-hold: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if opts.store.is_none() && (opts.resume || opts.no_cache) {
        return Err("--resume and --no-cache require --store DIR".to_string());
    }
    if opts.store.is_none() && opts.shots_ledger {
        // The ledger is store-backed: without a store there is nowhere
        // for the provenance records to live.
        return Err("--shots-ledger requires --store DIR".to_string());
    }
    if opts.resume && opts.no_cache {
        return Err("--resume and --no-cache are mutually exclusive".to_string());
    }
    if opts.resume {
        // Resuming against a store that does not exist is almost always a
        // mistyped path; a fresh run should omit --resume.
        let dir = opts.store.as_ref().expect("checked above");
        if !dir.is_dir() {
            return Err(format!(
                "--resume: store directory {} does not exist (drop --resume to start fresh)",
                dir.display()
            ));
        }
    }
    if opts.watch.is_none() && opts.watch_hold > 0 {
        return Err("--watch-hold requires --watch".to_string());
    }
    if opts.metrics {
        // Enable before any simulation so every handle registers live
        // (see the qfab-telemetry enable-before-first-use rule).
        telemetry::set_mode(telemetry::Mode::Detail);
    }
    // Whether metric summaries/manifests are emitted is decided *here*,
    // before --watch can widen the telemetry mode: live monitoring must
    // never change what a run prints or writes.
    opts.emit_metrics = opts.metrics || telemetry::enabled();
    if opts.watch.is_some() && !telemetry::enabled() {
        // The timeline needs live counters; Summary keeps hot paths cheap.
        telemetry::set_mode(telemetry::Mode::Summary);
    }
    Ok(opts)
}

fn run_one(spec: &PanelSpec, opts: &Options, cache: Option<&CellCache>) {
    let scale = opts.scale_for(spec.op);
    eprintln!(
        "running {} at {} instances x {} shots ...",
        spec.id, scale.instances, scale.shots
    );
    if telemetry::enabled() {
        // Per-panel isolation: each manifest reflects exactly one panel.
        telemetry::reset();
    }
    // Always-on crash forensics: if this panel panics, the last few
    // hundred trace events land next to the panel's other outputs.
    let dump_dir = opts.out.clone().unwrap_or_else(|| PathBuf::from("."));
    telemetry::trace::install_flight_recorder(
        &dump_dir.join(format!("{}.flightrec.json", spec.id)),
    );
    watch::panel_started(
        spec.id,
        scale.instances,
        spec.rates.len() * spec.depths.len(),
    );
    let started = std::time::Instant::now();
    let result = run_panel_opts(spec, scale, opts.seed, cache, opts.shots_ledger, |p| {
        let elapsed = started.elapsed().as_secs_f64();
        watch::publish_progress(&p, elapsed);
        eprint!("\r  {}", progress_line(p, elapsed));
        if p.done == p.total {
            eprintln!();
        }
    });
    watch::panel_finished(spec.id);
    println!("{}", format_panel(&result));
    eprintln!("{}", format_panel_timing(&result));
    if let Some(cache) = cache {
        // Durability point: everything this panel computed survives a
        // kill from here on.
        if let Err(e) = cache.checkpoint() {
            eprintln!("warning: store checkpoint failed: {e}");
        }
    }
    if let Some(dir) = &opts.out {
        match write_panel(dir, &result) {
            Ok(()) => eprintln!("wrote {}/{}.{{txt,csv}}", dir.display(), spec.id),
            Err(e) => eprintln!("failed writing outputs: {e}"),
        }
    }
    if opts.emit_metrics {
        // Fold the current process footprint into the final snapshot so
        // the manifest records peak RSS alongside the sim/store gauges.
        telemetry::monitor::sample_resource_gauges();
        let snap = telemetry::snapshot();
        println!("{}", format_metrics_summary(&snap));
        let manifest = panel_manifest(&result, Some(&snap));
        let dir = opts.out.clone().unwrap_or_else(|| PathBuf::from("."));
        match write_manifest(&dir, &manifest) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed writing manifest: {e}"),
        }
    }
}

fn list() {
    println!("available experiments:");
    println!("  table1               Table I transpiled gate counts (exact reproduction)");
    for p in fig1_panels().into_iter().chain(fig2_panels()) {
        println!("  {:<20} {}", p.id, p.title);
    }
    println!("  fig1                 all six QFA panels");
    println!("  fig2                 all six QFM panels");
    println!("  all                  table1 + every panel");
    println!("  optimal-depth        per-rate winning depth (paper SIV)");
    println!("  superposition-drop   1:2 vs 2:2 at 1.0%/0.7% 2q error (paper SV)");
    println!("  dump qfa|qfm|qft <depth|full> [--basis logical|cx|ibm] [--qasm]");
    println!("                       print a circuit (diagram or OpenQASM)");
    println!("  dash DIR             render a run directory to one HTML dashboard");
    println!("  attrib DIR           per-site error budget from a --shots-ledger store");
    println!("  diff A B             drift gate: compare two runs' success rates");
    println!("  history DIR          list a store's run-history ledger");
    println!("  merge A B... -o DIR  union N result stores into one");
    println!("  serve --store DIR    sweep service: POST jobs, sharded workers");
    println!("  worker               compute one instance shard (see serve)");
    println!("  trace-report FILE    wall-clock attribution for a QFAB_TRACE capture");
    println!("  trace-merge A B...   union per-worker trace captures into one timeline");
    println!("  bench                time fused vs per-gate vs batched trajectory replay");
    println!("  bench-gate FILE      compare BENCH_kernels.json against the baseline");
    println!("run 'repro --help' for the full option reference.");
}

fn dump(args: &[String]) -> Result<(), String> {
    use qfab_core::AqftDepth;
    let kind = args
        .first()
        .ok_or("dump needs a circuit kind (qfa|qfm|qft)")?;
    let depth_arg = args.get(1).ok_or("dump needs a depth (number or 'full')")?;
    let depth = if depth_arg == "full" {
        AqftDepth::Full
    } else {
        AqftDepth::Limited(depth_arg.parse().map_err(|e| format!("bad depth: {e}"))?)
    };
    let mut basis: Option<qfab_transpile::Basis> = None;
    let mut qasm = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--basis" => {
                basis = match args.get(i + 1).map(String::as_str) {
                    Some("logical") => None,
                    Some("cx") => Some(qfab_transpile::Basis::CxPlus1q),
                    Some("ibm") => Some(qfab_transpile::Basis::Ibm),
                    other => return Err(format!("unknown basis {other:?}")),
                };
                i += 2;
            }
            "--qasm" => {
                qasm = true;
                i += 1;
            }
            other => return Err(format!("unknown dump option '{other}'")),
        }
    }
    let circuit = match kind.as_str() {
        "qfa" => qfab_core::qfa(7, 8, depth).circuit,
        "qfm" => qfab_core::qfm(4, 4, depth).circuit,
        "qft" => qfab_core::aqft(8, depth),
        other => return Err(format!("unknown circuit kind '{other}'")),
    };
    let circuit = match basis {
        Some(b) => qfab_transpile::transpile(&circuit, b),
        None => circuit,
    };
    if qasm {
        print!("{}", qfab_circuit::qasm::to_qasm(&circuit));
    } else {
        let counts = circuit.counts();
        println!(
            "{kind} at depth {}: {} gates ({counts}), depth {}",
            depth.paper_label(),
            circuit.len(),
            circuit.depth()
        );
        println!("{}", qfab_circuit::diagram::render(&circuit));
    }
    Ok(())
}

fn load_json(path: &str) -> Result<telemetry::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    telemetry::Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn trace_report(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("trace-report needs a trace file")?;
    let mut top_k = 5usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                top_k = args
                    .get(i + 1)
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown trace-report option '{other}'")),
        }
    }
    let doc = load_json(path)?;
    let analysis = qfab_experiments::tracereport::analyze(&doc)?;
    print!(
        "{}",
        qfab_experiments::tracereport::format_report(&analysis, top_k)
    );
    Ok(())
}

fn trace_merge(args: &[String]) -> Result<(), String> {
    let mut inputs: Vec<std::path::PathBuf> = Vec::new();
    let mut out: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--out" => {
                out = Some(args.get(i + 1).ok_or("-o needs a file")?.into());
                i += 2;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown trace-merge option '{other}'"))
            }
            path => {
                inputs.push(path.into());
                i += 1;
            }
        }
    }
    if inputs.is_empty() {
        return Err("trace-merge needs input trace files (trace-merge A B... -o FILE)".into());
    }
    let out = out.ok_or("trace-merge needs -o FILE")?;
    let note = qfab_experiments::tracemerge::merge_files(&inputs, &out)?;
    println!("{note}");
    Ok(())
}

/// Committed cross-machine baseline; regenerate with
/// `QFAB_BENCH_OUT=crates/bench/baseline cargo bench -p qfab-bench --bench simulator_kernels`.
const DEFAULT_BASELINE: &str = "crates/bench/baseline/BENCH_kernels.json";
/// Generous by design: the committed baseline comes from a different
/// machine, so only order-of-magnitude regressions should trip CI.
const DEFAULT_THRESHOLD_PCT: f64 = 300.0;

fn replay_bench(args: &[String]) -> Result<(), String> {
    let mut trajectories = 20usize;
    let mut seed = DEFAULT_SEED;
    let mut min_batched_speedup: Option<f64> = None;
    // Perf history lands at the repo root by convention, so per-PR
    // history accrues in one place; --history redirects it.
    let mut history_dir = PathBuf::from(".");
    let mut record = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--history" => {
                history_dir = PathBuf::from(args.get(i + 1).ok_or("--history needs a directory")?);
                i += 2;
            }
            "--no-history" => {
                record = false;
                i += 1;
            }
            "--trajectories" => {
                trajectories = args
                    .get(i + 1)
                    .ok_or("--trajectories needs a value")?
                    .parse()
                    .map_err(|e| format!("--trajectories: {e}"))?;
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--min-batched-speedup" => {
                min_batched_speedup = Some(
                    args.get(i + 1)
                        .ok_or("--min-batched-speedup needs a value")?
                        .parse()
                        .map_err(|e| format!("--min-batched-speedup: {e}"))?,
                );
                i += 2;
            }
            other => return Err(format!("unknown bench option '{other}'")),
        }
    }
    if trajectories == 0 {
        return Err("--trajectories must be at least 1".into());
    }
    eprintln!("timing {trajectories} trajectory replays per kernel per path ...");
    let results = qfab_experiments::replaybench::run(trajectories, seed);
    print!(
        "{}",
        qfab_experiments::replaybench::format_report(&results, trajectories)
    );
    if record {
        // Best-effort persistence: a read-only checkout must not fail
        // the timing run itself.
        let kernels = perfledger::kernels_from_timings(&results);
        match perfledger::append(
            &history_dir,
            trajectories as u64,
            &kernels,
            ledger::git_describe().as_deref(),
        ) {
            Ok(true) => eprintln!(
                "perf history: recorded in {}",
                history_dir.join(perfledger::PERF_FILE).display()
            ),
            Ok(false) => eprintln!("perf history: ledger already current"),
            Err(e) => eprintln!("warning: perf history append failed: {e}"),
        }
        let snapshot = history_dir.join(perfledger::REPLAY_SNAPSHOT);
        let manifest = perfledger::manifest(&kernels, trajectories as u64);
        match std::fs::write(&snapshot, manifest.encode()) {
            Ok(()) => eprintln!("wrote {}", snapshot.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", snapshot.display()),
        }
    }
    if let Some(min) = min_batched_speedup {
        // Gate on the best kernel: batching targets states past L2
        // residency (the big QFM kernel); the small QFA kernel runs at
        // parity and is reported but would only add machine noise to a
        // smoke check. A broken batched path drags *every* kernel far
        // below 1.0 and still trips this.
        let best = results
            .iter()
            .max_by(|a, b| a.batched_speedup().total_cmp(&b.batched_speedup()))
            .ok_or("bench produced no kernels")?;
        if best.batched_speedup() < min {
            return Err(format!(
                "{}: best batched speedup {:.2}x below the required {min:.2}x \
                 (fused {:.3} ms vs batched {:.3} ms per trajectory)",
                best.label,
                best.batched_speedup(),
                best.fused_ms,
                best.batched_ms
            ));
        }
    }
    Ok(())
}

fn bench_gate(args: &[String]) -> Result<bool, String> {
    let mut current_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut history_dir: Option<PathBuf> = None;
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                baseline_path = Some(args.get(i + 1).ok_or("--baseline needs a value")?.clone());
                i += 2;
            }
            "--history" => {
                history_dir = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--history needs a directory")?,
                ));
                i += 2;
            }
            "--threshold" => {
                threshold = args
                    .get(i + 1)
                    .ok_or("--threshold needs a value")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                i += 2;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown bench-gate option '{other}'"))
            }
            path if current_path.is_none() => {
                current_path = Some(path.to_string());
                i += 1;
            }
            other => return Err(format!("bench-gate takes one FILE, got extra '{other}'")),
        }
    }
    // Three modes share one comparator:
    //   FILE alone           — FILE vs the committed (or --baseline) file
    //   --history DIR alone  — latest ledger entry vs the previous one
    //                          (or vs --baseline when given explicitly)
    //   FILE + --history DIR — FILE vs the latest ledger entry
    let (baseline, current) = match (&current_path, &history_dir) {
        (Some(path), None) => {
            let base = baseline_path.unwrap_or_else(|| DEFAULT_BASELINE.to_string());
            (load_json(&base)?, load_json(path)?)
        }
        (Some(path), Some(dir)) => {
            let history = perfledger::read(dir)
                .map_err(|e| format!("cannot read perf history in {}: {e}", dir.display()))?;
            let latest = perfledger::resolve(&history, -1).ok_or_else(|| {
                format!(
                    "no perf history in {} (run 'repro bench' there first)",
                    dir.display()
                )
            })?;
            (perfledger::entry_manifest(latest), load_json(path)?)
        }
        (None, Some(dir)) => {
            let history = perfledger::read(dir)
                .map_err(|e| format!("cannot read perf history in {}: {e}", dir.display()))?;
            let latest = perfledger::resolve(&history, -1).ok_or_else(|| {
                format!(
                    "no perf history in {} (run 'repro bench' there first)",
                    dir.display()
                )
            })?;
            let baseline = match &baseline_path {
                Some(path) => load_json(path)?,
                None => {
                    let previous = perfledger::resolve(&history, -2).ok_or_else(|| {
                        format!(
                            "perf history in {} has a single entry — nothing to \
                             compare against (pass --baseline FILE, or bench again)",
                            dir.display()
                        )
                    })?;
                    perfledger::entry_manifest(previous)
                }
            };
            (baseline, perfledger::entry_manifest(latest))
        }
        (None, None) => {
            return Err("bench-gate needs a BENCH file or --history DIR".into());
        }
    };
    let report = qfab_experiments::benchgate::compare(&baseline, &current, threshold)?;
    print!("{}", qfab_experiments::benchgate::format_report(&report));
    Ok(report.passed())
}

fn store_verify(dir: &std::path::Path) -> ExitCode {
    if !dir.is_dir() {
        // Both store files are optional, so a missing directory would
        // verify vacuously clean — almost certainly a mistyped path.
        eprintln!("error: {} is not a directory", dir.display());
        return ExitCode::FAILURE;
    }
    let verification = match verify_store(dir) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: cannot read store {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let report = &verification.report;
    println!(
        "store {}: {} intact records, {} live cells",
        dir.display(),
        report.intact_records,
        report.live_keys
    );
    if report.is_clean() {
        println!("store is clean");
        ExitCode::SUCCESS
    } else {
        for issue in &report.issues {
            println!("  {}: {}", issue.file, issue.detail);
        }
        eprintln!("error: store has {} issue(s)", report.issues.len());
        ExitCode::FAILURE
    }
}

fn dash(args: &[String]) -> Result<(), String> {
    let dir = args.first().ok_or("dash needs a run directory")?;
    let mut out = PathBuf::from("dashboard.html");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--out" => {
                out = PathBuf::from(args.get(i + 1).ok_or("-o needs a file path")?);
                i += 2;
            }
            other => return Err(format!("unknown dash option '{other}'")),
        }
    }
    let dir = Path::new(dir);
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    let html = dashboard::render_dir(dir).map_err(|e| format!("cannot read run: {e}"))?;
    std::fs::write(&out, &html).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    eprintln!("wrote {} ({} bytes)", out.display(), html.len());
    Ok(())
}

/// Resolves a `repro diff` operand: a store directory, or `DIR@N` for
/// the N-th ledger entry (negative N counts from the latest).
fn resolve_run_ref(spec: &str) -> Result<RunSummary, String> {
    if let Some((dir_part, idx_part)) = spec.rsplit_once('@') {
        if let Ok(idx) = idx_part.parse::<i64>() {
            let dir = Path::new(dir_part);
            let history = ledger::read(dir)
                .map_err(|e| format!("cannot read ledger in {}: {e}", dir.display()))?;
            let entry = ledger::resolve(&history, idx).ok_or_else(|| {
                format!(
                    "{spec}: ledger has {} entries, no index {idx}",
                    history.entries.len()
                )
            })?;
            return Ok(entry.summary.clone());
        }
    }
    let dir = Path::new(spec);
    if !dir.is_dir() {
        return Err(format!(
            "{spec} is not a run directory (or DIR@N ledger ref)"
        ));
    }
    let run = load_run(dir).map_err(|e| format!("cannot read store {spec}: {e}"))?;
    if run.panels.is_empty() {
        return Err(format!("{spec} holds no decodable cell records"));
    }
    Ok(RunSummary::from_run(&run))
}

fn diff(args: &[String]) -> Result<bool, String> {
    let (Some(a_spec), Some(b_spec)) = (args.first(), args.get(1)) else {
        return Err("diff needs two runs (store DIR or DIR@N ledger ref)".into());
    };
    let mut alpha = drift::DEFAULT_ALPHA;
    let mut json = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--alpha" => {
                alpha = args
                    .get(i + 1)
                    .ok_or("--alpha needs a value")?
                    .parse()
                    .map_err(|e| format!("--alpha: {e}"))?;
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            other => return Err(format!("unknown diff option '{other}'")),
        }
    }
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(format!("--alpha must be in (0, 1), got {alpha}"));
    }
    let a = resolve_run_ref(a_spec)?;
    let b = resolve_run_ref(b_spec)?;
    let report = drift::compare(&a, &b, alpha);
    if json {
        // Machine-readable drift: one qfab.drift.v1 document on stdout,
        // same exit semantics as the text report.
        println!("{}", drift::json_report(&report).encode());
    } else {
        print!("{}", drift::format_report(&report));
    }
    Ok(report.passed())
}

fn attrib_cmd(args: &[String]) -> Result<(), String> {
    let dir = args.first().ok_or("attrib needs a store directory")?;
    let mut top_k = 5usize;
    let mut cross_check: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                top_k = args
                    .get(i + 1)
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
                i += 2;
            }
            "--cross-check" => {
                // Optional cell budget; bare --cross-check uses the default.
                match args.get(i + 1).map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) => {
                        cross_check = Some(n);
                        i += 2;
                    }
                    _ => {
                        cross_check = Some(attrib::DEFAULT_CROSS_CHECK_CELLS);
                        i += 1;
                    }
                }
            }
            other => return Err(format!("unknown attrib option '{other}'")),
        }
    }
    let dir = Path::new(dir);
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    let data = shots::load_shots(dir).map_err(|e| format!("cannot read store: {e}"))?;
    if data.cells.is_empty() {
        // A store without provenance is the normal state for most runs;
        // report it plainly and exit clean so scripted pipelines can
        // probe stores without special-casing.
        println!(
            "no {} records in {} (sweep with --store {} --shots-ledger first)",
            shots::SHOTS_SCHEMA,
            dir.display(),
            dir.display()
        );
        return Ok(());
    }
    let report = attrib::attribute(&data);
    print!("{}", attrib::format_report(&report, top_k));
    if let Some(limit) = cross_check {
        eprintln!("cross-checking up to {limit} cell(s) on the density engine ...");
        let checks = attrib::density_cross_check(&data, limit);
        print!("{}", attrib::format_cross_check(&checks));
        if checks.iter().any(|c| !c.within()) {
            return Err(
                "density cross-check: exact noisy loss outside the Monte-Carlo interval".into(),
            );
        }
    }
    Ok(())
}

fn history_cmd(args: &[String]) -> Result<(), String> {
    let dir = args.first().ok_or("history needs a store directory")?;
    let dir = Path::new(dir);
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    if !dir.join(ledger::HISTORY_FILE).exists() {
        // A store that has never recorded a sweep is a normal state,
        // not an error: say so plainly and exit clean.
        println!(
            "no history recorded in {} (run a sweep with --store to start the ledger)",
            dir.display()
        );
        return Ok(());
    }
    let history =
        ledger::read(dir).map_err(|e| format!("cannot read ledger in {}: {e}", dir.display()))?;
    print!("{}", ledger::format_history(&history));
    Ok(())
}

/// After a sweep with `--store`, records the store's current summary in
/// the run-history ledger (deduplicated against the latest entry).
fn record_history(dir: &Path) {
    let run = match load_run(dir) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("warning: history: cannot re-read store: {e}");
            return;
        }
    };
    if run.panels.is_empty() {
        return;
    }
    let summary = RunSummary::from_run(&run);
    match ledger::append(dir, &summary, ledger::git_describe().as_deref()) {
        Ok(true) => eprintln!("history: recorded sweep in {}", dir.display()),
        Ok(false) => eprintln!("history: ledger already current"),
        Err(e) => eprintln!("warning: history append failed: {e}"),
    }
}

fn open_cache(opts: &Options) -> Result<Option<CellCache>, String> {
    let Some(dir) = &opts.store else {
        return Ok(None);
    };
    let cache = CellCache::open(dir, !opts.no_cache)
        .map_err(|e| format!("cannot open store {}: {e}", dir.display()))?;
    let recovery = cache.recovery();
    if recovery.truncated_bytes > 0 {
        eprintln!(
            "store {}: dropped {} bytes of torn journal tail (crash recovery)",
            dir.display(),
            recovery.truncated_bytes
        );
    }
    eprintln!(
        "store {}: {} cached cells{}",
        dir.display(),
        cache.entries(),
        if opts.no_cache {
            " (reads disabled, refreshing)"
        } else {
            ""
        }
    );
    Ok(Some(cache))
}

fn simple(result: Result<(), String>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn gate(result: Result<bool, String>) -> ExitCode {
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        list();
        return ExitCode::SUCCESS;
    };
    if matches!(command.as_str(), "-h" | "--help" | "help") {
        println!("{}", cli::usage());
        return ExitCode::SUCCESS;
    }
    let rest = &args[1..];
    let parsed = cli::parse_command(command);
    match parsed {
        Some(Command::Dump) => return simple(dump(rest)),
        Some(Command::TraceReport) => return simple(trace_report(rest)),
        Some(Command::TraceMerge) => return simple(trace_merge(rest)),
        Some(Command::Bench) => return simple(replay_bench(rest)),
        Some(Command::BenchGate) => return gate(bench_gate(rest)),
        Some(Command::Dash) => return simple(dash(rest)),
        Some(Command::Attrib) => return simple(attrib_cmd(rest)),
        Some(Command::Diff) => return gate(diff(rest)),
        Some(Command::History) => return simple(history_cmd(rest)),
        Some(Command::Merge) => {
            return match servecmd::merge_cmd(rest) {
                Ok(report) => {
                    println!("{}", report.format());
                    if report.conflicts > 0 {
                        eprintln!(
                            "error: {} conflicting record(s) — same key, different payload",
                            report.conflicts
                        );
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(Command::Serve) => return simple(servecmd::serve_cmd(rest)),
        Some(Command::Worker) => return simple(servecmd::worker_cmd(rest)),
        Some(Command::StoreVerify) => {
            let Some(dir) = rest.first() else {
                eprintln!(
                    "error: --store-verify needs a directory\n\n{}",
                    cli::usage()
                );
                return ExitCode::FAILURE;
            };
            return store_verify(Path::new(dir));
        }
        _ => {}
    }
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::usage());
            return ExitCode::FAILURE;
        }
    };
    let cache = match open_cache(&opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Read-only live monitor: heartbeat + timeline + HTTP endpoints.
    // The heartbeat lands next to the store when one exists, else next
    // to the outputs, so a killed run leaves its final state on disk.
    let watch_session = match &opts.watch {
        None => None,
        Some(addr) => {
            let serve_dir = opts
                .store
                .clone()
                .or_else(|| opts.out.clone())
                .unwrap_or_else(|| PathBuf::from("."));
            if let Err(e) = std::fs::create_dir_all(&serve_dir) {
                eprintln!("error: --watch: cannot create {}: {e}", serve_dir.display());
                return ExitCode::FAILURE;
            }
            let status_path = serve_dir.join("status.json");
            match watch::start(addr, &serve_dir, status_path) {
                Ok(session) => {
                    eprintln!(
                        "watch: serving http://{}/ (status.json, metrics.json, dash, history)",
                        session.local_addr()
                    );
                    Some(session)
                }
                Err(e) => {
                    eprintln!("error: --watch {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    match parsed {
        Some(Command::List) => list(),
        Some(Command::Table1) => {
            let entries = run_table1();
            print!("{}", format_table1(&entries));
            if entries.iter().any(|e| !e.matches()) {
                eprintln!("WARNING: some entries deviate from the paper");
                return ExitCode::FAILURE;
            }
        }
        Some(Command::Fig1) => {
            for spec in fig1_panels() {
                run_one(&spec, &opts, cache.as_ref());
            }
        }
        Some(Command::Fig2) => {
            for spec in fig2_panels() {
                run_one(&spec, &opts, cache.as_ref());
            }
        }
        Some(Command::All) => {
            print!("{}", format_table1(&run_table1()));
            println!();
            for spec in fig1_panels().into_iter().chain(fig2_panels()) {
                run_one(&spec, &opts, cache.as_ref());
            }
        }
        Some(Command::OptimalDepth) => {
            // The depth question is most interesting where noise bites:
            // the 2:2 2q-error panels of both figures.
            for id in ["fig1f", "fig2f"] {
                let spec = panel_by_id(id).expect("known panel");
                let scale = opts.scale_for(spec.op);
                eprintln!("running {} for the optimal-depth summary ...", spec.id);
                let result = run_panel_with(&spec, scale, opts.seed, cache.as_ref(), |_| {});
                println!("{}", format_optimal_depths(&result));
            }
        }
        Some(Command::SuperpositionDrop) => {
            let scale = opts.scale_for(OpKind::Add);
            eprintln!(
                "running targeted 1:2 / 2:2 comparison at {} instances x {} shots ...",
                scale.instances, scale.shots
            );
            let drops = superposition_drop(scale, opts.seed);
            println!("{}", format_superposition_drop(&drops));
        }
        None => match panel_by_id(command) {
            Some(spec) => run_one(&spec, &opts, cache.as_ref()),
            None => {
                eprintln!("error: unknown experiment '{command}'\n\n{}", cli::usage());
                return ExitCode::FAILURE;
            }
        },
        Some(_) => unreachable!("non-sweep commands dispatched above"),
    }
    if let Some(cache) = cache {
        // Fold the journal into the index segment so the next open
        // replays one sorted file instead of the whole append history.
        if let Err(e) = cache.close() {
            eprintln!("warning: store compaction failed: {e}");
        }
        // Ledger point: the sweep's results are durable, so its summary
        // becomes (at most) one new history entry.
        if let Some(dir) = &opts.store {
            record_history(dir);
        }
    }
    match telemetry::trace::write_configured_trace() {
        Ok(Some(path)) => eprintln!("wrote trace {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("failed writing trace: {e}"),
    }
    if let Some(session) = watch_session {
        // Publish the terminal heartbeat only after the store and trace
        // are durable, then (optionally) keep serving so a poller can
        // observe the finished state before the port closes.
        if opts.watch_hold > 0 {
            eprintln!(
                "watch: done; holding http://{}/ for {}s",
                session.local_addr(),
                opts.watch_hold
            );
        }
        session.finish(opts.watch_hold);
    }
    ExitCode::SUCCESS
}
