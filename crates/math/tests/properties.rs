//! Property-based tests for the math substrate.

use proptest::prelude::*;
use qfab_math::bits::{
    from_bitstring, gather_bits, insert_zero_bit, reverse_bits, scatter_bits, to_bitstring,
};
use qfab_math::complex::{c64, Complex64};
use qfab_math::frac::{
    binary_fraction, decode_twos_complement, encode_twos_complement, wrap_mod_2n,
};
use qfab_math::rng::Xoshiro256StarStar;
use qfab_math::sampling::{sample_binomial, AliasTable};
use qfab_math::stats::Welford;
use rand::RngCore;

fn arb_c64() -> impl Strategy<Value = Complex64> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| c64(re, im))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_field_axioms(a in arb_c64(), b in arb_c64(), c in arb_c64()) {
        let tol = 1e-9;
        prop_assert!(((a + b) + c).approx_eq(a + (b + c), tol));
        prop_assert!((a * b).approx_eq(b * a, tol));
        prop_assert!(((a * b) * c).approx_eq(a * (b * c), 1e-7));
        prop_assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-7));
    }

    #[test]
    fn conjugation_is_an_involution_and_multiplicative(a in arb_c64(), b in arb_c64()) {
        prop_assert!(a.conj().conj().approx_eq(a, 1e-12));
        prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj(), 1e-8));
        prop_assert!((a.norm_sqr() - (a * a.conj()).re).abs() < 1e-8);
    }

    #[test]
    fn cis_is_a_homomorphism(x in -6.0f64..6.0, y in -6.0f64..6.0) {
        let lhs = Complex64::cis(x) * Complex64::cis(y);
        prop_assert!(lhs.approx_eq(Complex64::cis(x + y), 1e-10));
        prop_assert!((Complex64::cis(x).norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication(a in arb_c64(), b in arb_c64()) {
        prop_assume!(b.norm_sqr() > 1e-6);
        prop_assert!(((a * b) / b).approx_eq(a, 1e-7));
    }

    #[test]
    fn bit_insert_partition(k in 0usize..1024, bit in 0u32..10) {
        let zero = insert_zero_bit(k, bit);
        prop_assert_eq!(zero >> bit & 1, 0);
        // Removing the inserted bit recovers k.
        let low = zero & ((1 << bit) - 1);
        let high = zero >> (bit + 1);
        prop_assert_eq!((high << bit) | low, k);
    }

    #[test]
    fn gather_scatter_inverse(idx in 0usize..4096, p0 in 0u32..12, p1 in 0u32..12, p2 in 0u32..12) {
        prop_assume!(p0 != p1 && p1 != p2 && p0 != p2);
        let positions = [p0, p1, p2];
        let v = gather_bits(idx, &positions);
        prop_assert_eq!(gather_bits(scatter_bits(idx, v, &positions), &positions), v);
        prop_assert_eq!(scatter_bits(idx, v, &positions), idx);
    }

    #[test]
    fn bit_reversal_involution(x in 0usize..4096, n in 1u32..13) {
        let x = x & ((1 << n) - 1);
        prop_assert_eq!(reverse_bits(reverse_bits(x, n), n), x);
    }

    #[test]
    fn bitstring_roundtrip(x in 0usize..65536, n in 1u32..17) {
        let x = x & ((1 << n) - 1);
        prop_assert_eq!(from_bitstring(&to_bitstring(x, n)), Some(x));
    }

    #[test]
    fn twos_complement_total_roundtrip(v in -32768i64..32767, n in 1u32..17) {
        let lo = -(1i64 << (n - 1));
        let hi = (1i64 << (n - 1)) - 1;
        let v = lo + v.rem_euclid(hi - lo + 1);
        let enc = encode_twos_complement(v, n).unwrap();
        prop_assert!(enc < (1usize << n));
        prop_assert_eq!(decode_twos_complement(enc, n), v);
    }

    #[test]
    fn wrap_is_additive_homomorphism(a in -1000i64..1000, b in -1000i64..1000, n in 1u32..12) {
        let lhs = wrap_mod_2n(a + b, n);
        let rhs = (wrap_mod_2n(a, n) + wrap_mod_2n(b, n)) % (1usize << n);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn binary_fraction_bounds_and_truncation(y in 0usize..256, i in 1u32..9) {
        let f = binary_fraction(y, i, 1);
        prop_assert!((0.0..1.0).contains(&f));
        // Truncating from below only removes non-negative mass.
        for j in 2..=i {
            let t = binary_fraction(y, i, j);
            prop_assert!(t <= f + 1e-12);
        }
    }

    #[test]
    fn welford_merge_associativity(xs in prop::collection::vec(-100.0f64..100.0, 3..60), split in 1usize..50) {
        let split = split.min(xs.len() - 1);
        let whole: Welford = xs.iter().copied().collect();
        let mut left: Welford = xs[..split].iter().copied().collect();
        let right: Welford = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8);
        prop_assert!((left.variance_sample() - whole.variance_sample()).abs() < 1e-6);
    }

    #[test]
    fn binomial_samples_in_range(n in 0u64..5000, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = Xoshiro256StarStar::new(seed);
        let k = sample_binomial(n, p, &mut rng);
        prop_assert!(k <= n);
    }

    #[test]
    fn alias_table_total_counts(weights in prop::collection::vec(0.0f64..10.0, 1..20), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 1e-6);
        let table = AliasTable::new(&weights);
        let mut rng = Xoshiro256StarStar::new(seed);
        let counts = table.sample_counts(500, &mut rng);
        prop_assert_eq!(counts.iter().sum::<u64>(), 500);
        // Zero-weight outcomes are never drawn.
        for (i, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                prop_assert_eq!(counts[i], 0);
            }
        }
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = Xoshiro256StarStar::for_stream(seed, stream);
        let mut b = Xoshiro256StarStar::for_stream(seed, stream);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
