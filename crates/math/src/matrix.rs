//! Small dense complex matrices used as 1-, 2- and 3-qubit unitaries.
//!
//! The simulator only ever applies gates of at most three qubits, so fixed
//! size 2×2, 4×4 and 8×8 matrices (stored row-major in arrays, fully on
//! the stack) cover every need with no allocation. A macro generates the
//! shared operations for each size.

#[cfg(test)]
use crate::complex::c64;
use crate::complex::Complex64;

macro_rules! define_matrix {
    ($(#[$meta:meta])* $name:ident, $dim:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Debug)]
        pub struct $name {
            /// Row-major entries: `m[r][c]`.
            pub m: [[Complex64; $dim]; $dim],
        }

        impl $name {
            /// Matrix dimension (number of rows = columns).
            pub const DIM: usize = $dim;

            /// The zero matrix.
            pub fn zero() -> Self {
                Self { m: [[Complex64::ZERO; $dim]; $dim] }
            }

            /// The identity matrix.
            pub fn identity() -> Self {
                let mut out = Self::zero();
                for i in 0..$dim {
                    out.m[i][i] = Complex64::ONE;
                }
                out
            }

            /// Builds a matrix from row-major entries.
            pub const fn from_rows(m: [[Complex64; $dim]; $dim]) -> Self {
                Self { m }
            }

            /// A diagonal matrix with the given diagonal.
            pub fn diagonal(d: [Complex64; $dim]) -> Self {
                let mut out = Self::zero();
                for i in 0..$dim {
                    out.m[i][i] = d[i];
                }
                out
            }

            /// Matrix product `self · rhs`.
            pub fn matmul(&self, rhs: &Self) -> Self {
                let mut out = Self::zero();
                for r in 0..$dim {
                    for k in 0..$dim {
                        let a = self.m[r][k];
                        if a == Complex64::ZERO {
                            continue;
                        }
                        for c in 0..$dim {
                            out.m[r][c] = a.mul_add(rhs.m[k][c], out.m[r][c]);
                        }
                    }
                }
                out
            }

            /// Conjugate transpose `self†`.
            pub fn adjoint(&self) -> Self {
                let mut out = Self::zero();
                for r in 0..$dim {
                    for c in 0..$dim {
                        out.m[c][r] = self.m[r][c].conj();
                    }
                }
                out
            }

            /// Transpose without conjugation.
            pub fn transpose(&self) -> Self {
                let mut out = Self::zero();
                for r in 0..$dim {
                    for c in 0..$dim {
                        out.m[c][r] = self.m[r][c];
                    }
                }
                out
            }

            /// Entry-wise complex conjugate.
            pub fn conj(&self) -> Self {
                let mut out = *self;
                for r in 0..$dim {
                    for c in 0..$dim {
                        out.m[r][c] = out.m[r][c].conj();
                    }
                }
                out
            }

            /// Scales every entry by a complex factor.
            pub fn scale(&self, s: Complex64) -> Self {
                let mut out = *self;
                for r in 0..$dim {
                    for c in 0..$dim {
                        out.m[r][c] *= s;
                    }
                }
                out
            }

            /// Matrix sum.
            pub fn add(&self, rhs: &Self) -> Self {
                let mut out = *self;
                for r in 0..$dim {
                    for c in 0..$dim {
                        out.m[r][c] += rhs.m[r][c];
                    }
                }
                out
            }

            /// Matrix–vector product `self · v`.
            pub fn apply(&self, v: &[Complex64; $dim]) -> [Complex64; $dim] {
                let mut out = [Complex64::ZERO; $dim];
                for r in 0..$dim {
                    let mut acc = Complex64::ZERO;
                    for c in 0..$dim {
                        acc = self.m[r][c].mul_add(v[c], acc);
                    }
                    out[r] = acc;
                }
                out
            }

            /// Trace (sum of the diagonal).
            pub fn trace(&self) -> Complex64 {
                let mut t = Complex64::ZERO;
                for i in 0..$dim {
                    t += self.m[i][i];
                }
                t
            }

            /// Maximum absolute entry-wise difference to `other`.
            pub fn max_abs_diff(&self, other: &Self) -> f64 {
                let mut worst: f64 = 0.0;
                for r in 0..$dim {
                    for c in 0..$dim {
                        let d = self.m[r][c] - other.m[r][c];
                        worst = worst.max(d.re.abs()).max(d.im.abs());
                    }
                }
                worst
            }

            /// Tolerant entry-wise equality.
            pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
                self.max_abs_diff(other) <= tol
            }

            /// True when `self† · self ≈ I` within `tol`.
            pub fn is_unitary(&self, tol: f64) -> bool {
                self.adjoint().matmul(self).approx_eq(&Self::identity(), tol)
            }

            /// Tolerant equality *up to a global phase*: true when there is
            /// a unit scalar `e^{iφ}` with `self ≈ e^{iφ}·other`.
            ///
            /// Global phases are unobservable, so transpile-equivalence
            /// checks must ignore them.
            pub fn approx_eq_up_to_phase(&self, other: &Self, tol: f64) -> bool {
                // Find the largest-magnitude entry of `other` to anchor the
                // phase estimate; fall back to exact comparison if zero.
                let mut best = (0usize, 0usize);
                let mut best_norm = 0.0f64;
                for r in 0..$dim {
                    for c in 0..$dim {
                        let n = other.m[r][c].norm_sqr();
                        if n > best_norm {
                            best_norm = n;
                            best = (r, c);
                        }
                    }
                }
                if best_norm == 0.0 {
                    return self.approx_eq(other, tol);
                }
                let phase = self.m[best.0][best.1] / other.m[best.0][best.1];
                // Reject if the anchor ratio is not a unit phase.
                if (phase.norm() - 1.0).abs() > tol.max(1e-9) {
                    return false;
                }
                self.approx_eq(&other.scale(phase), tol)
            }
        }
    };
}

define_matrix!(
    /// A 2×2 complex matrix: a single-qubit operator.
    Mat2,
    2
);
define_matrix!(
    /// A 4×4 complex matrix: a two-qubit operator.
    Mat4,
    4
);
define_matrix!(
    /// An 8×8 complex matrix: a three-qubit operator.
    Mat8,
    8
);

impl Mat2 {
    /// Kronecker product `self ⊗ rhs` producing a two-qubit operator.
    ///
    /// Convention: `self` acts on the *more significant* qubit of the
    /// resulting 4-dimensional space (big-endian, matching the textbook
    /// matrix convention used in the paper).
    pub fn kron(&self, rhs: &Mat2) -> Mat4 {
        let mut out = Mat4::zero();
        for r1 in 0..2 {
            for c1 in 0..2 {
                for r2 in 0..2 {
                    for c2 in 0..2 {
                        out.m[r1 * 2 + r2][c1 * 2 + c2] = self.m[r1][c1] * rhs.m[r2][c2];
                    }
                }
            }
        }
        out
    }
}

impl Mat4 {
    /// Kronecker product `self ⊗ rhs` producing a three-qubit operator,
    /// with `self` on the two more significant qubits.
    pub fn kron2(&self, rhs: &Mat2) -> Mat8 {
        let mut out = Mat8::zero();
        for r1 in 0..4 {
            for c1 in 0..4 {
                for r2 in 0..2 {
                    for c2 in 0..2 {
                        out.m[r1 * 2 + r2][c1 * 2 + c2] = self.m[r1][c1] * rhs.m[r2][c2];
                    }
                }
            }
        }
        out
    }
}

/// Embeds a 1-qubit operator as a 2-qubit controlled operator
/// `|0><0| ⊗ I + |1><1| ⊗ u` (control on the more significant qubit).
pub fn controlled(u: &Mat2) -> Mat4 {
    let mut out = Mat4::identity();
    for r in 0..2 {
        for c in 0..2 {
            out.m[2 + r][2 + c] = u.m[r][c];
            if r != c {
                out.m[2 + r][2 + c] = u.m[r][c];
            }
        }
    }
    // Clear the identity entries we are overwriting in the lower block.
    out.m[2][2] = u.m[0][0];
    out.m[2][3] = u.m[0][1];
    out.m[3][2] = u.m[1][0];
    out.m[3][3] = u.m[1][1];
    out
}

/// Embeds a 2-qubit operator as a 3-qubit controlled operator with the
/// control on the most significant qubit.
pub fn controlled2(u: &Mat4) -> Mat8 {
    let mut out = Mat8::identity();
    for r in 0..4 {
        for c in 0..4 {
            out.m[4 + r][4 + c] = u.m[r][c];
        }
    }
    // The identity block we started from had ones on the diagonal of the
    // lower-right 4×4; they were overwritten above, so nothing to fix.
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_1_SQRT_2;

    const TOL: f64 = 1e-12;

    fn hadamard() -> Mat2 {
        let h = FRAC_1_SQRT_2;
        Mat2::from_rows([[c64(h, 0.0), c64(h, 0.0)], [c64(h, 0.0), c64(-h, 0.0)]])
    }

    fn pauli_x() -> Mat2 {
        Mat2::from_rows([
            [Complex64::ZERO, Complex64::ONE],
            [Complex64::ONE, Complex64::ZERO],
        ])
    }

    fn pauli_z() -> Mat2 {
        Mat2::diagonal([Complex64::ONE, -Complex64::ONE])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let h = hadamard();
        assert!(h.matmul(&Mat2::identity()).approx_eq(&h, TOL));
        assert!(Mat2::identity().matmul(&h).approx_eq(&h, TOL));
    }

    #[test]
    fn hadamard_is_self_inverse_and_unitary() {
        let h = hadamard();
        assert!(h.matmul(&h).approx_eq(&Mat2::identity(), TOL));
        assert!(h.is_unitary(TOL));
    }

    #[test]
    fn hzh_equals_x() {
        let h = hadamard();
        let hzh = h.matmul(&pauli_z()).matmul(&h);
        assert!(hzh.approx_eq(&pauli_x(), TOL));
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = hadamard();
        let b = pauli_z();
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn transpose_and_conj_compose_to_adjoint() {
        let m = Mat2::from_rows([
            [c64(1.0, 2.0), c64(3.0, -1.0)],
            [c64(0.0, 1.0), c64(2.0, 2.0)],
        ]);
        assert!(m.transpose().conj().approx_eq(&m.adjoint(), TOL));
    }

    #[test]
    fn apply_matches_matmul_column() {
        let h = hadamard();
        let v = [Complex64::ONE, Complex64::ZERO];
        let out = h.apply(&v);
        assert!(out[0].approx_eq(c64(FRAC_1_SQRT_2, 0.0), TOL));
        assert!(out[1].approx_eq(c64(FRAC_1_SQRT_2, 0.0), TOL));
    }

    #[test]
    fn trace_of_identity_is_dim() {
        assert!(Mat2::identity().trace().approx_eq(c64(2.0, 0.0), TOL));
        assert!(Mat4::identity().trace().approx_eq(c64(4.0, 0.0), TOL));
        assert!(Mat8::identity().trace().approx_eq(c64(8.0, 0.0), TOL));
    }

    #[test]
    fn kron_of_identities_is_identity() {
        assert!(Mat2::identity()
            .kron(&Mat2::identity())
            .approx_eq(&Mat4::identity(), TOL));
        assert!(Mat4::identity()
            .kron2(&Mat2::identity())
            .approx_eq(&Mat8::identity(), TOL));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = hadamard();
        let b = pauli_x();
        let c = pauli_z();
        let d = hadamard();
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn controlled_x_is_cnot() {
        let cx = controlled(&pauli_x());
        // |10> -> |11>, |11> -> |10>, |00>/|01> fixed.
        let expect = Mat4::from_rows([
            [
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
            ],
            [
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ZERO,
                Complex64::ZERO,
            ],
            [
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ONE,
            ],
            [
                Complex64::ZERO,
                Complex64::ZERO,
                Complex64::ONE,
                Complex64::ZERO,
            ],
        ]);
        assert!(cx.approx_eq(&expect, TOL));
        assert!(cx.is_unitary(TOL));
    }

    #[test]
    fn controlled2_embeds_in_lower_block() {
        let ccx = controlled2(&controlled(&pauli_x()));
        assert!(ccx.is_unitary(TOL));
        // Only the |110> <-> |111> pair is swapped.
        for i in 0..6 {
            assert!(ccx.m[i][i].approx_eq(Complex64::ONE, TOL));
        }
        assert!(ccx.m[6][7].approx_eq(Complex64::ONE, TOL));
        assert!(ccx.m[7][6].approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn phase_insensitive_equality() {
        let h = hadamard();
        let phased = h.scale(Complex64::cis(0.42));
        assert!(!h.approx_eq(&phased, TOL));
        assert!(h.approx_eq_up_to_phase(&phased, 1e-10));
        // Differing by more than a phase must fail.
        assert!(!h.approx_eq_up_to_phase(&pauli_x(), 1e-10));
        // Non-unit scalings must fail too.
        assert!(!h.approx_eq_up_to_phase(&h.scale(c64(2.0, 0.0)), 1e-10));
    }

    #[test]
    fn scale_and_add() {
        let z = Mat2::zero();
        let i = Mat2::identity();
        assert!(z.add(&i).approx_eq(&i, TOL));
        assert!(i.scale(c64(2.0, 0.0)).trace().approx_eq(c64(4.0, 0.0), TOL));
    }
}
