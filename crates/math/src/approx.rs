//! Tolerant floating-point comparisons shared by tests across the
//! workspace.

use crate::complex::Complex64;

/// Default absolute tolerance used by most unitary/state comparisons.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Absolute-difference comparison for reals.
#[inline]
pub fn approx_eq_f64(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Relative comparison for reals with an absolute floor: true when
/// `|a − b| ≤ tol · max(1, |a|, |b|)`.
#[inline]
pub fn approx_eq_rel(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * 1.0f64.max(a.abs()).max(b.abs())
}

/// Element-wise absolute comparison for complex slices (state vectors).
pub fn approx_eq_slice(a: &[Complex64], b: &[Complex64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.approx_eq(*y, tol))
}

/// Largest absolute element-wise deviation between two complex slices.
/// Panics when lengths differ.
pub fn max_abs_diff_slice(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "slice length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = *x - *y;
            d.re.abs().max(d.im.abs())
        })
        .fold(0.0, f64::max)
}

/// State-vector equality up to a global phase: compares `|<a|b>|` to 1.
/// Both inputs must be normalized for the result to be meaningful.
pub fn states_equal_up_to_phase(a: &[Complex64], b: &[Complex64], tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let inner: Complex64 = a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum();
    (inner.norm() - 1.0).abs() <= tol
}

/// The fidelity `|<a|b>|²` between two pure states.
pub fn state_fidelity(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "state length mismatch");
    let inner: Complex64 = a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum();
    inner.norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn scalar_comparisons() {
        assert!(approx_eq_f64(1.0, 1.0 + 1e-12, 1e-10));
        assert!(!approx_eq_f64(1.0, 1.1, 1e-10));
        assert!(approx_eq_rel(1e9, 1e9 + 1.0, 1e-8));
        assert!(!approx_eq_rel(1e-9, 2e-9, 1e-10));
    }

    #[test]
    fn slice_comparisons() {
        let a = [c64(1.0, 0.0), c64(0.0, 1.0)];
        let b = [c64(1.0, 1e-12), c64(0.0, 1.0)];
        assert!(approx_eq_slice(&a, &b, 1e-10));
        assert!(!approx_eq_slice(&a, &b[..1], 1e-10));
        assert!(max_abs_diff_slice(&a, &b) < 1e-10);
    }

    #[test]
    fn phase_insensitive_state_equality() {
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let a = [c64(h, 0.0), c64(h, 0.0)];
        let phase = Complex64::cis(1.234);
        let b = [a[0] * phase, a[1] * phase];
        assert!(states_equal_up_to_phase(&a, &b, 1e-10));
        let c = [c64(1.0, 0.0), c64(0.0, 0.0)];
        assert!(!states_equal_up_to_phase(&a, &c, 1e-10));
    }

    #[test]
    fn fidelity_bounds_and_values() {
        let a = [c64(1.0, 0.0), c64(0.0, 0.0)];
        let b = [c64(0.0, 0.0), c64(1.0, 0.0)];
        assert!(state_fidelity(&a, &a) > 1.0 - 1e-12);
        assert!(state_fidelity(&a, &b) < 1e-12);
        let h = std::f64::consts::FRAC_1_SQRT_2;
        let plus = [c64(h, 0.0), c64(h, 0.0)];
        assert!((state_fidelity(&a, &plus) - 0.5).abs() < 1e-12);
    }
}
