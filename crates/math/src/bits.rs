//! Bit-twiddling helpers for state-vector index arithmetic.
//!
//! A state vector over `n` qubits has `2^n` amplitudes indexed by basis
//! states. Applying a gate to qubit `q` means pairing indices that differ
//! only in bit `q`; applying a two-qubit gate means grouping indices by
//! the values of two bits, and so on. The helpers here generate those
//! index patterns without branching in the inner loop.
//!
//! Qubit numbering convention (shared by the whole workspace): qubit `q`
//! corresponds to bit `q` of the basis-state index, i.e. qubit 0 is the
//! **least significant** bit. Registers store their least significant
//! qubit first, matching the paper's `y = y_1·2^0 + y_2·2^1 + …` layout.

/// Returns `true` if bit `bit` of `index` is set.
#[inline(always)]
pub fn test_bit(index: usize, bit: u32) -> bool {
    (index >> bit) & 1 == 1
}

/// Sets bit `bit` of `index`.
#[inline(always)]
pub fn set_bit(index: usize, bit: u32) -> usize {
    index | (1usize << bit)
}

/// Clears bit `bit` of `index`.
#[inline(always)]
pub fn clear_bit(index: usize, bit: u32) -> usize {
    index & !(1usize << bit)
}

/// Flips bit `bit` of `index`.
#[inline(always)]
pub fn flip_bit(index: usize, bit: u32) -> usize {
    index ^ (1usize << bit)
}

/// Inserts a zero bit at position `bit`, shifting higher bits left.
///
/// Maps a compact counter `k ∈ [0, 2^{n−1})` to the index of the
/// basis state whose bit `bit` is 0, enumerating all such states as `k`
/// sweeps its range. The partner state (bit = 1) is `insert_zero_bit(k,
/// bit) | (1 << bit)`.
#[inline(always)]
pub fn insert_zero_bit(k: usize, bit: u32) -> usize {
    let low_mask = (1usize << bit) - 1;
    ((k & !low_mask) << 1) | (k & low_mask)
}

/// Inserts zero bits at two positions (`b0 < b1` required), shifting
/// higher bits accordingly.
///
/// Maps a compact counter `k ∈ [0, 2^{n−2})` to the basis index with
/// zeros at both positions.
#[inline(always)]
pub fn insert_two_zero_bits(k: usize, b0: u32, b1: u32) -> usize {
    debug_assert!(b0 < b1);
    let first = insert_zero_bit(k, b0);
    insert_zero_bit(first, b1)
}

/// Inserts zero bits at three positions (`b0 < b1 < b2` required).
#[inline(always)]
pub fn insert_three_zero_bits(k: usize, b0: u32, b1: u32, b2: u32) -> usize {
    debug_assert!(b0 < b1 && b1 < b2);
    insert_zero_bit(insert_two_zero_bits(k, b0, b1), b2)
}

/// Extracts the bits of `index` selected by `positions` (ascending
/// significance in the output: `positions[0]` becomes output bit 0).
#[inline]
pub fn gather_bits(index: usize, positions: &[u32]) -> usize {
    let mut out = 0usize;
    for (i, &p) in positions.iter().enumerate() {
        out |= usize::from(test_bit(index, p)) << i;
    }
    out
}

/// Scatters the low bits of `value` into `index` at the given positions
/// (`value` bit `i` lands at `positions[i]`); all other bits of the
/// result come from `index`.
#[inline]
pub fn scatter_bits(index: usize, value: usize, positions: &[u32]) -> usize {
    let mut out = index;
    for (i, &p) in positions.iter().enumerate() {
        out = if test_bit(value, i as u32) {
            set_bit(out, p)
        } else {
            clear_bit(out, p)
        };
    }
    out
}

/// Reverses the low `n` bits of `x` (bit 0 ↔ bit n−1, …).
///
/// The textbook QFT ends with its output in bit-reversed order unless
/// SWAPs are appended; this helper lets tests reason about either form.
#[inline]
pub fn reverse_bits(x: usize, n: u32) -> usize {
    let mut out = 0usize;
    for i in 0..n {
        out |= usize::from(test_bit(x, i)) << (n - 1 - i);
    }
    out
}

/// Number of basis states of an `n`-qubit register.
#[inline(always)]
pub fn dim(n: u32) -> usize {
    1usize << n
}

/// Formats the low `n` bits of `index` as a bitstring, most significant
/// bit first (the order measurement results are conventionally printed).
pub fn to_bitstring(index: usize, n: u32) -> String {
    (0..n)
        .rev()
        .map(|b| if test_bit(index, b) { '1' } else { '0' })
        .collect()
}

/// Parses a bitstring (most significant bit first) into an index.
/// Returns `None` on any character other than `0`/`1` or on overflow.
pub fn from_bitstring(s: &str) -> Option<usize> {
    if s.is_empty() || s.len() > usize::BITS as usize {
        return None;
    }
    let mut out = 0usize;
    for ch in s.chars() {
        out = out.checked_shl(1)?;
        match ch {
            '0' => {}
            '1' => out |= 1,
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bit_ops() {
        assert!(test_bit(0b1010, 1));
        assert!(!test_bit(0b1010, 0));
        assert_eq!(set_bit(0b1010, 0), 0b1011);
        assert_eq!(clear_bit(0b1010, 3), 0b0010);
        assert_eq!(flip_bit(0b1010, 1), 0b1000);
        assert_eq!(flip_bit(0b1010, 0), 0b1011);
    }

    #[test]
    fn insert_zero_bit_enumerates_zero_states() {
        // For 3 qubits and target bit 1, k=0..4 must enumerate exactly the
        // indices with bit 1 clear: 0,1,4,5.
        let got: Vec<usize> = (0..4).map(|k| insert_zero_bit(k, 1)).collect();
        assert_eq!(got, vec![0, 1, 4, 5]);
        // And the partners are 2,3,6,7.
        let partners: Vec<usize> = got.iter().map(|&i| set_bit(i, 1)).collect();
        assert_eq!(partners, vec![2, 3, 6, 7]);
    }

    #[test]
    fn insert_zero_bit_covers_all_indices_disjointly() {
        for bit in 0..5u32 {
            let n = 5u32;
            let mut seen = vec![false; dim(n)];
            for k in 0..dim(n - 1) {
                let zero = insert_zero_bit(k, bit);
                let one = set_bit(zero, bit);
                assert!(!test_bit(zero, bit));
                assert!(test_bit(one, bit));
                assert!(!seen[zero] && !seen[one]);
                seen[zero] = true;
                seen[one] = true;
            }
            assert!(seen.into_iter().all(|b| b));
        }
    }

    #[test]
    fn insert_two_zero_bits_covers_quadruples() {
        let (b0, b1) = (1u32, 3u32);
        let n = 5u32;
        let mut seen = vec![false; dim(n)];
        for k in 0..dim(n - 2) {
            let base = insert_two_zero_bits(k, b0, b1);
            assert!(!test_bit(base, b0) && !test_bit(base, b1));
            for v in 0..4usize {
                let idx = scatter_bits(base, v, &[b0, b1]);
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn insert_three_zero_bits_covers_octuples() {
        let (b0, b1, b2) = (0u32, 2u32, 4u32);
        let n = 6u32;
        let mut seen = vec![false; dim(n)];
        for k in 0..dim(n - 3) {
            let base = insert_three_zero_bits(k, b0, b1, b2);
            for v in 0..8usize {
                let idx = scatter_bits(base, v, &[b0, b1, b2]);
                assert!(!seen[idx]);
                seen[idx] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let positions = [0u32, 2, 5];
        for idx in 0..64usize {
            let v = gather_bits(idx, &positions);
            let back = scatter_bits(idx, v, &positions);
            assert_eq!(back, idx);
        }
        // Scatter then gather recovers the value.
        for v in 0..8usize {
            let idx = scatter_bits(0, v, &positions);
            assert_eq!(gather_bits(idx, &positions), v);
        }
    }

    #[test]
    fn reverse_bits_involution() {
        for x in 0..32usize {
            assert_eq!(reverse_bits(reverse_bits(x, 5), 5), x);
        }
        assert_eq!(reverse_bits(0b00001, 5), 0b10000);
        assert_eq!(reverse_bits(0b01100, 5), 0b00110);
    }

    #[test]
    fn bitstring_roundtrip() {
        assert_eq!(to_bitstring(0b1011, 4), "1011");
        assert_eq!(to_bitstring(0b1011, 6), "001011");
        assert_eq!(from_bitstring("1011"), Some(0b1011));
        assert_eq!(from_bitstring("001011"), Some(0b1011));
        assert_eq!(from_bitstring(""), None);
        assert_eq!(from_bitstring("10x1"), None);
        for x in 0..64usize {
            assert_eq!(from_bitstring(&to_bitstring(x, 6)), Some(x));
        }
    }

    #[test]
    fn dim_powers() {
        assert_eq!(dim(0), 1);
        assert_eq!(dim(1), 2);
        assert_eq!(dim(10), 1024);
    }
}
