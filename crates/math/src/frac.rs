//! Binary fractions and two's-complement encodings for quantum integers.
//!
//! The QFT literature writes phases as binary fractions
//! `[0.y]_{i,j} = 0.y_i y_{i−1} … y_j = y_i/2 + y_{i−1}/4 + … +
//! y_j/2^{i−j+1}` (the paper's Eq. 3 shorthand). These helpers compute
//! such fractions, along with the two's-complement integer encoding the
//! paper uses for signed qintegers.

use crate::bits::test_bit;

/// The binary fraction `[0.y]_{i,j}` of the paper, with `y` given as a
/// basis index whose bit `k−1` is the paper's `y_k` (1-based digits).
///
/// `i` and `j` are 1-based digit positions with `i ≥ j ≥ 1`; the result is
/// `y_i/2 + y_{i−1}/4 + … + y_j / 2^{i−j+1}` ∈ [0, 1).
pub fn binary_fraction(y: usize, i: u32, j: u32) -> f64 {
    assert!(j >= 1 && i >= j, "need i >= j >= 1, got i={i}, j={j}");
    let mut acc = 0.0;
    let mut denom = 2.0;
    // Walk digits y_i, y_{i-1}, …, y_j; digit y_k is bit (k-1).
    for k in (j..=i).rev() {
        if test_bit(y, k - 1) {
            acc += 1.0 / denom;
        }
        denom *= 2.0;
    }
    acc
}

/// The full fraction `y / 2^n` for an `n`-bit value — the per-qubit QFT
/// phase for the most significant output qubit.
pub fn full_fraction(y: usize, n: u32) -> f64 {
    debug_assert!(n as usize <= usize::BITS as usize);
    y as f64 / (1u64 << n) as f64
}

/// Encodes a signed integer into `n`-bit two's complement.
///
/// Returns `None` when `v` is outside `[−2^{n−1}, 2^{n−1} − 1]`.
pub fn encode_twos_complement(v: i64, n: u32) -> Option<usize> {
    assert!((1..=63).contains(&n), "register width out of range: {n}");
    let lo = -(1i64 << (n - 1));
    let hi = (1i64 << (n - 1)) - 1;
    if v < lo || v > hi {
        return None;
    }
    let mask = (1u64 << n) - 1;
    Some(((v as u64) & mask) as usize)
}

/// Decodes an `n`-bit two's-complement pattern into a signed integer.
pub fn decode_twos_complement(bits: usize, n: u32) -> i64 {
    assert!((1..=63).contains(&n), "register width out of range: {n}");
    let mask = (1usize << n) - 1;
    let bits = bits & mask;
    if test_bit(bits, n - 1) {
        bits as i64 - (1i64 << n)
    } else {
        bits as i64
    }
}

/// Encodes an unsigned integer into `n` bits; `None` if it does not fit.
pub fn encode_unsigned(v: u64, n: u32) -> Option<usize> {
    assert!((1..=63).contains(&n), "register width out of range: {n}");
    if v >> n != 0 {
        return None;
    }
    Some(v as usize)
}

/// Reduces an arbitrary signed value into the canonical `n`-bit modular
/// residue `v mod 2^n` (always in `[0, 2^n)`).
pub fn wrap_mod_2n(v: i64, n: u32) -> usize {
    assert!((1..=63).contains(&n), "register width out of range: {n}");
    let m = 1i64 << n;
    (((v % m) + m) % m) as usize
}

/// Sign-extends the low `from` bits of `bits` to `to` bits
/// (`from ≤ to`), as a two's-complement widening.
pub fn sign_extend(bits: usize, from: u32, to: u32) -> usize {
    assert!(from >= 1 && from <= to && to <= 63);
    let v = decode_twos_complement(bits, from);
    encode_twos_complement(v, to).expect("sign extension cannot overflow")
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-15;

    #[test]
    fn binary_fraction_single_digit() {
        // [0.y]_{1,1} = y_1 / 2.
        assert_eq!(binary_fraction(0b0, 1, 1), 0.0);
        assert_eq!(binary_fraction(0b1, 1, 1), 0.5);
    }

    #[test]
    fn binary_fraction_two_digits() {
        // [0.y]_{2,1} = y_2/2 + y_1/4.
        assert!((binary_fraction(0b11, 2, 1) - 0.75).abs() < TOL);
        assert!((binary_fraction(0b10, 2, 1) - 0.5).abs() < TOL);
        assert!((binary_fraction(0b01, 2, 1) - 0.25).abs() < TOL);
    }

    #[test]
    fn binary_fraction_with_truncation() {
        // Truncated fraction [0.y]_{3,2} ignores y_1.
        let y = 0b111;
        assert!((binary_fraction(y, 3, 2) - 0.75).abs() < TOL);
        // Full [0.y]_{3,1} = 0.875.
        assert!((binary_fraction(y, 3, 1) - 0.875).abs() < TOL);
    }

    #[test]
    fn full_fraction_matches_binary_fraction() {
        for y in 0..16usize {
            assert!((full_fraction(y, 4) - binary_fraction(y, 4, 1)).abs() < TOL);
        }
    }

    #[test]
    fn twos_complement_roundtrip() {
        for n in [1u32, 2, 4, 8, 16] {
            let lo = -(1i64 << (n - 1));
            let hi = (1i64 << (n - 1)) - 1;
            for v in lo..=hi.min(lo + 600) {
                let enc = encode_twos_complement(v, n).unwrap();
                assert!(enc < (1usize << n));
                assert_eq!(decode_twos_complement(enc, n), v);
            }
        }
    }

    #[test]
    fn twos_complement_bounds() {
        assert_eq!(encode_twos_complement(-5, 4), Some(0b1011));
        assert_eq!(encode_twos_complement(7, 4), Some(0b0111));
        assert_eq!(encode_twos_complement(8, 4), None);
        assert_eq!(encode_twos_complement(-9, 4), None);
        assert_eq!(decode_twos_complement(0b1000, 4), -8);
        assert_eq!(decode_twos_complement(0b1111, 4), -1);
    }

    #[test]
    fn unsigned_encoding() {
        assert_eq!(encode_unsigned(255, 8), Some(255));
        assert_eq!(encode_unsigned(256, 8), None);
        assert_eq!(encode_unsigned(0, 1), Some(0));
    }

    #[test]
    fn wrapping_matches_modular_arithmetic() {
        assert_eq!(wrap_mod_2n(-1, 4), 15);
        assert_eq!(wrap_mod_2n(16, 4), 0);
        assert_eq!(wrap_mod_2n(17, 4), 1);
        assert_eq!(wrap_mod_2n(-17, 4), 15);
        // Addition then wrap equals wrap of sum (homomorphism check).
        for a in -20i64..20 {
            for b in -20i64..20 {
                let lhs = wrap_mod_2n(a + b, 5);
                let rhs = (wrap_mod_2n(a, 5) + wrap_mod_2n(b, 5)) % 32;
                assert_eq!(lhs, rhs);
            }
        }
    }

    #[test]
    fn sign_extension_preserves_value() {
        for v in -8i64..8 {
            let enc4 = encode_twos_complement(v, 4).unwrap();
            let enc8 = sign_extend(enc4, 4, 8);
            assert_eq!(decode_twos_complement(enc8, 8), v);
        }
    }
}
