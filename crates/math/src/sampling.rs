//! Discrete sampling primitives for measurement shots and noise events.
//!
//! Two workhorses:
//!
//! * [`AliasTable`] — Walker/Vose alias method: O(n) setup, O(1) per draw.
//!   Used to sample measurement outcomes from an output probability
//!   distribution with thousands of shots.
//! * [`sample_binomial`] — exact binomial sampling (inversion for small
//!   mean, BTPE-free rejection via repeated Bernoulli fallback kept exact
//!   with a normal-approx fast path only when both `np` and `n(1−p)` are
//!   large). Used for splitting shots into "clean" vs "noisy" trajectory
//!   groups.

use crate::rng::Xoshiro256StarStar;

/// Walker alias table over a fixed discrete distribution.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights. Weights need not
    /// be normalized. Panics if the slice is empty, any weight is
    /// negative/non-finite, or all weights are zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(weights.len() <= u32::MAX as usize, "too many outcomes");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "all weights are zero");

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];

        // Vose's stable partition into small/large stacks.
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Large donor gives away (1 - prob[s]) of its mass.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Residual entries are exactly 1 up to rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> usize {
        let n = self.prob.len();
        let col = rng.next_bounded(n as u64) as usize;
        if rng.next_f64() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }

    /// Draws `shots` outcomes and tallies them into a count vector of the
    /// same length as the distribution.
    pub fn sample_counts(&self, shots: u64, rng: &mut Xoshiro256StarStar) -> Vec<u64> {
        let mut counts = vec![0u64; self.prob.len()];
        for _ in 0..shots {
            counts[self.sample(rng)] += 1;
        }
        counts
    }
}

/// Exact sample from Binomial(n, p).
///
/// * inversion (sequential CDF walk) when `n·min(p,1−p) ≤ 30` — exact and
///   fast for the small-mean cases that dominate trajectory splitting;
/// * otherwise a simple exact Bernoulli-block method chunked through the
///   RNG (still O(n) worst case but only reached for large `n·p`, where
///   each call is amortized across thousands of shots anyway).
pub fn sample_binomial(n: u64, p: f64, rng: &mut Xoshiro256StarStar) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Exploit symmetry so the inversion mean stays small.
    let flipped = p > 0.5;
    let q = if flipped { 1.0 - p } else { p };
    let mean = n as f64 * q;
    let k = if mean <= 30.0 {
        binomial_inversion(n, q, rng)
    } else {
        binomial_bernoulli(n, q, rng)
    };
    if flipped {
        n - k
    } else {
        k
    }
}

/// Inversion method: walk the CDF using the recurrence
/// `P(k+1) = P(k) · (n−k)/(k+1) · p/(1−p)`.
fn binomial_inversion(n: u64, p: f64, rng: &mut Xoshiro256StarStar) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let mut pk = q.powf(n as f64); // P(0)
    let mut cdf = pk;
    let u = rng.next_f64();
    let mut k = 0u64;
    while u > cdf && k < n {
        k += 1;
        pk *= s * (n - k + 1) as f64 / k as f64;
        cdf += pk;
        // Numerical floor: if pk underflows, the remaining tail mass is
        // negligible; bail out.
        if pk < 1e-300 {
            break;
        }
    }
    k
}

/// Direct Bernoulli summation (exact for any n, used for large means).
fn binomial_bernoulli(n: u64, p: f64, rng: &mut Xoshiro256StarStar) -> u64 {
    let mut k = 0u64;
    for _ in 0..n {
        if rng.next_f64() < p {
            k += 1;
        }
    }
    k
}

/// Draws a multinomial sample: `shots` draws over `weights`, returned as
/// counts. Convenience wrapper over [`AliasTable`].
pub fn sample_multinomial(weights: &[f64], shots: u64, rng: &mut Xoshiro256StarStar) -> Vec<u64> {
    AliasTable::new(weights).sample_counts(shots, rng)
}

/// Samples an index from a short unnormalized weight slice by linear CDF
/// scan — cheaper than building an alias table when the distribution is
/// used only once (e.g. choosing which Pauli to insert at one gate).
#[inline]
pub fn sample_weighted_once(weights: &[f64], rng: &mut Xoshiro256StarStar) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut u = rng.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(seed)
    }

    #[test]
    fn alias_table_single_outcome() {
        let t = AliasTable::new(&[3.0]);
        let mut r = rng(1);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut r), 0);
        }
    }

    #[test]
    fn alias_table_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights);
        let mut r = rng(2);
        let shots = 200_000u64;
        let counts = t.sample_counts(shots, &mut r);
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = shots as f64 * w / total;
            let got = counts[i] as f64;
            assert!(
                (got - expect).abs() < expect * 0.05,
                "outcome {i}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn alias_table_zero_weight_outcomes_never_drawn() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut r = rng(3);
        let counts = t.sample_counts(10_000, &mut r);
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        assert_eq!(counts[1] + counts[3], 10_000);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn alias_table_rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn alias_table_rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn alias_table_rejects_negative() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng(4);
        assert_eq!(sample_binomial(0, 0.5, &mut r), 0);
        assert_eq!(sample_binomial(100, 0.0, &mut r), 0);
        assert_eq!(sample_binomial(100, 1.0, &mut r), 100);
    }

    #[test]
    fn binomial_small_mean_statistics() {
        let mut r = rng(5);
        let (n, p) = (2048u64, 0.002);
        let trials = 2000;
        let mut sum = 0u64;
        for _ in 0..trials {
            let k = sample_binomial(n, p, &mut r);
            assert!(k <= n);
            sum += k;
        }
        let mean = sum as f64 / trials as f64;
        let expect = n as f64 * p; // ≈ 4.1
        assert!((mean - expect).abs() < 0.3, "mean {mean}, expect {expect}");
    }

    #[test]
    fn binomial_large_mean_statistics() {
        let mut r = rng(6);
        let (n, p) = (2048u64, 0.4);
        let trials = 500;
        let mut acc = crate::stats::Welford::new();
        for _ in 0..trials {
            acc.push(sample_binomial(n, p, &mut r) as f64);
        }
        let expect_mean = n as f64 * p;
        let expect_sd = (n as f64 * p * (1.0 - p)).sqrt();
        assert!((acc.mean() - expect_mean).abs() < 4.0 * expect_sd / (trials as f64).sqrt());
        assert!((acc.stddev_sample() - expect_sd).abs() < expect_sd * 0.15);
    }

    #[test]
    fn binomial_symmetry_flip() {
        // p close to 1 goes through the flipped path; check the mean.
        let mut r = rng(7);
        let (n, p) = (1000u64, 0.995);
        let trials = 500;
        let mean: f64 = (0..trials)
            .map(|_| sample_binomial(n, p, &mut r) as f64)
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 995.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn multinomial_total_preserved() {
        let mut r = rng(8);
        let counts = sample_multinomial(&[0.2, 0.3, 0.5], 4096, &mut r);
        assert_eq!(counts.iter().sum::<u64>(), 4096);
    }

    #[test]
    fn weighted_once_respects_zero_and_distribution() {
        let mut r = rng(9);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_weighted_once(&[1.0, 0.0, 3.0], &mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }
}
