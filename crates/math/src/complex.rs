//! Double-precision complex numbers.
//!
//! A tiny, `#[repr(C)]`, `Copy` complex type. Keeping it local (instead of
//! pulling in `num-complex`) keeps the workspace dependency-free in its
//! hottest type and lets the simulator rely on a known memory layout when
//! it iterates over amplitude slices.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor: `c64(re, im)`.
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_real(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// `e^{iθ} = cos θ + i sin θ` — the unit phase with angle `theta`.
    ///
    /// This is the single most common constructor in Fourier-basis
    /// arithmetic: every controlled rotation is `cis(2π / 2^l)`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        c64(c, s)
    }

    /// Creates a complex number from polar coordinates `r · e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        c64(r * c, r * s)
    }

    /// The complex conjugate `re − i·im`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// The squared modulus `re² + im²`.
    ///
    /// For a quantum amplitude this is the Born-rule probability, so it is
    /// on the critical path of every measurement-distribution extraction.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The argument (phase angle) in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The multiplicative inverse `1/z`. Returns NaNs for zero input.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Multiplies by the imaginary unit (a 90° rotation) without a full
    /// complex multiply.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        c64(-self.im, self.re)
    }

    /// Multiplies by `−i` (a −90° rotation) without a full complex
    /// multiply.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        c64(self.im, -self.re)
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }

    /// Fused multiply-add on the real representation: `self * b + acc`.
    ///
    /// Written so the compiler can keep everything in registers inside
    /// matrix–vector kernels.
    #[inline(always)]
    pub fn mul_add(self, b: Complex64, acc: Complex64) -> Complex64 {
        c64(
            self.re * b.re - self.im * b.im + acc.re,
            self.re * b.im + self.im * b.re + acc.im,
        )
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Tolerant equality with absolute tolerance `tol` on both parts.
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // dividing via the reciprocal is the point
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Complex64 {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        c64(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Complex64::ZERO, c64(0.0, 0.0));
        assert_eq!(Complex64::ONE, c64(1.0, 0.0));
        assert_eq!(Complex64::I, c64(0.0, 1.0));
        assert_eq!(Complex64::from_real(2.5), c64(2.5, 0.0));
        assert_eq!(Complex64::from(3.0), c64(3.0, 0.0));
    }

    #[test]
    fn cis_quarter_turns() {
        assert!(Complex64::cis(0.0).approx_eq(Complex64::ONE, TOL));
        assert!(Complex64::cis(FRAC_PI_2).approx_eq(Complex64::I, TOL));
        assert!(Complex64::cis(PI).approx_eq(-Complex64::ONE, TOL));
        assert!(Complex64::cis(-FRAC_PI_2).approx_eq(-Complex64::I, TOL));
    }

    #[test]
    fn from_polar_matches_cis_scaled() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!(z.approx_eq(Complex64::cis(0.7).scale(2.0), TOL));
        assert!((z.norm() - 2.0).abs() < TOL);
        assert!((z.arg() - 0.7).abs() < TOL);
    }

    #[test]
    fn arithmetic_identities() {
        let a = c64(1.0, 2.0);
        let b = c64(-0.5, 3.0);
        assert!((a + b - b).approx_eq(a, TOL));
        assert!((a * b / b).approx_eq(a, TOL));
        assert!((a * b).approx_eq(b * a, TOL));
        assert!((-a + a).approx_eq(Complex64::ZERO, TOL));
        assert!((a * a.recip()).approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn conjugation_and_norm() {
        let a = c64(3.0, -4.0);
        assert_eq!(a.conj(), c64(3.0, 4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.norm(), 5.0);
        // z * conj(z) = |z|^2 on the real axis.
        assert!((a * a.conj()).approx_eq(c64(25.0, 0.0), TOL));
    }

    #[test]
    fn mul_i_shortcuts() {
        let a = c64(1.25, -0.5);
        assert!(a.mul_i().approx_eq(a * Complex64::I, TOL));
        assert!(a.mul_neg_i().approx_eq(a * -Complex64::I, TOL));
    }

    #[test]
    fn mul_add_matches_expanded_form() {
        let a = c64(0.3, 0.4);
        let b = c64(-1.1, 2.2);
        let acc = c64(5.0, -6.0);
        assert!(a.mul_add(b, acc).approx_eq(a * b + acc, TOL));
    }

    #[test]
    fn assign_ops() {
        let mut z = c64(1.0, 1.0);
        z += c64(1.0, 0.0);
        assert_eq!(z, c64(2.0, 1.0));
        z -= c64(0.0, 1.0);
        assert_eq!(z, c64(2.0, 0.0));
        z *= c64(0.0, 1.0);
        assert!(z.approx_eq(c64(0.0, 2.0), TOL));
        z /= c64(0.0, 2.0);
        assert!(z.approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn real_scalar_ops() {
        let a = c64(1.0, -2.0);
        assert_eq!(a * 2.0, c64(2.0, -4.0));
        assert_eq!(2.0 * a, c64(2.0, -4.0));
        assert_eq!(a / 2.0, c64(0.5, -1.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::cis(PI * k as f64 / 2.0)).sum();
        // 1 + i - 1 - i = 0.
        assert!(total.approx_eq(Complex64::ZERO, TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1.000000+2.000000i");
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1.000000-2.000000i");
    }

    #[test]
    fn finiteness() {
        assert!(c64(1.0, 2.0).is_finite());
        assert!(!c64(f64::NAN, 0.0).is_finite());
        assert!(!c64(0.0, f64::INFINITY).is_finite());
    }
}
