#![warn(missing_docs)]

//! Mathematical foundations for the qfab quantum-arithmetic stack.
//!
//! This crate is deliberately dependency-light: it provides exactly the
//! numerics the rest of the workspace needs and nothing more.
//!
//! * [`complex`] — a `Copy` double-precision complex number, [`Complex64`],
//!   with the handful of operations quantum simulation needs (`cis`,
//!   `conj`, `norm_sqr`, …).
//! * [`matrix`] — dense 2×2 / 4×4 / 8×8 complex matrices used as 1-, 2-
//!   and 3-qubit unitaries, with multiplication, adjoints, Kronecker
//!   products, and unitarity checks.
//! * [`bits`] — the bit-twiddling kernel helpers that state-vector gate
//!   application is built on (index expansion around fixed qubit
//!   positions, masks, popcounts).
//! * [`frac`] — binary fractions `[0.y]_{i,j}` from the QFT literature and
//!   two's-complement encode/decode for signed quantum integers.
//! * [`stats`] — streaming mean/variance (Welford) and the small set of
//!   summary statistics the paper's error-bar metric needs.
//! * [`sampling`] — exact binomial sampling and alias-method discrete
//!   sampling used to draw measurement shots from output distributions.
//! * [`rng`] — SplitMix64 / xoshiro256** deterministic generators with
//!   stream splitting, so experiments are reproducible under any thread
//!   schedule.
//! * [`approx`] — tolerant floating-point comparison helpers shared by
//!   tests across the workspace.

pub mod approx;
pub mod bits;
pub mod complex;
pub mod frac;
pub mod matrix;
pub mod rng;
pub mod sampling;
pub mod stats;

pub use complex::Complex64;
pub use matrix::{Mat2, Mat4, Mat8};
pub use rng::{SplitMix64, Xoshiro256StarStar};
