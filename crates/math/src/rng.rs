//! Deterministic, splittable random number generation.
//!
//! Experiments fan out over instances and trajectories across rayon
//! worker threads, so reproducibility cannot rely on a single shared RNG:
//! thread scheduling would change the draw order. Instead every unit of
//! work derives its own generator from `(root_seed, stream_index)` via
//! SplitMix64, which is also the recommended seeder for xoshiro-family
//! generators.
//!
//! [`SplitMix64`] is the seeder/splitter; [`Xoshiro256StarStar`] is the
//! workhorse generator (same algorithm family Qiskit Aer and NumPy use
//! for bulk sampling). Both implement [`rand::RngCore`] so they compose
//! with the `rand` distribution machinery.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64: a tiny, high-quality 64-bit generator mainly used here to
/// derive independent seeds/streams from a root seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given state.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Advances the state and returns the next 64-bit output.
    #[inline]
    #[allow(clippy::should_implement_trait)] // an RNG step, not an Iterator
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives a child generator for stream `index`, statistically
    /// independent of other indices under the same root.
    ///
    /// The derivation hashes `(seed-advanced state, index)` rather than
    /// jumping, so any subset of streams can be created in any order.
    pub fn child(root_seed: u64, index: u64) -> Self {
        // Mix the raw index through the SplitMix64 output function before
        // it ever touches the root seed. The output function is a
        // bijection, so distinct indices yield distinct hashed values and
        // every index bit avalanches across the whole word — unlike a
        // multiplicative scheme with a shared multiplier, where adjacent
        // indices can leave the derived states a single rotated bit apart.
        let hashed_index = SplitMix64::new(index).next();
        let mut mix = SplitMix64::new(root_seed ^ hashed_index ^ 0xD1B5_4A32_D192_ED03);
        // One more round so the root seed avalanches too.
        let a = mix.next();
        SplitMix64::new(a)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];
    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }
    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// xoshiro256**: fast, 256-bit-state general-purpose generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next();
        }
        // All-zero state is the one forbidden state; SplitMix64 cannot
        // produce four consecutive zeros in practice, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Derives the generator for work-unit `index` under `root_seed`.
    /// Independent of creation order and thread scheduling.
    pub fn for_stream(root_seed: u64, index: u64) -> Self {
        let mut child = SplitMix64::child(root_seed, index);
        Self::new(child.next())
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased, usually division-free).
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            return Self::new(0);
        }
        Self { s }
    }
    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

fn fill_bytes_via_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next();
        let second = sm.next();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next(), first);
        assert_eq!(sm2.next(), second);
    }

    #[test]
    fn splitmix_children_differ() {
        let a = SplitMix64::child(42, 0).next();
        let b = SplitMix64::child(42, 1).next();
        let c = SplitMix64::child(43, 0).next();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn child_streams_have_no_pairwise_collisions() {
        // The derivation is injective in the index by construction; check
        // it concretely over the first few thousand streams, on both the
        // derived state and the first output.
        use std::collections::HashSet;
        let mut states = HashSet::new();
        let mut outputs = HashSet::new();
        for index in 0..4096u64 {
            let mut child = SplitMix64::child(0xDEAD_BEEF, index);
            assert!(states.insert(child.state), "state collision at {index}");
            assert!(outputs.insert(child.next()), "output collision at {index}");
        }
    }

    #[test]
    fn child_streams_avalanche_on_index_bits() {
        // Flipping any single index bit should flip ~half the bits of the
        // derived state. The old `index | 1` multiplier scheme left
        // streams 0 and 1 a single rotated bit apart (distance 1).
        let mut worst = u32::MAX;
        let mut total = 0u64;
        let mut pairs = 0u64;
        for index in 0..512u64 {
            let base = SplitMix64::child(42, index).state;
            for bit in 0..64 {
                let flipped = SplitMix64::child(42, index ^ (1 << bit)).state;
                let dist = (base ^ flipped).count_ones();
                worst = worst.min(dist);
                total += dist as u64;
                pairs += 1;
            }
        }
        let mean = total as f64 / pairs as f64;
        assert!((mean - 32.0).abs() < 1.0, "mean hamming distance {mean}");
        assert!(worst >= 8, "worst-case hamming distance {worst}");
    }

    #[test]
    fn adjacent_child_streams_are_decorrelated() {
        // Regression for the `index | 1` bug: streams 0 and 1 shared a
        // multiplier, so their seed states differed by one rotated bit.
        let a = SplitMix64::child(7, 0).state;
        let b = SplitMix64::child(7, 1).state;
        let dist = (a ^ b).count_ones();
        assert!(dist >= 16, "streams 0/1 differ by only {dist} bits");
    }

    /// Batching audit: the batched trajectory path replays K shots
    /// whose randomness was all drawn *up front* from the one
    /// per-(instance, rate, depth) master stream, in sequential shot
    /// order — it never forks per-shot child streams, so batching adds
    /// no new derivation risk. What batching *does* lean on is worker
    /// stream independence: K worker streams under one root must show
    /// no pairwise cross-correlation. Check K=32 streams pairwise with
    /// a sign-correlation statistic (extending the PR 4 avalanche
    /// regression to whole output sequences).
    #[test]
    fn k32_child_streams_pairwise_uncorrelated() {
        const K: usize = 32;
        const N: usize = 2048;
        let seqs: Vec<Vec<f64>> = (0..K as u64)
            .map(|i| {
                let mut rng = Xoshiro256StarStar::for_stream(0xBA7C_4ED5, i);
                (0..N).map(|_| rng.next_f64() - 0.5).collect()
            })
            .collect();
        for a in 0..K {
            for b in (a + 1)..K {
                let dot: f64 = seqs[a].iter().zip(&seqs[b]).map(|(x, y)| x * y).sum();
                // Var(x) = 1/12 per draw; the normalized correlation of
                // independent streams is O(1/sqrt(N)) — allow 5 sigma.
                let corr = dot / (N as f64 / 12.0);
                assert!(
                    corr.abs() < 5.0 / (N as f64).sqrt(),
                    "streams {a}/{b} correlated: {corr}"
                );
                // And no draw-level collisions anywhere in the window.
                let equal = seqs[a].iter().zip(&seqs[b]).filter(|(x, y)| x == y).count();
                assert_eq!(equal, 0, "streams {a}/{b} share draws");
            }
        }
    }

    #[test]
    fn xoshiro_deterministic_per_stream() {
        let mut a = Xoshiro256StarStar::for_stream(7, 3);
        let mut b = Xoshiro256StarStar::for_stream(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_streams_are_distinct() {
        let mut a = Xoshiro256StarStar::for_stream(7, 0);
        let mut b = Xoshiro256StarStar::for_stream(7, 1);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::new(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_near_half() {
        let mut rng = Xoshiro256StarStar::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bounded_respects_bound_and_is_roughly_uniform() {
        let mut rng = Xoshiro256StarStar::new(11);
        let bound = 10u64;
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            let v = rng.next_bounded(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        let expect = n as f64 / bound as f64;
        for c in counts {
            assert!((c as f64 - expect).abs() < expect * 0.1, "count {c}");
        }
    }

    #[test]
    fn rngcore_fill_bytes_covers_remainders() {
        let mut rng = Xoshiro256StarStar::new(3);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            // Just exercise the path; for len >= 8 expect nonzero content.
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn works_with_rand_distributions() {
        let mut rng = Xoshiro256StarStar::new(17);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let k: u32 = rng.gen_range(0..100);
        assert!(k < 100);
    }

    #[test]
    fn seedable_from_seed_roundtrip() {
        let seed = [7u8; 32];
        let mut a = Xoshiro256StarStar::from_seed(seed);
        let mut b = Xoshiro256StarStar::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut z = Xoshiro256StarStar::from_seed([0u8; 32]);
        let _ = z.next_u64(); // must not be stuck at zero state
        assert_ne!(z.next_u64(), 0);
    }
}
