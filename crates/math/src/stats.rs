//! Streaming summary statistics.
//!
//! The paper's error bars are built from the standard deviation of
//! per-instance minimum count gaps; [`Welford`] provides the numerically
//! stable single-pass mean/variance accumulation used for that, and a few
//! convenience reductions cover the rest of the harness's needs.

/// Numerically stable streaming mean/variance accumulator (Welford's
/// algorithm).
#[derive(Clone, Debug, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Merges another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The population variance (divides by `n`; 0 if fewer than 1 sample).
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The sample variance (divides by `n − 1`; 0 if fewer than 2 samples).
    pub fn variance_sample(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    pub fn stddev_sample(&self) -> f64 {
        self.variance_sample().sqrt()
    }

    /// The population standard deviation.
    pub fn stddev_population(&self) -> f64 {
        self.variance_population().sqrt()
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut w = Welford::new();
        for x in iter {
            w.push(x);
        }
        w
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation of a slice (0 for fewer than 2 elements).
pub fn stddev_sample(xs: &[f64]) -> f64 {
    xs.iter().copied().collect::<Welford>().stddev_sample()
}

/// Standard error of the mean for a Bernoulli success-rate estimate
/// `p̂ = successes / trials` (Wald). Returns 0 for zero trials.
pub fn bernoulli_standard_error(successes: u64, trials: u64) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    let p = successes as f64 / trials as f64;
    (p * (1.0 - p) / trials as f64).sqrt()
}

/// Wilson score interval for a binomial proportion at `z` standard
/// normal quantiles (z≈1.96 for 95%). Returns `(low, high)` ⊂ [0, 1].
///
/// Preferred over the Wald interval near 0%/100% success rates, which is
/// exactly where the paper's plots saturate.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Abramowitz & Stegun 7.1.26 rational approximation (|ε| ≤ 1.5·10⁻⁷),
/// evaluated directly on the complemented form so small tail
/// probabilities keep their leading digits instead of cancelling
/// against 1. Plenty for a significance gate; we are comparing
/// p-values against α = 0.01, not publishing them to ten digits.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let poly = t * (A1 + t * (A2 + t * (A3 + t * (A4 + t * A5))));
    poly * (-x * x).exp()
}

/// The error function.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The standard normal CDF Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// A two-proportion pooled z-test result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoProportionTest {
    /// The z statistic `(p̂₁ − p̂₂) / se` under the pooled null.
    pub z: f64,
    /// Two-sided p-value `P(|Z| ≥ |z|)`.
    pub p_value: f64,
}

/// Pooled two-proportion z-test of H₀: p₁ = p₂ given `(successes,
/// trials)` for two independent samples. Returns `None` when either
/// sample is empty (no test possible).
///
/// When the pooled rate is exactly 0 or 1 both samples agree perfectly
/// and the standard error degenerates to 0; that is reported as
/// `z = 0, p = 1` (no evidence of a difference), not a division by
/// zero.
pub fn two_proportion_z_test(s1: u64, n1: u64, s2: u64, n2: u64) -> Option<TwoProportionTest> {
    if n1 == 0 || n2 == 0 {
        return None;
    }
    debug_assert!(s1 <= n1 && s2 <= n2);
    let (n1f, n2f) = (n1 as f64, n2 as f64);
    let p1 = s1 as f64 / n1f;
    let p2 = s2 as f64 / n2f;
    let pooled = (s1 + s2) as f64 / (n1f + n2f);
    let se = (pooled * (1.0 - pooled) * (1.0 / n1f + 1.0 / n2f)).sqrt();
    if se == 0.0 {
        return Some(TwoProportionTest {
            z: 0.0,
            p_value: 1.0,
        });
    }
    let z = (p1 - p2) / se;
    let p_value = erfc(z.abs() / std::f64::consts::SQRT_2);
    Some(TwoProportionTest { z, p_value })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance_sample(), 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.0, 2.5, -3.0, 4.25, 0.0, 7.5];
        let w: Welford = xs.iter().copied().collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - m).abs() < TOL);
        assert!((w.variance_sample() - var).abs() < TOL);
        assert!((w.stddev_sample() - var.sqrt()).abs() < TOL);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: Welford = xs.iter().copied().collect();
        let mut a: Welford = xs[..37].iter().copied().collect();
        let b: Welford = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance_sample() - seq.variance_sample()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a: Welford = [1.0, 2.0].iter().copied().collect();
        a.merge(&Welford::new());
        assert_eq!(a.count(), 2);
        let mut e = Welford::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < TOL);
    }

    #[test]
    fn welford_merge_survives_extreme_count_imbalance() {
        // One observation merged into a million must match the
        // sequential accumulation exactly in count and to double
        // precision in the moments — Chan's update is designed for
        // exactly this regime, where naive sum-of-squares loses digits.
        let mut big = Welford::new();
        for i in 0..1_000_000u64 {
            big.push(1.0 + (i % 7) as f64 * 0.25);
        }
        let mut seq = big.clone();
        seq.push(1000.0);

        let lone: Welford = [1000.0].iter().copied().collect();
        let mut merged = big.clone();
        merged.merge(&lone);
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-9);
        let rel = (merged.variance_sample() - seq.variance_sample()).abs()
            / seq.variance_sample().max(1.0);
        assert!(rel < 1e-9, "variance drift {rel:.3e}");

        // Merging in the opposite direction (tiny absorbs huge) must
        // agree with the symmetric result.
        let mut other_way = lone;
        other_way.merge(&big);
        assert_eq!(other_way.count(), merged.count());
        assert!((other_way.mean() - merged.mean()).abs() < 1e-9);
        assert!((other_way.variance_sample() - merged.variance_sample()).abs() < 1e-6);
    }

    #[test]
    fn welford_merge_handles_near_cancelling_means() {
        // Two halves whose means nearly cancel (±large offsets around
        // zero): the merged mean is a small residual of two big numbers,
        // the classic catastrophic-cancellation trap. Compare against a
        // shifted two-pass computation, which is exact here.
        let offset = 1.0e12;
        let xs: Vec<f64> = (0..64).map(|i| offset + i as f64).collect();
        let ys: Vec<f64> = (0..64).map(|i| -offset + i as f64 * 0.5).collect();
        let a: Welford = xs.iter().copied().collect();
        let mut merged = a;
        merged.merge(&ys.iter().copied().collect());

        let all: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        let m = all.iter().sum::<f64>() / all.len() as f64;
        let var = all.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (all.len() - 1) as f64;
        assert_eq!(merged.count(), all.len() as u64);
        // The mean is O(30) while the inputs are O(1e12); allow for the
        // ~4 ulps of 1e12 that any double-precision scheme must lose.
        assert!(
            (merged.mean() - m).abs() < 1e-3,
            "mean {} vs {}",
            merged.mean(),
            m
        );
        assert!(
            ((merged.variance_sample() - var) / var).abs() < 1e-9,
            "variance {} vs {}",
            merged.variance_sample(),
            var
        );
        // The variance must stay sane (dominated by the ±1e12 split),
        // never negative or NaN.
        assert!(merged.variance_sample() > 0.0);
        assert!(merged.variance_sample().is_finite());
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < TOL);
        assert_eq!(stddev_sample(&[5.0]), 0.0);
        assert!((stddev_sample(&[1.0, 3.0]) - 2f64.sqrt()).abs() < TOL);
    }

    #[test]
    fn bernoulli_se_known_values() {
        assert_eq!(bernoulli_standard_error(0, 0), 0.0);
        // p = 0.5, n = 100 -> se = 0.05.
        assert!((bernoulli_standard_error(50, 100) - 0.05).abs() < TOL);
        // Degenerate p = 0 or 1 -> se = 0 under Wald.
        assert_eq!(bernoulli_standard_error(0, 100), 0.0);
        assert_eq!(bernoulli_standard_error(100, 100), 0.0);
    }

    #[test]
    fn wilson_interval_properties() {
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(lo > 0.39 && hi < 0.61);
        // Never degenerate at the boundaries, unlike Wald.
        let (lo0, hi0) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 0.06);
        let (lo1, hi1) = wilson_interval(100, 100, 1.96);
        assert!(lo1 > 0.94 && lo1 < 1.0);
        assert!(hi1 > 0.999 && hi1 <= 1.0);
        // Zero trials -> vacuous interval.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn erf_known_values() {
        // Reference values from tables of erf; the A&S 7.1.26
        // approximation is good to 1.5e-7.
        for (x, want) in [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
        ] {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-7, "erf(-{x})");
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
        // The tail keeps leading digits instead of cancelling to 0.
        assert!(erfc(4.0) > 0.0 && erfc(4.0) < 2e-8);
    }

    #[test]
    fn normal_cdf_symmetry_and_quantiles() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 2e-7);
        assert!((normal_cdf(-1.959_963_985) - 0.025).abs() < 2e-7);
        assert!((normal_cdf(2.575_829_304) - 0.995).abs() < 2e-7);
        for x in [-3.0, -0.7, 0.3, 2.2] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn z_test_flags_a_large_shift_and_passes_identical_samples() {
        // 8/8 vs 0/8: pooled p = 0.5, se = 0.25, z = 4.
        let t = two_proportion_z_test(8, 8, 0, 8).unwrap();
        assert!((t.z - 4.0).abs() < 1e-12);
        assert!(t.p_value < 1e-4, "p={}", t.p_value);
        // Identical samples: z = 0, p = 1.
        let t = two_proportion_z_test(5, 10, 5, 10).unwrap();
        assert_eq!(t.z, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-9);
        // Sign follows the first sample.
        assert!(two_proportion_z_test(2, 10, 8, 10).unwrap().z < 0.0);
    }

    #[test]
    fn z_test_degenerate_inputs() {
        assert_eq!(two_proportion_z_test(0, 0, 5, 10), None);
        assert_eq!(two_proportion_z_test(5, 10, 0, 0), None);
        // Pooled rate exactly 0 or 1: no variance, no evidence.
        let t = two_proportion_z_test(0, 10, 0, 20).unwrap();
        assert_eq!((t.z, t.p_value), (0.0, 1.0));
        let t = two_proportion_z_test(10, 10, 20, 20).unwrap();
        assert_eq!((t.z, t.p_value), (0.0, 1.0));
    }

    #[test]
    fn z_test_small_shift_is_not_significant() {
        // 7/10 vs 5/10 is well within noise at any sane alpha.
        let t = two_proportion_z_test(7, 10, 5, 10).unwrap();
        assert!(t.p_value > 0.3, "p={}", t.p_value);
    }
}
