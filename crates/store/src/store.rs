//! The on-disk store: an index segment plus an append journal.
//!
//! A store directory holds at most two files:
//!
//! * `index.seg` — the compacted segment: one intact record per live
//!   key, written whole and published by atomic rename.
//! * `journal.wal` — the append-only journal of records accepted since
//!   the last compaction.
//!
//! Opening a store replays the segment and then the journal on top
//! (later appends win), truncating each file to its longest intact
//! prefix — a crash mid-append or mid-compaction never makes a store
//! unopenable. Compaction rewrites the live map into a fresh segment
//! (`index.seg.tmp` → fsync → rename) and only then resets the
//! journal; a crash between those two steps merely replays journal
//! records that are already in the segment, which is idempotent.

use crate::hash::checksum64;
use crate::wal::{encode_record, scan, Key, ScanOutcome, HEADER_LEN, KEY_LEN, MAX_PAYLOAD};
use qfab_telemetry as telemetry;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Segment file name.
pub const INDEX_FILE: &str = "index.seg";
/// Journal file name.
pub const JOURNAL_FILE: &str = "journal.wal";
const INDEX_TMP: &str = "index.seg.tmp";

/// What recovery found while opening a store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records replayed from the index segment.
    pub index_records: u64,
    /// Intact records replayed from the journal.
    pub journal_records: u64,
    /// Garbage bytes dropped from the two files' tails.
    pub truncated_bytes: u64,
}

/// A crash-safe content-addressed key→bytes store.
pub struct Store {
    dir: PathBuf,
    map: HashMap<Key, Vec<u8>>,
    journal: File,
    journal_bytes: u64,
    recovery: RecoveryReport,
}

impl Store {
    /// Opens (creating if needed) the store at `dir`, recovering to the
    /// last intact record of each file.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        let _span = telemetry::histogram("store.open_ns").span();
        let _trace = telemetry::trace::span("store.open");
        std::fs::create_dir_all(&dir)?;

        let mut recovery = RecoveryReport::default();
        let mut map = HashMap::new();

        let index = read_scan(&dir.join(INDEX_FILE))?;
        recovery.index_records = index.records.len() as u64;
        recovery.truncated_bytes += index.truncated;
        for r in index.records {
            map.insert(r.key, r.value);
        }

        let journal_path = dir.join(JOURNAL_FILE);
        let mut journal_scan = read_scan(&journal_path)?;
        recovery.journal_records = journal_scan.records.len() as u64;
        recovery.truncated_bytes += journal_scan.truncated;
        for r in journal_scan.records.drain(..) {
            map.insert(r.key, r.value);
        }

        let mut journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)?;
        if journal_scan.was_truncated() {
            // Drop the corrupt tail so new appends extend the intact
            // prefix instead of hiding behind garbage.
            journal.set_len(journal_scan.clean_len)?;
            journal.seek(SeekFrom::End(0))?;
            telemetry::counter("store.recoveries").incr();
        }
        telemetry::counter("store.recovered_records")
            .add(recovery.index_records + recovery.journal_records);
        telemetry::counter("store.truncated_bytes").add(recovery.truncated_bytes);
        telemetry::gauge("store.wal.bytes").set(journal_scan.clean_len);

        Ok(Self {
            dir,
            map,
            journal,
            journal_bytes: journal_scan.clean_len,
            recovery,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What recovery found when this handle was opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no key is live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently in the journal (intact prefix only).
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }

    /// Looks a key up.
    pub fn get(&self, key: &Key) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// True when `key` is live.
    pub fn contains(&self, key: &Key) -> bool {
        self.map.contains_key(key)
    }

    /// Appends a record to the journal and makes it live. Durability is
    /// deferred to [`Store::sync`] — batch appends, then sync once.
    pub fn put(&mut self, key: Key, value: impl Into<Vec<u8>>) -> std::io::Result<()> {
        let value = value.into();
        let framed = encode_record(&key, &value);
        let _trace = telemetry::trace::span_detail_args(
            "store.wal.append",
            &[(
                "bytes",
                telemetry::trace::ArgValue::U64(framed.len() as u64),
            )],
        );
        self.journal.write_all(&framed)?;
        self.journal_bytes += framed.len() as u64;
        self.map.insert(key, value);
        telemetry::counter("store.appends").incr();
        telemetry::gauge("store.wal.bytes").set(self.journal_bytes);
        Ok(())
    }

    /// Forces appended records to disk.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.journal.sync_data()
    }

    /// Rewrites the live map into a fresh index segment (atomic rename)
    /// and resets the journal.
    pub fn compact(&mut self) -> std::io::Result<()> {
        let _span = telemetry::histogram("store.compact_ns").span();
        let trace_span = telemetry::trace::span_args(
            "store.compact",
            &[(
                "live_keys",
                telemetry::trace::ArgValue::U64(self.map.len() as u64),
            )],
        );
        let tmp = self.dir.join(INDEX_TMP);
        {
            let mut f = File::create(&tmp)?;
            // Deterministic segment bytes: records sorted by key.
            let mut keys: Vec<&Key> = self.map.keys().collect();
            keys.sort_unstable();
            for key in keys {
                f.write_all(&encode_record(key, &self.map[key]))?;
            }
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join(INDEX_FILE))?;
        // Publish order matters: the segment is durable and renamed
        // before the journal resets; a crash here only costs replaying
        // duplicates.
        self.journal.set_len(0)?;
        self.journal.seek(SeekFrom::End(0))?;
        self.journal_bytes = 0;
        telemetry::counter("store.compactions").incr();
        telemetry::gauge("store.wal.bytes").set(0);
        drop(trace_span);
        Ok(())
    }
}

fn read_scan(path: &Path) -> std::io::Result<ScanOutcome> {
    match std::fs::read(path) {
        Ok(bytes) => Ok(scan(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(ScanOutcome::default()),
        Err(e) => Err(e),
    }
}

/// One structural problem found by [`verify_dir`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyIssue {
    /// Which file the issue is in (`index.seg` / `journal.wal`).
    pub file: String,
    /// Human-readable description.
    pub detail: String,
}

/// The result of a structural store check.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Intact records across both files (duplicates counted).
    pub intact_records: u64,
    /// Live keys after replay.
    pub live_keys: u64,
    /// Every problem found.
    pub issues: Vec<VerifyIssue>,
}

impl VerifyReport {
    /// True when the store is structurally clean.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Structurally verifies the store at `dir` without opening it for
/// writes: every record's framing and checksum is re-checked and any
/// trailing garbage is reported. Each intact record is handed to
/// `check_record(key, value)`, which may report a content-level issue
/// (e.g. a key that does not match the payload's identity).
pub fn verify_dir(
    dir: &Path,
    mut check_record: impl FnMut(&Key, &[u8]) -> Result<(), String>,
) -> std::io::Result<VerifyReport> {
    let mut report = VerifyReport::default();
    let mut live: HashMap<Key, ()> = HashMap::new();
    for name in [INDEX_FILE, JOURNAL_FILE] {
        let path = dir.join(name);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let out = scan(&bytes);
        report.intact_records += out.records.len() as u64;
        if out.was_truncated() {
            report.issues.push(VerifyIssue {
                file: name.to_string(),
                detail: format!(
                    "{} trailing bytes past the last intact record (intact prefix {})",
                    out.truncated, out.clean_len
                ),
            });
        }
        for r in &out.records {
            if let Err(detail) = check_record(&r.key, &r.value) {
                report.issues.push(VerifyIssue {
                    file: name.to_string(),
                    detail,
                });
            }
            live.insert(r.key, ());
        }
    }
    report.live_keys = live.len() as u64;
    Ok(report)
}

/// Re-exports the record checksum so callers can frame-check externally
/// produced bytes the same way the store does.
pub fn record_checksum(payload: &[u8]) -> u64 {
    checksum64(payload)
}

/// Maximum value size a record can carry.
pub fn max_value_len() -> usize {
    MAX_PAYLOAD - KEY_LEN - HEADER_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qfab_store_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(b: u8) -> Key {
        [b; KEY_LEN]
    }

    #[test]
    fn put_get_survives_reopen() {
        let dir = tmp("reopen");
        {
            let mut s = Store::open(&dir).unwrap();
            assert!(s.is_empty());
            s.put(key(1), b"one".to_vec()).unwrap();
            s.put(key(2), b"two".to_vec()).unwrap();
            s.sync().unwrap();
        }
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(&key(1)), Some(b"one".as_slice()));
        assert_eq!(s.get(&key(2)), Some(b"two".as_slice()));
        assert_eq!(s.recovery().journal_records, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_append_wins() {
        let dir = tmp("update");
        let mut s = Store::open(&dir).unwrap();
        s.put(key(9), b"v1".to_vec()).unwrap();
        s.put(key(9), b"v2".to_vec()).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&key(9)), Some(b"v2".as_slice()));
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(&key(9)), Some(b"v2".as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_moves_journal_into_segment() {
        let dir = tmp("compact");
        let mut s = Store::open(&dir).unwrap();
        for b in 0..10u8 {
            s.put(key(b), vec![b; 4]).unwrap();
        }
        assert!(s.journal_bytes() > 0);
        s.compact().unwrap();
        assert_eq!(s.journal_bytes(), 0);
        assert_eq!(std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(), 0);
        assert!(std::fs::metadata(dir.join(INDEX_FILE)).unwrap().len() > 0);
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 10);
        assert_eq!(s.recovery().index_records, 10);
        assert_eq!(s.recovery().journal_records, 0);
        assert_eq!(s.get(&key(7)), Some([7u8; 4].as_slice()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_is_deterministic() {
        let a = tmp("det_a");
        let b = tmp("det_b");
        for dir in [&a, &b] {
            let mut s = Store::open(dir).unwrap();
            // Insertion orders differ; segment bytes must not.
            let order: Vec<u8> = if dir == &a {
                (0..8).collect()
            } else {
                (0..8).rev().collect()
            };
            for i in order {
                s.put(key(i), vec![i; 3]).unwrap();
            }
            s.compact().unwrap();
        }
        let seg_a = std::fs::read(a.join(INDEX_FILE)).unwrap();
        let seg_b = std::fs::read(b.join(INDEX_FILE)).unwrap();
        assert_eq!(seg_a, seg_b);
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn corrupt_journal_tail_is_truncated_on_open() {
        let dir = tmp("tail");
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(key(1), b"keep".to_vec()).unwrap();
            s.sync().unwrap();
        }
        // Simulate a torn append.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .unwrap();
        f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        drop(f);

        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.recovery().truncated_bytes, 3);
        let on_disk = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
        assert_eq!(on_disk, s.journal_bytes());
        // And appending after recovery extends the intact prefix.
        drop(s);
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.recovery().truncated_bytes, 0);
        s.put(key(2), b"after".to_vec()).unwrap();
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_segment_publish_and_journal_reset_is_idempotent() {
        let dir = tmp("republish");
        let mut s = Store::open(&dir).unwrap();
        s.put(key(3), b"three".to_vec()).unwrap();
        s.compact().unwrap();
        // Simulate the crash window: the journal still holds a record
        // that the segment already absorbed.
        let seg = std::fs::read(dir.join(INDEX_FILE)).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), {
            let mut b = Vec::new();
            b.extend_from_slice(&encode_record(&key(3), b"three"));
            b
        })
        .unwrap();
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&key(3)), Some(b"three".as_slice()));
        assert_eq!(std::fs::read(dir.join(INDEX_FILE)).unwrap(), seg);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_reports_clean_and_corrupt_stores() {
        let dir = tmp("verify");
        let mut s = Store::open(&dir).unwrap();
        s.put(key(1), b"a".to_vec()).unwrap();
        s.put(key(2), b"b".to_vec()).unwrap();
        s.sync().unwrap();
        drop(s);

        let report = verify_dir(&dir, |_, _| Ok(())).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.intact_records, 2);
        assert_eq!(report.live_keys, 2);

        // Content-level issues surface through the callback.
        let report = verify_dir(&dir, |k, _| {
            if k == &key(1) {
                Err("key mismatch".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.issues.len(), 1);
        assert_eq!(report.issues[0].file, JOURNAL_FILE);

        // Structural corruption surfaces too.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .unwrap();
        f.write_all(&[1, 2, 3, 4]).unwrap();
        drop(f);
        let report = verify_dir(&dir, |_, _| Ok(())).unwrap();
        assert!(!report.is_clean());
        assert!(report.issues[0].detail.contains("trailing bytes"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncating_journal_at_every_byte_of_the_final_record_recovers_prefix() {
        // Satellite: cut the on-disk journal at every byte offset of the
        // final record; opening must recover exactly the intact records
        // and leave a writable store.
        let dir = tmp("cutsweep");
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(key(1), b"first-record".to_vec()).unwrap();
            s.put(key(2), b"second-record".to_vec()).unwrap();
            s.put(key(3), b"the-final-record".to_vec()).unwrap();
            s.sync().unwrap();
        }
        let full = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
        let second_end = {
            let two = [
                encode_record(&key(1), b"first-record"),
                encode_record(&key(2), b"second-record"),
            ];
            two[0].len() + two[1].len()
        };
        for cut in second_end..=full.len() {
            let case = tmp("cutsweep_case");
            std::fs::create_dir_all(&case).unwrap();
            std::fs::write(case.join(JOURNAL_FILE), &full[..cut]).unwrap();
            let s = Store::open(&case).unwrap();
            let expect = if cut == full.len() { 3 } else { 2 };
            assert_eq!(s.len(), expect, "cut at byte {cut}");
            assert!(s.contains(&key(1)) && s.contains(&key(2)), "cut {cut}");
            let _ = std::fs::remove_dir_all(&case);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
