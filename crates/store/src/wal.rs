//! Append-only journal framing: length-prefixed, checksummed records
//! with prefix-truncating recovery.
//!
//! ## On-disk record layout
//!
//! ```text
//! offset  size  field
//! 0       4     payload length `len` (u32, little-endian)
//! 4       8     checksum: first 8 bytes of BLAKE2s-256(payload) (u64 LE)
//! 12      len   payload = [ key: 32 bytes | value bytes ]
//! ```
//!
//! Records are written back-to-back with no file header; an empty file
//! is a valid (empty) journal. A record is *intact* iff its full header
//! and payload are present and the checksum matches. Recovery scans
//! from the start and stops at the **first** partial or corrupt record:
//! everything before it is the recovered prefix, everything from it on
//! is discarded. A crash mid-append therefore loses at most the record
//! being written, never an earlier one.

use crate::hash::checksum64;

/// Bytes in a record header (length + checksum).
pub const HEADER_LEN: usize = 12;

/// Bytes in a record key.
pub const KEY_LEN: usize = 32;

/// Upper bound on a record payload — anything larger is treated as
/// corruption (a wild length from a torn header must not trigger a
/// multi-gigabyte allocation).
pub const MAX_PAYLOAD: usize = 16 << 20;

/// A content-addressed key: the BLAKE2s-256 digest of a record's
/// canonical identity.
pub type Key = [u8; KEY_LEN];

/// One recovered record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// The content-address key.
    pub key: Key,
    /// The value bytes.
    pub value: Vec<u8>,
}

/// Serializes one record into its on-disk framing.
pub fn encode_record(key: &Key, value: &[u8]) -> Vec<u8> {
    let len = KEY_LEN + value.len();
    assert!(len <= MAX_PAYLOAD, "record payload exceeds MAX_PAYLOAD");
    let mut out = Vec::with_capacity(HEADER_LEN + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    let mut payload = Vec::with_capacity(len);
    payload.extend_from_slice(key);
    payload.extend_from_slice(value);
    out.extend_from_slice(&checksum64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The result of scanning a journal's bytes.
#[derive(Clone, Debug, Default)]
pub struct ScanOutcome {
    /// Every intact record, in append order (duplicates preserved).
    pub records: Vec<Record>,
    /// Bytes of the intact prefix; the journal is logically this long.
    pub clean_len: u64,
    /// Bytes discarded past the intact prefix (0 for a clean journal).
    pub truncated: u64,
}

impl ScanOutcome {
    /// True when the scan found garbage past the intact prefix.
    pub fn was_truncated(&self) -> bool {
        self.truncated > 0
    }
}

/// Scans raw journal bytes, returning the longest intact record prefix.
///
/// Never fails: corruption anywhere — torn header, wild length, short
/// payload, checksum mismatch, payload shorter than a key — simply ends
/// the prefix there.
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < HEADER_LEN {
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        if !(KEY_LEN..=MAX_PAYLOAD).contains(&len) || rest.len() < HEADER_LEN + len {
            break;
        }
        let want = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if checksum64(payload) != want {
            break;
        }
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(&payload[..KEY_LEN]);
        records.push(Record {
            key,
            value: payload[KEY_LEN..].to_vec(),
        });
        pos += HEADER_LEN + len;
    }
    ScanOutcome {
        records,
        clean_len: pos as u64,
        truncated: (bytes.len() - pos) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> Key {
        [b; KEY_LEN]
    }

    #[test]
    fn round_trip_multiple_records() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(&key(1), b"alpha"));
        bytes.extend_from_slice(&encode_record(&key(2), b""));
        bytes.extend_from_slice(&encode_record(&key(3), b"gamma-value"));
        let out = scan(&bytes);
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[0].value, b"alpha");
        assert_eq!(out.records[1].value, b"");
        assert_eq!(out.records[2].key, key(3));
        assert_eq!(out.clean_len, bytes.len() as u64);
        assert!(!out.was_truncated());
    }

    #[test]
    fn empty_journal_is_valid() {
        let out = scan(&[]);
        assert!(out.records.is_empty());
        assert_eq!(out.clean_len, 0);
    }

    #[test]
    fn truncation_at_every_byte_recovers_the_intact_prefix() {
        // The satellite's crash model: the file ends mid-record at an
        // arbitrary byte. Recovery must yield exactly the records whose
        // full framing fits in the prefix — for every cut point.
        let recs = [
            encode_record(&key(1), b"one"),
            encode_record(&key(2), b"two-longer-value"),
            encode_record(&key(3), b"three"),
        ];
        let mut bytes = Vec::new();
        let mut ends = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(r);
            ends.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let out = scan(&bytes[..cut]);
            let expect = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(out.records.len(), expect, "cut at byte {cut}");
            let clean = ends
                .iter()
                .copied()
                .filter(|&e| e <= cut)
                .max()
                .unwrap_or(0);
            assert_eq!(out.clean_len, clean as u64, "cut at byte {cut}");
            assert_eq!(out.truncated, (cut - clean) as u64, "cut at byte {cut}");
        }
    }

    #[test]
    fn bit_flip_anywhere_stops_the_scan_at_that_record() {
        let recs = [
            encode_record(&key(1), b"first"),
            encode_record(&key(2), b"second"),
        ];
        let clean: Vec<u8> = recs.concat();
        let first_len = recs[0].len();
        for bit_at in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[bit_at] ^= 0x40;
            let out = scan(&bytes);
            let expect = if bit_at < first_len { 0 } else { 1 };
            // A flip in a length field can occasionally keep the frame
            // parseable but never checksum-valid, so the count is exact.
            assert_eq!(out.records.len(), expect, "flip at byte {bit_at}");
        }
    }

    #[test]
    fn wild_length_does_not_allocate_or_panic() {
        let mut bytes = vec![0xFFu8; HEADER_LEN];
        bytes.extend_from_slice(&[0u8; 64]);
        let out = scan(&bytes);
        assert!(out.records.is_empty());
        assert_eq!(out.clean_len, 0);
        assert_eq!(out.truncated, bytes.len() as u64);
    }

    #[test]
    fn payload_shorter_than_key_is_corrupt() {
        // len < KEY_LEN can only come from a torn write.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(5u32).to_le_bytes());
        bytes.extend_from_slice(&checksum64(b"hello").to_le_bytes());
        bytes.extend_from_slice(b"hello");
        let out = scan(&bytes);
        assert!(out.records.is_empty());
    }
}
