//! Hand-rolled BLAKE2s-256 (RFC 7693), the store's content-address
//! function.
//!
//! The store keys every record by a 256-bit digest of its canonical
//! identity bytes and checksums every WAL record with a truncated
//! digest of its payload. BLAKE2s is chosen over an ad-hoc hash because
//! the keying must be collision-resistant (a collision would silently
//! serve one experiment's results for another) and over a dependency
//! because the workspace is frozen to its allowlist — the full
//! implementation is ~120 lines and is pinned to the RFC test vectors
//! below.

const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

const BLOCK: usize = 64;

/// Incremental BLAKE2s-256 hasher (unkeyed, sequential mode).
#[derive(Clone)]
pub struct Blake2s {
    h: [u32; 8],
    buf: [u8; BLOCK],
    buf_len: usize,
    /// Total bytes compressed so far (excluding the buffered tail).
    t: u64,
}

impl Default for Blake2s {
    fn default() -> Self {
        Self::new()
    }
}

impl Blake2s {
    /// Starts a fresh 32-byte-digest hasher.
    pub fn new() -> Self {
        let mut h = IV;
        // Parameter block for digest_length=32, key_length=0,
        // fanout=1, depth=1 — only h[0] is affected.
        h[0] ^= 0x0101_0020;
        Self {
            h,
            buf: [0; BLOCK],
            buf_len: 0,
            t: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        let mut rest = data;
        while !rest.is_empty() {
            if self.buf_len == BLOCK {
                // The buffer only compresses once more input arrives, so
                // the final block (which needs the finalization flag) is
                // always still buffered when `finalize` runs.
                self.t += BLOCK as u64;
                let block = self.buf;
                self.compress(&block, false);
                self.buf_len = 0;
            }
            let take = (BLOCK - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
        }
        self
    }

    /// Completes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        self.t += self.buf_len as u64;
        self.buf[self.buf_len..].fill(0);
        let block = self.buf;
        self.compress(&block, true);
        let mut out = [0u8; 32];
        for (i, word) in self.h.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK], last: bool) {
        let mut m = [0u32; 16];
        for (i, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }
        let mut v = [0u32; 16];
        v[..8].copy_from_slice(&self.h);
        v[8..].copy_from_slice(&IV);
        v[12] ^= self.t as u32;
        v[13] ^= (self.t >> 32) as u32;
        if last {
            v[14] ^= u32::MAX;
        }

        #[inline(always)]
        fn g(v: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, x: u32, y: u32) {
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
            v[d] = (v[d] ^ v[a]).rotate_right(16);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(12);
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
            v[d] = (v[d] ^ v[a]).rotate_right(8);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(7);
        }

        for s in &SIGMA {
            g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
            g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
            g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
            g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
            g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
            g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
            g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
            g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
        }
        for i in 0..8 {
            self.h[i] ^= v[i] ^ v[i + 8];
        }
    }
}

/// One-shot BLAKE2s-256 of `data`.
pub fn blake2s256(data: &[u8]) -> [u8; 32] {
    let mut h = Blake2s::new();
    h.update(data);
    h.finalize()
}

/// The first 8 digest bytes as a little-endian `u64` — the WAL record
/// checksum.
pub fn checksum64(data: &[u8]) -> u64 {
    let d = blake2s256(data);
    u64::from_le_bytes(d[..8].try_into().unwrap())
}

/// Lower-hex rendering of a digest (for reports and file names).
pub fn to_hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        to_hex(&blake2s256(data))
    }

    #[test]
    fn rfc7693_abc_vector() {
        // RFC 7693 appendix B: BLAKE2s-256("abc").
        assert_eq!(
            hex(b"abc"),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"
        );
    }

    #[test]
    fn empty_input_vector() {
        assert_eq!(
            hex(b""),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        // Exercise every buffer-boundary path around one and two blocks.
        let data: Vec<u8> = (0..200u16).map(|i| (i * 7 + 3) as u8).collect();
        let expect = blake2s256(&data);
        for split in 0..=data.len() {
            let mut h = Blake2s::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn multi_block_input_differs_per_byte() {
        let a: Vec<u8> = vec![0x41; 130];
        let mut b = a.clone();
        b[129] ^= 1;
        assert_ne!(blake2s256(&a), blake2s256(&b));
        assert_ne!(checksum64(&a), checksum64(&b));
    }

    #[test]
    fn hex_rendering() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x1a]), "00ff1a");
    }
}
