#![warn(missing_docs)]

//! Crash-safe content-addressed result store for the qfab stack.
//!
//! Panel sweeps are embarrassingly cell-structured — hundreds of
//! instances × (error rate × AQFT depth) grids — and each cell is
//! expensive to simulate but tiny to describe. This crate provides the
//! durable substrate that makes sweeps incremental: a key→bytes store
//! where **keys are BLAKE2s-256 digests of the cell's canonical
//! identity** and values are the cell's serialized result.
//!
//! * [`hash`] — hand-rolled BLAKE2s-256 (RFC 7693, pinned to its test
//!   vectors); no external crates.
//! * [`wal`] — record framing: length-prefixed, checksummed records
//!   and a scanner that recovers the longest intact prefix.
//! * [`store`] — the [`Store`]: an `index.seg` compacted segment plus a
//!   `journal.wal` append journal, atomic-rename compaction, and
//!   recovery that truncates at the first corrupt or partial record.
//!
//! ## Guarantees
//!
//! * **Crash safety** — a process killed at any instant leaves a store
//!   that reopens to exactly the records whose framing hit the disk
//!   intact; at most the in-flight record is lost.
//! * **Content addressing** — a record can only be served for the exact
//!   identity it was computed from; changing any keyed field (seed,
//!   rate, depth, shots, code-version salt, …) changes the digest.
//! * **Zero dependencies** — `std` plus the workspace's own
//!   `qfab-telemetry` (itself std-only) for counters and spans.
//!
//! The experiment-level keying scheme (which fields enter the digest
//! and how they are canonicalized) lives in `qfab-experiments::cache`;
//! this crate is deliberately ignorant of what the bytes mean.

pub mod hash;
pub mod store;
pub mod wal;

pub use hash::{blake2s256, checksum64, to_hex, Blake2s};
pub use store::{verify_dir, RecoveryReport, Store, VerifyIssue, VerifyReport};
pub use wal::{Key, Record, KEY_LEN};
