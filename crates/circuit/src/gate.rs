//! The gate set.
//!
//! Gates carry their qubit operands directly (no separate operand table),
//! so a `Gate` is a small `Copy` value and a circuit is a flat
//! `Vec<Gate>` with good cache behaviour during simulation.
//!
//! ## Qubit-ordering convention for matrices
//!
//! [`Gate::matrix`] returns the gate's unitary over the *listed* qubits,
//! with `qubits()[0]` as the **least significant** bit of the matrix
//! index. So for `Cx { control, target }` with `qubits() = [control,
//! target]`, matrix index `i = (t << 1) | c`. All matrices are generated
//! programmatically from the gate's semantic action on basis states,
//! which keeps the convention impossible to get wrong by hand.

use qfab_math::complex::{c64, Complex64};
use qfab_math::matrix::{Mat2, Mat4, Mat8};
use std::f64::consts::{FRAC_1_SQRT_2, PI};
use std::fmt;

/// A quantum gate instance, bound to concrete qubit indices.
///
/// Angles are in radians. The paper's `R_l` controlled rotation is
/// `Cphase { theta: 2π / 2^l }` and its doubly-controlled `cR_l` is
/// `Ccphase` with the same angle.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Gate {
    /// Identity (explicit, so noise models can attach idle error).
    I(u32),
    /// Pauli X.
    X(u32),
    /// Pauli Y.
    Y(u32),
    /// Pauli Z.
    Z(u32),
    /// Hadamard.
    H(u32),
    /// Phase gate S = diag(1, i).
    S(u32),
    /// S†.
    Sdg(u32),
    /// T = diag(1, e^{iπ/4}).
    T(u32),
    /// T†.
    Tdg(u32),
    /// √X — one of the IBM basis gates.
    Sx(u32),
    /// (√X)†.
    Sxdg(u32),
    /// Rotation about X: `exp(-iθX/2)`.
    Rx(u32, f64),
    /// Rotation about Y: `exp(-iθY/2)`.
    Ry(u32, f64),
    /// Rotation about Z: `exp(-iθZ/2)` — an IBM basis gate (virtual).
    Rz(u32, f64),
    /// Phase gate diag(1, e^{iθ}) — equals Rz(θ) up to global phase.
    Phase(u32, f64),
    /// Generic 1q unitary U(θ, φ, λ) in the OpenQASM convention.
    U(u32, f64, f64, f64),
    /// Controlled-X (CNOT) — the IBM entangling basis gate.
    Cx {
        /// Control qubit.
        control: u32,
        /// Target qubit (flipped when the control is |1>).
        target: u32,
    },
    /// Controlled-Z.
    Cz(u32, u32),
    /// Controlled-phase diag(1,1,1,e^{iθ}) — the paper's `R_l` with
    /// `θ = 2π/2^l`.
    Cphase {
        /// Control qubit (CP is symmetric; the labels follow Fig. 2).
        control: u32,
        /// Target qubit.
        target: u32,
        /// Phase angle in radians.
        theta: f64,
    },
    /// Controlled-Hadamard — the paper's `cH`.
    Ch {
        /// Control qubit.
        control: u32,
        /// Target qubit (Hadamard applied when the control is |1>).
        target: u32,
    },
    /// SWAP.
    Swap(u32, u32),
    /// Toffoli (CCX).
    Ccx {
        /// First control qubit.
        c0: u32,
        /// Second control qubit.
        c1: u32,
        /// Target qubit.
        target: u32,
    },
    /// Doubly-controlled phase — the paper's `cR_l`.
    Ccphase {
        /// First control qubit.
        c0: u32,
        /// Second control qubit.
        c1: u32,
        /// Target qubit (CCP is symmetric; labels follow the paper).
        target: u32,
        /// Phase angle in radians.
        theta: f64,
    },
    /// Fredkin (controlled SWAP).
    Cswap {
        /// Control qubit.
        control: u32,
        /// First swapped qubit.
        a: u32,
        /// Second swapped qubit.
        b: u32,
    },
}

/// A gate's unitary matrix, sized by arity.
///
/// Deliberately unboxed: matrices are transient stack values consumed
/// immediately by the kernels, and the type must stay `Copy`.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug)]
pub enum GateMatrix {
    /// Single-qubit operator.
    One(Mat2),
    /// Two-qubit operator (see module docs for index convention).
    Two(Mat4),
    /// Three-qubit operator.
    Three(Mat8),
}

/// Up to three qubit operands, in gate-definition order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Operands {
    buf: [u32; 3],
    len: u8,
}

impl Operands {
    fn one(a: u32) -> Self {
        Self {
            buf: [a, 0, 0],
            len: 1,
        }
    }
    fn two(a: u32, b: u32) -> Self {
        Self {
            buf: [a, b, 0],
            len: 2,
        }
    }
    fn three(a: u32, b: u32, c: u32) -> Self {
        Self {
            buf: [a, b, c],
            len: 3,
        }
    }

    /// The operands as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.buf[..self.len as usize]
    }

    /// Number of operands.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Never true: every gate has at least one operand.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Index<usize> for Operands {
    type Output = u32;
    fn index(&self, i: usize) -> &u32 {
        &self.as_slice()[i]
    }
}

impl<'a> IntoIterator for &'a Operands {
    type Item = u32;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u32>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

impl Gate {
    /// The qubits this gate touches, in definition order (controls before
    /// targets where applicable).
    pub fn qubits(&self) -> Operands {
        use Gate::*;
        match *self {
            I(q) | X(q) | Y(q) | Z(q) | H(q) | S(q) | Sdg(q) | T(q) | Tdg(q) | Sx(q) | Sxdg(q) => {
                Operands::one(q)
            }
            Rx(q, _) | Ry(q, _) | Rz(q, _) | Phase(q, _) => Operands::one(q),
            U(q, ..) => Operands::one(q),
            Cx { control, target } => Operands::two(control, target),
            Cz(a, b) => Operands::two(a, b),
            Cphase {
                control, target, ..
            } => Operands::two(control, target),
            Ch { control, target } => Operands::two(control, target),
            Swap(a, b) => Operands::two(a, b),
            Ccx { c0, c1, target } => Operands::three(c0, c1, target),
            Ccphase { c0, c1, target, .. } => Operands::three(c0, c1, target),
            Cswap { control, a, b } => Operands::three(control, a, b),
        }
    }

    /// Number of qubits the gate acts on (1, 2 or 3).
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// The gate's lowercase mnemonic (matches the OpenQASM spelling where
    /// one exists).
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            I(_) => "id",
            X(_) => "x",
            Y(_) => "y",
            Z(_) => "z",
            H(_) => "h",
            S(_) => "s",
            Sdg(_) => "sdg",
            T(_) => "t",
            Tdg(_) => "tdg",
            Sx(_) => "sx",
            Sxdg(_) => "sxdg",
            Rx(..) => "rx",
            Ry(..) => "ry",
            Rz(..) => "rz",
            Phase(..) => "p",
            U(..) => "u",
            Cx { .. } => "cx",
            Cz(..) => "cz",
            Cphase { .. } => "cp",
            Ch { .. } => "ch",
            Swap(..) => "swap",
            Ccx { .. } => "ccx",
            Ccphase { .. } => "ccp",
            Cswap { .. } => "cswap",
        }
    }

    /// The inverse gate (always exists and is a single gate in this set).
    pub fn inverse(&self) -> Gate {
        use Gate::*;
        match *self {
            S(q) => Sdg(q),
            Sdg(q) => S(q),
            T(q) => Tdg(q),
            Tdg(q) => T(q),
            Sx(q) => Sxdg(q),
            Sxdg(q) => Sx(q),
            Rx(q, t) => Rx(q, -t),
            Ry(q, t) => Ry(q, -t),
            Rz(q, t) => Rz(q, -t),
            Phase(q, t) => Phase(q, -t),
            U(q, theta, phi, lam) => U(q, -theta, -lam, -phi),
            Cphase {
                control,
                target,
                theta,
            } => Cphase {
                control,
                target,
                theta: -theta,
            },
            Ccphase {
                c0,
                c1,
                target,
                theta,
            } => Ccphase {
                c0,
                c1,
                target,
                theta: -theta,
            },
            // Self-inverse gates.
            g => g,
        }
    }

    /// True when the gate's matrix is diagonal in the computational basis
    /// (the simulator has a cheaper kernel for these).
    pub fn is_diagonal(&self) -> bool {
        use Gate::*;
        matches!(
            self,
            I(_) | Z(_)
                | S(_)
                | Sdg(_)
                | T(_)
                | Tdg(_)
                | Rz(..)
                | Phase(..)
                | Cz(..)
                | Cphase { .. }
                | Ccphase { .. }
        )
    }

    /// The unitary matrix over the listed qubits (see module docs for the
    /// index convention).
    pub fn matrix(&self) -> GateMatrix {
        use Gate::*;
        match *self {
            I(_) => GateMatrix::One(Mat2::identity()),
            X(_) => GateMatrix::One(mat2_x()),
            Y(_) => GateMatrix::One(Mat2::from_rows([
                [Complex64::ZERO, c64(0.0, -1.0)],
                [c64(0.0, 1.0), Complex64::ZERO],
            ])),
            Z(_) => GateMatrix::One(Mat2::diagonal([Complex64::ONE, -Complex64::ONE])),
            H(_) => GateMatrix::One(mat2_h()),
            S(_) => GateMatrix::One(Mat2::diagonal([Complex64::ONE, Complex64::I])),
            Sdg(_) => GateMatrix::One(Mat2::diagonal([Complex64::ONE, -Complex64::I])),
            T(_) => GateMatrix::One(Mat2::diagonal([Complex64::ONE, Complex64::cis(PI / 4.0)])),
            Tdg(_) => GateMatrix::One(Mat2::diagonal([Complex64::ONE, Complex64::cis(-PI / 4.0)])),
            Sx(_) => GateMatrix::One(mat2_sx()),
            Sxdg(_) => GateMatrix::One(mat2_sx().adjoint()),
            Rx(_, t) => GateMatrix::One(mat2_rx(t)),
            Ry(_, t) => GateMatrix::One(mat2_ry(t)),
            Rz(_, t) => GateMatrix::One(mat2_rz(t)),
            Phase(_, t) => GateMatrix::One(Mat2::diagonal([Complex64::ONE, Complex64::cis(t)])),
            U(_, theta, phi, lam) => GateMatrix::One(mat2_u(theta, phi, lam)),
            Cx { .. } => GateMatrix::Two(controlled_two(&mat2_x())),
            Cz(..) => GateMatrix::Two(controlled_two(&Mat2::diagonal([
                Complex64::ONE,
                -Complex64::ONE,
            ]))),
            Cphase { theta, .. } => GateMatrix::Two(controlled_two(&Mat2::diagonal([
                Complex64::ONE,
                Complex64::cis(theta),
            ]))),
            Ch { .. } => GateMatrix::Two(controlled_two(&mat2_h())),
            Swap(..) => GateMatrix::Two(swap_matrix()),
            Ccx { .. } => GateMatrix::Three(controlled_three(&controlled_two(&mat2_x()))),
            Ccphase { theta, .. } => {
                GateMatrix::Three(controlled_three(&controlled_two(&Mat2::diagonal([
                    Complex64::ONE,
                    Complex64::cis(theta),
                ]))))
            }
            Cswap { .. } => GateMatrix::Three(cswap_matrix()),
        }
    }

    /// Remaps every qubit index through `f` (used when splicing a
    /// sub-circuit into a larger register layout).
    pub fn map_qubits(&self, f: impl Fn(u32) -> u32) -> Gate {
        use Gate::*;
        match *self {
            I(q) => I(f(q)),
            X(q) => X(f(q)),
            Y(q) => Y(f(q)),
            Z(q) => Z(f(q)),
            H(q) => H(f(q)),
            S(q) => S(f(q)),
            Sdg(q) => Sdg(f(q)),
            T(q) => T(f(q)),
            Tdg(q) => Tdg(f(q)),
            Sx(q) => Sx(f(q)),
            Sxdg(q) => Sxdg(f(q)),
            Rx(q, t) => Rx(f(q), t),
            Ry(q, t) => Ry(f(q), t),
            Rz(q, t) => Rz(f(q), t),
            Phase(q, t) => Phase(f(q), t),
            U(q, a, b, c) => U(f(q), a, b, c),
            Cx { control, target } => Cx {
                control: f(control),
                target: f(target),
            },
            Cz(a, b) => Cz(f(a), f(b)),
            Cphase {
                control,
                target,
                theta,
            } => Cphase {
                control: f(control),
                target: f(target),
                theta,
            },
            Ch { control, target } => Ch {
                control: f(control),
                target: f(target),
            },
            Swap(a, b) => Swap(f(a), f(b)),
            Ccx { c0, c1, target } => Ccx {
                c0: f(c0),
                c1: f(c1),
                target: f(target),
            },
            Ccphase {
                c0,
                c1,
                target,
                theta,
            } => Ccphase {
                c0: f(c0),
                c1: f(c1),
                target: f(target),
                theta,
            },
            Cswap { control, a, b } => Cswap {
                control: f(control),
                a: f(a),
                b: f(b),
            },
        }
    }

    /// Lifts the gate to its singly-controlled version on `control`
    /// (the construction behind the paper's cQFT / cadd / cQFA).
    ///
    /// Returns `None` when the controlled version falls outside this gate
    /// set (e.g. controlling a 3-qubit gate would need 4 qubits).
    pub fn controlled(&self, control: u32) -> Option<Gate> {
        use Gate::*;
        debug_assert!(
            !self.qubits().as_slice().contains(&control),
            "control qubit overlaps gate operands"
        );
        Some(match *self {
            I(_) => I(control), // controlled identity is identity anywhere
            X(q) => Cx { control, target: q },
            Z(q) => Cz(control, q),
            H(q) => Ch { control, target: q },
            Phase(q, t) => Cphase {
                control,
                target: q,
                theta: t,
            },
            Cx { control: c, target } => Ccx {
                c0: control,
                c1: c,
                target,
            },
            Cz(a, b) => Ccphase {
                c0: control,
                c1: a,
                target: b,
                theta: PI,
            },
            Cphase {
                control: c,
                target,
                theta,
            } => Ccphase {
                c0: control,
                c1: c,
                target,
                theta,
            },
            Swap(a, b) => Cswap { control, a, b },
            _ => return None,
        })
    }

    /// The rotation angle for parameterized gates, if any.
    pub fn angle(&self) -> Option<f64> {
        use Gate::*;
        match *self {
            Rx(_, t) | Ry(_, t) | Rz(_, t) | Phase(_, t) => Some(t),
            Cphase { theta, .. } | Ccphase { theta, .. } => Some(theta),
            _ => None,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())?;
        if let Some(t) = self.angle() {
            write!(f, "({t:.6})")?;
        }
        if let Gate::U(_, a, b, c) = self {
            write!(f, "({a:.6},{b:.6},{c:.6})")?;
        }
        let q = self.qubits();
        let strs: Vec<String> = q.as_slice().iter().map(|x| format!("q{x}")).collect();
        write!(f, " {}", strs.join(","))
    }
}

// ---- matrix construction helpers -------------------------------------

fn mat2_x() -> Mat2 {
    Mat2::from_rows([
        [Complex64::ZERO, Complex64::ONE],
        [Complex64::ONE, Complex64::ZERO],
    ])
}

fn mat2_h() -> Mat2 {
    let h = FRAC_1_SQRT_2;
    Mat2::from_rows([[c64(h, 0.0), c64(h, 0.0)], [c64(h, 0.0), c64(-h, 0.0)]])
}

fn mat2_sx() -> Mat2 {
    // SX = (1/2) [[1+i, 1-i], [1-i, 1+i]]
    Mat2::from_rows([
        [c64(0.5, 0.5), c64(0.5, -0.5)],
        [c64(0.5, -0.5), c64(0.5, 0.5)],
    ])
}

fn mat2_rx(t: f64) -> Mat2 {
    let (s, c) = (t / 2.0).sin_cos();
    Mat2::from_rows([[c64(c, 0.0), c64(0.0, -s)], [c64(0.0, -s), c64(c, 0.0)]])
}

fn mat2_ry(t: f64) -> Mat2 {
    let (s, c) = (t / 2.0).sin_cos();
    Mat2::from_rows([[c64(c, 0.0), c64(-s, 0.0)], [c64(s, 0.0), c64(c, 0.0)]])
}

fn mat2_rz(t: f64) -> Mat2 {
    Mat2::diagonal([Complex64::cis(-t / 2.0), Complex64::cis(t / 2.0)])
}

/// OpenQASM-convention U(θ, φ, λ).
fn mat2_u(theta: f64, phi: f64, lam: f64) -> Mat2 {
    let (s, c) = (theta / 2.0).sin_cos();
    Mat2::from_rows([
        [c64(c, 0.0), -Complex64::cis(lam).scale(s)],
        [
            Complex64::cis(phi).scale(s),
            Complex64::cis(phi + lam).scale(c),
        ],
    ])
}

/// Controlled 1q gate in *our* operand order: control is operand 0 =
/// least significant matrix bit, target is operand 1.
/// Index i = (t << 1) | c; the gate applies `u` to t when c = 1.
fn controlled_two(u: &Mat2) -> Mat4 {
    let mut out = Mat4::zero();
    // c = 0 columns: identity on t.
    out.m[0][0] = Complex64::ONE; // |t=0,c=0>
    out.m[2][2] = Complex64::ONE; // |t=1,c=0>
                                  // c = 1 block: u acts on t (t is matrix bit 1).
    out.m[1][1] = u.m[0][0];
    out.m[1][3] = u.m[0][1];
    out.m[3][1] = u.m[1][0];
    out.m[3][3] = u.m[1][1];
    out
}

/// Adds one more control as operand 0 (least significant bit) to a
/// 2-qubit matrix built by [`controlled_two`]: new index
/// i = (old_index << 1) | c_new.
fn controlled_three(u: &Mat4) -> Mat8 {
    let mut out = Mat8::zero();
    for r in 0..4 {
        for c in 0..4 {
            // c_new = 0: identity; c_new = 1: u on the other two qubits.
            if r == c {
                out.m[r * 2][c * 2] = Complex64::ONE;
            }
            out.m[r * 2 + 1][c * 2 + 1] = u.m[r][c];
        }
    }
    out
}

fn swap_matrix() -> Mat4 {
    let mut out = Mat4::zero();
    // Basis |b a> with a = bit0: swap exchanges |01> (idx 1) and |10> (idx 2).
    out.m[0][0] = Complex64::ONE;
    out.m[1][2] = Complex64::ONE;
    out.m[2][1] = Complex64::ONE;
    out.m[3][3] = Complex64::ONE;
    out
}

fn cswap_matrix() -> Mat8 {
    // Operands (control, a, b); index i = (b << 2) | (a << 1) | control.
    let mut out = Mat8::zero();
    for i in 0..8usize {
        let ctrl = i & 1;
        let a = (i >> 1) & 1;
        let b = (i >> 2) & 1;
        let j = if ctrl == 1 {
            (a << 2) | (b << 1) | ctrl
        } else {
            i
        };
        out.m[j][i] = Complex64::ONE;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn all_sample_gates() -> Vec<Gate> {
        use Gate::*;
        vec![
            I(0),
            X(0),
            Y(0),
            Z(0),
            H(0),
            S(0),
            Sdg(0),
            T(0),
            Tdg(0),
            Sx(0),
            Sxdg(0),
            Rx(0, 0.3),
            Ry(0, -1.1),
            Rz(0, 2.2),
            Phase(0, 0.7),
            U(0, 0.4, 1.3, -0.2),
            Cx {
                control: 0,
                target: 1,
            },
            Cz(0, 1),
            Cphase {
                control: 0,
                target: 1,
                theta: 0.9,
            },
            Ch {
                control: 0,
                target: 1,
            },
            Swap(0, 1),
            Ccx {
                c0: 0,
                c1: 1,
                target: 2,
            },
            Ccphase {
                c0: 0,
                c1: 1,
                target: 2,
                theta: -0.6,
            },
            Cswap {
                control: 0,
                a: 1,
                b: 2,
            },
        ]
    }

    #[test]
    fn every_gate_matrix_is_unitary() {
        for g in all_sample_gates() {
            let ok = match g.matrix() {
                GateMatrix::One(m) => m.is_unitary(TOL),
                GateMatrix::Two(m) => m.is_unitary(TOL),
                GateMatrix::Three(m) => m.is_unitary(TOL),
            };
            assert!(ok, "{g} is not unitary");
        }
    }

    #[test]
    fn inverse_matrix_is_adjoint() {
        for g in all_sample_gates() {
            let inv = g.inverse();
            match (g.matrix(), inv.matrix()) {
                (GateMatrix::One(a), GateMatrix::One(b)) => {
                    assert!(
                        a.matmul(&b).approx_eq_up_to_phase(&Mat2::identity(), 1e-10),
                        "{g}: inverse fails"
                    )
                }
                (GateMatrix::Two(a), GateMatrix::Two(b)) => {
                    assert!(
                        a.matmul(&b).approx_eq_up_to_phase(&Mat4::identity(), 1e-10),
                        "{g}: inverse fails"
                    )
                }
                (GateMatrix::Three(a), GateMatrix::Three(b)) => {
                    assert!(
                        a.matmul(&b).approx_eq_up_to_phase(&Mat8::identity(), 1e-10),
                        "{g}: inverse fails"
                    )
                }
                _ => panic!("{g}: inverse changed arity"),
            }
        }
    }

    #[test]
    fn u_inverse_is_exact_not_just_up_to_phase() {
        let g = Gate::U(0, 0.4, 1.3, -0.2);
        let (GateMatrix::One(a), GateMatrix::One(b)) = (g.matrix(), g.inverse().matrix()) else {
            unreachable!()
        };
        assert!(a.matmul(&b).approx_eq(&Mat2::identity(), 1e-10));
    }

    #[test]
    fn arity_and_operands() {
        assert_eq!(Gate::H(3).arity(), 1);
        assert_eq!(
            Gate::Cx {
                control: 2,
                target: 5
            }
            .qubits()
            .as_slice(),
            &[2, 5]
        );
        assert_eq!(
            Gate::Ccphase {
                c0: 1,
                c1: 2,
                target: 3,
                theta: 0.1
            }
            .qubits()
            .as_slice(),
            &[1, 2, 3]
        );
    }

    #[test]
    fn cx_matrix_convention() {
        // Index i = (t << 1) | c. CX maps (c=1,t=0) [idx 1] to (c=1,t=1)
        // [idx 3] and vice versa.
        let GateMatrix::Two(m) = (Gate::Cx {
            control: 0,
            target: 1,
        })
        .matrix() else {
            unreachable!()
        };
        assert!(m.m[0][0].approx_eq(Complex64::ONE, TOL));
        assert!(m.m[3][1].approx_eq(Complex64::ONE, TOL));
        assert!(m.m[1][3].approx_eq(Complex64::ONE, TOL));
        assert!(m.m[2][2].approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn cphase_is_symmetric_diagonal() {
        let GateMatrix::Two(m) = (Gate::Cphase {
            control: 0,
            target: 1,
            theta: 0.9,
        })
        .matrix() else {
            unreachable!()
        };
        assert!(m.m[0][0].approx_eq(Complex64::ONE, TOL));
        assert!(m.m[1][1].approx_eq(Complex64::ONE, TOL));
        assert!(m.m[2][2].approx_eq(Complex64::ONE, TOL));
        assert!(m.m[3][3].approx_eq(Complex64::cis(0.9), TOL));
    }

    #[test]
    fn ccphase_only_phases_all_ones() {
        let GateMatrix::Three(m) = (Gate::Ccphase {
            c0: 0,
            c1: 1,
            target: 2,
            theta: 1.1,
        })
        .matrix() else {
            unreachable!()
        };
        for i in 0..7 {
            assert!(m.m[i][i].approx_eq(Complex64::ONE, TOL), "diag {i}");
        }
        assert!(m.m[7][7].approx_eq(Complex64::cis(1.1), TOL));
    }

    #[test]
    fn swap_and_cswap_permutations() {
        let GateMatrix::Two(sw) = Gate::Swap(0, 1).matrix() else {
            unreachable!()
        };
        assert!(sw.m[1][2].approx_eq(Complex64::ONE, TOL));
        assert!(sw.m[2][1].approx_eq(Complex64::ONE, TOL));

        let GateMatrix::Three(fs) = (Gate::Cswap {
            control: 0,
            a: 1,
            b: 2,
        })
        .matrix() else {
            unreachable!()
        };
        // With control (bit0) = 1: swap bits 1 and 2.
        // |c=1,a=1,b=0> = idx 3 <-> |c=1,a=0,b=1> = idx 5.
        assert!(fs.m[5][3].approx_eq(Complex64::ONE, TOL));
        assert!(fs.m[3][5].approx_eq(Complex64::ONE, TOL));
        // Control = 0 states are fixed.
        assert!(fs.m[2][2].approx_eq(Complex64::ONE, TOL));
        assert!(fs.m[4][4].approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn phase_equals_rz_up_to_global_phase() {
        let (GateMatrix::One(p), GateMatrix::One(rz)) =
            (Gate::Phase(0, 0.8).matrix(), Gate::Rz(0, 0.8).matrix())
        else {
            unreachable!()
        };
        assert!(p.approx_eq_up_to_phase(&rz, 1e-10));
        assert!(!p.approx_eq(&rz, 1e-10));
    }

    #[test]
    fn sx_squared_is_x() {
        let GateMatrix::One(sx) = Gate::Sx(0).matrix() else {
            unreachable!()
        };
        let GateMatrix::One(x) = Gate::X(0).matrix() else {
            unreachable!()
        };
        assert!(sx.matmul(&sx).approx_eq(&x, TOL));
    }

    #[test]
    fn u_covers_standard_gates() {
        // H = U(π/2, 0, π) up to global phase.
        let (GateMatrix::One(u), GateMatrix::One(h)) =
            (Gate::U(0, PI / 2.0, 0.0, PI).matrix(), Gate::H(0).matrix())
        else {
            unreachable!()
        };
        assert!(u.approx_eq_up_to_phase(&h, 1e-10));
        // X = U(π, 0, π).
        let (GateMatrix::One(ux), GateMatrix::One(x)) =
            (Gate::U(0, PI, 0.0, PI).matrix(), Gate::X(0).matrix())
        else {
            unreachable!()
        };
        assert!(ux.approx_eq_up_to_phase(&x, 1e-10));
    }

    #[test]
    fn controlled_lifting() {
        assert_eq!(
            Gate::X(1).controlled(0),
            Some(Gate::Cx {
                control: 0,
                target: 1
            })
        );
        assert_eq!(
            Gate::H(1).controlled(0),
            Some(Gate::Ch {
                control: 0,
                target: 1
            })
        );
        let cp = Gate::Cphase {
            control: 1,
            target: 2,
            theta: 0.3,
        }
        .controlled(0);
        assert_eq!(
            cp,
            Some(Gate::Ccphase {
                c0: 0,
                c1: 1,
                target: 2,
                theta: 0.3
            })
        );
        // 3-qubit gates can't gain another control in this set.
        assert_eq!(
            Gate::Ccx {
                c0: 0,
                c1: 1,
                target: 2
            }
            .controlled(3),
            None
        );
        // Rotations other than phase-type can't be controlled directly.
        assert_eq!(Gate::Ry(1, 0.5).controlled(0), None);
    }

    #[test]
    fn controlled_matrix_matches_lifting() {
        // Verify Ch against manually controlled H through basis action.
        let g = Gate::H(1).controlled(0).unwrap();
        let GateMatrix::Two(m) = g.matrix() else {
            unreachable!()
        };
        // Control (bit 0) = 0: identity on target.
        assert!(m.m[0][0].approx_eq(Complex64::ONE, TOL));
        assert!(m.m[2][2].approx_eq(Complex64::ONE, TOL));
        // Control = 1: Hadamard on target bit (bit 1): columns 1 and 3.
        let h = FRAC_1_SQRT_2;
        assert!(m.m[1][1].approx_eq(c64(h, 0.0), TOL));
        assert!(m.m[3][1].approx_eq(c64(h, 0.0), TOL));
        assert!(m.m[1][3].approx_eq(c64(h, 0.0), TOL));
        assert!(m.m[3][3].approx_eq(c64(-h, 0.0), TOL));
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::Ccphase {
            c0: 0,
            c1: 1,
            target: 2,
            theta: 0.5,
        };
        let mapped = g.map_qubits(|q| q + 10);
        assert_eq!(mapped.qubits().as_slice(), &[10, 11, 12]);
        assert_eq!(mapped.angle(), Some(0.5));
    }

    #[test]
    fn diagonal_classification() {
        assert!(Gate::Rz(0, 1.0).is_diagonal());
        assert!(Gate::Cphase {
            control: 0,
            target: 1,
            theta: 1.0
        }
        .is_diagonal());
        assert!(Gate::Ccphase {
            c0: 0,
            c1: 1,
            target: 2,
            theta: 1.0
        }
        .is_diagonal());
        assert!(!Gate::H(0).is_diagonal());
        assert!(!Gate::Cx {
            control: 0,
            target: 1
        }
        .is_diagonal());
        // Verify the classification against the actual matrices.
        for g in all_sample_gates() {
            let diag_by_matrix = match g.matrix() {
                GateMatrix::One(m) => is_diag2(&m),
                GateMatrix::Two(m) => is_diag4(&m),
                GateMatrix::Three(m) => is_diag8(&m),
            };
            assert_eq!(g.is_diagonal(), diag_by_matrix, "{g}");
        }
    }

    fn is_diag2(m: &Mat2) -> bool {
        (0..2).all(|r| (0..2).all(|c| r == c || m.m[r][c].norm_sqr() < 1e-20))
    }
    fn is_diag4(m: &Mat4) -> bool {
        (0..4).all(|r| (0..4).all(|c| r == c || m.m[r][c].norm_sqr() < 1e-20))
    }
    fn is_diag8(m: &Mat8) -> bool {
        (0..8).all(|r| (0..8).all(|c| r == c || m.m[r][c].norm_sqr() < 1e-20))
    }

    #[test]
    fn display_contains_name_and_qubits() {
        let s = format!(
            "{}",
            Gate::Cphase {
                control: 3,
                target: 7,
                theta: 0.25
            }
        );
        assert!(s.contains("cp"));
        assert!(s.contains("q3"));
        assert!(s.contains("q7"));
    }
}
