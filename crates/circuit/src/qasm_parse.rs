//! OpenQASM 2.0 import.
//!
//! Parses the subset of OpenQASM 2.0 that [`crate::qasm::to_qasm`]
//! emits (plus whitespace/comment tolerance): a single quantum
//! register and the qelib1 gates used by the arithmetic circuits. This
//! gives a round-trip path for interchange with other toolchains.
//!
//! Supported statements: `OPENQASM 2.0;`, `include "qelib1.inc";`,
//! `qreg <name>[n];`, gate applications from the set
//! {id, x, y, z, h, s, sdg, t, tdg, sx, sxdg, rx, ry, rz, u1/p, u3/u,
//! cx, cz, cu1/cp, ch, swap, ccx, cswap}, and `barrier`/`creg`/
//! `measure` statements (ignored). Angle expressions support decimal
//! literals, `pi`, unary minus, and `*`/`/` by a literal.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::f64::consts::PI;

/// A parse failure with line context.
#[derive(Clone, Debug, PartialEq)]
pub struct QasmError {
    /// 1-based source line.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "QASM parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for QasmError {}

/// Parses an OpenQASM 2.0 program into a [`Circuit`].
pub fn from_qasm(source: &str) -> Result<Circuit, QasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut reg_name: Option<String> = None;

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = strip_comment(raw).trim();
        if text.is_empty() {
            continue;
        }
        for stmt in text.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            parse_statement(stmt, line, &mut circuit, &mut reg_name)?;
        }
    }
    circuit.ok_or(QasmError {
        line: 0,
        message: "no qreg declaration found".to_string(),
    })
}

fn strip_comment(s: &str) -> &str {
    match s.find("//") {
        Some(i) => &s[..i],
        None => s,
    }
}

fn parse_statement(
    stmt: &str,
    line: usize,
    circuit: &mut Option<Circuit>,
    reg_name: &mut Option<String>,
) -> Result<(), QasmError> {
    let err = |message: String| QasmError { line, message };

    if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("qreg") {
        let rest = rest.trim();
        let (name, size) = parse_decl(rest).ok_or_else(|| err(format!("bad qreg: {rest}")))?;
        if circuit.is_some() {
            return Err(err("multiple qreg declarations are not supported".into()));
        }
        *circuit = Some(Circuit::new(size));
        *reg_name = Some(name);
        return Ok(());
    }
    if stmt.starts_with("creg") || stmt.starts_with("barrier") || stmt.starts_with("measure") {
        return Ok(()); // classical bookkeeping: ignored
    }

    // Gate application: name[(params)] operand[, operand…]
    let circuit = circuit
        .as_mut()
        .ok_or_else(|| err("gate before qreg declaration".into()))?;
    let reg = reg_name.as_deref().unwrap_or("q");

    let (head, operands_text) = match stmt.find(|c: char| c.is_whitespace()) {
        Some(i) if !stmt[..i].contains('(') || stmt[..i].contains(')') => (&stmt[..i], &stmt[i..]),
        _ => {
            // Parameterized names may contain spaces inside parens; find
            // the closing paren first.
            match stmt.find(')') {
                Some(i) => (&stmt[..=i], &stmt[i + 1..]),
                None => return Err(err(format!("malformed statement: {stmt}"))),
            }
        }
    };
    let (name, params) = split_params(head, line)?;
    let qubits = parse_operands(operands_text, reg, line)?;

    let q = |i: usize| -> Result<u32, QasmError> {
        qubits
            .get(i)
            .copied()
            .ok_or_else(|| err(format!("{name}: missing operand {i}")))
    };
    let p = |i: usize| -> Result<f64, QasmError> {
        params
            .get(i)
            .copied()
            .ok_or_else(|| err(format!("{name}: missing parameter {i}")))
    };

    let gate = match name.as_str() {
        "id" => Gate::I(q(0)?),
        "x" => Gate::X(q(0)?),
        "y" => Gate::Y(q(0)?),
        "z" => Gate::Z(q(0)?),
        "h" => Gate::H(q(0)?),
        "s" => Gate::S(q(0)?),
        "sdg" => Gate::Sdg(q(0)?),
        "t" => Gate::T(q(0)?),
        "tdg" => Gate::Tdg(q(0)?),
        "sx" => Gate::Sx(q(0)?),
        "sxdg" => Gate::Sxdg(q(0)?),
        "rx" => Gate::Rx(q(0)?, p(0)?),
        "ry" => Gate::Ry(q(0)?, p(0)?),
        "rz" => Gate::Rz(q(0)?, p(0)?),
        "u1" | "p" => Gate::Phase(q(0)?, p(0)?),
        "u3" | "u" => Gate::U(q(0)?, p(0)?, p(1)?, p(2)?),
        "cx" => Gate::Cx {
            control: q(0)?,
            target: q(1)?,
        },
        "cz" => Gate::Cz(q(0)?, q(1)?),
        "cu1" | "cp" => Gate::Cphase {
            control: q(0)?,
            target: q(1)?,
            theta: p(0)?,
        },
        "ch" => Gate::Ch {
            control: q(0)?,
            target: q(1)?,
        },
        "swap" => Gate::Swap(q(0)?, q(1)?),
        "ccx" => Gate::Ccx {
            c0: q(0)?,
            c1: q(1)?,
            target: q(2)?,
        },
        "cswap" => Gate::Cswap {
            control: q(0)?,
            a: q(1)?,
            b: q(2)?,
        },
        other => return Err(err(format!("unsupported gate '{other}'"))),
    };
    circuit.push(gate);
    Ok(())
}

/// Parses `name[size]`.
fn parse_decl(s: &str) -> Option<(String, u32)> {
    let open = s.find('[')?;
    let close = s.find(']')?;
    let name = s[..open].trim().to_string();
    let size: u32 = s[open + 1..close].trim().parse().ok()?;
    (!name.is_empty() && size > 0).then_some((name, size))
}

/// Splits `name(p1,p2)` into the name and parsed parameters.
fn split_params(head: &str, line: usize) -> Result<(String, Vec<f64>), QasmError> {
    match head.find('(') {
        None => Ok((head.trim().to_string(), Vec::new())),
        Some(open) => {
            let close = head.rfind(')').ok_or(QasmError {
                line,
                message: format!("unclosed parameter list in '{head}'"),
            })?;
            let name = head[..open].trim().to_string();
            let params = head[open + 1..close]
                .split(',')
                .map(|e| parse_angle(e.trim(), line))
                .collect::<Result<Vec<f64>, _>>()?;
            Ok((name, params))
        }
    }
}

/// Parses `reg[i], reg[j], …` into qubit indices.
fn parse_operands(s: &str, reg: &str, line: usize) -> Result<Vec<u32>, QasmError> {
    s.split(',')
        .map(|op| {
            let op = op.trim();
            let open = op.find('[');
            let close = op.find(']');
            match (open, close) {
                (Some(o), Some(c)) if op[..o].trim() == reg => {
                    op[o + 1..c].trim().parse().map_err(|_| QasmError {
                        line,
                        message: format!("bad qubit index in '{op}'"),
                    })
                }
                _ => Err(QasmError {
                    line,
                    message: format!("bad operand '{op}'"),
                }),
            }
        })
        .collect()
}

/// Evaluates a restricted angle expression: `[-]a[*b][/c]` where each
/// atom is a decimal literal or `pi`.
fn parse_angle(expr: &str, line: usize) -> Result<f64, QasmError> {
    let err = || QasmError {
        line,
        message: format!("bad angle expression '{expr}'"),
    };
    let expr = expr.trim();
    let (neg, body) = match expr.strip_prefix('-') {
        Some(b) => (true, b.trim()),
        None => (false, expr),
    };
    // Split on '/' first (lowest precedence in our restricted grammar).
    let (num_part, den): (&str, f64) = match body.split_once('/') {
        Some((n, d)) => (n.trim(), parse_atom(d.trim()).ok_or_else(err)?),
        None => (body, 1.0),
    };
    let num: f64 = num_part
        .split('*')
        .map(|a| parse_atom(a.trim()))
        .try_fold(1.0, |acc, v| v.map(|v| acc * v))
        .ok_or_else(err)?;
    let value = num / den;
    Ok(if neg { -value } else { value })
}

fn parse_atom(s: &str) -> Option<f64> {
    if s.eq_ignore_ascii_case("pi") {
        Some(PI)
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qasm::to_qasm;

    #[test]
    fn roundtrip_simple_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cphase(0.5, 1, 2).rz(-0.25, 2).swap(0, 2);
        let text = to_qasm(&c);
        let parsed = from_qasm(&text).unwrap();
        assert_eq!(parsed.num_qubits(), 3);
        assert_eq!(parsed.gates(), c.gates());
    }

    #[test]
    fn roundtrip_every_directly_exported_gate() {
        let mut c = Circuit::new(3);
        c.id(0)
            .x(0)
            .y(1)
            .z(2)
            .h(0)
            .s(1)
            .t(2)
            .sx(0)
            .rx(0.1, 0)
            .ry(0.2, 1)
            .rz(0.3, 2)
            .phase(0.4, 0)
            .cx(0, 1)
            .cz(1, 2)
            .ch(0, 2)
            .swap(1, 2)
            .ccx(0, 1, 2)
            .cswap(0, 1, 2);
        c.push(Gate::U(1, 0.1, 0.2, 0.3));
        c.push(Gate::Sdg(0));
        c.push(Gate::Tdg(1));
        c.push(Gate::Sxdg(2));
        let parsed = from_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(parsed.gates(), c.gates());
    }

    #[test]
    fn ccphase_roundtrips_semantically() {
        // The exporter lowers ccp to cu1/cx; parsing gives the lowered
        // form, which must be unitary-equivalent to the original.
        let mut c = Circuit::new(3);
        c.ccphase(0.9, 0, 1, 2);
        let parsed = from_qasm(&to_qasm(&c)).unwrap();
        assert_eq!(parsed.len(), 5);
        // Compare matrices through simulation on all basis states.
        use qfab_math::bits::dim;
        for basis in 0..dim(3) {
            let probs_a = simulate(&c, basis);
            let probs_b = simulate(&parsed, basis);
            for (a, b) in probs_a.iter().zip(&probs_b) {
                assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
            }
        }
    }

    fn simulate(c: &Circuit, basis: usize) -> Vec<qfab_math::Complex64> {
        // Minimal local simulation via expanded matrices (avoids a dev
        // dependency on qfab-sim from this crate).
        use crate::gate::GateMatrix;
        use qfab_math::bits::{dim, gather_bits, scatter_bits};
        use qfab_math::Complex64;
        let d = dim(c.num_qubits());
        let mut state = vec![Complex64::ZERO; d];
        state[basis] = Complex64::ONE;
        for gate in c.gates() {
            let qubits = gate.qubits();
            let ops = qubits.as_slice();
            let flat: Vec<Complex64> = match gate.matrix() {
                GateMatrix::One(m) => m.m.concat(),
                GateMatrix::Two(m) => m.m.concat(),
                GateMatrix::Three(m) => m.m.concat(),
            };
            let ld = 1usize << ops.len();
            let mut next = vec![Complex64::ZERO; d];
            for (col, amp) in state.iter().enumerate() {
                if amp.norm_sqr() == 0.0 {
                    continue;
                }
                let lc = gather_bits(col, ops);
                for lr in 0..ld {
                    let coeff = flat[lr * ld + lc];
                    if coeff.norm_sqr() > 0.0 {
                        next[scatter_bits(col, lr, ops)] += coeff * *amp;
                    }
                }
            }
            state = next;
        }
        state
    }

    #[test]
    fn parses_pi_expressions() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nrz(pi/2) q[0];\nrz(-pi/4) q[0];\nrz(2*pi) q[0];\nrz(0.5) q[0];\n";
        let c = from_qasm(src).unwrap();
        let angles: Vec<f64> = c.gates().iter().filter_map(|g| g.angle()).collect();
        assert!((angles[0] - PI / 2.0).abs() < 1e-12);
        assert!((angles[1] + PI / 4.0).abs() < 1e-12);
        assert!((angles[2] - 2.0 * PI).abs() < 1e-12);
        assert!((angles[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tolerates_comments_blank_lines_and_measure() {
        let src = "\
OPENQASM 2.0;
include \"qelib1.inc\";
// a comment
qreg q[2];
creg c[2];

h q[0]; cx q[0],q[1]; // inline comment
barrier q[0], q[1];
measure q[0] -> c[0];
";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn error_on_unknown_gate() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n";
        let e = from_qasm(src).unwrap_err();
        assert!(e.message.contains("frobnicate"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn error_on_gate_before_qreg() {
        let e = from_qasm("OPENQASM 2.0;\nh q[0];\n").unwrap_err();
        assert!(e.message.contains("before qreg"));
    }

    #[test]
    fn error_on_missing_qreg() {
        let e = from_qasm("OPENQASM 2.0;\n").unwrap_err();
        assert!(e.message.contains("no qreg"));
    }

    #[test]
    fn error_on_bad_index() {
        let e = from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[xyz];\n").unwrap_err();
        assert!(e.message.contains("bad qubit index"));
    }

    #[test]
    fn respects_custom_register_name() {
        let src = "OPENQASM 2.0;\nqreg data[2];\nh data[1];\n";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.gates()[0], Gate::H(1));
        // Wrong register name in an operand is an error.
        let bad = "OPENQASM 2.0;\nqreg data[2];\nh other[0];\n";
        assert!(from_qasm(bad).is_err());
    }
}
