//! Named qubit registers and a tiny layout allocator.
//!
//! Arithmetic circuits are naturally expressed over *registers* ("the x
//! operand", "the product register") rather than raw qubit indices. A
//! [`Register`] is a contiguous, named index range; a [`Layout`]
//! allocates registers in order and yields the total qubit count.
//!
//! Register bit `i` is the integer's bit `i` (LSB first), matching the
//! paper's `y = y_1·2^0 + y_2·2^1 + …` convention and the workspace-wide
//! rule that qubit `q` is bit `q` of the basis index.

use std::fmt;

/// A contiguous, named range of qubits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Register {
    name: String,
    start: u32,
    len: u32,
}

impl Register {
    /// Creates a register starting at qubit `start` with `len` qubits.
    pub fn new(name: impl Into<String>, start: u32, len: u32) -> Self {
        assert!(len > 0, "register must have at least one qubit");
        Self {
            name: name.into(),
            start,
            len,
        }
    }

    /// The register's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Registers are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First (least significant) qubit index.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// The global qubit index of register bit `i` (LSB first).
    pub fn qubit(&self, i: u32) -> u32 {
        assert!(
            i < self.len,
            "bit {i} out of range for {}-bit register",
            self.len
        );
        self.start + i
    }

    /// Iterates the register's qubit indices, LSB first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = u32> + ExactSizeIterator {
        self.start..self.start + self.len
    }

    /// Global qubit indices as a vector (LSB first), for use with
    /// [`crate::Circuit::extend_mapped`].
    pub fn qubits(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Extracts this register's value from a full basis-state index.
    pub fn extract(&self, basis_index: usize) -> usize {
        (basis_index >> self.start) & ((1usize << self.len) - 1)
    }

    /// Embeds a register value into a full basis-state index (other bits
    /// must be provided by `rest`, which must be zero in this range).
    pub fn embed(&self, value: usize, rest: usize) -> usize {
        let mask = ((1usize << self.len) - 1) << self.start;
        debug_assert_eq!(rest & mask, 0, "rest has bits in register range");
        debug_assert!(value < (1usize << self.len), "value too wide for register");
        rest | (value << self.start)
    }
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[q{}..q{}]",
            self.name,
            self.start,
            self.start + self.len - 1
        )
    }
}

/// Sequential register allocator.
#[derive(Clone, Debug, Default)]
pub struct Layout {
    next: u32,
    registers: Vec<Register>,
}

impl Layout {
    /// An empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next `len` qubits as a named register.
    pub fn alloc(&mut self, name: impl Into<String>, len: u32) -> Register {
        let reg = Register::new(name, self.next, len);
        self.next += len;
        self.registers.push(reg.clone());
        reg
    }

    /// Total qubits allocated so far.
    pub fn num_qubits(&self) -> u32 {
        self.next
    }

    /// All allocated registers, in allocation order.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// Finds a register by name.
    pub fn get(&self, name: &str) -> Option<&Register> {
        self.registers.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_indexing() {
        let r = Register::new("y", 8, 9);
        assert_eq!(r.qubit(0), 8);
        assert_eq!(r.qubit(8), 16);
        assert_eq!(r.len(), 9);
        assert_eq!(r.qubits(), (8..17).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_bounds_checked() {
        Register::new("x", 0, 4).qubit(4);
    }

    #[test]
    fn extract_and_embed_roundtrip() {
        let x = Register::new("x", 0, 4);
        let y = Register::new("y", 4, 5);
        for xv in 0..16usize {
            for yv in [0usize, 7, 31] {
                let idx = y.embed(yv, x.embed(xv, 0));
                assert_eq!(x.extract(idx), xv);
                assert_eq!(y.extract(idx), yv);
            }
        }
    }

    #[test]
    fn layout_allocates_contiguously() {
        let mut l = Layout::new();
        let x = l.alloc("x", 8);
        let y = l.alloc("y", 9);
        assert_eq!(x.start(), 0);
        assert_eq!(y.start(), 8);
        assert_eq!(l.num_qubits(), 17);
        assert_eq!(l.get("y").unwrap(), &y);
        assert!(l.get("z").is_none());
        assert_eq!(l.registers().len(), 2);
    }

    #[test]
    fn display_shows_range() {
        let r = Register::new("prod", 3, 2);
        assert_eq!(format!("{r}"), "prod[q3..q4]");
    }
}
